//! Datacenter batch scheduling: the motivating scenario from the paper's
//! introduction — a machine that costs energy whenever it is on,
//! regardless of how many of its `g` job slots are busy.
//!
//! Nightly maintenance windows are naturally *nested*: the full night
//! contains region-level windows, which contain rack-level windows. We
//! compare the 9/5 algorithm against naive always-on operation and
//! greedy deactivation, reporting energy (≡ active slots) savings.
//!
//! ```text
//! cargo run --release --example datacenter_batch
//! ```

use nested_active_time::baselines::greedy::{minimal_feasible, ScanOrder};
use nested_active_time::core::instance::{Instance, Job};
use nested_active_time::core::solver::{solve_nested, SolverOptions};

fn main() {
    // One night = 48 half-hour slots. The machine batches up to 6 jobs
    // per slot.
    let g = 6;
    let night = 48;
    let mut jobs = Vec::new();

    // Full-night flexible jobs: log compaction, backups.
    for _ in 0..4 {
        jobs.push(Job::new(0, night, 6));
    }
    for _ in 0..6 {
        jobs.push(Job::new(0, night, 2));
    }
    // Region A window [4, 20): database reindexing bursts.
    for _ in 0..8 {
        jobs.push(Job::new(4, 20, 3));
    }
    // Rack window nested in region A, [8, 14): firmware flashes.
    for _ in 0..5 {
        jobs.push(Job::new(8, 14, 2));
    }
    // Region B window [24, 44): analytics jobs.
    for _ in 0..7 {
        jobs.push(Job::new(24, 44, 4));
    }
    // Rack window nested in region B, [30, 36).
    for _ in 0..6 {
        jobs.push(Job::new(30, 36, 1));
    }

    let inst = Instance::new(g, jobs).expect("valid jobs");
    assert!(inst.check_laminar().is_ok(), "maintenance windows are nested");

    let ours = solve_nested(&inst, &SolverOptions::exact()).expect("feasible");
    let greedy = minimal_feasible(&inst, ScanOrder::Shuffled(7)).expect("feasible");
    let always_on = inst.candidate_slots().len();

    println!("datacenter night: {} jobs, g = {g}, {} candidate slots", inst.num_jobs(), always_on);
    println!();
    println!("always-on active slots : {always_on}");
    println!(
        "greedy (3-approx)      : {} ({:.0}% energy saved)",
        greedy.schedule.active_time(),
        100.0 * (1.0 - greedy.schedule.active_time() as f64 / always_on as f64)
    );
    println!(
        "nested 9/5 algorithm   : {} ({:.0}% energy saved)",
        ours.stats.active_slots,
        100.0 * (1.0 - ours.stats.active_slots as f64 / always_on as f64)
    );
    println!("LP lower bound         : {:.2}", ours.stats.lp_objective);
    println!();
    println!("{}", ours.schedule.render_timeline(&inst));
}
