//! Integrality-gap study: reproduce the paper's §5 story in a few lines —
//! the natural LP is hopeless (gap 2 even on nested instances), the
//! Călinescu–Wang LP and the paper's tree LP both stay ≥ 3/2 on the
//! Lemma 5.1 family, and the tree LP's ceiling constraints close the
//! easy gap-2 family completely.
//!
//! ```text
//! cargo run --release --example gap_study
//! ```

use nested_active_time::baselines::exact::nested_opt;
use nested_active_time::core::solver::{solve_nested, SolverOptions};
use nested_active_time::gaps::instances::{gap2_instance, lemma51_instance, lemma51_integral_opt};
use nested_active_time::gaps::{cw_lp, natural_lp};
use nested_active_time::num::Ratio;

fn main() {
    println!("== family 1: g+1 unit jobs in a width-2 window ==");
    for g in [2i64, 4, 8] {
        let inst = gap2_instance(g);
        let natural = natural_lp::value::<Ratio>(&inst).unwrap();
        let tree_lp = solve_nested(&inst, &SolverOptions::exact()).unwrap().stats.lp_objective;
        let opt = nested_opt(&inst, 0).unwrap().active_time();
        println!(
            "g={g:>2}: naturalLP = {natural}  treeLP = {tree_lp}  OPT = {opt}  (natural gap {:.3})",
            opt as f64 / natural.to_f64()
        );
    }

    println!();
    println!("== family 2: Lemma 5.1 (long job + g groups of g unit jobs) ==");
    for g in [2i64, 3, 4] {
        let inst = lemma51_instance(g);
        let natural = natural_lp::value::<Ratio>(&inst).unwrap();
        let cw = cw_lp::value::<Ratio>(&inst).unwrap();
        let opt = lemma51_integral_opt(g);
        println!(
            "g={g:>2}: naturalLP = {natural}  cwLP = {cw}  OPT = {opt}  (cw gap {:.3}, → 3/2)",
            opt as f64 / cw.to_f64()
        );
    }
}
