//! NP-completeness walkthrough (paper §6): encode a Set Cover question as
//! a Prefix Sum Cover question, then as a nested active-time scheduling
//! question, and watch the same answer come back at every level.
//!
//! ```text
//! cargo run --release --example npc_reduction
//! ```

use nested_active_time::baselines::exact::nested_opt;
use nested_active_time::npc::reductions::{psc_to_active_time, set_cover_to_psc};
use nested_active_time::npc::set_cover::SetCover;

fn main() {
    // Universe {0,1,2,3}; sets {0,1}, {1,2}, {2,3}. Coverable with 2 sets
    // but not with 1.
    let sc = SetCover::new(4, vec![vec![0, 1], vec![1, 2], vec![2, 3]]).unwrap();
    println!("set cover: universe 4, sets {{0,1}} {{1,2}} {{2,3}}");

    for k in [1usize, 2] {
        println!("\n-- budget k = {k} --");
        let sc_answer = sc.solvable_with(k);
        println!("set cover answer          : {sc_answer}");

        let psc = set_cover_to_psc(&sc, k);
        println!(
            "prefix-sum-cover instance : {} vectors of dim {}, W = {}",
            psc.vectors.len(),
            psc.dim(),
            psc.max_scalar()
        );
        let psc_answer = psc.solvable();
        println!("prefix-sum-cover answer   : {psc_answer}");

        let red = psc_to_active_time(&psc);
        println!(
            "scheduling instance       : {} jobs, g = {}, horizon {:?}",
            red.instance.num_jobs(),
            red.instance.g,
            red.instance.horizon().unwrap()
        );
        let opt = nested_opt(&red.instance, 0).expect("reduction instances are feasible");
        let at_answer = (opt.active_time() as i64) <= red.base_slots + red.k as i64;
        println!(
            "active-time answer        : {at_answer} (OPT = {}, threshold = {})",
            opt.active_time(),
            red.base_slots + red.k as i64
        );

        assert_eq!(sc_answer, psc_answer);
        assert_eq!(psc_answer, at_answer);
        println!("all three agree ✓");
    }
}
