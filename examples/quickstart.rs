//! Quickstart: build a nested instance, run the 9/5-approximation, and
//! inspect the schedule.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use nested_active_time::core::instance::{Instance, Job};
use nested_active_time::core::solver::{solve_nested, SolverOptions};

fn main() {
    // A parallel machine that can run up to 3 jobs per time slot.
    // Windows are nested: the big batch window contains two tighter ones.
    let inst = Instance::new(
        3,
        vec![
            Job::new(0, 12, 4), // long maintenance job, flexible window
            Job::new(2, 6, 2),  // must run inside [2, 6)
            Job::new(2, 6, 1),
            Job::new(7, 11, 2), // must run inside [7, 11)
            Job::new(7, 11, 1),
            Job::new(8, 10, 1), // tightest window, nested deeper
        ],
    )
    .expect("valid jobs");

    let result = solve_nested(&inst, &SolverOptions::exact()).expect("feasible instance");

    println!("LP lower bound : {}", result.stats.lp_objective_exact.as_deref().unwrap_or("-"));
    println!("slots opened   : {}", result.stats.opened_slots);
    println!("active slots   : {}", result.stats.active_slots);
    println!("ALG/LP ratio   : {:.3} (certified ≤ 1.8)", result.stats.opened_over_lp);
    println!();
    println!("{}", result.schedule.render_timeline(&inst));

    // The schedule is independently verified, but you can re-check:
    result.schedule.verify(&inst).expect("verified schedule");
    println!("schedule verified ✓");
}
