//! The unified error type of the public solving API.
//!
//! Every failure mode across the workspace — instance validation, LP
//! breakdown, infeasibility, I/O and parsing, timeouts, contained
//! panics — funnels into one [`Error`] so callers of [`crate::Solve`]
//! and the CLI match on a single hierarchy. The enum is
//! `#[non_exhaustive]`: downstream matches need a wildcard arm, which
//! lets new failure modes land without a breaking change.

use atsched_core::instance::InstanceError;
use atsched_core::solver::SolveError;
use atsched_engine::Interrupt;
use atsched_lp::LpError;
use atsched_workloads::io::IoError;
use std::fmt;

/// Any failure the public solving API can report.
#[non_exhaustive]
#[derive(Debug)]
pub enum Error {
    /// The instance is invalid (bad parallelism, window too short,
    /// windows not laminar where laminarity is required, …).
    Instance(InstanceError),
    /// The instance admits no feasible schedule.
    Infeasible,
    /// The LP solver gave up (possible only on the float backend).
    Lp(LpError),
    /// A configured wall-clock budget ran out.
    TimedOut,
    /// The solver panicked; the panic was contained.
    Panicked(String),
    /// Reading, writing, or parsing instances / records failed.
    Io(IoError),
    /// A solve service shed the request: its admission queue was full.
    Overloaded,
    /// A solve service is draining and no longer accepts work.
    ShuttingDown,
    /// A wire-protocol failure talking to a solve service (malformed
    /// frame, unexpected reply, broken connection).
    Protocol(String),
    /// The combinatorial tree LP path was forced (`lp-path=tree`) and
    /// declined the instance.
    TreeDeclined(atsched_core::TreeDecline),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Instance(e) => write!(f, "{e}"),
            Error::Infeasible => write!(f, "instance is infeasible"),
            Error::Lp(e) => write!(f, "{e}"),
            Error::TimedOut => write!(f, "solve exceeded its wall-clock budget"),
            Error::Panicked(msg) => write!(f, "solver panicked: {msg}"),
            Error::Io(e) => write!(f, "{e}"),
            Error::Overloaded => write!(f, "service overloaded: admission queue is full"),
            Error::ShuttingDown => write!(f, "service is shutting down"),
            Error::Protocol(msg) => write!(f, "protocol error: {msg}"),
            Error::TreeDeclined(d) => write!(f, "tree LP path declined: {d}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Instance(e) => Some(e),
            Error::Lp(e) => Some(e),
            Error::Io(e) => Some(e),
            Error::Infeasible
            | Error::TimedOut
            | Error::Panicked(_)
            | Error::Overloaded
            | Error::ShuttingDown
            | Error::Protocol(_)
            | Error::TreeDeclined(_) => None,
        }
    }
}

impl From<SolveError> for Error {
    fn from(e: SolveError) -> Self {
        match e {
            SolveError::Instance(e) => Error::Instance(e),
            SolveError::Infeasible => Error::Infeasible,
            SolveError::Lp(e) => Error::Lp(e),
            SolveError::TreeDeclined(d) => Error::TreeDeclined(d),
        }
    }
}

impl From<InstanceError> for Error {
    fn from(e: InstanceError) -> Self {
        Error::Instance(e)
    }
}

impl From<IoError> for Error {
    fn from(e: IoError) -> Self {
        Error::Io(e)
    }
}

impl From<Interrupt> for Error {
    fn from(i: Interrupt) -> Self {
        match i {
            Interrupt::TimedOut => Error::TimedOut,
            Interrupt::Panicked(msg) => Error::Panicked(msg),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: Error = SolveError::Infeasible.into();
        assert!(matches!(e, Error::Infeasible));
        assert_eq!(e.to_string(), "instance is infeasible");

        let e: Error = InstanceError::BadParallelism(0).into();
        assert!(matches!(e, Error::Instance(_)));
        assert!(std::error::Error::source(&e).is_some());

        let e: Error = Interrupt::TimedOut.into();
        assert!(matches!(e, Error::TimedOut));

        let e: Error = Interrupt::Panicked("boom".into()).into();
        assert!(e.to_string().contains("boom"));

        let e: Error = IoError::Parse { line: 3, message: "bad".into() }.into();
        assert!(e.to_string().contains("line 3"));

        assert!(Error::Overloaded.to_string().contains("admission queue"));
        assert!(Error::ShuttingDown.to_string().contains("shutting down"));
        let e = Error::Protocol("bad frame".into());
        assert!(e.to_string().contains("bad frame"));
        assert!(std::error::Error::source(&e).is_none());
    }
}
