//! General (non-laminar) instances and automatic dispatch.
//!
//! The paper's 9/5-approximation needs laminar windows. For arbitrary
//! windows this module provides the best prior-work toolbox assembled in
//! this workspace: minimal-feasible greedy deactivation (provably ≤ 3·OPT
//! by CKM'17, directional variants tracking the KK'18 2-approximation)
//! with a *certified per-instance ratio* against the natural LP lower
//! bound, plus [`solve_auto`] which dispatches to the nested solver
//! whenever windows happen to be laminar.

use atsched_baselines::greedy::ScanOrder;
use atsched_baselines::incremental::minimal_feasible_fast;
use atsched_core::instance::Instance;
use atsched_core::schedule::Schedule;
use atsched_core::solver::{solve_nested, SolveError, SolverOptions};
use atsched_gaps::natural_lp;

/// Result of solving a general instance.
#[derive(Debug, Clone)]
pub struct GeneralResult {
    /// The best schedule found (verified).
    pub schedule: Schedule,
    /// Fractional lower bound from the natural per-slot LP.
    pub lower_bound: f64,
    /// Which scan order produced the winner.
    pub winner: &'static str,
    /// Certified ratio `active / lower_bound` (≤ 3 by CKM'17; typically
    /// much lower).
    pub certified_ratio: f64,
}

/// Seed used by [`solve_general`] for its shuffled scan candidate.
pub const DEFAULT_SHUFFLE_SEED: u64 = 0x5EED;

/// Solve an arbitrary-window instance with the greedy family; `None`
/// when infeasible. Uses [`DEFAULT_SHUFFLE_SEED`] for the shuffled
/// candidate; see [`solve_general_seeded`] to vary it.
pub fn solve_general(inst: &Instance) -> Option<GeneralResult> {
    solve_general_seeded(inst, DEFAULT_SHUFFLE_SEED)
}

/// [`solve_general`] with an explicit seed for the shuffled scan
/// candidate (the directional candidates are deterministic and
/// unaffected).
pub fn solve_general_seeded(inst: &Instance, seed: u64) -> Option<GeneralResult> {
    let candidates = [
        ("right-to-left", ScanOrder::RightToLeft),
        ("left-to-right", ScanOrder::LeftToRight),
        ("shuffled", ScanOrder::Shuffled(seed)),
    ];
    let mut best: Option<(&'static str, Schedule)> = None;
    for (name, order) in candidates {
        let r = minimal_feasible_fast(inst, order)?;
        let better = best.as_ref().is_none_or(|(_, s)| r.schedule.active_time() < s.active_time());
        if better {
            best = Some((name, r.schedule));
        }
    }
    let (winner, schedule) = best?;
    debug_assert!(schedule.verify(inst).is_ok());
    let lower_bound = natural_lp::value::<f64>(inst)?.max(1.0);
    let certified_ratio = schedule.active_time() as f64 / lower_bound;
    Some(GeneralResult { schedule, lower_bound, winner, certified_ratio })
}

/// How [`solve_auto`] solved the instance.
#[derive(Debug, Clone)]
pub enum AutoResult {
    /// Windows were laminar: the paper's 9/5-approximation ran.
    Nested(Box<atsched_core::solver::SolveResult>),
    /// Windows cross: the certified greedy toolbox ran.
    General(GeneralResult),
}

impl AutoResult {
    /// The schedule, whichever path produced it.
    pub fn schedule(&self) -> &Schedule {
        match self {
            AutoResult::Nested(r) => &r.schedule,
            AutoResult::General(r) => &r.schedule,
        }
    }

    /// Active slots of the result.
    pub fn active_time(&self) -> usize {
        self.schedule().active_time()
    }
}

/// Dispatch on laminarity: nested 9/5 when possible, certified greedy
/// otherwise. `None`/`Err`-style failures collapse to `None`
/// (infeasible).
pub fn solve_auto(inst: &Instance) -> Option<AutoResult> {
    if inst.check_laminar().is_ok() {
        match solve_nested(inst, &SolverOptions::exact().polished()) {
            Ok(r) => Some(AutoResult::Nested(Box::new(r))),
            Err(SolveError::Infeasible) => None,
            Err(e) => unreachable!("laminar pre-checked: {e}"),
        }
    } else {
        solve_general(inst).map(AutoResult::General)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atsched_core::instance::Job;

    fn inst(g: i64, jobs: Vec<(i64, i64, i64)>) -> Instance {
        Instance::new(g, jobs.into_iter().map(|(r, d, p)| Job::new(r, d, p)).collect()).unwrap()
    }

    #[test]
    fn general_handles_crossing_windows() {
        // Crossing windows: [0,5) and [3,8) — rejected by the nested
        // solver, handled here.
        let i = inst(2, vec![(0, 5, 2), (3, 8, 2), (4, 6, 1)]);
        assert!(i.check_laminar().is_err());
        let r = solve_general(&i).unwrap();
        r.schedule.verify(&i).unwrap();
        assert!(r.certified_ratio <= 3.0 + 1e-9);
        assert!(r.lower_bound <= r.schedule.active_time() as f64 + 1e-6);
    }

    #[test]
    fn general_infeasible_is_none() {
        let i = inst(1, vec![(0, 2, 1); 3]);
        assert!(solve_general(&i).is_none());
    }

    #[test]
    fn auto_dispatches_to_nested_for_laminar() {
        let i = inst(2, vec![(0, 6, 2), (1, 4, 1)]);
        match solve_auto(&i).unwrap() {
            AutoResult::Nested(r) => r.schedule.verify(&i).unwrap(),
            AutoResult::General(_) => panic!("laminar instance went to the general path"),
        }
    }

    #[test]
    fn auto_dispatches_to_general_for_crossing() {
        let i = inst(2, vec![(0, 5, 2), (3, 8, 2)]);
        match solve_auto(&i).unwrap() {
            AutoResult::General(r) => r.schedule.verify(&i).unwrap(),
            AutoResult::Nested(_) => panic!("crossing instance went to the nested path"),
        }
    }

    #[test]
    fn auto_infeasible() {
        assert!(solve_auto(&inst(1, vec![(0, 2, 1); 3])).is_none());
        let crossing_infeasible = inst(1, vec![(0, 2, 2), (1, 3, 2)]);
        assert!(crossing_infeasible.check_laminar().is_err());
        assert!(solve_auto(&crossing_infeasible).is_none());
    }

    #[test]
    fn seeded_variant_defaults_to_original_behavior() {
        let i = inst(2, vec![(0, 5, 2), (3, 8, 2), (4, 6, 1)]);
        let default = solve_general(&i).unwrap();
        let explicit = solve_general_seeded(&i, DEFAULT_SHUFFLE_SEED).unwrap();
        assert_eq!(default.schedule, explicit.schedule);
        assert_eq!(default.winner, explicit.winner);
        // Other seeds still produce verified schedules within the factor.
        for seed in [0u64, 1, 42, u64::MAX] {
            let r = solve_general_seeded(&i, seed).unwrap();
            r.schedule.verify(&i).unwrap();
            assert!(r.certified_ratio <= 3.0 + 1e-9, "seed {seed}");
        }
    }

    #[test]
    fn general_matches_nested_value_reasonably_on_laminar() {
        // The greedy toolbox also runs on laminar inputs; it must stay
        // within its factor of the nested result.
        let i = inst(3, vec![(0, 12, 3), (2, 6, 2), (7, 11, 2)]);
        let nested = solve_nested(&i, &SolverOptions::exact()).unwrap();
        let general = solve_general(&i).unwrap();
        assert!(general.schedule.active_time() <= 3 * nested.stats.active_slots);
    }
}
