//! The unified public solving API: the [`Solve`] builder.
//!
//! One entry point for every solving path in the workspace:
//!
//! ```
//! use nested_active_time::{Solve, Method};
//! use nested_active_time::core::instance::{Instance, Job};
//!
//! let inst = Instance::new(2, vec![Job::new(0, 4, 2), Job::new(1, 3, 1)]).unwrap();
//!
//! // Auto-dispatch (laminar → nested 9/5, crossing → certified greedy):
//! let outcome = Solve::new(&inst).run().unwrap();
//! assert!(outcome.schedule().verify(&inst).is_ok());
//!
//! // Explicit configuration, builder-style:
//! let outcome = Solve::new(&inst)
//!     .method(Method::Nested)
//!     .exact()
//!     .polished()
//!     .timeout(std::time::Duration::from_secs(30))
//!     .run()
//!     .unwrap();
//! assert!(outcome.stats().is_some());
//! ```
//!
//! Failures — invalid instances, infeasibility, LP breakdown, timeouts,
//! contained panics — all surface as the unified [`Error`].

use crate::error::Error;
use crate::general::{solve_general_seeded, GeneralResult, DEFAULT_SHUFFLE_SEED};
use atsched_baselines::greedy::ScanOrder;
use atsched_baselines::incremental::minimal_feasible_fast;
use atsched_core::instance::Instance;
use atsched_core::schedule::Schedule;
use atsched_core::solver::{
    LpBackend, LpPath, PrecisionMode, ShardMode, SolveResult, SolveStats, SolverOptions,
};
use atsched_engine::{isolated, solve_nested_sharded, with_budget};
use std::time::Duration;

/// Which solving path [`Solve`] takes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Method {
    /// Dispatch on laminarity: nested 9/5 when windows nest, certified
    /// greedy otherwise (the default).
    #[default]
    Auto,
    /// The paper's 9/5-approximation; errors on non-laminar windows.
    Nested,
    /// The certified greedy toolbox for arbitrary windows.
    General,
    /// Single greedy deactivation scan (fastest, factor 3 by CKM'17).
    Greedy,
}

impl Method {
    /// Short stable label (`auto` / `nested` / `general` / `greedy`),
    /// the inverse of [`Method::from_str`].
    pub fn label(&self) -> &'static str {
        match self {
            Method::Auto => "auto",
            Method::Nested => "nested",
            Method::General => "general",
            Method::Greedy => "greedy",
        }
    }
}

impl std::str::FromStr for Method {
    type Err = String;

    /// Parse the labels used by the CLI and the serve wire protocol.
    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "auto" => Ok(Method::Auto),
            "nested" => Ok(Method::Nested),
            "general" => Ok(Method::General),
            "greedy" => Ok(Method::Greedy),
            other => Err(format!("unknown method '{other}' (expected auto|nested|general|greedy)")),
        }
    }
}

/// How a [`SolveOutcome`] was produced, with path-specific detail.
#[non_exhaustive]
#[derive(Debug, Clone)]
pub enum SolvePath {
    /// The nested 9/5-approximation ran (laminar windows).
    Nested(Box<SolveResult>),
    /// The certified greedy toolbox ran.
    General(Box<GeneralResult>),
    /// A single greedy deactivation scan ran.
    Greedy {
        /// The verified schedule.
        schedule: Schedule,
        /// The scan order used.
        order: &'static str,
    },
}

/// Result of [`Solve::run`]: a verified schedule plus which path
/// produced it.
#[derive(Debug, Clone)]
pub struct SolveOutcome {
    /// The path taken and its details.
    pub path: SolvePath,
}

impl SolveOutcome {
    /// The verified schedule, whichever path produced it.
    pub fn schedule(&self) -> &Schedule {
        match &self.path {
            SolvePath::Nested(r) => &r.schedule,
            SolvePath::General(r) => &r.schedule,
            SolvePath::Greedy { schedule, .. } => schedule,
        }
    }

    /// Active slots of the result.
    pub fn active_time(&self) -> usize {
        self.schedule().active_time()
    }

    /// Pipeline statistics (nested path only).
    pub fn stats(&self) -> Option<&SolveStats> {
        match &self.path {
            SolvePath::Nested(r) => Some(&r.stats),
            _ => None,
        }
    }

    /// Per-instance certified approximation ratio, when one is
    /// available: `opened / LP` for the nested path (≤ 9/5), `active /
    /// natural-LP` for the general path (≤ 3).
    pub fn certified_ratio(&self) -> Option<f64> {
        match &self.path {
            SolvePath::Nested(r) => Some(r.stats.opened_over_lp),
            SolvePath::General(r) => Some(r.certified_ratio),
            SolvePath::Greedy { .. } => None,
        }
    }

    /// Short stable label of the path taken.
    pub fn method_label(&self) -> &'static str {
        match &self.path {
            SolvePath::Nested(_) => "nested",
            SolvePath::General(_) => "general",
            SolvePath::Greedy { .. } => "greedy",
        }
    }
}

/// Builder for a single solve; see the [module docs](self).
#[derive(Debug, Clone)]
pub struct Solve<'a> {
    inst: &'a Instance,
    method: Method,
    opts: SolverOptions,
    seed: u64,
    timeout: Option<Duration>,
}

impl<'a> Solve<'a> {
    /// Start configuring a solve of `inst` (defaults: [`Method::Auto`],
    /// exact backend, no polish, no timeout).
    pub fn new(inst: &'a Instance) -> Self {
        Solve {
            inst,
            method: Method::Auto,
            opts: SolverOptions::exact(),
            seed: DEFAULT_SHUFFLE_SEED,
            timeout: None,
        }
    }

    /// Choose the solving path.
    pub fn method(mut self, method: Method) -> Self {
        self.method = method;
        self
    }

    /// Replace the full nested-solver configuration.
    pub fn options(mut self, opts: SolverOptions) -> Self {
        self.opts = opts;
        self
    }

    /// Exact big-rational LP backend (the default; unconditional 9/5).
    pub fn exact(mut self) -> Self {
        self.opts.backend = LpBackend::Exact;
        self
    }

    /// Fast `f64` LP backend.
    pub fn float(mut self) -> Self {
        self.opts.backend = LpBackend::Float;
        self
    }

    /// Hybrid backend: float LP, rationalized, exact rounding.
    pub fn snap(mut self) -> Self {
        self.opts.backend = LpBackend::FloatThenSnap;
        self
    }

    /// Arithmetic discipline for the exact backend's LP stage (default
    /// [`PrecisionMode::Hybrid`] — f64-first, exactly verified,
    /// bit-identical to [`PrecisionMode::Exact`]).
    pub fn precision(mut self, mode: PrecisionMode) -> Self {
        self.opts.precision = mode;
        self
    }

    /// LP solver path for the exact backend (default [`LpPath::Auto`] —
    /// combinatorial tree path first, simplex fallback; bit-identical
    /// either way).
    pub fn lp_path(mut self, path: LpPath) -> Self {
        self.opts.lp_path = path;
        self
    }

    /// Enable the slot-closing post-optimization.
    pub fn polished(mut self) -> Self {
        self.opts.polish = true;
        self
    }

    /// Seed for the general path's shuffled scan candidate.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Root-decomposition policy for the nested path: multi-root
    /// instances split at the laminar forest roots and solve their
    /// trees concurrently ([`ShardMode::Auto`] by default).
    pub fn shard(mut self, mode: ShardMode) -> Self {
        self.opts.shard = mode;
        self
    }

    /// Wall-clock budget; [`Error::TimedOut`] on overrun.
    pub fn timeout(mut self, budget: Duration) -> Self {
        self.timeout = Some(budget);
        self
    }

    /// Execute the configured solve.
    ///
    /// Panics inside the solver are contained and reported as
    /// [`Error::Panicked`]; with a [`timeout`](Solve::timeout), overruns
    /// report [`Error::TimedOut`] (the abandoned computation finishes in
    /// the background and is discarded).
    pub fn run(self) -> Result<SolveOutcome, Error> {
        let Solve { inst, method, opts, seed, timeout } = self;
        match timeout {
            None => isolated(|| run_inner(inst, method, &opts, seed))?,
            Some(budget) => {
                let inst = inst.clone();
                with_budget(move || run_inner(&inst, method, &opts, seed), budget)?
            }
        }
    }
}

fn run_inner(
    inst: &Instance,
    method: Method,
    opts: &SolverOptions,
    seed: u64,
) -> Result<SolveOutcome, Error> {
    let method = match method {
        Method::Auto => {
            if inst.check_laminar().is_ok() {
                Method::Nested
            } else {
                Method::General
            }
        }
        other => other,
    };
    let path = match method {
        Method::Auto => unreachable!("auto resolved above"),
        Method::Nested => SolvePath::Nested(Box::new(solve_nested_sharded(inst, opts)?)),
        Method::General => {
            SolvePath::General(Box::new(solve_general_seeded(inst, seed).ok_or(Error::Infeasible)?))
        }
        Method::Greedy => {
            // The strongest directional variant (KK'18-style right-to-left).
            let r = minimal_feasible_fast(inst, ScanOrder::RightToLeft).ok_or(Error::Infeasible)?;
            SolvePath::Greedy { schedule: r.schedule, order: "right-to-left" }
        }
    };
    debug_assert!(path_schedule(&path).verify(inst).is_ok());
    Ok(SolveOutcome { path })
}

fn path_schedule(path: &SolvePath) -> &Schedule {
    match path {
        SolvePath::Nested(r) => &r.schedule,
        SolvePath::General(r) => &r.schedule,
        SolvePath::Greedy { schedule, .. } => schedule,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atsched_core::instance::{InstanceError, Job};

    fn inst(g: i64, jobs: Vec<(i64, i64, i64)>) -> Instance {
        Instance::new(g, jobs.into_iter().map(|(r, d, p)| Job::new(r, d, p)).collect()).unwrap()
    }

    #[test]
    fn auto_picks_nested_for_laminar_and_general_for_crossing() {
        let laminar = inst(2, vec![(0, 6, 2), (1, 4, 1)]);
        let out = Solve::new(&laminar).run().unwrap();
        assert_eq!(out.method_label(), "nested");
        out.schedule().verify(&laminar).unwrap();
        assert!(out.certified_ratio().unwrap() <= 1.8 + 1e-9);

        let crossing = inst(2, vec![(0, 5, 2), (3, 8, 2)]);
        let out = Solve::new(&crossing).run().unwrap();
        assert_eq!(out.method_label(), "general");
        out.schedule().verify(&crossing).unwrap();
        assert!(out.certified_ratio().unwrap() <= 3.0 + 1e-9);
    }

    #[test]
    fn builder_options_reach_the_solver() {
        let i = inst(2, vec![(0, 12, 3), (1, 6, 2), (2, 5, 1), (7, 11, 2)]);
        let plain = Solve::new(&i).method(Method::Nested).run().unwrap();
        let polished = Solve::new(&i).method(Method::Nested).polished().run().unwrap();
        assert!(polished.active_time() <= plain.active_time());
        assert!(polished.stats().unwrap().polish_closed >= 0);

        let float = Solve::new(&i).method(Method::Nested).float().run().unwrap();
        float.schedule().verify(&i).unwrap();
        let snap = Solve::new(&i).method(Method::Nested).snap().run().unwrap();
        snap.schedule().verify(&i).unwrap();
    }

    #[test]
    fn errors_are_unified() {
        let infeasible = inst(1, vec![(0, 2, 1); 3]);
        assert!(matches!(Solve::new(&infeasible).run(), Err(Error::Infeasible)));
        assert!(matches!(
            Solve::new(&infeasible).method(Method::Greedy).run(),
            Err(Error::Infeasible)
        ));

        let crossing = inst(2, vec![(0, 5, 2), (3, 8, 2)]);
        assert!(matches!(
            Solve::new(&crossing).method(Method::Nested).run(),
            Err(Error::Instance(InstanceError::NotLaminar(_, _)))
        ));
    }

    #[test]
    fn greedy_path_produces_verified_schedule() {
        let i = inst(2, vec![(0, 8, 2), (1, 4, 1), (5, 7, 1)]);
        let out = Solve::new(&i).method(Method::Greedy).run().unwrap();
        assert_eq!(out.method_label(), "greedy");
        out.schedule().verify(&i).unwrap();
        assert!(out.stats().is_none());
        assert!(out.certified_ratio().is_none());
    }

    #[test]
    fn generous_timeout_still_solves() {
        let i = inst(2, vec![(0, 6, 2), (1, 4, 1)]);
        let out = Solve::new(&i).timeout(Duration::from_secs(60)).run().unwrap();
        out.schedule().verify(&i).unwrap();
    }

    #[test]
    fn shard_modes_agree_on_a_multi_root_instance() {
        // Three independent trees, far enough apart to be separate roots.
        let mut jobs = Vec::new();
        for k in 0..3i64 {
            let base = 10 * k;
            jobs.push((base, base + 8, 2));
            jobs.push((base + 1, base + 4, 1));
        }
        let i = inst(2, jobs);
        let off = Solve::new(&i).method(Method::Nested).shard(ShardMode::Off).run().unwrap();
        let forced = Solve::new(&i).method(Method::Nested).shard(ShardMode::Force).run().unwrap();
        assert_eq!(off.active_time(), forced.active_time());
        assert_eq!(
            off.stats().unwrap().opened_slots,
            forced.stats().unwrap().opened_slots,
            "decomposition must not change the objective"
        );
        forced.schedule().verify(&i).unwrap();
    }

    #[test]
    fn precision_modes_agree_through_the_facade() {
        let i = inst(2, vec![(0, 12, 3), (1, 6, 2), (2, 5, 1), (7, 11, 2)]);
        let hybrid = Solve::new(&i).method(Method::Nested).run().unwrap();
        let pure =
            Solve::new(&i).method(Method::Nested).precision(PrecisionMode::Exact).run().unwrap();
        assert_eq!(hybrid.schedule().slots, pure.schedule().slots);
        assert_eq!(hybrid.schedule().assignment, pure.schedule().assignment);
        assert_eq!(
            hybrid.stats().unwrap().lp_objective_exact,
            pure.stats().unwrap().lp_objective_exact
        );
        let fast = Solve::new(&i)
            .method(Method::Nested)
            .precision(PrecisionMode::F64Unchecked)
            .run()
            .unwrap();
        fast.schedule().verify(&i).unwrap();
    }

    #[test]
    fn lp_paths_agree_through_the_facade() {
        // Tree-friendly (rigid + ceiling-pinned) and tree-declining
        // instances both must match the pure simplex path bit-for-bit.
        for jobs in [
            vec![(0, 2, 1), (0, 2, 1), (0, 2, 1)],
            vec![(0, 12, 3), (1, 6, 2), (2, 5, 1), (7, 11, 2)],
        ] {
            let i = inst(2, jobs);
            let auto = Solve::new(&i).method(Method::Nested).run().unwrap();
            let simplex =
                Solve::new(&i).method(Method::Nested).lp_path(LpPath::Simplex).run().unwrap();
            assert_eq!(auto.schedule().slots, simplex.schedule().slots);
            assert_eq!(auto.schedule().assignment, simplex.schedule().assignment);
            assert_eq!(
                auto.stats().unwrap().lp_objective_exact,
                simplex.stats().unwrap().lp_objective_exact
            );
        }
        // Forcing the tree path on a shape it cannot certify surfaces
        // the typed decline instead of silently falling back.
        let wide = inst(2, vec![(0, 10, 2), (1, 6, 2), (2, 5, 1), (7, 9, 1)]);
        match Solve::new(&wide).method(Method::Nested).lp_path(LpPath::Tree).run() {
            Err(Error::TreeDeclined(_)) => {}
            other => panic!("expected TreeDeclined, got {other:?}"),
        }
    }

    #[test]
    fn method_labels_round_trip() {
        for m in [Method::Auto, Method::Nested, Method::General, Method::Greedy] {
            assert_eq!(m.label().parse::<Method>().unwrap(), m);
        }
        assert!("fancy".parse::<Method>().is_err());
    }

    #[test]
    fn seed_varies_only_the_shuffled_candidate() {
        let crossing = inst(2, vec![(0, 5, 2), (3, 8, 2), (4, 6, 1)]);
        for seed in [0u64, 7, 0x5EED] {
            let out = Solve::new(&crossing).seed(seed).run().unwrap();
            out.schedule().verify(&crossing).unwrap();
        }
    }
}
