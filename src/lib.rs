//! # nested-active-time
//!
//! Facade crate re-exporting the whole workspace: a production-quality
//! reproduction of *"Brief Announcement: Nested Active-Time Scheduling"*
//! (Cao, Fineman, Li, Mestre, Russell, Umboh — SPAA 2022).
//!
//! See the [README](https://example.org/nested-active-time) and
//! `DESIGN.md` for the architecture, and `examples/` for runnable entry
//! points.

#![forbid(unsafe_code)]

pub mod general;

pub use atsched_baselines as baselines;
pub use atsched_core as core;
pub use atsched_flow as flow;
pub use atsched_gaps as gaps;
pub use atsched_lp as lp;
pub use atsched_multi as multi;
pub use atsched_npc as npc;
pub use atsched_num as num;
pub use atsched_workloads as workloads;
