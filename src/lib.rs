//! # nested-active-time
//!
//! Facade crate re-exporting the whole workspace: a production-quality
//! reproduction of *"Brief Announcement: Nested Active-Time Scheduling"*
//! (Cao, Fineman, Li, Mestre, Russell, Umboh — SPAA 2022).
//!
//! See the [README](https://example.org/nested-active-time) and
//! `DESIGN.md` for the architecture, and `examples/` for runnable entry
//! points.

#![forbid(unsafe_code)]

pub mod error;
pub mod general;
pub mod solve;

pub use atsched_baselines as baselines;
pub use atsched_core as core;
pub use atsched_engine as engine;
pub use atsched_flow as flow;
pub use atsched_gaps as gaps;
pub use atsched_lp as lp;
pub use atsched_multi as multi;
pub use atsched_npc as npc;
pub use atsched_num as num;
pub use atsched_obs as obs;
pub use atsched_workloads as workloads;

pub use error::Error;
pub use solve::{Method, Solve, SolveOutcome, SolvePath};

/// The one-stop import for typical users of this crate.
///
/// ```
/// use nested_active_time::prelude::*;
///
/// let inst = Instance::new(2, vec![Job::new(0, 4, 2), Job::new(1, 3, 1)]).unwrap();
/// let outcome = Solve::new(&inst).run().unwrap();
/// assert!(outcome.schedule().verify(&inst).is_ok());
/// ```
pub mod prelude {
    pub use crate::error::Error;
    pub use crate::general::{
        solve_auto, solve_general, solve_general_seeded, AutoResult, GeneralResult,
    };
    pub use crate::solve::{Method, Solve, SolveOutcome, SolvePath};
    pub use atsched_core::instance::{Instance, Job};
    pub use atsched_core::schedule::Schedule;
    pub use atsched_core::solver::{
        solve_nested, LpBackend, ShardMode, SolveResult, SolveStats, SolverOptions, StageTimings,
    };
    pub use atsched_engine::{BatchReport, Engine, EngineConfig, Outcome};
}
