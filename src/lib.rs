//! # nested-active-time
//!
//! Facade crate re-exporting the whole workspace: a production-quality
//! reproduction of *"Brief Announcement: Nested Active-Time Scheduling"*
//! (Cao, Fineman, Li, Mestre, Russell, Umboh — SPAA 2022).
//!
//! See the [README](https://example.org/nested-active-time) and
//! `DESIGN.md` for the architecture, and `examples/` for runnable entry
//! points.
//!
//! ## Which entry point?
//!
//! The workspace exposes exactly two solving surfaces; everything else
//! is plumbing they share.
//!
//! - **[`Solve`] — the one-shot facade.** Build it around an instance,
//!   pick a method/backend/deadline, call [`Solve::run`]. It
//!   auto-dispatches nested vs. general windows and needs no held
//!   state. Use this for a single instance in hand.
//! - **[`Engine`](engine::Engine) — the service-grade surface.** One
//!   engine holds the content-keyed solve cache, the worker pool, the
//!   metric registry, and the session table. Use
//!   [`solve_one`](engine::Engine::solve_one) /
//!   [`solve_batch`](engine::Engine::solve_batch) for streams of
//!   instances, and [`open_session`](engine::Engine::open_session) /
//!   [`Session::amend`](engine::Session::amend) when one instance
//!   evolves over time and re-solves should reuse the unchanged parts
//!   (see `DESIGN.md` §12 for the delta contract).
//!
//! Root decomposition is not a separate entry point: both surfaces
//! shard multi-root instances internally, steered by
//! [`SolverOptions::shard`](core::solver::SolverOptions). The older
//! free function `engine::solve_nested_sharded` remains for
//! compatibility but is hidden from the docs — prefer an `Engine`, or
//! `Solve` for one-shots.

#![forbid(unsafe_code)]

pub mod error;
pub mod general;
pub mod solve;

pub use atsched_baselines as baselines;
pub use atsched_core as core;
pub use atsched_engine as engine;
pub use atsched_flow as flow;
pub use atsched_gaps as gaps;
pub use atsched_lp as lp;
pub use atsched_multi as multi;
pub use atsched_npc as npc;
pub use atsched_num as num;
pub use atsched_obs as obs;
pub use atsched_workloads as workloads;

pub use error::Error;
pub use solve::{Method, Solve, SolveOutcome, SolvePath};

/// The one-stop import for typical users of this crate.
///
/// ```
/// use nested_active_time::prelude::*;
///
/// let inst = Instance::new(2, vec![Job::new(0, 4, 2), Job::new(1, 3, 1)]).unwrap();
/// let outcome = Solve::new(&inst).run().unwrap();
/// assert!(outcome.schedule().verify(&inst).is_ok());
/// ```
///
/// Incremental solving rides along: open a session, amend with typed
/// deltas, every re-solve is bit-identical to a cold solve of the
/// amended instance.
///
/// ```
/// use nested_active_time::prelude::*;
///
/// let inst = Instance::new(2, vec![Job::new(0, 4, 2), Job::new(1, 3, 1)]).unwrap();
/// let engine = Engine::new(EngineConfig::default());
/// let session = engine.open_session(inst, &SolverOptions::exact());
/// let outcome = session.amend(&JobDelta::new().add(Job::new(1, 3, 1))).unwrap();
/// assert!(matches!(outcome, Outcome::Solved(_)));
/// ```
pub mod prelude {
    pub use crate::error::Error;
    pub use crate::general::{
        solve_auto, solve_general, solve_general_seeded, AutoResult, GeneralResult,
    };
    pub use crate::solve::{Method, Solve, SolveOutcome, SolvePath};
    pub use atsched_core::delta::{apply as apply_delta, DeltaError, JobDelta};
    pub use atsched_core::instance::{Instance, Job};
    pub use atsched_core::schedule::Schedule;
    pub use atsched_core::solver::{
        solve_nested, LpBackend, PrecisionMode, ShardMode, SolveResult, SolveStats, SolverOptions,
        StageTimings,
    };
    pub use atsched_engine::{BatchReport, Engine, EngineConfig, Outcome, Session, SessionId};
}
