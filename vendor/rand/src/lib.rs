//! Offline stand-in for `rand` 0.8.
//!
//! Implements the slice of the API this workspace uses: a deterministic
//! seedable generator ([`rngs::StdRng`]), [`SeedableRng::seed_from_u64`]
//! and [`Rng::gen_range`] over half-open and inclusive integer ranges.
//! The generator is xoshiro256** seeded through SplitMix64 — a different
//! stream than the real `StdRng` (ChaCha12), which only matters if you
//! compare numbers against runs made with the real crate.

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Deterministically seedable generators.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling interface (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Sample uniformly from a range: `lo..hi` or `lo..=hi`.
    ///
    /// Panics when the range is empty, like the real crate.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample(self)
    }

    /// Sample a bool with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }
}

impl<T: RngCore> Rng for T {}

/// A range that can be sampled uniformly (subset of
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draw one uniform sample.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Rejection-free-enough uniform draw from `[0, span)` (128-bit modulo;
/// the tiny modulo bias is irrelevant for test workloads).
fn draw_u128<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    let wide = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
    wide % span
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + draw_u128(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range on empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + draw_u128(rng, span) as i128) as $t
            }
        }
    )*};
}
impl_sample_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// Generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: xoshiro256**.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Expand the seed with SplitMix64, as recommended by the
            // xoshiro authors (avoids the all-zero state).
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = a.gen_range(-5i64..17);
            assert_eq!(x, b.gen_range(-5i64..17));
            assert!((-5..17).contains(&x));
        }
    }

    #[test]
    fn inclusive_hits_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let (mut lo_seen, mut hi_seen) = (false, false);
        for _ in 0..200 {
            match rng.gen_range(0u32..=3) {
                0 => lo_seen = true,
                3 => hi_seen = true,
                1 | 2 => {}
                _ => unreachable!(),
            }
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn full_i64_range_does_not_overflow() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            let v = rng.gen_range(1i64..i64::MAX);
            assert!(v >= 1);
        }
    }
}
