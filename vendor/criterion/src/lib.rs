//! Offline stand-in for `criterion`.
//!
//! The bench sources compile unchanged against this crate; running them
//! executes every benchmark a handful of times and prints mean
//! wall-clock timings — no statistics, warm-up, or plots. When the
//! binary is invoked by `cargo test` (bench targets default to
//! `test = true`), benchmarks are skipped entirely so test runs stay
//! fast; pass `--force` (or run `cargo bench`) to measure.

use std::fmt::{self, Display};
use std::time::{Duration, Instant};

/// Iterations per measured benchmark (the stub's entire sampling story).
const DEFAULT_ITERS: u32 = 3;

/// Benchmark identifier: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Id with a function name and a parameter.
    pub fn new<P: Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId { name: format!("{function_name}/{parameter}") }
    }

    /// Id from a parameter alone.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId { name: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { name: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { name: s }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    elapsed: Duration,
    iters: u32,
}

impl Bencher {
    /// Measure `f`, running it a fixed small number of iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    enabled: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // Bench targets default to `test = true`, so `cargo test` runs
        // these binaries; skip the actual measuring there. Cargo's test
        // runner passes no marker argument, so opt *in* to measuring:
        // `cargo bench` passes `--bench`.
        let args: Vec<String> = std::env::args().collect();
        let enabled = args.iter().any(|a| a == "--bench" || a == "--force");
        Criterion { enabled }
    }
}

impl Criterion {
    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { parent: self, name: name.to_string() }
    }

    /// Run a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(self.enabled, name, f);
        self
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// No-op in the stub (kept for API compatibility).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// No-op in the stub (kept for API compatibility).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Run a named benchmark in this group.
    pub fn bench_function<I: Into<BenchmarkId>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        f: F,
    ) -> &mut Self {
        let id = id.into();
        run_one(self.parent.enabled, &format!("{}/{}", self.name, id), f);
        self
    }

    /// Run a named benchmark with an input value.
    pub fn bench_with_input<P, F>(&mut self, id: BenchmarkId, input: &P, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &P),
    {
        run_one(self.parent.enabled, &format!("{}/{}", self.name, id), |b| f(b, input));
        self
    }

    /// Finish the group (no-op in the stub).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(enabled: bool, label: &str, mut f: F) {
    if !enabled {
        println!("bench {label}: skipped (run with --bench or --force to measure)");
        return;
    }
    let mut b = Bencher { elapsed: Duration::ZERO, iters: DEFAULT_ITERS };
    f(&mut b);
    let per_iter = b.elapsed.as_secs_f64() / DEFAULT_ITERS as f64;
    println!("bench {label}: {:.3} ms/iter ({} iters)", per_iter * 1e3, DEFAULT_ITERS);
}

/// Opaque value barrier (re-exported `std::hint::black_box`).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate a `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
