//! Strategies: how test inputs are sampled.

use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A source of random values (`proptest::strategy::Strategy` stand-in).
///
/// `try_generate` returns `None` when the sample was rejected by a
/// filter; the runner resamples (without counting the case) up to a
/// generous cap.
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value;

    /// Sample one value, or `None` on a local rejection.
    fn try_generate(&self, rng: &mut TestRng) -> Option<Self::Value>;

    /// Transform every sampled value.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Keep only values satisfying the predicate; others are rejected.
    fn prop_filter<F>(self, reason: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, reason, f }
    }

    /// Combined map + filter: `None` results are rejected.
    fn prop_filter_map<O, F>(self, reason: &'static str, f: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> Option<O>,
    {
        FilterMap { inner: self, reason, f }
    }

    /// Chain a dependent strategy off every sampled value.
    fn prop_flat_map<O, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        O: Strategy,
        F: Fn(Self::Value) -> O,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn try_generate(&self, rng: &mut TestRng) -> Option<O> {
        self.inner.try_generate(rng).map(&self.f)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    #[allow(dead_code)]
    reason: &'static str,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn try_generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        self.inner.try_generate(rng).filter(|v| (self.f)(v))
    }
}

/// See [`Strategy::prop_filter_map`].
#[derive(Debug, Clone)]
pub struct FilterMap<S, F> {
    inner: S,
    #[allow(dead_code)]
    reason: &'static str,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> Option<O>> Strategy for FilterMap<S, F> {
    type Value = O;

    fn try_generate(&self, rng: &mut TestRng) -> Option<O> {
        self.inner.try_generate(rng).and_then(&self.f)
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Strategy, F: Fn(S::Value) -> O> Strategy for FlatMap<S, F> {
    type Value = O::Value;

    fn try_generate(&self, rng: &mut TestRng) -> Option<O::Value> {
        let next = (self.f)(self.inner.try_generate(rng)?);
        next.try_generate(rng)
    }
}

/// Strategy producing one constant value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn try_generate(&self, _rng: &mut TestRng) -> Option<T> {
        Some(self.0.clone())
    }
}

// --- Integer / bool ranges and `any` ---------------------------------

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn try_generate(&self, rng: &mut TestRng) -> Option<$t> {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                Some((self.start as i128 + rng.below(span) as i128) as $t)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn try_generate(&self, rng: &mut TestRng) -> Option<$t> {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                Some((lo as i128 + rng.below(span) as i128) as $t)
            }
        }

        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_int_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// Types with a canonical full-range strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Sample an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> u128 {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Arbitrary for i128 {
    fn arbitrary(rng: &mut TestRng) -> i128 {
        u128::arbitrary(rng) as i128
    }
}

/// Strategy for [`Arbitrary`] types; see [`any`].
#[derive(Debug, Clone)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn try_generate(&self, rng: &mut TestRng) -> Option<T> {
        Some(T::arbitrary(rng))
    }
}

/// The canonical strategy for `T`: uniform over the whole type.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

// --- Tuples ----------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($($($s:ident)+;)*) => {$(
        #[allow(non_snake_case)]
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn try_generate(&self, rng: &mut TestRng) -> Option<Self::Value> {
                let ($($s,)+) = self;
                Some(($($s.try_generate(rng)?,)+))
            }
        }
    )*};
}
impl_tuple_strategy! {
    A;
    A B;
    A B C;
    A B C D;
    A B C D E;
    A B C D E F;
    A B C D E F G;
    A B C D E F G H;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::deterministic("ranges");
        for _ in 0..500 {
            let a = (0i64..7).try_generate(&mut rng).unwrap();
            assert!((0..7).contains(&a));
            let b = (1u32..=3).try_generate(&mut rng).unwrap();
            assert!((1..=3).contains(&b));
        }
    }

    #[test]
    fn filter_rejects() {
        let mut rng = TestRng::deterministic("filter");
        let s = (0i64..10).prop_filter("even", |v| v % 2 == 0);
        let mut evens = 0;
        for _ in 0..100 {
            if let Some(v) = s.try_generate(&mut rng) {
                assert_eq!(v % 2, 0);
                evens += 1;
            }
        }
        assert!(evens > 0);
    }

    #[test]
    fn tuples_and_map() {
        let mut rng = TestRng::deterministic("tuple");
        let s = (0i64..5, 0i64..5).prop_map(|(a, b)| a + b);
        for _ in 0..100 {
            let v = s.try_generate(&mut rng).unwrap();
            assert!((0..9).contains(&v));
        }
    }
}
