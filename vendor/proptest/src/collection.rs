//! Collection strategies (`proptest::collection` stand-in).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// Anything that can describe a collection length: a fixed `usize` or a
/// (half-open / inclusive) range of lengths.
pub trait SizeRange {
    /// Sample a length.
    fn sample_len(&self, rng: &mut TestRng) -> usize;
}

impl SizeRange for usize {
    fn sample_len(&self, _rng: &mut TestRng) -> usize {
        *self
    }
}

impl SizeRange for Range<usize> {
    fn sample_len(&self, rng: &mut TestRng) -> usize {
        assert!(self.start < self.end, "empty length range");
        self.start + rng.below((self.end - self.start) as u128) as usize
    }
}

impl SizeRange for RangeInclusive<usize> {
    fn sample_len(&self, rng: &mut TestRng) -> usize {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty length range");
        lo + rng.below((hi - lo + 1) as u128) as usize
    }
}

/// Strategy for `Vec<S::Value>` with lengths drawn from `size`.
pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
    VecStrategy { element, size }
}

/// See [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S, R> {
    element: S,
    size: R,
}

impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
    type Value = Vec<S::Value>;

    fn try_generate(&self, rng: &mut TestRng) -> Option<Vec<S::Value>> {
        let len = self.size.sample_len(rng);
        (0..len).map(|_| self.element.try_generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths_respected() {
        let mut rng = TestRng::deterministic("vec");
        let s = vec(0i64..4, 2usize..6);
        for _ in 0..200 {
            let v = s.try_generate(&mut rng).unwrap();
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|x| (0..4).contains(x)));
        }
        let fixed = vec(0i64..4, 3usize);
        assert_eq!(fixed.try_generate(&mut rng).unwrap().len(), 3);
    }
}
