//! Offline stand-in for `proptest`.
//!
//! Implements the API surface this workspace's tests use — the
//! [`proptest!`] macro with `pattern in strategy` bindings and an inner
//! `#![proptest_config(..)]` attribute, [`Strategy`] with `prop_map` /
//! `prop_filter` / `prop_filter_map`, integer range and tuple
//! strategies, [`collection::vec`], `any::<T>()`, `Just`, and the
//! `prop_assert*` / `prop_assume` macros.
//!
//! Differences from the real crate, chosen for zero dependencies:
//!
//! * **No shrinking.** A failing case reports the exact failing inputs
//!   (which are deterministic per test name) but does not minimize them.
//! * The default number of cases is 64, not 256; override with
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` as usual.
//! * Sampling streams differ from the real crate, so failures found by
//!   one will not replay byte-for-byte in the other.

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub use strategy::{any, Just, Strategy};
pub use test_runner::{ProptestConfig, TestCaseError, TestRng};

/// Everything a test module needs (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Define property tests: each `fn name(pat in strategy, ...)` body runs
/// for `config.cases` sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run [$cfg] $($rest)*);
    };
    (@run [$cfg:expr]
        $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::deterministic(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                let mut accepted: u32 = 0;
                let mut rejected: u64 = 0;
                let max_rejects: u64 = (config.cases as u64) * 256 + 65536;
                while accepted < config.cases {
                    assert!(
                        rejected <= max_rejects,
                        "proptest stub: {} rejected {} inputs before reaching {} cases",
                        stringify!($name),
                        rejected,
                        config.cases,
                    );
                    let __vals = ($(
                        match $crate::strategy::Strategy::try_generate(&$strat, &mut rng) {
                            ::core::option::Option::Some(v) => v,
                            ::core::option::Option::None => {
                                rejected += 1;
                                continue;
                            }
                        },
                    )+);
                    let __input_desc = format!("{:?}", __vals);
                    let ($($pat,)+) = __vals;
                    let __result: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || {
                            $body
                            ::core::result::Result::Ok(())
                        })();
                    match __result {
                        ::core::result::Result::Ok(()) => accepted += 1,
                        ::core::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject,
                        ) => rejected += 1,
                        ::core::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(msg),
                        ) => panic!(
                            "proptest case failed: {}\n  test: {}\n  case: #{}\n  inputs: {}",
                            msg,
                            stringify!($name),
                            accepted,
                            __input_desc,
                        ),
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run [$crate::test_runner::ProptestConfig::default()] $($rest)*);
    };
}

/// Fail the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                concat!("assertion failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fail the current case unless both sides are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!(
                    "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
                    left, right
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!(
                    "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`: {}",
                    left,
                    right,
                    format!($($fmt)+)
                ),
            ));
        }
    }};
}

/// Fail the current case if both sides are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if left == right {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: `(left != right)`\n  both: `{:?}`",
                left
            )));
        }
    }};
}

/// Discard the current case (resampled, not counted) unless the
/// precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}
