//! Test-runner plumbing: configuration, case outcomes, and the
//! deterministic RNG behind every strategy.

/// Per-test configuration (`proptest::test_runner::Config` stand-in).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` accepted cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real crate defaults to 256; 64 keeps exact-arithmetic
        // test suites fast while still exercising plenty of inputs.
        ProptestConfig { cases: 64 }
    }
}

/// Why a sampled case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// Precondition failed (`prop_assume!`); resample without counting.
    Reject,
    /// Assertion failed; the test panics with this message.
    Fail(String),
}

/// Deterministic RNG driving all strategies (SplitMix64).
///
/// Seeded from the fully qualified test name so every test has a stable
/// but distinct stream; set `PROPTEST_SEED` to explore other streams.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed deterministically from a test identifier.
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the name, mixed with an optional env override.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        if let Ok(extra) = std::env::var("PROPTEST_SEED") {
            if let Ok(n) = extra.trim().parse::<u64>() {
                h ^= n.rotate_left(32);
            }
        }
        TestRng { state: h }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, span)`; `span` must be nonzero.
    pub fn below(&mut self, span: u128) -> u128 {
        debug_assert!(span > 0);
        let wide = ((self.next_u64() as u128) << 64) | self.next_u64() as u128;
        wide % span
    }
}
