//! Offline stand-in for `serde_derive`.
//!
//! The real crates.io registry is unavailable in this build environment,
//! so the workspace vendors a minimal serde implementation (see
//! `vendor/serde`). This proc-macro crate derives that implementation's
//! `Serialize` / `Deserialize` traits for the only shape the workspace
//! uses: structs with named fields. Field values round-trip through the
//! vendored serde's `Value` data model, so the generated code is tiny.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed shape of the deriving type: its name and field names in order.
struct StructShape {
    name: String,
    fields: Vec<String>,
}

/// Walk the item's token stream and extract the struct name and the
/// named fields. Attributes (including doc comments), visibility
/// modifiers and generic bounds are skipped; tuple structs, unit structs
/// and enums are rejected — the workspace only derives on named-field
/// structs.
fn parse_struct(input: TokenStream) -> Result<StructShape, String> {
    let mut iter = input.into_iter().peekable();
    let mut name: Option<String> = None;
    let mut saw_struct = false;
    let mut body: Option<TokenStream> = None;

    while let Some(tt) = iter.next() {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                // Attribute: consume the following [...] group.
                iter.next();
            }
            TokenTree::Ident(id) if id.to_string() == "struct" => saw_struct = true,
            TokenTree::Ident(id) if id.to_string() == "enum" => {
                return Err("serde_derive stub: enums are not supported".into());
            }
            TokenTree::Ident(id) if saw_struct && name.is_none() => {
                name = Some(id.to_string());
            }
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace && name.is_some() => {
                body = Some(g.stream());
            }
            _ => {}
        }
    }

    let name = name.ok_or("serde_derive stub: no struct name found")?;
    let body = body.ok_or("serde_derive stub: only structs with named fields are supported")?;

    // Fields: `attrs* vis? ident : type ,` — collect each ident that is
    // directly followed by a ':', then skip to the next top-level comma
    // (commas nested in groups are invisible; commas inside `<...>` are
    // skipped by tracking angle-bracket depth).
    let mut fields = Vec::new();
    let mut toks = body.into_iter().peekable();
    while let Some(tt) = toks.next() {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                toks.next(); // skip attribute body
            }
            TokenTree::Ident(id) => {
                let word = id.to_string();
                if word == "pub" {
                    // Skip optional `(crate)`-style restriction.
                    if let Some(TokenTree::Group(_)) = toks.peek() {
                        toks.next();
                    }
                    continue;
                }
                match toks.peek() {
                    Some(TokenTree::Punct(p)) if p.as_char() == ':' => {
                        fields.push(word);
                        toks.next(); // the ':'
                                     // Skip the type up to the next top-level ','.
                        let mut angle = 0i32;
                        for ty in toks.by_ref() {
                            match ty {
                                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => break,
                                _ => {}
                            }
                        }
                    }
                    _ => return Err(format!("serde_derive stub: unexpected token '{word}'")),
                }
            }
            _ => return Err("serde_derive stub: only named fields are supported".into()),
        }
    }

    Ok(StructShape { name, fields })
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

/// Derive the vendored serde's `Serialize` for a named-field struct.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = match parse_struct(input) {
        Ok(s) => s,
        Err(e) => return compile_error(&e),
    };
    let mut pushes = String::new();
    for f in &shape.fields {
        pushes.push_str(&format!(
            "fields.push(({f:?}.to_string(), \
             ::serde::ser::to_value(&self.{f}).map_err(::serde::ser::Error::custom)?));\n"
        ));
    }
    let name = &shape.name;
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn serialize<S: ::serde::Serializer>(&self, serializer: S)\n\
                 -> ::core::result::Result<S::Ok, S::Error> {{\n\
                 let mut fields: ::std::vec::Vec<(::std::string::String, ::serde::value::Value)> =\n\
                     ::std::vec::Vec::new();\n\
                 {pushes}\
                 serializer.serialize_value(::serde::value::Value::Map(fields))\n\
             }}\n\
         }}\n"
    )
    .parse()
    .unwrap()
}

/// Derive the vendored serde's `Deserialize` for a named-field struct.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = match parse_struct(input) {
        Ok(s) => s,
        Err(e) => return compile_error(&e),
    };
    let mut inits = String::new();
    for f in &shape.fields {
        inits.push_str(&format!(
            "{f}: {{\n\
                 let v = map.iter().find(|(k, _)| k == {f:?}).map(|(_, v)| v.clone())\n\
                     .ok_or_else(|| ::serde::de::Error::custom(\
                         concat!(\"missing field `\", {f:?}, \"`\")))?;\n\
                 ::serde::de::from_value(v).map_err(::serde::de::Error::custom)?\n\
             }},\n"
        ));
    }
    let name = &shape.name;
    format!(
        "impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
             fn deserialize<D: ::serde::Deserializer<'de>>(deserializer: D)\n\
                 -> ::core::result::Result<Self, D::Error> {{\n\
                 let value = deserializer.deserialize_value()?;\n\
                 let map = match value {{\n\
                     ::serde::value::Value::Map(m) => m,\n\
                     other => return ::core::result::Result::Err(::serde::de::Error::custom(\n\
                         format!(\"expected map for struct {name}, got {{}}\", other.kind()))),\n\
                 }};\n\
                 ::core::result::Result::Ok({name} {{\n\
                     {inits}\
                 }})\n\
             }}\n\
         }}\n"
    )
    .parse()
    .unwrap()
}
