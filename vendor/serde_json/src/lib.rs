//! Offline stand-in for `serde_json`: a strict JSON reader/writer over
//! the vendored serde's [`Value`](serde::value::Value) data model,
//! exposing the four entry points the workspace calls (`to_string`,
//! `to_string_pretty`, `from_str`, plus `to_writer` for streams).

use serde::de::Deserialize;
use serde::ser::Serialize;
use serde::value::Value;
use std::fmt;

/// JSON (de)serialization error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl serde::ser::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

impl serde::de::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

/// Result alias matching the real crate's.
pub type Result<T> = std::result::Result<T, Error>;

/// Serialize a value to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let v = serde::ser::to_value(value).map_err(|e| Error(e.to_string()))?;
    let mut out = String::new();
    write_value(&mut out, &v, None, 0);
    Ok(out)
}

/// Serialize a value to a pretty-printed (2-space indented) JSON string.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let v = serde::ser::to_value(value).map_err(|e| Error(e.to_string()))?;
    let mut out = String::new();
    write_value(&mut out, &v, Some(2), 0);
    Ok(out)
}

/// Serialize a value as JSON into an `io::Write` sink.
pub fn to_writer<W: std::io::Write, T: Serialize + ?Sized>(mut w: W, value: &T) -> Result<()> {
    let s = to_string(value)?;
    w.write_all(s.as_bytes()).map_err(|e| Error(e.to_string()))
}

/// Deserialize a value from a JSON string.
pub fn from_str<'de, T: for<'a> Deserialize<'a>>(s: &'de str) -> Result<T> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    serde::de::from_value(v).map_err(|e| Error(e.to_string()))
}

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(x) => {
            if x.is_finite() {
                // Match serde_json: floats always render with a decimal
                // point or exponent so they re-parse as floats.
                let s = format!("{x}");
                out.push_str(&s);
                if !s.contains('.') && !s.contains('e') && !s.contains('E') {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => write_compound(out, indent, depth, '[', ']', items.len(), |out, i| {
            write_value(out, &items[i], indent, depth + 1);
        }),
        Value::Map(entries) => {
            write_compound(out, indent, depth, '{', '}', entries.len(), |out, i| {
                write_string(out, &entries[i].0);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, &entries[i].1, indent, depth + 1);
            })
        }
    }
}

fn write_compound(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * (depth + 1)));
        }
        item(out, i);
    }
    if let Some(w) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(w * depth));
    }
    out.push(close);
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, msg: &str) -> Result<T> {
        Err(Error(format!("{msg} at byte {}", self.pos)))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(&format!("expected '{}'", b as char))
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') => self.parse_lit("null", Value::Null),
            Some(b't') => self.parse_lit("true", Value::Bool(true)),
            Some(b'f') => self.parse_lit("false", Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_seq(),
            Some(b'{') => self.parse_map(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => self.err("expected a JSON value"),
        }
    }

    fn parse_lit(&mut self, lit: &str, v: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            self.err(&format!("expected '{lit}'"))
        }
    }

    fn parse_seq(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return self.err("expected ',' or ']'"),
            }
        }
    }

    fn parse_map(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return self.err("expected ',' or '}'"),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error("invalid UTF-8 in string".into()))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| Error("unterminated escape".into()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'b' => s.push('\u{08}'),
                        b'f' => s.push('\u{0c}'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| Error("bad \\u escape".into()))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error("bad \\u escape".into()))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed by this
                            // workspace's data; reject them explicitly.
                            let c = char::from_u32(code)
                                .ok_or_else(|| Error("unsupported \\u escape".into()))?;
                            s.push(c);
                        }
                        _ => return self.err("unknown escape"),
                    }
                }
                _ => return self.err("unterminated string"),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>().map(Value::Float).map_err(|_| Error(format!("invalid number '{text}'")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        assert_eq!(to_string(&42i64).unwrap(), "42");
        assert_eq!(from_str::<i64>("42").unwrap(), 42);
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(from_str::<f64>("2.5e1").unwrap(), 25.0);
        assert_eq!(to_string("a\"b\n").unwrap(), r#""a\"b\n""#);
        assert_eq!(from_str::<String>(r#""a\"b\n""#).unwrap(), "a\"b\n");
    }

    #[test]
    fn roundtrip_compound() {
        let v: Vec<(String, f64)> = vec![("x".into(), 1.0), ("y".into(), 2.5)];
        let s = to_string(&v).unwrap();
        assert_eq!(s, r#"[["x",1.0],["y",2.5]]"#);
        let back: Vec<(String, f64)> = from_str(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn pretty_is_reparseable() {
        let v: Vec<Vec<i64>> = vec![vec![1, 2], vec![]];
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains('\n'));
        let back: Vec<Vec<i64>> = from_str(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<i64>("{").is_err());
        assert!(from_str::<i64>("12 34").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
    }
}
