//! Serialization half of the vendored serde stub.

use crate::value::{Value, ValueError};
use std::fmt::Display;

/// Error trait for serializers (`serde::ser::Error`).
pub trait Error: Sized + std::fmt::Debug {
    /// Build an error from a display-able message.
    fn custom<T: Display>(msg: T) -> Self;
}

/// A serializable type (`serde::Serialize`).
pub trait Serialize {
    /// Serialize `self` into the given serializer.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// A serializer (`serde::Serializer`).
///
/// Unlike the real serde's 30-method visitor interface, the stub's
/// serializers consume one fully built [`Value`]; the primitive
/// `serialize_*` methods the workspace's manual impls call are provided
/// on top of that.
pub trait Serializer: Sized {
    /// Successful output.
    type Ok;
    /// Error type.
    type Error: Error;

    /// Consume a fully built value tree.
    fn serialize_value(self, value: Value) -> Result<Self::Ok, Self::Error>;

    /// Serialize a string.
    fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error> {
        self.serialize_value(Value::Str(v.to_string()))
    }

    /// Serialize a boolean.
    fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error> {
        self.serialize_value(Value::Bool(v))
    }

    /// Serialize a signed integer.
    fn serialize_i64(self, v: i64) -> Result<Self::Ok, Self::Error> {
        self.serialize_value(Value::Int(v))
    }

    /// Serialize an unsigned integer.
    fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error> {
        self.serialize_value(if let Ok(i) = i64::try_from(v) {
            Value::Int(i)
        } else {
            Value::UInt(v)
        })
    }

    /// Serialize a float.
    fn serialize_f64(self, v: f64) -> Result<Self::Ok, Self::Error> {
        self.serialize_value(Value::Float(v))
    }

    /// Serialize a unit value.
    fn serialize_unit(self) -> Result<Self::Ok, Self::Error> {
        self.serialize_value(Value::Null)
    }
}

/// Serializer that materializes the [`Value`] tree itself.
pub struct ValueSerializer;

impl Serializer for ValueSerializer {
    type Ok = Value;
    type Error = ValueError;

    fn serialize_value(self, value: Value) -> Result<Value, ValueError> {
        Ok(value)
    }
}

/// Serialize any `Serialize` type into the in-memory data model.
pub fn to_value<T: Serialize + ?Sized>(v: &T) -> Result<Value, ValueError> {
    v.serialize(ValueSerializer)
}

// --- Serialize impls for the std types the workspace serializes -------

macro_rules! impl_ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.serialize_i64(*self as i64)
            }
        }
    )*};
}
impl_ser_int!(i8, i16, i32, i64, isize);

macro_rules! impl_ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.serialize_u64(*self as u64)
            }
        }
    )*};
}
impl_ser_uint!(u8, u16, u32, u64, usize);

impl Serialize for bool {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_bool(*self)
    }
}

impl Serialize for f32 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_f64(*self as f64)
    }
}

impl Serialize for f64 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_f64(*self)
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for () {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_unit()
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            Some(v) => {
                let inner = to_value(v).map_err(Error::custom)?;
                serializer.serialize_value(inner)
            }
            None => serializer.serialize_unit(),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let items: Result<Vec<Value>, ValueError> = self.iter().map(to_value).collect();
        serializer.serialize_value(Value::Seq(items.map_err(Error::custom)?))
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(serializer)
    }
}

macro_rules! impl_ser_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                let items = vec![$(to_value(&self.$n).map_err(Error::custom)?),+];
                serializer.serialize_value(Value::Seq(items))
            }
        }
    )*};
}
impl_ser_tuple! {
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}
