//! The self-describing data model every (de)serializer in this stub
//! routes through.

use std::fmt;

/// A serialized value: the JSON-shaped tree the vendored serde uses as
/// its data model. Maps preserve insertion order (struct field order).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null` / unit.
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer too large for `i64`.
    UInt(u64),
    /// Floating point.
    Float(f64),
    /// String.
    Str(String),
    /// Sequence (arrays, tuples).
    Seq(Vec<Value>),
    /// Key-value map (structs, maps), in insertion order.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Short human-readable kind name, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "integer",
            Value::UInt(_) => "integer",
            Value::Float(_) => "number",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// Error type used by the in-memory `Value` (de)serializers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValueError(pub String);

impl fmt::Display for ValueError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ValueError {}

impl crate::ser::Error for ValueError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        ValueError(msg.to_string())
    }
}

impl crate::de::Error for ValueError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        ValueError(msg.to_string())
    }
}
