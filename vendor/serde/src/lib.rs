//! Offline stand-in for `serde`.
//!
//! The build environment has no access to crates.io, so this crate
//! reimplements the slice of serde's API that the workspace actually
//! uses: the `Serialize` / `Deserialize` / `Serializer` / `Deserializer`
//! traits (with the same method signatures the workspace's manual impls
//! were written against), `ser::Error` / `de::Error` with `custom`, and
//! derive macros re-exported from the vendored `serde_derive`.
//!
//! Unlike the real serde, which drives serialization through a visitor
//! data model, this stub routes everything through a concrete
//! self-describing [`value::Value`] tree. That is a simplification, not
//! an observable difference, for the formats used here (JSON only).

pub mod de;
pub mod ser;
pub mod value;

pub use de::{Deserialize, Deserializer};
pub use ser::{Serialize, Serializer};
// Derive macros share the trait names, as in the real serde.
pub use serde_derive::{Deserialize, Serialize};
