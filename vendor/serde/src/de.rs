//! Deserialization half of the vendored serde stub.

use crate::value::{Value, ValueError};
use std::fmt::Display;

/// Error trait for deserializers (`serde::de::Error`).
pub trait Error: Sized + std::fmt::Debug {
    /// Build an error from a display-able message.
    fn custom<T: Display>(msg: T) -> Self;
}

/// A deserializable type (`serde::Deserialize`).
pub trait Deserialize<'de>: Sized {
    /// Deserialize `Self` from the given deserializer.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// A deserializer (`serde::Deserializer`): hands out one parsed
/// [`Value`] tree.
pub trait Deserializer<'de>: Sized {
    /// Error type.
    type Error: Error;

    /// Produce the value tree to deserialize from.
    fn deserialize_value(self) -> Result<Value, Self::Error>;
}

/// Deserializer over an in-memory [`Value`].
pub struct ValueDeserializer(pub Value);

impl<'de> Deserializer<'de> for ValueDeserializer {
    type Error = ValueError;

    fn deserialize_value(self) -> Result<Value, ValueError> {
        Ok(self.0)
    }
}

/// Deserialize any `Deserialize` type from the in-memory data model.
pub fn from_value<T: for<'de> Deserialize<'de>>(v: Value) -> Result<T, ValueError> {
    T::deserialize(ValueDeserializer(v))
}

fn type_err<T>(expected: &str, got: &Value) -> Result<T, ValueError> {
    Err(ValueError(format!("expected {expected}, got {}", got.kind())))
}

// --- Deserialize impls for the std types the workspace parses ---------

macro_rules! impl_de_int {
    ($($t:ty),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                let v = deserializer.deserialize_value()?;
                let n: i128 = match v {
                    Value::Int(i) => i as i128,
                    Value::UInt(u) => u as i128,
                    other => return type_err("integer", &other).map_err(Error::custom),
                };
                <$t>::try_from(n)
                    .map_err(|_| Error::custom(format!("integer {n} out of range")))
            }
        }
    )*};
}
impl_de_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_value()? {
            Value::Bool(b) => Ok(b),
            other => type_err("bool", &other).map_err(Error::custom),
        }
    }
}

impl<'de> Deserialize<'de> for f64 {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_value()? {
            Value::Float(x) => Ok(x),
            Value::Int(i) => Ok(i as f64),
            Value::UInt(u) => Ok(u as f64),
            other => type_err("number", &other).map_err(Error::custom),
        }
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        f64::deserialize(deserializer).map(|x| x as f32)
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_value()? {
            Value::Str(s) => Ok(s),
            other => type_err("string", &other).map_err(Error::custom),
        }
    }
}

impl<'de> Deserialize<'de> for () {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_value()? {
            Value::Null => Ok(()),
            other => type_err("null", &other).map_err(Error::custom),
        }
    }
}

impl<'de, T: for<'a> Deserialize<'a>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_value()? {
            Value::Null => Ok(None),
            v => from_value(v).map(Some).map_err(Error::custom),
        }
    }
}

impl<'de, T: for<'a> Deserialize<'a>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_value()? {
            Value::Seq(items) => {
                items.into_iter().map(|v| from_value(v).map_err(Error::custom)).collect()
            }
            other => type_err("sequence", &other).map_err(Error::custom),
        }
    }
}

impl<'de, T: for<'a> Deserialize<'a>> Deserialize<'de> for Box<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        T::deserialize(deserializer).map(Box::new)
    }
}

macro_rules! impl_de_tuple {
    ($(($len:expr; $($n:tt $t:ident),+))*) => {$(
        impl<'de, $($t: for<'a> Deserialize<'a>),+> Deserialize<'de> for ($($t,)+) {
            fn deserialize<De: Deserializer<'de>>(deserializer: De) -> Result<Self, De::Error> {
                match deserializer.deserialize_value()? {
                    Value::Seq(items) if items.len() == $len => {
                        let mut it = items.into_iter();
                        Ok(($({
                            let _ = $n; // positional; consume in order
                            from_value(it.next().expect("length checked"))
                                .map_err(Error::custom)?
                        },)+))
                    }
                    other => type_err(concat!("sequence of length ", $len), &other)
                        .map_err(Error::custom),
                }
            }
        }
    )*};
}
impl_de_tuple! {
    (2; 0 A, 1 B)
    (3; 0 A, 1 B, 2 C)
    (4; 0 A, 1 B, 2 C, 3 D)
}
