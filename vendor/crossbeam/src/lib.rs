//! Offline stand-in for `crossbeam`.
//!
//! Provides the multi-producer multi-consumer channel API this workspace
//! uses (`channel::{unbounded, bounded}` with cloneable `Sender` /
//! `Receiver`, blocking `send` / `recv`, `recv_timeout` and iteration).
//! The implementation is a `Mutex<VecDeque>` + two `Condvar`s — far less
//! scalable than real crossbeam's lock-free queues, but identical in
//! semantics (including disconnect behavior) for the fan-out sizes used
//! here.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
        /// `None` = unbounded.
        cap: Option<usize>,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        not_empty: Condvar,
        not_full: Condvar,
    }

    /// Sending half of a channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving half of a channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone;
    /// carries the unsent message.
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        // Like real crossbeam: no `T: Debug` bound, message elided.
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    impl<T> std::error::Error for SendError<T> {}

    /// Error returned by [`Receiver::recv`] when the channel is empty
    /// and all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived before the deadline.
        Timeout,
        /// Channel is empty and all senders are gone.
        Disconnected,
    }

    impl fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                RecvTimeoutError::Timeout => write!(f, "timed out waiting on channel"),
                RecvTimeoutError::Disconnected => {
                    write!(f, "channel is empty and disconnected")
                }
            }
        }
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel is currently empty.
        Empty,
        /// Channel is empty and all senders are gone.
        Disconnected,
    }

    /// Create an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_cap(None)
    }

    /// Create a bounded MPMC channel; `send` blocks while full.
    ///
    /// Unlike real crossbeam, `bounded(0)` is not a rendezvous channel —
    /// it behaves as capacity 1. No caller in this workspace uses 0.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_cap(Some(cap.max(1)))
    }

    fn with_cap<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State { queue: VecDeque::new(), senders: 1, receivers: 1, cap }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (Sender { shared: shared.clone() }, Receiver { shared })
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.state.lock().unwrap().senders += 1;
            Sender { shared: self.shared.clone() }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.shared.state.lock().unwrap();
            st.senders -= 1;
            if st.senders == 0 {
                // Wake blocked receivers so they observe disconnect.
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.state.lock().unwrap().receivers += 1;
            Receiver { shared: self.shared.clone() }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self.shared.state.lock().unwrap();
            st.receivers -= 1;
            if st.receivers == 0 {
                // Wake blocked senders so they observe disconnect.
                self.shared.not_full.notify_all();
            }
        }
    }

    impl<T> Sender<T> {
        /// Send a message, blocking while a bounded channel is full.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut st = self.shared.state.lock().unwrap();
            loop {
                if st.receivers == 0 {
                    return Err(SendError(msg));
                }
                match st.cap {
                    Some(cap) if st.queue.len() >= cap => {
                        st = self.shared.not_full.wait(st).unwrap();
                    }
                    _ => break,
                }
            }
            st.queue.push_back(msg);
            self.shared.not_empty.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Receive a message, blocking while the channel is empty.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.shared.state.lock().unwrap();
            loop {
                if let Some(msg) = st.queue.pop_front() {
                    self.shared.not_full.notify_one();
                    return Ok(msg);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.shared.not_empty.wait(st).unwrap();
            }
        }

        /// Receive with a deadline.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut st = self.shared.state.lock().unwrap();
            loop {
                if let Some(msg) = st.queue.pop_front() {
                    self.shared.not_full.notify_one();
                    return Ok(msg);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, res) = self.shared.not_empty.wait_timeout(st, deadline - now).unwrap();
                st = guard;
                if res.timed_out() && st.queue.is_empty() {
                    if st.senders == 0 {
                        return Err(RecvTimeoutError::Disconnected);
                    }
                    return Err(RecvTimeoutError::Timeout);
                }
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.shared.state.lock().unwrap();
            if let Some(msg) = st.queue.pop_front() {
                self.shared.not_full.notify_one();
                return Ok(msg);
            }
            if st.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Blocking iterator draining the channel until disconnect.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }
    }

    /// Iterator over received messages (see [`Receiver::iter`]).
    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;

        fn into_iter(self) -> Iter<'a, T> {
            self.iter()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::thread;

        #[test]
        fn mpmc_roundtrip() {
            let (tx, rx) = unbounded::<u64>();
            let mut handles = Vec::new();
            for k in 0..4u64 {
                let tx = tx.clone();
                handles.push(thread::spawn(move || {
                    for i in 0..100 {
                        tx.send(k * 1000 + i).unwrap();
                    }
                }));
            }
            drop(tx);
            let mut got: Vec<u64> = rx.iter().collect();
            for h in handles {
                h.join().unwrap();
            }
            got.sort_unstable();
            assert_eq!(got.len(), 400);
        }

        #[test]
        fn bounded_blocks_and_drains() {
            let (tx, rx) = bounded::<u32>(2);
            let producer = thread::spawn(move || {
                for i in 0..50 {
                    tx.send(i).unwrap();
                }
            });
            let got: Vec<u32> = rx.iter().collect();
            producer.join().unwrap();
            assert_eq!(got, (0..50).collect::<Vec<_>>());
        }

        #[test]
        fn disconnect_semantics() {
            let (tx, rx) = unbounded::<u8>();
            drop(rx);
            assert!(tx.send(1).is_err());

            let (tx, rx) = unbounded::<u8>();
            tx.send(7).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(7));
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn recv_timeout_times_out() {
            let (_tx, rx) = unbounded::<u8>();
            let err = rx.recv_timeout(Duration::from_millis(10)).unwrap_err();
            assert_eq!(err, RecvTimeoutError::Timeout);
        }
    }
}
