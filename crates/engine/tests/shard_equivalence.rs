//! Shard-merge equivalence: on random multi-root forests, the
//! decomposed parallel solve must be indistinguishable (in objective
//! value and certificates) from the whole-instance sequential solve.
//!
//! This is the empirical check of the decomposition contract in
//! `DESIGN.md` §11: the strengthened LP is block-diagonal across the
//! forest roots, so splitting at the roots is exact — not merely
//! approximation-preserving.

use atsched_core::certify::check_lemma_4_1;
use atsched_core::instance::{Instance, Job};
use atsched_core::solver::{solve_nested, ShardMode, SolveError, SolverOptions};
use atsched_engine::solve_nested_sharded;
use atsched_workloads::generators::{random_multi_root, LaminarConfig, MultiRootConfig};
use proptest::prelude::*;

/// Random feasible multi-root instance: 2–5 independent laminar trees.
fn multi_root() -> impl Strategy<Value = Instance> {
    (2usize..6, 2i64..4, 8i64..13, any::<u64>()).prop_map(|(roots, g, horizon, seed)| {
        let base = LaminarConfig { g, horizon, max_depth: 2, ..Default::default() };
        let cfg = MultiRootConfig { base, roots, gap: 1 }.validated().unwrap();
        random_multi_root(&cfg, seed)
    })
}

proptest! {
    #[test]
    fn sharded_solve_matches_sequential_monolith(inst in multi_root(), polish in any::<bool>()) {
        let mut off = SolverOptions::exact();
        off.polish = polish;
        off.shard = ShardMode::Off;
        let mut forced = off.clone();
        forced.shard = ShardMode::Force;

        let whole = solve_nested(&inst, &off).expect("generated instances are feasible");
        let sharded = solve_nested_sharded(&inst, &forced).expect("sharding preserves feasibility");

        // Objectives are bit-identical, not just within tolerance.
        prop_assert_eq!(sharded.stats.opened_slots, whole.stats.opened_slots);
        prop_assert_eq!(sharded.stats.active_slots, whole.stats.active_slots);
        prop_assert_eq!(
            sharded.stats.lp_objective_exact.clone(),
            whole.stats.lp_objective_exact.clone()
        );
        prop_assert_eq!(sharded.z.iter().sum::<i64>(), whole.z.iter().sum::<i64>());

        // The merged schedule verifies against the original instance...
        sharded.schedule.verify(&inst).expect("merged schedule must verify");

        // ...and the merged (forest, z) pair still satisfies the Lemma
        // 4.1 characterization (the 2^n oracle, so only on small inputs).
        if inst.num_jobs() <= 14 {
            check_lemma_4_1(&sharded.forest, &inst, &sharded.z, 14)
                .expect("merged certificate must pass the oracle");
        }
    }

    #[test]
    fn infeasibility_surfaces_identically(inst in multi_root(), overload in 2i64..5) {
        // Wreck the first root: overload a unit window beyond g.
        let mut jobs = inst.jobs.clone();
        for _ in 0..inst.g + overload {
            jobs.push(Job::new(0, 1, 1));
        }
        let broken = Instance::new(inst.g, jobs).unwrap();

        let mut forced = SolverOptions::exact();
        forced.shard = ShardMode::Force;
        prop_assert!(matches!(
            solve_nested(&broken, &SolverOptions::exact()),
            Err(SolveError::Infeasible)
        ));
        prop_assert!(matches!(
            solve_nested_sharded(&broken, &forced),
            Err(SolveError::Infeasible)
        ));
    }
}
