//! Shard-parallel solving: fan the trees of a multi-root instance out
//! to worker threads and merge the per-tree results.
//!
//! The decomposition itself lives in [`atsched_core::decompose`]; this
//! module is the driver side: the *policy* deciding when sharding
//! applies ([`plan`]), the fan-out/merge harness ([`solve_decomposed`]),
//! and a cache-less convenience entry point used by the `Solve` facade
//! and the CLI ([`solve_nested_sharded`]). The batch engine layers its
//! solve cache on top via the `solve_shard` callback, giving shard-level
//! cache keys: identical subtree shapes (normalized to start at slot 0)
//! hit regardless of where in time they occurred.
//!
//! Observability: the decomposition is timed under a `solve.decompose`
//! span, the reassembly under `solve.merge`, and each sharded solve
//! bumps the `engine.shards` counter by its shard count.

use crate::par::par_map_workers;
use atsched_core::decompose::{decompose, merge, Decomposition};
use atsched_core::instance::Instance;
use atsched_core::rounding::RoundingChoice;
use atsched_core::solver::{solve_nested, ShardMode, SolveError, SolveResult, SolverOptions};
use atsched_obs as obs;

/// Minimum job count before [`ShardMode::Auto`] decomposes. Below this
/// the per-shard LPs are already tiny and the thread fan-out costs more
/// than it saves; `force` ignores the floor.
pub const AUTO_MIN_JOBS: usize = 24;

/// Decide whether `inst` should be solved shard-parallel under `opts`;
/// returns the decomposition when it should.
///
/// Sharding applies when the shard mode allows it, the rounding rule is
/// tree-local (`Shuffled` advances one global RNG across the forest, so
/// it is never sharded — not even under `force`), the instance is
/// laminar, and it actually has ≥ 2 roots. `Auto` additionally requires
/// [`AUTO_MIN_JOBS`] jobs. Non-laminar instances return `None` so the
/// monolithic path reports the validation error.
pub fn plan(inst: &Instance, opts: &SolverOptions) -> Option<Decomposition> {
    if opts.shard == ShardMode::Off {
        return None;
    }
    if matches!(opts.round_choice, RoundingChoice::Shuffled(_)) {
        return None;
    }
    if opts.shard == ShardMode::Auto && inst.num_jobs() < AUTO_MIN_JOBS {
        return None;
    }
    let span = obs::Span::enter("solve.decompose");
    let dec = decompose(inst).ok();
    drop(span);
    dec.filter(|d| d.len() >= 2)
}

/// The options each shard is solved under: the same pipeline with
/// sharding disabled (a shard is single-rooted, and a distinct options
/// fingerprint keeps shard cache entries apart from whole-instance
/// entries).
pub fn shard_options(opts: &SolverOptions) -> SolverOptions {
    SolverOptions { shard: ShardMode::Off, ..opts.clone() }
}

/// Solve a decomposed instance: run `solve_shard` over every shard on up
/// to `workers` threads (`0` = one per core), then merge.
///
/// `solve_shard` receives each shard's normalized instance together with
/// [`shard_options`]; the batch engine passes a caching wrapper here,
/// plain callers pass [`solve_nested`]. The caller's metric collector
/// (if any) is re-installed on the fan-out threads, so per-shard solver
/// spans and counters land in the same registry as a monolithic solve.
/// Errors are reported deterministically: the first failing shard in
/// root order wins, matching what the monolithic solve would report.
pub fn solve_decomposed<F>(
    inst: &Instance,
    opts: &SolverOptions,
    dec: &Decomposition,
    workers: usize,
    solve_shard: F,
) -> Result<SolveResult, SolveError>
where
    F: Fn(&Instance, &SolverOptions) -> Result<SolveResult, SolveError> + Sync,
{
    let sopts = shard_options(opts);
    let collector = obs::current_collector();
    let indices: Vec<usize> = (0..dec.len()).collect();
    let results = par_map_workers(indices, workers, |i| {
        let run = || solve_shard(&dec.shards[i].instance, &sopts);
        match &collector {
            Some(c) => obs::with_collector(c.clone(), run),
            None => run(),
        }
    });
    let mut parts = Vec::with_capacity(results.len());
    for r in results {
        parts.push(r?);
    }
    let span = obs::Span::enter("solve.merge");
    let merged = merge(inst, dec, &parts);
    drop(span);
    obs::counter_add("engine.shards", dec.len() as u64);
    Ok(merged)
}

/// Shard-aware drop-in for [`solve_nested`]: decompose-and-merge when
/// [`plan`] says so, the plain monolithic solve otherwise. No caching —
/// the batch engine's path adds that.
pub fn solve_nested_sharded(
    inst: &Instance,
    opts: &SolverOptions,
) -> Result<SolveResult, SolveError> {
    match plan(inst, opts) {
        Some(dec) => solve_decomposed(inst, opts, &dec, 0, solve_nested),
        None => solve_nested(inst, opts),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atsched_core::instance::Job;

    /// `roots` copies of a 3-job subtree at disjoint offsets: 3·roots
    /// jobs, `roots` forest roots.
    fn many_root(roots: usize) -> Instance {
        let mut jobs = Vec::new();
        for k in 0..roots as i64 {
            let base = 12 * k;
            jobs.push(Job::new(base, base + 8, 2));
            jobs.push(Job::new(base + 1, base + 4, 1));
            jobs.push(Job::new(base + 5, base + 7, 1));
        }
        Instance::new(2, jobs).unwrap()
    }

    #[test]
    fn plan_respects_mode_rounding_and_size() {
        let big = many_root(10); // 30 jobs, 10 roots
        let small = many_root(2); // 6 jobs, 2 roots
        let auto = SolverOptions::exact();
        assert!(auto.shard == ShardMode::Auto);
        assert!(plan(&big, &auto).is_some());
        assert!(plan(&small, &auto).is_none(), "Auto respects the job floor");

        let force = SolverOptions { shard: ShardMode::Force, ..SolverOptions::exact() };
        assert_eq!(plan(&small, &force).map(|d| d.len()), Some(2));

        let off = SolverOptions { shard: ShardMode::Off, ..SolverOptions::exact() };
        assert!(plan(&big, &off).is_none());

        let shuffled = SolverOptions {
            shard: ShardMode::Force,
            round_choice: RoundingChoice::Shuffled(7),
            ..SolverOptions::exact()
        };
        assert!(plan(&big, &shuffled).is_none(), "global-RNG rounding never shards");

        // Single root: nothing to decompose.
        let single = Instance::new(2, vec![Job::new(0, 9, 2), Job::new(1, 5, 1)]).unwrap();
        assert!(plan(&single, &force).is_none());
    }

    #[test]
    fn sharded_matches_monolith_objectives() {
        for roots in [2usize, 3, 8] {
            let inst = many_root(roots);
            let opts = SolverOptions { shard: ShardMode::Force, ..SolverOptions::exact() };
            let whole = solve_nested(&inst, &opts).unwrap();
            let sharded = solve_nested_sharded(&inst, &opts).unwrap();
            sharded.schedule.verify(&inst).unwrap();
            assert_eq!(sharded.stats.opened_slots, whole.stats.opened_slots, "roots={roots}");
            assert_eq!(sharded.stats.active_slots, whole.stats.active_slots, "roots={roots}");
            assert_eq!(
                sharded.stats.lp_objective_exact, whole.stats.lp_objective_exact,
                "roots={roots}"
            );
        }
    }

    #[test]
    fn sharded_error_is_deterministic_first_root() {
        // Second root infeasible: the sharded path reports exactly what
        // the monolith would.
        let inst = Instance::new(
            1,
            vec![
                Job::new(0, 4, 2),
                Job::new(6, 8, 1),
                Job::new(6, 8, 1),
                Job::new(6, 8, 1),
                Job::new(10, 13, 1),
            ],
        )
        .unwrap();
        let opts = SolverOptions { shard: ShardMode::Force, ..SolverOptions::exact() };
        assert!(matches!(solve_nested_sharded(&inst, &opts), Err(SolveError::Infeasible)));
        assert!(matches!(solve_nested(&inst, &opts), Err(SolveError::Infeasible)));
    }

    #[test]
    fn spans_and_counters_are_recorded_under_a_collector() {
        use std::sync::Arc;
        let reg = Arc::new(obs::Registry::new());
        let inst = many_root(4);
        let opts = SolverOptions { shard: ShardMode::Force, ..SolverOptions::exact() };
        obs::with_collector(obs::Collector::new(Arc::clone(&reg)), || {
            solve_nested_sharded(&inst, &opts).unwrap();
        });
        let snap = reg.snapshot();
        assert_eq!(snap.histogram("span.solve.decompose.ms").map(|h| h.count), Some(1));
        assert_eq!(snap.histogram("span.solve.merge.ms").map(|h| h.count), Some(1));
        assert_eq!(snap.counter("engine.shards"), Some(4));
        // Per-shard solver spans landed too (one "solve" per shard).
        assert_eq!(snap.histogram("span.solve.ms").map(|h| h.count), Some(4));
    }
}
