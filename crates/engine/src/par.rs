//! Order-preserving parallel map.
//!
//! The primitive under every sweep in this workspace: fan items out to a
//! fixed pool of scoped worker threads over a *bounded* crossbeam
//! channel (so a slow consumer applies backpressure instead of buffering
//! the whole input), and collect results back in input order. Scoped
//! threads mean no `'static` bounds and no leaked join handles; channel
//! distribution means idle workers steal the next item the moment they
//! finish one.

use crossbeam::channel;
use std::num::NonZeroUsize;
use std::thread;

/// Default worker count: one per available core.
pub(crate) fn default_workers() -> usize {
    thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(4)
}

/// Map `f` over `items` in parallel, preserving input order.
///
/// Uses one worker per available core. `f` must be `Sync` (it is shared
/// by reference across workers); items are moved to workers. Panics in
/// workers propagate.
pub fn par_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    par_map_workers(items, default_workers(), f)
}

/// [`par_map`] with an explicit worker count (`0` means one per core).
pub fn par_map_workers<T, R, F>(items: Vec<T>, workers: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = if workers == 0 { default_workers() } else { workers }.min(n);
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }

    // Bounded dispatch queue: the feeder blocks once `2 * workers` items
    // are in flight. Results go through an unbounded channel (workers
    // never block on output) and are reordered on collection.
    let (tx, rx) = channel::bounded::<(usize, T)>(2 * workers);
    let (out_tx, out_rx) = channel::unbounded::<(usize, R)>();

    thread::scope(|scope| {
        for _ in 0..workers {
            let rx = rx.clone();
            let out_tx = out_tx.clone();
            let f = &f;
            scope.spawn(move || {
                while let Ok((i, item)) = rx.recv() {
                    out_tx.send((i, f(item))).expect("collector open");
                }
            });
        }
        drop(out_tx);
        for (i, item) in items.into_iter().enumerate() {
            tx.send((i, item)).expect("workers alive");
        }
        drop(tx);
    });

    let mut results: Vec<Option<R>> = (0..n).map(|_| None).collect();
    while let Ok((i, r)) = out_rx.recv() {
        results[i] = Some(r);
    }
    results.into_iter().map(|r| r.expect("every index produced")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn preserves_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = par_map(items, |x| x * x);
        assert_eq!(out, (0..100).map(|x| x * x).collect::<Vec<u64>>());
    }

    #[test]
    fn empty_input() {
        let out: Vec<u32> = par_map(Vec::<u32>::new(), |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn explicit_worker_counts() {
        for workers in [0, 1, 2, 3, 7, 64] {
            let out = par_map_workers((0..50).collect::<Vec<i64>>(), workers, |x| x + 1);
            assert_eq!(out, (1..51).collect::<Vec<i64>>(), "workers = {workers}");
        }
    }

    #[test]
    fn all_items_processed_once() {
        let count = AtomicUsize::new(0);
        let out = par_map((0..500).collect::<Vec<_>>(), |x| {
            count.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(out.len(), 500);
        assert_eq!(count.load(Ordering::Relaxed), 500);
    }

    #[test]
    fn uses_real_work() {
        // Smoke test with nontrivial per-item cost (fibonacci).
        fn fib(n: u64) -> u64 {
            if n < 2 {
                n
            } else {
                fib(n - 1) + fib(n - 2)
            }
        }
        let out = par_map(vec![20u64; 16], fib);
        assert!(out.iter().all(|&v| v == 6765));
    }
}
