//! Batch observability: latency percentiles and the JSON batch report.

use atsched_core::solver::StageTimings;
use atsched_obs::{Histogram, HistogramSnapshot};
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// p50 / p95 / max summary of a latency sample, in milliseconds.
///
/// Backed by the shared [`atsched_obs::Histogram`] — the workspace's
/// single percentile implementation — so p50/p95 are nearest-rank
/// log-bucket upper bounds (within ~19% of the exact sample value)
/// while `max` stays exact.
///
/// `Deserialize` as well as `Serialize`: the serve layer ships these
/// over the wire inside `stats` replies.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct Percentiles {
    /// Median.
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// Maximum.
    pub max: f64,
}

impl Percentiles {
    /// Summary of a live histogram.
    pub fn from_histogram(h: &Histogram) -> Self {
        Percentiles { p50: h.percentile(0.50), p95: h.percentile(0.95), max: h.max() }
    }

    /// Summary of a frozen histogram snapshot.
    pub fn from_snapshot(s: &HistogramSnapshot) -> Self {
        Percentiles { p50: s.p50, p95: s.p95, max: s.max }
    }

    /// Summarize a sample by routing it through a histogram; all-zero
    /// when empty.
    pub fn summarize(samples: impl IntoIterator<Item = f64>) -> Self {
        let h = Histogram::new();
        for s in samples {
            h.record(s);
        }
        Self::from_histogram(&h)
    }
}

/// Lifetime outcome counters of a long-lived [`crate::Engine`]: how many
/// solves it has finished in each terminal state since construction,
/// across every batch and every thread sharing it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EngineTotals {
    /// Solves that produced a verified schedule (cache hits included).
    pub solved: u64,
    /// Provably infeasible instances (cache hits included).
    pub infeasible: u64,
    /// Solves cut off by the per-solve wall-clock budget.
    pub timed_out: u64,
    /// Solves that errored or panicked.
    pub failed: u64,
}

impl EngineTotals {
    /// Total solves finished, in any state.
    pub fn total(&self) -> u64 {
        self.solved + self.infeasible + self.timed_out + self.failed
    }
}

/// Cache counters as reported per batch.
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct CacheReport {
    /// Lookups answered from the cache during this batch.
    pub hits: u64,
    /// Lookups that fell through to a real solve.
    pub misses: u64,
    /// `hits / (hits + misses)`, 0 when the cache saw no lookups.
    pub hit_rate: f64,
}

/// Per-stage latency percentiles (milliseconds), over non-cached solves.
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct StageReport {
    /// Forest build + canonical transformation + OPT oracle.
    pub canonicalize: Percentiles,
    /// LP build + solve (both attempts on the snap backend).
    pub lp: Percentiles,
    /// Lemma 3.1 push-down.
    pub transform: Percentiles,
    /// Algorithm 1 rounding.
    pub round: Percentiles,
    /// Slot materialization, flow extraction, repair, polish.
    pub extract: Percentiles,
    /// Independent schedule verification.
    pub verify: Percentiles,
}

impl StageReport {
    /// Summarize a set of per-solve stage timings.
    pub fn from_timings(timings: &[StageTimings]) -> Self {
        let ms = |pick: fn(&StageTimings) -> Duration| {
            Percentiles::summarize(timings.iter().map(|t| pick(t).as_secs_f64() * 1e3))
        };
        StageReport {
            canonicalize: ms(|t| t.canonicalize),
            lp: ms(|t| t.lp),
            transform: ms(|t| t.transform),
            round: ms(|t| t.round),
            extract: ms(|t| t.extract),
            verify: ms(|t| t.verify),
        }
    }
}

/// Everything a batch run reports, serializable to JSON.
///
/// Schema (all latencies in milliseconds):
///
/// ```json
/// {
///   "total": 100, "solved": 97, "infeasible": 2, "timed_out": 1, "failed": 0,
///   "wall_clock_ms": 412.7,
///   "workers": 8,
///   "cache": { "hits": 31, "misses": 69, "hit_rate": 0.31 },
///   "latency_ms": { "p50": 2.1, "p95": 14.9, "max": 55.0 },
///   "stages_ms": {
///     "canonicalize": { "p50": 0.1, "p95": 0.4, "max": 1.2 },
///     "lp":           { "p50": 1.8, "p95": 13.0, "max": 51.3 },
///     "transform":    { "p50": 0.0, "p95": 0.1, "max": 0.3 },
///     "round":        { "p50": 0.0, "p95": 0.1, "max": 0.2 },
///     "extract":      { "p50": 0.2, "p95": 1.1, "max": 2.9 },
///     "verify":       { "p50": 0.0, "p95": 0.1, "max": 0.4 }
///   }
/// }
/// ```
#[derive(Debug, Clone, Serialize)]
pub struct BatchReport {
    /// Instances in the batch.
    pub total: usize,
    /// Outcomes that produced a verified schedule.
    pub solved: usize,
    /// Provably infeasible instances.
    pub infeasible: usize,
    /// Solves cut off by the per-instance wall-clock budget.
    pub timed_out: usize,
    /// Solves that errored or panicked.
    pub failed: usize,
    /// End-to-end batch wall-clock, milliseconds.
    pub wall_clock_ms: f64,
    /// Worker threads used.
    pub workers: usize,
    /// Cache activity during this batch.
    pub cache: CacheReport,
    /// End-to-end per-solve latency (all solved instances, cached ones
    /// included at their ~0 ms lookup cost).
    pub latency_ms: Percentiles,
    /// Per-stage latency percentiles over non-cached solves.
    pub stages_ms: StageReport,
}

impl BatchReport {
    /// Compact JSON rendering.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("report serializes")
    }

    /// Pretty JSON rendering.
    pub fn to_json_pretty(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serializes")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_of_known_sample() {
        let p = Percentiles::summarize((1..=100).map(|x| x as f64));
        // Histogram buckets grow by 2^(1/4): percentiles are upper
        // bounds within ~19% of the exact nearest-rank value; max is
        // tracked exactly.
        assert!(p.p50 >= 50.0 && p.p50 <= 50.0 * 1.19, "p50 = {}", p.p50);
        assert!(p.p95 >= 95.0 && p.p95 <= 95.0 * 1.19, "p95 = {}", p.p95);
        assert_eq!(p.max, 100.0);
        assert!(p.p50 <= p.p95 && p.p95 <= p.max);
        let empty = Percentiles::summarize(Vec::new());
        assert_eq!(empty.p50, 0.0);
        assert_eq!(empty.max, 0.0);
    }

    #[test]
    fn report_serializes_to_json() {
        let report = BatchReport {
            total: 2,
            solved: 2,
            infeasible: 0,
            timed_out: 0,
            failed: 0,
            wall_clock_ms: 1.5,
            workers: 4,
            cache: CacheReport { hits: 1, misses: 1, hit_rate: 0.5 },
            latency_ms: Percentiles { p50: 1.0, p95: 1.0, max: 1.0 },
            stages_ms: StageReport::default(),
        };
        let json = report.to_json();
        assert!(json.contains("\"hit_rate\":0.5"), "{json}");
        assert!(json.contains("\"stages_ms\""), "{json}");
        assert!(json.contains("\"canonicalize\""), "{json}");
    }
}
