//! # atsched-engine
//!
//! Parallel batch-solve engine for nested active-time instances.
//!
//! The solver in [`atsched_core`] handles one instance at a time;
//! everything around it — experiment sweeps, corpus benchmarks, the
//! `atsched batch` CLI — wants to push *streams* of instances through it.
//! This crate provides that layer:
//!
//! - **Dispatcher** ([`Engine::solve_batch`]): a bounded-queue fan-out to
//!   a fixed worker pool over crossbeam channels. Workers pull items as
//!   they free up (work stealing via the shared MPMC queue), and results
//!   are collected back in *input order*, so batch output is positionally
//!   identical to a sequential `map`.
//! - **Solve cache** ([`cache`]): memoizes deterministic solve results,
//!   keyed by the instance's full content (`g` + the exact job sequence)
//!   plus a fingerprint of the solver options. Content keying — not
//!   hash-only keying — makes false hits impossible. Hit/miss counters
//!   are kept per engine and reported per batch.
//! - **Isolation** ([`Outcome`]): each solve runs under
//!   `catch_unwind`, and optionally under a wall-clock budget; a panicking
//!   or overrunning instance yields [`Outcome::Failed`] /
//!   [`Outcome::TimedOut`] without disturbing its neighbors.
//! - **Observability** ([`report`]): every batch produces a
//!   [`BatchReport`] with outcome counts, cache statistics, and p50 / p95
//!   / max latencies — end-to-end and per pipeline stage (canonicalize,
//!   LP, transform, round, extract, verify) via
//!   [`atsched_core::StageTimings`] — serializable to JSON.
//! - **Primitive** ([`par_map`]): the order-preserving parallel map the
//!   rest of the workspace builds sweeps on.
//! - **Sharding** ([`shard`]): multi-root instances are split at the
//!   laminar forest roots and their trees solved concurrently *within*
//!   one solve (policy via `SolverOptions::shard`), with shard-level
//!   cache keys so repeated subtree shapes hit the solve cache.
//!
//! ## Example
//!
//! ```
//! use atsched_core::instance::{Instance, Job};
//! use atsched_core::SolverOptions;
//! use atsched_engine::{Engine, EngineConfig};
//!
//! let inst = Instance::new(2, vec![Job::new(0, 4, 2), Job::new(1, 3, 1)]).unwrap();
//! let engine = Engine::new(EngineConfig::default());
//! let batch = engine.solve_batch(&[inst.clone(), inst], &SolverOptions::exact());
//! assert_eq!(batch.report.solved, 2);
//! assert_eq!(batch.report.cache.hits, 1); // second instance is a repeat
//! println!("{}", batch.report.to_json_pretty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod cache;
pub mod isolate;
pub mod par;
pub mod report;
pub mod session;
pub mod shard;

pub use batch::{BatchResult, Engine, EngineConfig, Outcome, SolvedItem};
pub use cache::CacheStats;
pub use isolate::{isolated, with_budget, Interrupt};
pub use par::{par_map, par_map_workers};
pub use report::{BatchReport, EngineTotals, Percentiles};
pub use session::{Session, SessionId};
#[doc(hidden)] // prefer `Engine::solve_one` (or the `Solve` facade): same
// decomposition, plus cache/isolation/observability.
pub use shard::solve_nested_sharded;
pub use shard::AUTO_MIN_JOBS;
