//! The batch-solve engine: dispatcher, isolation, and outcome model.

use crate::cache::{CacheKey, CacheStats, SolveCache};
use crate::isolate::{isolated, with_budget, Interrupt};
use crate::par::default_workers;
use crate::report::{BatchReport, CacheReport, EngineTotals, Percentiles, StageReport};
use crate::shard;
use atsched_core::decompose::Decomposition;
use atsched_core::instance::Instance;
use atsched_core::solver::{solve_nested, SolveError, SolveResult, SolverOptions};
use atsched_obs as obs;
use crossbeam::channel;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// Engine configuration (builder-style).
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Worker threads; `0` means one per available core.
    pub workers: usize,
    /// Bounded dispatch-queue depth; `0` means `2 × workers`.
    pub queue_depth: usize,
    /// Memoize deterministic solve outcomes (default true).
    pub cache: bool,
    /// Maximum memoized entries before FIFO eviction kicks in
    /// (default [`crate::cache::DEFAULT_CACHE_CAPACITY`]; `0` =
    /// unbounded).
    pub cache_capacity: usize,
    /// Per-solve wall-clock budget; `None` means unlimited.
    pub timeout: Option<Duration>,
    /// Install a metrics collector around each solve (default true).
    /// When false, deep-crate counters/spans see no collector and
    /// reduce to a thread-local null check — the baseline for
    /// measuring instrumentation overhead.
    pub observe: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            workers: 0,
            queue_depth: 0,
            cache: true,
            cache_capacity: crate::cache::DEFAULT_CACHE_CAPACITY,
            timeout: None,
            observe: true,
        }
    }
}

impl EngineConfig {
    /// Set the worker count (`0` = one per core).
    pub fn workers(mut self, n: usize) -> Self {
        self.workers = n;
        self
    }

    /// Set the dispatch-queue depth (`0` = `2 × workers`).
    pub fn queue_depth(mut self, n: usize) -> Self {
        self.queue_depth = n;
        self
    }

    /// Enable or disable the solve cache.
    pub fn cache(mut self, on: bool) -> Self {
        self.cache = on;
        self
    }

    /// Bound the solve cache to `n` entries (`0` = unbounded).
    pub fn cache_capacity(mut self, n: usize) -> Self {
        self.cache_capacity = n;
        self
    }

    /// Set a per-solve wall-clock budget.
    pub fn timeout(mut self, budget: Duration) -> Self {
        self.timeout = Some(budget);
        self
    }

    /// Enable or disable metric collection around each solve.
    pub fn observe(mut self, on: bool) -> Self {
        self.observe = on;
        self
    }

    pub(crate) fn effective_workers(&self) -> usize {
        if self.workers == 0 {
            default_workers()
        } else {
            self.workers
        }
    }
}

/// A successfully solved batch item.
#[derive(Debug, Clone)]
pub struct SolvedItem {
    /// The verified solver output.
    pub result: SolveResult,
    /// Wall-clock spent on this item (≈0 for cache hits).
    pub elapsed: Duration,
    /// Whether the result came from the cache.
    pub cached: bool,
}

/// Per-instance result of a batch solve.
#[derive(Debug, Clone)]
pub enum Outcome {
    /// A verified schedule (boxed: the payload is large).
    Solved(Box<SolvedItem>),
    /// The instance is provably infeasible.
    Infeasible,
    /// The per-solve wall-clock budget ran out.
    TimedOut,
    /// The solve errored (bad instance, LP failure) or panicked.
    Failed(String),
}

impl Outcome {
    /// The solved payload, if any.
    pub fn as_solved(&self) -> Option<&SolvedItem> {
        match self {
            Outcome::Solved(item) => Some(item),
            _ => None,
        }
    }

    /// True for [`Outcome::Solved`].
    pub fn is_solved(&self) -> bool {
        matches!(self, Outcome::Solved(_))
    }

    /// Short stable label (`solved` / `infeasible` / `timed_out` /
    /// `failed`), used in reports and CLI output.
    pub fn label(&self) -> &'static str {
        match self {
            Outcome::Solved(_) => "solved",
            Outcome::Infeasible => "infeasible",
            Outcome::TimedOut => "timed_out",
            Outcome::Failed(_) => "failed",
        }
    }
}

/// A batch's outcomes (input order) plus its report.
#[derive(Debug, Clone)]
pub struct BatchResult {
    /// One outcome per input instance, positionally.
    pub outcomes: Vec<Outcome>,
    /// Aggregated statistics for the batch.
    pub report: BatchReport,
}

/// Parallel batch-solve engine with a solve cache.
///
/// The engine owns its cache, so it can be reused across batches to
/// carry memoized results forward; cheap to construct per batch when
/// that is not wanted.
///
/// Every method takes `&self` and all mutable state (cache, counters)
/// sits behind interior mutability, so one engine can be wrapped in an
/// `Arc` and shared by many threads — the deployment shape of a
/// long-lived solve service, which keeps the cache warm across
/// requests. Lifetime outcome counters are exposed via
/// [`Engine::totals`].
#[derive(Debug, Default)]
pub struct Engine {
    pub(crate) cfg: EngineConfig,
    pub(crate) cache: SolveCache,
    totals: TotalCounters,
    pub(crate) registry: Arc<obs::Registry>,
    trace: Option<Arc<obs::TraceBuffer>>,
    pub(crate) sessions: crate::session::SessionTable,
}

/// Lifetime outcome counters, updated lock-free on every finished solve.
#[derive(Debug, Default)]
struct TotalCounters {
    solved: AtomicU64,
    infeasible: AtomicU64,
    timed_out: AtomicU64,
    failed: AtomicU64,
}

impl Engine {
    /// Engine with the given configuration and a fresh metric registry.
    pub fn new(cfg: EngineConfig) -> Self {
        Self::with_registry(cfg, Arc::new(obs::Registry::new()))
    }

    /// Engine writing metrics into a shared registry — the deployment
    /// shape of the serve layer, where server-level counters and
    /// solver-level counters land in one snapshot.
    pub fn with_registry(cfg: EngineConfig, registry: Arc<obs::Registry>) -> Self {
        let cache = SolveCache::with_capacity(cfg.cache_capacity);
        Engine {
            cfg,
            cache,
            totals: TotalCounters::default(),
            registry,
            trace: None,
            sessions: crate::session::SessionTable::default(),
        }
    }

    /// Attach a trace buffer: every solver span is also appended as a
    /// Chrome trace event (see [`obs::TraceBuffer::to_chrome_json`]).
    pub fn with_trace(mut self, trace: Arc<obs::TraceBuffer>) -> Self {
        self.trace = Some(trace);
        self
    }

    /// The metric registry this engine writes into.
    pub fn registry(&self) -> &Arc<obs::Registry> {
        &self.registry
    }

    /// The configuration this engine runs with.
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// Lifetime cache counters (across all batches run on this engine).
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Number of memoized solve outcomes currently held.
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }

    /// Lifetime outcome counters (across all batches and all threads
    /// sharing this engine).
    pub fn totals(&self) -> EngineTotals {
        EngineTotals {
            solved: self.totals.solved.load(Ordering::Relaxed),
            infeasible: self.totals.infeasible.load(Ordering::Relaxed),
            timed_out: self.totals.timed_out.load(Ordering::Relaxed),
            failed: self.totals.failed.load(Ordering::Relaxed),
        }
    }

    /// Solve every instance, in parallel, preserving input order.
    ///
    /// Output is positionally identical to solving sequentially: worker
    /// scheduling affects only wall-clock, never results. Panics and
    /// budget overruns are contained to their own item.
    pub fn solve_batch(&self, instances: &[Instance], opts: &SolverOptions) -> BatchResult {
        let start = Instant::now();
        let n = instances.len();
        let workers = self.cfg.effective_workers().min(n.max(1));
        let cache_before = self.cache.stats();

        let outcomes: Vec<Outcome> = if workers <= 1 {
            instances.iter().map(|inst| self.solve_one(inst, opts)).collect()
        } else {
            let depth = if self.cfg.queue_depth == 0 { 2 * workers } else { self.cfg.queue_depth };
            let (tx, rx) = channel::bounded::<(usize, &Instance)>(depth);
            let (out_tx, out_rx) = channel::unbounded::<(usize, Outcome)>();

            thread::scope(|scope| {
                for _ in 0..workers {
                    let rx = rx.clone();
                    let out_tx = out_tx.clone();
                    scope.spawn(move || {
                        while let Ok((i, inst)) = rx.recv() {
                            out_tx.send((i, self.solve_one(inst, opts))).expect("collector open");
                        }
                    });
                }
                drop(out_tx);
                for (i, inst) in instances.iter().enumerate() {
                    tx.send((i, inst)).expect("workers alive");
                }
                drop(tx);
            });

            let mut slots: Vec<Option<Outcome>> = (0..n).map(|_| None).collect();
            while let Ok((i, outcome)) = out_rx.recv() {
                slots[i] = Some(outcome);
            }
            slots.into_iter().map(|o| o.expect("every index produced")).collect()
        };

        let report = self.build_report(&outcomes, workers, start.elapsed(), cache_before);
        BatchResult { outcomes, report }
    }

    /// Solve a single instance under this engine's isolation and cache
    /// policy (the unit of work a batch worker executes).
    pub fn solve_one(&self, inst: &Instance, opts: &SolverOptions) -> Outcome {
        let outcome = self.observed(|| self.solve_one_inner(inst, opts));
        self.tally(&outcome);
        if self.cfg.observe {
            if let Some(item) = outcome.as_solved() {
                // Hits go to their own histogram: folding ~0 ms lookups
                // into `engine.solve_ms` would skew the latency
                // percentiles toward zero on warm caches.
                let histogram = if item.cached { "engine.cache_hit_ms" } else { "engine.solve_ms" };
                self.registry.histogram(histogram).record(item.elapsed.as_secs_f64() * 1e3);
            }
        }
        outcome
    }

    /// Run `work` under this engine's collector policy: when `observe`
    /// is on, a fresh [`obs::Collector`] bound to the engine registry
    /// (and trace buffer, if any) is installed for the duration. A
    /// request trace carried by the caller's collector is kept
    /// attached, so per-stage breadcrumbs from the solve still land on
    /// the admitting request (the serve tier relies on this).
    pub(crate) fn observed<T>(&self, work: impl FnOnce() -> T) -> T {
        if self.cfg.observe {
            let mut collector = obs::Collector::new(Arc::clone(&self.registry));
            if let Some(trace) = &self.trace {
                collector = collector.with_trace(Arc::clone(trace));
            }
            if let Some(request) = obs::current_request() {
                collector = collector.with_request(request);
            }
            obs::with_collector(collector, work)
        } else {
            work()
        }
    }

    /// Count `outcome` into the lifetime totals and (when observing)
    /// the `engine.outcome.<label>` counter.
    pub(crate) fn tally(&self, outcome: &Outcome) {
        let counter = match outcome {
            Outcome::Solved(_) => &self.totals.solved,
            Outcome::Infeasible => &self.totals.infeasible,
            Outcome::TimedOut => &self.totals.timed_out,
            Outcome::Failed(_) => &self.totals.failed,
        };
        counter.fetch_add(1, Ordering::Relaxed);
        if self.cfg.observe {
            self.registry.counter(&format!("engine.outcome.{}", outcome.label())).inc();
        }
    }

    fn solve_one_inner(&self, inst: &Instance, opts: &SolverOptions) -> Outcome {
        let start = Instant::now();
        let key = self.cfg.cache.then(|| CacheKey::new(inst, opts));
        if let Some(key) = &key {
            if let Some(found) = self.cache.get(key) {
                return settle(found, start.elapsed(), true);
            }
        }

        let solved = match shard::plan(inst, opts) {
            Some(dec) => self.solve_shards(inst, opts, dec),
            None => match self.cfg.timeout {
                None => isolated(|| solve_nested(inst, opts)),
                Some(budget) => {
                    let inst = inst.clone();
                    let opts = opts.clone();
                    with_budget(move || solve_nested(&inst, &opts), budget)
                }
            },
        };
        match solved {
            Ok(deterministic) => {
                if let Some(key) = key {
                    self.cache.insert(key, deterministic.clone());
                    if self.cfg.observe {
                        self.registry.gauge("engine.cache_entries").set(self.cache.len() as i64);
                    }
                }
                settle(deterministic, start.elapsed(), false)
            }
            // Interrupts are transient and never cached.
            Err(Interrupt::TimedOut) => Outcome::TimedOut,
            Err(Interrupt::Panicked(msg)) => Outcome::Failed(format!("solver panicked: {msg}")),
        }
    }

    /// Shard-parallel solve of a multi-root instance, with per-shard
    /// cache lookups layered over [`shard::solve_decomposed`].
    ///
    /// Shards are normalized to start at slot 0 and solved under a
    /// sharding-off options fingerprint, so repeated subtree shapes hit
    /// the solve cache regardless of where in time they occurred; hits
    /// are counted under `engine.shard_cache_hits`. Shard panics unwind
    /// into the outer `isolated`/`with_budget` wrapper, containing them
    /// exactly like monolithic solves.
    fn solve_shards(
        &self,
        inst: &Instance,
        opts: &SolverOptions,
        dec: Decomposition,
    ) -> Result<Result<SolveResult, SolveError>, Interrupt> {
        let workers = self.cfg.effective_workers();
        match self.cfg.timeout {
            None => {
                let solve_shard = |sinst: &Instance, sopts: &SolverOptions| {
                    let key = self.cfg.cache.then(|| CacheKey::new(sinst, sopts));
                    if let Some(key) = &key {
                        if let Some(found) = self.cache.get(key) {
                            if self.cfg.observe {
                                self.registry.counter("engine.shard_cache_hits").inc();
                            }
                            return found;
                        }
                    }
                    let res = solve_nested(sinst, sopts);
                    if let Some(key) = key {
                        self.cache.insert(key, res.clone());
                    }
                    res
                };
                isolated(|| shard::solve_decomposed(inst, opts, &dec, workers, solve_shard))
            }
            Some(budget) => {
                // The budget helper thread needs `'static` work, which
                // rules out borrowing the cache: budgeted sharded solves
                // skip the shard-level cache (the whole-instance key
                // above still memoizes the merged result).
                let inst = inst.clone();
                let opts = opts.clone();
                with_budget(
                    move || shard::solve_decomposed(&inst, &opts, &dec, workers, solve_nested),
                    budget,
                )
            }
        }
    }

    fn build_report(
        &self,
        outcomes: &[Outcome],
        workers: usize,
        wall_clock: Duration,
        cache_before: CacheStats,
    ) -> BatchReport {
        let mut solved = 0;
        let mut infeasible = 0;
        let mut timed_out = 0;
        let mut failed = 0;
        let mut latencies = Vec::new();
        let mut timings = Vec::new();
        for outcome in outcomes {
            match outcome {
                Outcome::Solved(item) => {
                    solved += 1;
                    latencies.push(item.elapsed.as_secs_f64() * 1e3);
                    if !item.cached {
                        timings.push(item.result.stats.timings);
                    }
                }
                Outcome::Infeasible => infeasible += 1,
                Outcome::TimedOut => timed_out += 1,
                Outcome::Failed(_) => failed += 1,
            }
        }
        let delta = self.cache.stats().since(cache_before);
        BatchReport {
            total: outcomes.len(),
            solved,
            infeasible,
            timed_out,
            failed,
            wall_clock_ms: wall_clock.as_secs_f64() * 1e3,
            workers,
            cache: CacheReport {
                hits: delta.hits,
                misses: delta.misses,
                hit_rate: delta.hit_rate(),
            },
            latency_ms: Percentiles::summarize(latencies),
            stages_ms: StageReport::from_timings(&timings),
        }
    }
}

/// Map a deterministic solve outcome to an [`Outcome`].
pub(crate) fn settle(
    res: Result<SolveResult, SolveError>,
    elapsed: Duration,
    cached: bool,
) -> Outcome {
    match res {
        Ok(result) => Outcome::Solved(Box::new(SolvedItem { result, elapsed, cached })),
        Err(SolveError::Infeasible) => Outcome::Infeasible,
        Err(other) => Outcome::Failed(other.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atsched_core::instance::Job;

    fn inst(g: i64, jobs: Vec<(i64, i64, i64)>) -> Instance {
        Instance::new(g, jobs.into_iter().map(|(r, d, p)| Job::new(r, d, p)).collect()).unwrap()
    }

    fn small_corpus() -> Vec<Instance> {
        vec![
            inst(2, vec![(0, 8, 2), (1, 4, 1), (5, 7, 1)]),
            inst(3, vec![(0, 2, 1); 4]),
            inst(2, vec![(0, 10, 2), (1, 6, 2), (2, 5, 1), (7, 9, 1)]),
            inst(1, vec![(0, 2, 1); 3]),                    // infeasible
            inst(2, vec![(0, 8, 2), (1, 4, 1), (5, 7, 1)]), // repeat of [0]
        ]
    }

    #[test]
    fn batch_matches_sequential_and_counts_cache() {
        let corpus = small_corpus();
        let opts = SolverOptions::exact();
        // One worker: with parallel workers a duplicate can be *looked
        // up* before its twin's solve finishes (a legitimate miss), so
        // exact hit counts are only deterministic sequentially.
        let engine = Engine::new(EngineConfig::default().workers(1));
        let batch = engine.solve_batch(&corpus, &opts);

        assert_eq!(batch.report.total, 5);
        assert_eq!(batch.report.solved, 4);
        assert_eq!(batch.report.infeasible, 1);
        assert_eq!(batch.report.failed, 0);
        // Instance 4 repeats instance 0: exactly one hit.
        assert_eq!(batch.report.cache.hits, 1);
        assert_eq!(batch.report.cache.misses, 4);

        for (i, (instance, outcome)) in corpus.iter().zip(&batch.outcomes).enumerate() {
            match solve_nested(instance, &opts) {
                Ok(seq) => {
                    let item = outcome.as_solved().unwrap_or_else(|| panic!("item {i} solved"));
                    assert_eq!(item.result.schedule, seq.schedule, "item {i}");
                    assert_eq!(item.result.z, seq.z, "item {i}");
                }
                Err(SolveError::Infeasible) => {
                    assert!(matches!(outcome, Outcome::Infeasible), "item {i}")
                }
                Err(e) => panic!("unexpected sequential error on {i}: {e}"),
            }
        }
        // The repeat must be served from cache.
        assert!(batch.outcomes[4].as_solved().unwrap().cached);
        assert!(!batch.outcomes[0].as_solved().unwrap().cached);
    }

    #[test]
    fn cache_disabled_never_hits() {
        let corpus = small_corpus();
        let engine = Engine::new(EngineConfig::default().workers(2).cache(false));
        let batch = engine.solve_batch(&corpus, &SolverOptions::exact());
        assert_eq!(batch.report.cache.hits, 0);
        assert_eq!(batch.report.cache.misses, 0);
        assert_eq!(batch.report.solved, 4);
        assert!(batch.outcomes.iter().all(|o| o.as_solved().is_none_or(|s| !s.cached)));
    }

    #[test]
    fn cache_persists_across_batches() {
        let corpus = small_corpus();
        let engine = Engine::new(EngineConfig::default().workers(2));
        engine.solve_batch(&corpus, &SolverOptions::exact());
        let second = engine.solve_batch(&corpus, &SolverOptions::exact());
        // Every deterministic outcome is now memoized (4 solved + 1
        // infeasible content-distinct = 4 distinct keys).
        assert_eq!(second.report.cache.misses, 0);
        assert_eq!(second.report.cache.hits, 5);
        assert_eq!(engine.cache_len(), 4);
    }

    #[test]
    fn cache_capacity_bounds_memory_and_reports_gauge() {
        // Capacity 2 with 4 distinct deterministic outcomes (one of them
        // repeated after its twin has already been displaced): the cache
        // may never exceed the bound, every displacement is counted, and
        // the gauge tracks the live entry count.
        let engine = Engine::new(EngineConfig::default().workers(1).cache_capacity(2));
        let corpus = small_corpus();
        engine.solve_batch(&corpus, &SolverOptions::exact());
        assert_eq!(engine.cache_len(), 2);
        let stats = engine.cache_stats();
        assert_eq!(stats.evictions, 3, "{stats:?}");
        assert_eq!(stats.misses, 5, "the repeat re-solves after eviction: {stats:?}");
        let snap = engine.registry().snapshot();
        assert_eq!(snap.gauge("engine.cache_entries"), Some(2), "{snap:?}");

        // Evicted entries are misses on the next run (bounded ≠ broken:
        // results are still correct, just re-solved).
        let second = engine.solve_batch(&corpus, &SolverOptions::exact());
        assert_eq!(second.report.solved, 4);
        assert!(second.report.cache.misses > 0, "{:?}", second.report);
    }

    #[test]
    fn empty_batch() {
        let engine = Engine::new(EngineConfig::default());
        let batch = engine.solve_batch(&[], &SolverOptions::exact());
        assert_eq!(batch.report.total, 0);
        assert_eq!(batch.report.latency_ms.max, 0.0);
    }

    #[test]
    fn report_counts_and_json() {
        let engine = Engine::new(EngineConfig::default().workers(2));
        let batch = engine.solve_batch(&small_corpus(), &SolverOptions::exact());
        let json = batch.report.to_json();
        assert!(json.contains("\"total\":5"), "{json}");
        assert!(json.contains("\"latency_ms\""), "{json}");
        assert!(json.contains("\"lp\""), "{json}");
        assert!(batch.report.latency_ms.max >= batch.report.latency_ms.p50);
    }

    #[test]
    fn timeout_yields_timed_out_without_affecting_neighbors() {
        // An instance the exact backend cannot finish within the budget,
        // surrounded by trivial neighbors that comfortably can.
        let slow = {
            let mut jobs = Vec::new();
            for k in 0..48i64 {
                jobs.push((k, 20000 - k, 3));
            }
            inst(2, jobs)
        };
        let corpus = vec![inst(1, vec![(0, 5, 2)]), slow, inst(3, vec![(0, 2, 1); 4])];
        let engine =
            Engine::new(EngineConfig::default().workers(2).timeout(Duration::from_millis(60)));
        let batch = engine.solve_batch(&corpus, &SolverOptions::exact());
        assert!(matches!(batch.outcomes[1], Outcome::TimedOut), "{:?}", batch.report);
        assert!(batch.outcomes[0].is_solved(), "{:?}", batch.report);
        assert!(batch.outcomes[2].is_solved(), "{:?}", batch.report);
        assert_eq!(batch.report.timed_out, 1);
        assert_eq!(batch.report.solved, 2);
    }

    #[test]
    fn engine_is_arc_shareable_across_threads() {
        fn assert_sync_send<T: Send + Sync>() {}
        assert_sync_send::<Engine>();

        let engine = std::sync::Arc::new(Engine::new(EngineConfig::default().workers(1)));
        let corpus = small_corpus();
        let opts = SolverOptions::exact();
        thread::scope(|scope| {
            for _ in 0..4 {
                let engine = std::sync::Arc::clone(&engine);
                let corpus = &corpus;
                let opts = &opts;
                scope.spawn(move || {
                    for instance in corpus {
                        engine.solve_one(instance, opts);
                    }
                });
            }
        });
        // 4 threads × 5 instances, every outcome counted exactly once.
        let totals = engine.totals();
        assert_eq!(totals.total(), 20);
        assert_eq!(totals.solved, 16);
        assert_eq!(totals.infeasible, 4);
        assert_eq!(totals.failed, 0);
        // All threads share one cache: only 4 distinct keys were solved.
        assert_eq!(engine.cache_len(), 4);
        let stats = engine.cache_stats();
        assert_eq!(stats.hits + stats.misses, 20);
        // Each thread solves the duplicate item after inserting its twin
        // itself, so at least that lookup is a guaranteed hit per thread;
        // racing first lookups may legitimately miss.
        assert!(stats.hits >= 4, "{stats:?}");
    }

    #[test]
    fn batch_populates_registry_with_stage_spans_and_algorithm_counters() {
        // One worker: the duplicate instance is a deterministic cache
        // hit, making span counts exact.
        let engine = Engine::new(EngineConfig::default().workers(1));
        let batch = engine.solve_batch(&small_corpus(), &SolverOptions::exact());
        assert_eq!(batch.report.solved, 4);
        let snap = engine.registry().snapshot();
        // Outcome counters match the report (cache hits included).
        assert_eq!(snap.counter("engine.outcome.solved"), Some(4));
        assert_eq!(snap.counter("engine.outcome.infeasible"), Some(1));
        // The simplex really pivoted and the LP layer saw solves.
        assert!(snap.counter("lp.pivots").unwrap_or(0) > 0, "{snap:?}");
        assert!(snap.counter("lp.solves").unwrap_or(0) > 0, "{snap:?}");
        // Extraction ran max-flow feasibility checks.
        assert!(snap.counter("flow.max_flow_calls").unwrap_or(0) > 0, "{snap:?}");
        assert!(snap.counter("flow.augmenting_paths").unwrap_or(0) > 0, "{snap:?}");
        // 4 non-cached solver runs; the infeasible one is proven
        // infeasible by the tree DP before any LP work, so only the 3
        // feasible solves record an lp sample (tree-solved instances
        // record `span.lp.ms` directly, fallbacks via the simplex span).
        for stage in ["solve", "canonicalize"] {
            let h = snap
                .histogram(&format!("span.{stage}.ms"))
                .unwrap_or_else(|| panic!("missing span.{stage}.ms in {snap:?}"));
            assert_eq!(h.count, 4, "stage {stage}");
        }
        assert_eq!(snap.histogram("span.lp.ms").unwrap().count, 3);
        // The tree LP fast path answered part of the corpus and fell
        // back on the rest (the `lp.pivots` assertion above proves the
        // simplex really ran for the remainder).
        assert!(snap.counter("lp.tree_solved").unwrap_or(0) > 0, "{snap:?}");
        assert!(snap.counter("lp.tree_fallback.nonunique").unwrap_or(0) > 0, "{snap:?}");
        for stage in ["transform", "round", "extract", "verify"] {
            let h = snap
                .histogram(&format!("span.{stage}.ms"))
                .unwrap_or_else(|| panic!("missing span.{stage}.ms in {snap:?}"));
            assert_eq!(h.count, 3, "stage {stage}");
        }
        // Nesting: the outer solve span dominates every stage's total.
        let solve = snap.histogram("span.solve.ms").unwrap();
        let lp = snap.histogram("span.lp.ms").unwrap();
        assert!(solve.max >= lp.max);
        // End-to-end engine latency is split: real solves in
        // `engine.solve_ms`, the cache hit in `engine.cache_hit_ms`.
        assert_eq!(snap.histogram("engine.solve_ms").unwrap().count, 3);
        assert_eq!(snap.histogram("engine.cache_hit_ms").unwrap().count, 1);
    }

    #[test]
    fn observe_disabled_leaves_registry_empty() {
        let engine = Engine::new(EngineConfig::default().workers(1).observe(false));
        let batch = engine.solve_batch(&small_corpus(), &SolverOptions::exact());
        assert_eq!(batch.report.solved, 4);
        let snap = engine.registry().snapshot();
        assert!(snap.counters.is_empty(), "{snap:?}");
        assert!(snap.histograms.is_empty(), "{snap:?}");
    }

    #[test]
    fn trace_buffer_collects_nested_stage_events() {
        let trace = std::sync::Arc::new(obs::TraceBuffer::new());
        let engine = Engine::new(EngineConfig::default().workers(1))
            .with_trace(std::sync::Arc::clone(&trace));
        engine.solve_batch(&small_corpus(), &SolverOptions::exact());
        let events = trace.events();
        // Two tree-solved solves × 6 spans (no simplex `lp` span — the
        // tree path times its LP stage without one), one simplex
        // fallback × 7 spans, and the infeasible instance × 2 spans
        // (the tree DP proves infeasibility right after canonicalize);
        // the cache hit skips the solver entirely.
        assert_eq!(events.len(), 21, "{events:?}");
        let json = trace.to_chrome_json();
        assert!(json.contains("\"name\":\"solve\""));
        assert!(json.contains("\"name\":\"lp\""));
        assert!(json.contains("\"ph\":\"X\""));
    }

    #[test]
    fn totals_accumulate_across_batches() {
        let engine = Engine::new(EngineConfig::default().workers(2));
        engine.solve_batch(&small_corpus(), &SolverOptions::exact());
        engine.solve_batch(&small_corpus(), &SolverOptions::exact());
        let totals = engine.totals();
        assert_eq!(totals, EngineTotals { solved: 8, infeasible: 2, timed_out: 0, failed: 0 });
        assert_eq!(totals.total(), 10);
    }

    #[test]
    fn sharded_solve_matches_monolith_and_hits_shard_cache() {
        use atsched_core::solver::ShardMode;
        // 8 roots, 24 jobs: over the Auto floor, and the subtree shape
        // repeats so normalized shard cache keys must collide.
        let mut jobs = Vec::new();
        for k in 0..8i64 {
            let base = 12 * k;
            jobs.push((base, base + 8, 2));
            jobs.push((base + 1, base + 4, 1));
            jobs.push((base + 5, base + 7, 1));
        }
        let many_root = inst(2, jobs);
        let opts = SolverOptions::exact();
        assert_eq!(opts.shard, ShardMode::Auto);

        // One worker makes the shard cache interplay deterministic:
        // with parallel workers identical shards can all be looked up
        // before the first insert lands (legitimate misses).
        let engine = Engine::new(EngineConfig::default().workers(1));
        let outcome = engine.solve_one(&many_root, &opts);
        let item = outcome.as_solved().expect("solved");
        let seq = solve_nested(&many_root, &opts).unwrap();
        item.result.schedule.verify(&many_root).unwrap();
        assert_eq!(item.result.stats.opened_slots, seq.stats.opened_slots);
        assert_eq!(item.result.stats.active_slots, seq.stats.active_slots);
        assert_eq!(item.result.stats.lp_objective_exact, seq.stats.lp_objective_exact);

        let snap = engine.registry().snapshot();
        assert_eq!(snap.counter("engine.shards"), Some(8));
        // 8 identical normalized shards: one real solve, 7 shard hits.
        assert_eq!(snap.counter("engine.shard_cache_hits"), Some(7), "{snap:?}");
        assert_eq!(snap.histogram("span.solve.decompose.ms").map(|h| h.count), Some(1));
        assert_eq!(snap.histogram("span.solve.merge.ms").map(|h| h.count), Some(1));

        // The merged result is memoized under the whole-instance key:
        // an immediate re-solve is a cache hit, not a re-shard.
        let again = engine.solve_one(&many_root, &opts);
        assert!(again.as_solved().unwrap().cached);
        assert_eq!(engine.registry().snapshot().counter("engine.shards"), Some(8));

        // shard=off on a fresh engine produces the same objectives.
        let off = SolverOptions { shard: ShardMode::Off, ..SolverOptions::exact() };
        let mono = Engine::new(EngineConfig::default()).solve_one(&many_root, &off);
        let mono = mono.as_solved().expect("solved");
        assert_eq!(mono.result.stats.opened_slots, item.result.stats.opened_slots);
        assert_eq!(mono.result.stats.active_slots, item.result.stats.active_slots);
    }

    #[test]
    fn worker_count_does_not_change_results() {
        let corpus = small_corpus();
        let opts = SolverOptions::exact();
        let reference = Engine::new(EngineConfig::default().workers(1)).solve_batch(&corpus, &opts);
        for workers in [2, 4, 8] {
            let batch =
                Engine::new(EngineConfig::default().workers(workers)).solve_batch(&corpus, &opts);
            for (i, (a, b)) in reference.outcomes.iter().zip(&batch.outcomes).enumerate() {
                match (a, b) {
                    (Outcome::Solved(x), Outcome::Solved(y)) => {
                        assert_eq!(x.result.schedule, y.result.schedule, "item {i}")
                    }
                    (Outcome::Infeasible, Outcome::Infeasible) => {}
                    other => panic!("outcome mismatch at {i}: {other:?}"),
                }
            }
        }
    }
}
