//! Panic and wall-clock isolation primitives.
//!
//! The engine contains each unit of solve work so one bad instance
//! cannot take down a batch; these primitives are public so other
//! layers (the facade's `Solve` builder, the CLI) can wrap arbitrary
//! solve paths the same way.

use atsched_obs as obs;
use crossbeam::channel;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::thread;
use std::time::Duration;

/// Why an isolated unit of work did not return a value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Interrupt {
    /// The wall-clock budget ran out; the work was abandoned.
    TimedOut,
    /// The work panicked, with the panic message.
    Panicked(String),
}

/// Run `work` in place, containing panics.
///
/// Returns the panic message on unwind instead of propagating it.
pub fn isolated<T, F: FnOnce() -> T>(work: F) -> Result<T, Interrupt> {
    catch_unwind(AssertUnwindSafe(work))
        .map_err(|payload| Interrupt::Panicked(panic_message(payload)))
}

/// Run `work` on a helper thread under a wall-clock budget, containing
/// panics.
///
/// On overrun the helper thread is abandoned: it finishes its work and
/// exits on its own, and the result is discarded — the caller moves on
/// immediately. Callers that cannot tolerate a lingering computation
/// should make the work itself interruptible instead.
///
/// The caller's metrics collector (if any) is re-installed inside the
/// helper thread, so counters and spans emitted by the work land in the
/// same registry as in-place execution — including when the work
/// panics (spans record on drop, during the unwind) or overruns the
/// budget (the abandoned thread still flushes into the shared registry
/// when it eventually finishes).
pub fn with_budget<T, F>(work: F, budget: Duration) -> Result<T, Interrupt>
where
    T: Send + 'static,
    F: FnOnce() -> T + Send + 'static,
{
    let collector = obs::current_collector();
    let (tx, rx) = channel::bounded(1);
    thread::spawn(move || {
        let contained = || catch_unwind(AssertUnwindSafe(work));
        let res = match collector {
            Some(c) => obs::with_collector(c, contained),
            None => contained(),
        };
        // Receiver may be gone after a timeout; that is fine.
        let _ = tx.send(res);
    });
    match rx.recv_timeout(budget) {
        Ok(Ok(value)) => Ok(value),
        Ok(Err(payload)) => Err(Interrupt::Panicked(panic_message(payload))),
        Err(channel::RecvTimeoutError::Timeout) => Err(Interrupt::TimedOut),
        Err(channel::RecvTimeoutError::Disconnected) => {
            Err(Interrupt::Panicked("worker thread died".into()))
        }
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    // Taken by value: a `&Box<dyn Any>` would itself coerce to `&dyn
    // Any` and every downcast to the payload type would miss.
    match payload.downcast::<&'static str>() {
        Ok(s) => (*s).to_string(),
        Err(payload) => match payload.downcast::<String>() {
            Ok(s) => *s,
            Err(_) => "non-string panic payload".to_string(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn isolated_passes_values_and_contains_panics() {
        assert_eq!(isolated(|| 41 + 1), Ok(42));
        match isolated(|| -> i32 { panic!("boom") }) {
            Err(Interrupt::Panicked(msg)) => assert!(msg.contains("boom"), "{msg}"),
            other => panic!("expected Panicked, got {other:?}"),
        }
        // String payloads (panic! with formatting) survive too.
        match isolated(|| -> i32 { panic!("boom {}", 7) }) {
            Err(Interrupt::Panicked(msg)) => assert!(msg.contains("boom 7"), "{msg}"),
            other => panic!("expected Panicked, got {other:?}"),
        }
    }

    #[test]
    fn with_budget_flushes_counters_and_spans_on_panic() {
        use std::sync::Arc;
        let reg = Arc::new(obs::Registry::new());
        obs::with_collector(obs::Collector::new(Arc::clone(&reg)), || {
            let res = with_budget(
                || -> u8 {
                    let _span = obs::Span::enter("doomed_stage");
                    obs::counter_add("work.progress", 3);
                    panic!("injected failure")
                },
                Duration::from_secs(10),
            );
            assert!(matches!(res, Err(Interrupt::Panicked(_))), "{res:?}");
        });
        // The counter bumped before the panic and the span (recorded on
        // drop, during the unwind) both landed in the caller's registry
        // even though the work ran on a helper thread and died.
        assert_eq!(reg.counter("work.progress").get(), 3);
        let snap = reg.snapshot();
        assert_eq!(snap.histogram("span.doomed_stage.ms").unwrap().count, 1);
    }

    #[test]
    fn with_budget_timeout_flushes_late_but_flushes() {
        use std::sync::Arc;
        let reg = Arc::new(obs::Registry::new());
        let res = obs::with_collector(obs::Collector::new(Arc::clone(&reg)), || {
            with_budget(
                || {
                    thread::sleep(Duration::from_millis(80));
                    obs::counter_add("late.work", 1);
                    0u8
                },
                Duration::from_millis(10),
            )
        });
        assert_eq!(res, Err(Interrupt::TimedOut));
        // The abandoned helper thread still writes into the shared
        // registry when it eventually finishes.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while reg.counter("late.work").get() == 0 {
            assert!(std::time::Instant::now() < deadline, "late flush never arrived");
            thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(reg.counter("late.work").get(), 1);
    }

    #[test]
    fn budget_enforced() {
        assert_eq!(with_budget(|| 5u8, Duration::from_secs(5)), Ok(5));
        let slow = || {
            thread::sleep(Duration::from_secs(2));
            0u8
        };
        assert_eq!(with_budget(slow, Duration::from_millis(20)), Err(Interrupt::TimedOut));
        match with_budget(|| -> u8 { panic!("late boom") }, Duration::from_secs(5)) {
            Err(Interrupt::Panicked(msg)) => assert!(msg.contains("late boom"), "{msg}"),
            other => panic!("expected Panicked, got {other:?}"),
        }
    }
}
