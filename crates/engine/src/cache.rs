//! Solve memoization cache.
//!
//! Experiment corpora routinely contain repeated instances (seed sweeps
//! over small grids, duplicated stress cases, re-solves under the same
//! options). Solving is deterministic given an instance and options, so
//! repeats can be answered from memory.
//!
//! The key is the instance's **full content** — `g` plus the exact job
//! sequence — together with a fingerprint of the solver options. Keying
//! by content rather than by a hash alone means a collision can never
//! hand back the wrong schedule; the `HashMap` underneath still gives
//! O(1) expected lookups. The job *sequence* (not the sorted multiset)
//! is deliberate: `SolveResult` assignments refer to jobs by index, so a
//! result is only valid for the exact order it was solved under.

use atsched_core::instance::{Instance, Job};
use atsched_core::solver::{SolveError, SolveResult, SolverOptions};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Default bound on memoized entries. Under sustained serve traffic the
/// cache would otherwise grow without limit; at this size the resident
/// set stays modest while seed-sweep workloads still hit repeatedly.
pub const DEFAULT_CACHE_CAPACITY: usize = 4096;

/// Cache key: solver-options fingerprint + full instance content.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) struct CacheKey {
    /// `Debug` rendering of [`SolverOptions`] — covers every field, so
    /// two option sets collide only when they are behaviorally
    /// identical.
    opts: String,
    g: i64,
    jobs: Vec<Job>,
}

impl CacheKey {
    pub(crate) fn new(inst: &Instance, opts: &SolverOptions) -> Self {
        CacheKey { opts: format!("{opts:?}"), g: inst.g, jobs: inst.jobs.clone() }
    }
}

/// Hit/miss/eviction counters, cheap to snapshot.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to a real solve.
    pub misses: u64,
    /// Entries displaced to stay within the capacity bound.
    pub evictions: u64,
}

impl CacheStats {
    /// `hits / (hits + misses)`, or 0 when there were no lookups.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Counter-wise difference (`self - earlier`), for per-batch deltas.
    pub fn since(&self, earlier: CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
            evictions: self.evictions.saturating_sub(earlier.evictions),
        }
    }
}

/// Map plus FIFO insertion order, updated together under one lock.
#[derive(Debug, Default)]
struct CacheTable {
    map: HashMap<CacheKey, Result<SolveResult, SolveError>>,
    /// Keys in insertion order; the front is the next eviction victim.
    order: VecDeque<CacheKey>,
}

/// Thread-safe, capacity-bounded memoization table for deterministic
/// solve outcomes.
///
/// Only deterministic outcomes are stored (solved, infeasible, instance
/// or LP errors); timeouts and panics are transient and never cached.
/// When the table is full the oldest insertion is evicted (FIFO — cheap,
/// and adequate because repeat traffic in experiment corpora arrives in
/// bursts close to the first solve).
#[derive(Debug)]
pub(crate) struct SolveCache {
    table: Mutex<CacheTable>,
    /// Maximum entries held; `0` disables the bound.
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl Default for SolveCache {
    fn default() -> Self {
        SolveCache::with_capacity(DEFAULT_CACHE_CAPACITY)
    }
}

impl SolveCache {
    /// Cache bounded to `capacity` entries (`0` = unbounded).
    pub(crate) fn with_capacity(capacity: usize) -> Self {
        SolveCache {
            table: Mutex::new(CacheTable::default()),
            capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Look up a key, bumping the hit/miss counters.
    pub(crate) fn get(&self, key: &CacheKey) -> Option<Result<SolveResult, SolveError>> {
        let found = self.table.lock().expect("cache lock").map.get(key).cloned();
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Store a deterministic outcome, evicting the oldest entries if the
    /// capacity bound would be exceeded.
    pub(crate) fn insert(&self, key: CacheKey, value: Result<SolveResult, SolveError>) {
        let mut table = self.table.lock().expect("cache lock");
        if table.map.insert(key.clone(), value).is_none() {
            table.order.push_back(key);
        }
        if self.capacity > 0 {
            while table.map.len() > self.capacity {
                let victim = table.order.pop_front().expect("order tracks map");
                table.map.remove(&victim);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Snapshot the counters.
    pub(crate) fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }

    /// Number of cached entries.
    pub(crate) fn len(&self) -> usize {
        self.table.lock().expect("cache lock").map.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atsched_core::solver::solve_nested;

    fn inst(g: i64, jobs: Vec<(i64, i64, i64)>) -> Instance {
        Instance::new(g, jobs.into_iter().map(|(r, d, p)| Job::new(r, d, p)).collect()).unwrap()
    }

    #[test]
    fn same_content_same_key_different_order_different_key() {
        let opts = SolverOptions::exact();
        let a = inst(2, vec![(0, 4, 2), (5, 9, 1)]);
        let b = inst(2, vec![(0, 4, 2), (5, 9, 1)]);
        let c = inst(2, vec![(5, 9, 1), (0, 4, 2)]);
        assert_eq!(CacheKey::new(&a, &opts), CacheKey::new(&b, &opts));
        assert_ne!(CacheKey::new(&a, &opts), CacheKey::new(&c, &opts));
    }

    #[test]
    fn options_are_part_of_the_key() {
        let i = inst(2, vec![(0, 4, 2)]);
        let k_exact = CacheKey::new(&i, &SolverOptions::exact());
        let k_float = CacheKey::new(&i, &SolverOptions::float());
        let k_polish = CacheKey::new(&i, &SolverOptions::exact().polished());
        assert_ne!(k_exact, k_float);
        assert_ne!(k_exact, k_polish);
    }

    mod key_distinguishes_mutations {
        //! Property (no false hits): any mutation of the instance
        //! content or of the solver-options fingerprint produces a
        //! *different* cache key, while byte-identical content produces
        //! the same key.

        use super::*;
        use atsched_core::rounding::RoundingChoice;
        use atsched_core::solver::{LpBackend, LpPath, PrecisionMode, ShardMode};
        use proptest::prelude::*;

        fn job() -> impl Strategy<Value = Job> {
            (0i64..16, 1i64..12, 1i64..6).prop_map(|(r, len, p)| Job::new(r, r + len, p.min(len)))
        }

        fn instance() -> impl Strategy<Value = Instance> {
            (1i64..5, proptest::collection::vec(job(), 1..7))
                .prop_filter_map("valid", |(g, jobs)| Instance::new(g, jobs).ok())
        }

        fn options() -> impl Strategy<Value = SolverOptions> {
            (
                0u8..3,
                any::<bool>(),
                any::<bool>(),
                any::<bool>(),
                0u8..3,
                3i64..6,
                0u8..3,
                (0u8..3, 0u8..3),
            )
                .prop_map(
                    |(backend, compact, use_ceiling, polish, round, depth, shard, arith)| {
                        let (precision, lp_path) = arith;
                        SolverOptions {
                            backend: match backend {
                                0 => LpBackend::Exact,
                                1 => LpBackend::Float,
                                _ => LpBackend::FloatThenSnap,
                            },
                            compact,
                            use_ceiling,
                            polish,
                            round_choice: match round {
                                0 => RoundingChoice::LargestFraction,
                                1 => RoundingChoice::FirstId,
                                _ => RoundingChoice::Shuffled(depth as u64),
                            },
                            ceiling_depth: depth,
                            shard: match shard {
                                0 => ShardMode::Auto,
                                1 => ShardMode::Off,
                                _ => ShardMode::Force,
                            },
                            precision: match precision {
                                0 => PrecisionMode::Hybrid,
                                1 => PrecisionMode::Exact,
                                _ => PrecisionMode::F64Unchecked,
                            },
                            lp_path: match lp_path {
                                0 => LpPath::Auto,
                                1 => LpPath::Tree,
                                _ => LpPath::Simplex,
                            },
                        }
                    },
                )
        }

        /// Apply one of the content mutations; returns `None` when the
        /// mutation does not apply (or would not change the content).
        fn mutate_instance(inst: &Instance, which: u8, delta: i64) -> Option<Instance> {
            let delta = 1 + delta.abs() % 4;
            let mut g = inst.g;
            let mut jobs = inst.jobs.clone();
            match which {
                0 => g += delta,
                1 => jobs[0].deadline += delta,
                2 => {
                    // Shrink processing, keeping the job valid.
                    if jobs[0].processing == 1 {
                        return None;
                    }
                    jobs[0].processing -= 1;
                }
                3 => jobs.push(Job::new(0, 30, 1)),
                4 => {
                    // Reversal only mutates content when it is not a
                    // palindrome (the key is order-sensitive).
                    let mut reversed = jobs.clone();
                    reversed.reverse();
                    if reversed == jobs {
                        return None;
                    }
                    jobs = reversed;
                }
                _ => {
                    if jobs.len() < 2 {
                        return None;
                    }
                    jobs.pop();
                }
            }
            Instance::new(g, jobs).ok()
        }

        fn mutate_options(opts: &SolverOptions, which: u8) -> SolverOptions {
            let mut m = opts.clone();
            match which {
                0 => {
                    m.backend = match m.backend {
                        LpBackend::Exact => LpBackend::Float,
                        _ => LpBackend::Exact,
                    }
                }
                1 => m.compact = !m.compact,
                2 => m.use_ceiling = !m.use_ceiling,
                3 => m.polish = !m.polish,
                4 => {
                    m.round_choice = match m.round_choice {
                        RoundingChoice::FirstId => RoundingChoice::LargestFraction,
                        _ => RoundingChoice::FirstId,
                    }
                }
                5 => {
                    m.shard = match m.shard {
                        ShardMode::Off => ShardMode::Auto,
                        _ => ShardMode::Off,
                    }
                }
                6 => {
                    m.precision = match m.precision {
                        PrecisionMode::Exact => PrecisionMode::Hybrid,
                        _ => PrecisionMode::Exact,
                    }
                }
                7 => {
                    m.lp_path = match m.lp_path {
                        LpPath::Simplex => LpPath::Auto,
                        _ => LpPath::Simplex,
                    }
                }
                _ => m.ceiling_depth += 1,
            }
            m
        }

        proptest! {
            #[test]
            fn identical_content_hits_mutated_content_misses(
                inst in instance(),
                opts in options(),
                which_inst in 0u8..6,
                which_opts in 0u8..9,
                delta in 0i64..8,
            ) {
                // Reflexivity: a clone is the same key (a repeat hits).
                let key = CacheKey::new(&inst, &opts);
                prop_assert_eq!(CacheKey::new(&inst.clone(), &opts.clone()), key.clone());

                // Any instance-content mutation changes the key.
                if let Some(mutated) = mutate_instance(&inst, which_inst, delta) {
                    prop_assert_ne!(CacheKey::new(&mutated, &opts), key.clone());
                }

                // Any options mutation changes the fingerprint, hence the key.
                let mutated_opts = mutate_options(&opts, which_opts);
                prop_assert_ne!(CacheKey::new(&inst, &mutated_opts), key);
            }
        }
    }

    #[test]
    fn counters_track_hits_and_misses() {
        let cache = SolveCache::default();
        let i = inst(2, vec![(0, 4, 2)]);
        let opts = SolverOptions::exact();
        let key = CacheKey::new(&i, &opts);

        assert!(cache.get(&key).is_none());
        cache.insert(key.clone(), solve_nested(&i, &opts));
        assert!(cache.get(&key).is_some());
        assert!(cache.get(&key).is_some());

        assert_eq!(cache.stats(), CacheStats { hits: 2, misses: 1, evictions: 0 });
        assert!((cache.stats().hit_rate() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn capacity_bound_evicts_oldest_first() {
        let cache = SolveCache::with_capacity(2);
        let opts = SolverOptions::exact();
        let instances: Vec<Instance> =
            (1..=3).map(|g| inst(g, vec![(0, 6, 2), (1, 5, 1)])).collect();
        let keys: Vec<CacheKey> = instances.iter().map(|i| CacheKey::new(i, &opts)).collect();

        for (i, k) in instances.iter().zip(&keys) {
            cache.insert(k.clone(), solve_nested(i, &opts));
        }
        // Capacity 2: the third insert displaced the first key.
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 1);
        assert!(cache.get(&keys[0]).is_none(), "oldest entry must be evicted");
        assert!(cache.get(&keys[1]).is_some());
        assert!(cache.get(&keys[2]).is_some());

        // Re-inserting an existing key replaces in place: no eviction,
        // no duplicate order entry.
        cache.insert(keys[1].clone(), solve_nested(&instances[1], &opts));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 1);

        // The evicted instance can be cached again afterwards.
        cache.insert(keys[0].clone(), solve_nested(&instances[0], &opts));
        assert!(cache.get(&keys[0]).is_some());
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 2);
    }

    #[test]
    fn zero_capacity_means_unbounded() {
        let cache = SolveCache::with_capacity(0);
        let opts = SolverOptions::exact();
        for g in 1..=20 {
            let i = inst(g, vec![(0, 6, 2)]);
            cache.insert(CacheKey::new(&i, &opts), solve_nested(&i, &opts));
        }
        assert_eq!(cache.len(), 20);
        assert_eq!(cache.stats().evictions, 0);
    }
}
