//! Solve memoization cache.
//!
//! Experiment corpora routinely contain repeated instances (seed sweeps
//! over small grids, duplicated stress cases, re-solves under the same
//! options). Solving is deterministic given an instance and options, so
//! repeats can be answered from memory.
//!
//! The key is the instance's **full content** — `g` plus the exact job
//! sequence — together with a fingerprint of the solver options. Keying
//! by content rather than by a hash alone means a collision can never
//! hand back the wrong schedule; the `HashMap` underneath still gives
//! O(1) expected lookups. The job *sequence* (not the sorted multiset)
//! is deliberate: `SolveResult` assignments refer to jobs by index, so a
//! result is only valid for the exact order it was solved under.

use atsched_core::instance::{Instance, Job};
use atsched_core::solver::{SolveError, SolveResult, SolverOptions};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Cache key: solver-options fingerprint + full instance content.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) struct CacheKey {
    /// `Debug` rendering of [`SolverOptions`] — covers every field, so
    /// two option sets collide only when they are behaviorally
    /// identical.
    opts: String,
    g: i64,
    jobs: Vec<Job>,
}

impl CacheKey {
    pub(crate) fn new(inst: &Instance, opts: &SolverOptions) -> Self {
        CacheKey { opts: format!("{opts:?}"), g: inst.g, jobs: inst.jobs.clone() }
    }
}

/// Hit/miss counters, cheap to snapshot.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to a real solve.
    pub misses: u64,
}

impl CacheStats {
    /// `hits / (hits + misses)`, or 0 when there were no lookups.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Counter-wise difference (`self - earlier`), for per-batch deltas.
    pub fn since(&self, earlier: CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
        }
    }
}

/// Thread-safe memoization table for deterministic solve outcomes.
///
/// Only deterministic outcomes are stored (solved, infeasible, instance
/// or LP errors); timeouts and panics are transient and never cached.
#[derive(Debug, Default)]
pub(crate) struct SolveCache {
    map: Mutex<HashMap<CacheKey, Result<SolveResult, SolveError>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl SolveCache {
    /// Look up a key, bumping the hit/miss counters.
    pub(crate) fn get(&self, key: &CacheKey) -> Option<Result<SolveResult, SolveError>> {
        let found = self.map.lock().expect("cache lock").get(key).cloned();
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Store a deterministic outcome.
    pub(crate) fn insert(&self, key: CacheKey, value: Result<SolveResult, SolveError>) {
        self.map.lock().expect("cache lock").insert(key, value);
    }

    /// Snapshot the counters.
    pub(crate) fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// Number of cached entries.
    pub(crate) fn len(&self) -> usize {
        self.map.lock().expect("cache lock").len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atsched_core::solver::solve_nested;

    fn inst(g: i64, jobs: Vec<(i64, i64, i64)>) -> Instance {
        Instance::new(g, jobs.into_iter().map(|(r, d, p)| Job::new(r, d, p)).collect()).unwrap()
    }

    #[test]
    fn same_content_same_key_different_order_different_key() {
        let opts = SolverOptions::exact();
        let a = inst(2, vec![(0, 4, 2), (5, 9, 1)]);
        let b = inst(2, vec![(0, 4, 2), (5, 9, 1)]);
        let c = inst(2, vec![(5, 9, 1), (0, 4, 2)]);
        assert_eq!(CacheKey::new(&a, &opts), CacheKey::new(&b, &opts));
        assert_ne!(CacheKey::new(&a, &opts), CacheKey::new(&c, &opts));
    }

    #[test]
    fn options_are_part_of_the_key() {
        let i = inst(2, vec![(0, 4, 2)]);
        let k_exact = CacheKey::new(&i, &SolverOptions::exact());
        let k_float = CacheKey::new(&i, &SolverOptions::float());
        let k_polish = CacheKey::new(&i, &SolverOptions::exact().polished());
        assert_ne!(k_exact, k_float);
        assert_ne!(k_exact, k_polish);
    }

    #[test]
    fn counters_track_hits_and_misses() {
        let cache = SolveCache::default();
        let i = inst(2, vec![(0, 4, 2)]);
        let opts = SolverOptions::exact();
        let key = CacheKey::new(&i, &opts);

        assert!(cache.get(&key).is_none());
        cache.insert(key.clone(), solve_nested(&i, &opts));
        assert!(cache.get(&key).is_some());
        assert!(cache.get(&key).is_some());

        assert_eq!(cache.stats(), CacheStats { hits: 2, misses: 1 });
        assert!((cache.stats().hit_rate() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(cache.len(), 1);
    }
}
