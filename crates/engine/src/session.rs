//! Incremental solving: long-lived sessions with delta amends.
//!
//! A [`Session`] pins one instance inside an [`Engine`] and re-solves it
//! after each [`JobDelta`] amendment, reusing as much of the previous
//! solve as correctness allows:
//!
//! 1. **Shard splicing.** The amended instance is re-decomposed at its
//!    laminar forest roots ([`crate::shard::plan`]); shards whose
//!    *normalized content* (machine parallelism + exact job list, after
//!    shifting the root window to slot 0) matches a part of the previous
//!    solve are spliced in without touching the solver. Content keying
//!    makes splices bit-identical by construction — there is nothing to
//!    re-verify per shard, and [`atsched_core::decompose::merge`]
//!    re-verifies the assembled schedule end to end anyway.
//! 2. **Engine cache.** Dirty shards first consult the engine's solve
//!    cache (shared with [`Engine::solve_batch`]), so a shard shape seen
//!    anywhere before — by any session or batch — is reused.
//! 3. **LP warm starts.** A genuinely dirty shard is solved with
//!    [`solve_nested_seeded`]: a dual certificate captured from the
//!    previous solve of the overlapping time region is offered to the
//!    new LP and reused only when it *proves* the unique optimum
//!    (see [`atsched_lp::Model::try_warm`]) — bit-identical or declined.
//!
//! The invariant is absolute: **any amend sequence yields exactly the
//! result a cold solve of the final instance would**. Every reuse layer
//! is either content-identical (1, 2) or proof-gated (3).
//!
//! Sessions deliberately ignore [`EngineConfig::timeout`]: the splice
//! bookkeeping needs borrowed state that the budget helper thread's
//! `'static` bound rules out, and amends are expected to be fast by
//! design. Panics are still contained per solve.
//!
//! ## Lifecycle
//!
//! [`Engine::open_session`] solves eagerly and registers the session in
//! the engine's table; [`Engine::session`] re-attaches to it by id (the
//! serve layer's correlation handle); [`Engine::close_session`] drops
//! the cached state. The engine keeps sessions until explicitly closed —
//! the serve layer layers TTL eviction on top.
//!
//! ## Metrics
//!
//! When the engine observes, sessions record `engine.open_ms` /
//! `engine.amend_ms` latency histograms, an `engine.amends` counter, an
//! `engine.sessions_open` gauge, per-amend reuse counters
//! (`engine.amend_shards_reused`, `engine.amend_shards_solved`,
//! `engine.amend_warm_hits`, `engine.amend_warm_misses`), and a
//! `span.amend.ms` span wrapping the re-solve.

use crate::batch::{settle, Engine, Outcome};
use crate::cache::CacheKey;
use crate::isolate::{isolated, Interrupt};
use crate::par::par_map_workers;
use crate::shard;
use atsched_core::decompose::{merge, Shard};
use atsched_core::delta::{apply, DeltaError, JobDelta};
use atsched_core::instance::{Instance, Job};
use atsched_core::solver::{solve_nested_seeded, SolveError, SolveResult, SolverOptions, WarmSeed};
use atsched_obs as obs;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Opaque session identifier, unique per [`Engine`].
///
/// Stable across [`Engine::session`] lookups; the serve layer uses it to
/// correlate `amend` requests with their `open`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SessionId(u64);

impl SessionId {
    /// The raw id, for wire protocols and logs.
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

impl From<u64> for SessionId {
    fn from(id: u64) -> Self {
        SessionId(id)
    }
}

impl fmt::Display for SessionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// The engine-side session registry: monotonically increasing ids and
/// the live session states.
#[derive(Debug, Default)]
pub(crate) struct SessionTable {
    next: AtomicU64,
    map: Mutex<HashMap<u64, Arc<Mutex<SessionState>>>>,
}

/// Content key for a previously solved part: machine parallelism plus
/// the exact (normalized) job list. Two shards with equal keys are the
/// same solver input, so their results are interchangeable bit for bit.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct PartKey {
    g: i64,
    jobs: Vec<Job>,
}

impl PartKey {
    fn of(inst: &Instance) -> Self {
        PartKey { g: inst.g, jobs: inst.jobs.clone() }
    }
}

/// Everything a session carries between amends.
#[derive(Debug)]
struct SessionState {
    /// The current (post-amend) instance.
    instance: Instance,
    /// The options the session was opened with (fixed for its lifetime).
    opts: SolverOptions,
    /// Outcome of the most recent solve.
    outcome: Outcome,
    /// Per-part results of the previous solve, keyed by normalized
    /// content. Rebuilt on every solve, so it never outgrows the
    /// current decomposition.
    parts: HashMap<PartKey, SolveResult>,
    /// Dual certificates from the previous solve, keyed by the absolute
    /// time hull `[lo, hi)` they were captured over. Offered to dirty
    /// shards overlapping that hull.
    seeds: Vec<(i64, i64, WarmSeed)>,
}

/// A live incremental-solving session (see the [module docs](self)).
///
/// Borrow-tied to its engine; cheap to re-obtain via [`Engine::session`].
/// Cloning the handle is not needed — the state behind it is shared.
#[derive(Debug)]
pub struct Session<'e> {
    engine: &'e Engine,
    id: SessionId,
    state: Arc<Mutex<SessionState>>,
}

impl Engine {
    /// Open a session on `inst`: solve it eagerly under this engine's
    /// policy and keep the per-part results for future amends.
    ///
    /// The options are fixed for the session's lifetime. The initial
    /// solve records into `engine.open_ms`; it captures no LP
    /// certificates (that costs an extra LP solve per shard), so warm
    /// starts begin with the second amend.
    pub fn open_session(&self, inst: Instance, opts: &SolverOptions) -> Session<'_> {
        let mut state = SessionState {
            instance: inst,
            opts: opts.clone(),
            outcome: Outcome::Failed("session not yet solved".into()),
            parts: HashMap::new(),
            seeds: Vec::new(),
        };
        let start = Instant::now();
        let outcome = self.observed(|| self.session_solve(&mut state, false));
        state.outcome = outcome;
        self.tally(&state.outcome);
        if self.cfg.observe {
            self.registry.histogram("engine.open_ms").record(start.elapsed().as_secs_f64() * 1e3);
        }

        let id = SessionId(self.sessions.next.fetch_add(1, Ordering::Relaxed) + 1);
        let state = Arc::new(Mutex::new(state));
        let open = {
            let mut map = self.sessions.map.lock().expect("session table lock");
            map.insert(id.0, Arc::clone(&state));
            map.len()
        };
        if self.cfg.observe {
            self.registry.gauge("engine.sessions_open").set(open as i64);
        }
        Session { engine: self, id, state }
    }

    /// Re-attach to an open session by id.
    pub fn session(&self, id: SessionId) -> Option<Session<'_>> {
        let state = {
            let map = self.sessions.map.lock().expect("session table lock");
            Arc::clone(map.get(&id.0)?)
        };
        Some(Session { engine: self, id, state })
    }

    /// Close a session, dropping its cached parts and seeds. Returns
    /// whether the id was open. (Results already copied into the
    /// engine's solve cache stay there.)
    pub fn close_session(&self, id: SessionId) -> bool {
        let (removed, open) = {
            let mut map = self.sessions.map.lock().expect("session table lock");
            (map.remove(&id.0).is_some(), map.len())
        };
        if removed && self.cfg.observe {
            self.registry.gauge("engine.sessions_open").set(open as i64);
        }
        removed
    }

    /// Number of currently open sessions.
    pub fn open_sessions(&self) -> usize {
        self.sessions.map.lock().expect("session table lock").len()
    }

    /// Solve `state.instance`, splicing previous parts where the
    /// decomposition's content matches and seeding dirty shards with
    /// captured LP certificates. `amend` enables certificate capture and
    /// the amend reuse counters (the opening solve skips both).
    fn session_solve(&self, state: &mut SessionState, amend: bool) -> Outcome {
        let start = Instant::now();
        let inst = state.instance.clone();
        let opts = state.opts.clone();
        let prev_parts = std::mem::take(&mut state.parts);
        let prev_seeds = std::mem::take(&mut state.seeds);
        let mut next_parts: HashMap<PartKey, SolveResult> = HashMap::new();
        let mut next_seeds: Vec<(i64, i64, WarmSeed)> = Vec::new();
        let mut reused = 0u64;
        let mut dirty_solved = 0u64;
        let mut warm_hits = 0u64;
        let mut warm_misses = 0u64;

        let solved: Result<Result<SolveResult, SolveError>, Interrupt> = isolated(|| {
            match shard::plan(&inst, &opts) {
                Some(dec) => {
                    let sopts = shard::shard_options(&opts);
                    let n = dec.len();
                    // Resolution pass: splice from session parts, then
                    // from the engine cache; everything else is dirty.
                    let mut slots: Vec<Option<Result<SolveResult, SolveError>>> =
                        (0..n).map(|_| None).collect();
                    let mut dirty: Vec<usize> = Vec::new();
                    for (i, sh) in dec.shards.iter().enumerate() {
                        if let Some(part) = prev_parts.get(&PartKey::of(&sh.instance)) {
                            reused += 1;
                            carry_seeds(&prev_seeds, abs_hull(sh), &mut next_seeds);
                            slots[i] = Some(Ok(part.clone()));
                        } else if let Some(found) = self
                            .cfg
                            .cache
                            .then(|| CacheKey::new(&sh.instance, &sopts))
                            .and_then(|k| self.cache.get(&k))
                        {
                            if self.cfg.observe {
                                self.registry.counter("engine.shard_cache_hits").inc();
                            }
                            reused += 1;
                            slots[i] = Some(found);
                        } else {
                            dirty.push(i);
                        }
                    }
                    dirty_solved += dirty.len() as u64;

                    // Fan the dirty shards out, seeded by hull overlap.
                    let workers = self.cfg.effective_workers();
                    let collector = obs::current_collector();
                    let dirty_out = par_map_workers(dirty, workers, |i| {
                        let sh = &dec.shards[i];
                        let seed = find_seed(&prev_seeds, abs_hull(sh));
                        let run = || solve_nested_seeded(&sh.instance, &sopts, seed, amend);
                        let res = match &collector {
                            Some(c) => obs::with_collector(c.clone(), run),
                            None => run(),
                        };
                        (i, res)
                    });
                    for (i, res) in dirty_out {
                        let sh = &dec.shards[i];
                        let key = self.cfg.cache.then(|| CacheKey::new(&sh.instance, &sopts));
                        match res {
                            Ok(s) => {
                                if s.warm_hit {
                                    warm_hits += 1;
                                } else if amend {
                                    warm_misses += 1;
                                }
                                if let Some(seed) = s.seed {
                                    let (lo, hi) = abs_hull(sh);
                                    next_seeds.push((lo, hi, seed));
                                }
                                if let Some(key) = key {
                                    self.cache.insert(key, Ok(s.result.clone()));
                                }
                                slots[i] = Some(Ok(s.result));
                            }
                            Err(e) => {
                                if let Some(key) = key {
                                    self.cache.insert(key, Err(e.clone()));
                                }
                                slots[i] = Some(Err(e));
                            }
                        }
                    }

                    // Combine in root order; the first error wins,
                    // matching both the monolithic solve and
                    // [`shard::solve_decomposed`]. Successful parts are
                    // kept for future amends even when a sibling failed —
                    // content keys stay valid regardless.
                    let mut parts: Vec<SolveResult> = Vec::with_capacity(n);
                    let mut first_err: Option<SolveError> = None;
                    for (sh, slot) in dec.shards.iter().zip(slots) {
                        match slot.expect("every shard resolved") {
                            Ok(r) => {
                                next_parts.insert(PartKey::of(&sh.instance), r.clone());
                                if first_err.is_none() {
                                    parts.push(r);
                                }
                            }
                            Err(e) => {
                                if first_err.is_none() {
                                    first_err = Some(e);
                                }
                            }
                        }
                    }
                    match first_err {
                        Some(e) => Err(e),
                        None => {
                            let span = obs::Span::enter("solve.merge");
                            let merged = merge(&inst, &dec, &parts);
                            drop(span);
                            obs::counter_add("engine.shards", n as u64);
                            Ok(merged)
                        }
                    }
                }
                // Single-root (or sharding-off) instances degenerate to
                // one pseudo-shard: splice on identical content, seed
                // from the whole-instance hull otherwise.
                None => {
                    let key = PartKey::of(&inst);
                    let hull = inst.horizon().unwrap_or((0, 0));
                    if let Some(part) = prev_parts.get(&key) {
                        reused += 1;
                        carry_seeds(&prev_seeds, hull, &mut next_seeds);
                        let part = part.clone();
                        next_parts.insert(key, part.clone());
                        Ok(part)
                    } else {
                        dirty_solved += 1;
                        let seed = find_seed(&prev_seeds, hull);
                        match solve_nested_seeded(&inst, &opts, seed, amend) {
                            Ok(s) => {
                                if s.warm_hit {
                                    warm_hits += 1;
                                } else if amend {
                                    warm_misses += 1;
                                }
                                if let Some(sd) = s.seed {
                                    next_seeds.push((hull.0, hull.1, sd));
                                }
                                next_parts.insert(key, s.result.clone());
                                Ok(s.result)
                            }
                            Err(e) => Err(e),
                        }
                    }
                }
            }
        });

        state.parts = next_parts;
        state.seeds = next_seeds;
        if self.cfg.observe && amend {
            self.registry.counter("engine.amends").inc();
            self.registry.counter("engine.amend_shards_reused").add(reused);
            self.registry.counter("engine.amend_shards_solved").add(dirty_solved);
            self.registry.counter("engine.amend_warm_hits").add(warm_hits);
            self.registry.counter("engine.amend_warm_misses").add(warm_misses);
        }

        match solved {
            Ok(deterministic) => {
                if let Some(key) = self.cfg.cache.then(|| CacheKey::new(&inst, &opts)) {
                    self.cache.insert(key, deterministic.clone());
                    if self.cfg.observe {
                        self.registry.gauge("engine.cache_entries").set(self.cache.len() as i64);
                    }
                }
                settle(deterministic, start.elapsed(), false)
            }
            Err(Interrupt::TimedOut) => Outcome::TimedOut, // unreachable: sessions never budget
            Err(Interrupt::Panicked(msg)) => Outcome::Failed(format!("solver panicked: {msg}")),
        }
    }
}

impl Session<'_> {
    /// This session's identifier.
    pub fn id(&self) -> SessionId {
        self.id
    }

    /// The outcome of the most recent solve (open or amend).
    pub fn outcome(&self) -> Outcome {
        self.state.lock().expect("session lock").outcome.clone()
    }

    /// The current (post-amend) instance.
    pub fn instance(&self) -> Instance {
        self.state.lock().expect("session lock").instance.clone()
    }

    /// Apply `delta` to the session's instance and re-solve
    /// incrementally.
    ///
    /// On a delta error ([`DeltaError`]) the session is untouched. An
    /// amend whose *solve* fails (e.g. the amended instance is
    /// infeasible) keeps the session open on the amended instance —
    /// returning [`Outcome::Infeasible`] — so a later amend can repair
    /// it; reusable parts from earlier solves are retained throughout.
    ///
    /// The returned outcome is bit-identical to what a cold
    /// [`Engine::solve_one`] of the amended instance would produce.
    pub fn amend(&self, delta: &JobDelta) -> Result<Outcome, DeltaError> {
        let mut st = self.state.lock().expect("session lock");
        st.instance = apply(&st.instance, delta)?;
        let start = Instant::now();
        let outcome = self.engine.observed(|| {
            let _span = obs::Span::enter("amend");
            self.engine.session_solve(&mut st, true)
        });
        st.outcome = outcome.clone();
        drop(st);
        self.engine.tally(&outcome);
        if self.engine.cfg.observe {
            self.engine
                .registry
                .histogram("engine.amend_ms")
                .record(start.elapsed().as_secs_f64() * 1e3);
        }
        Ok(outcome)
    }
}

/// A shard's absolute time hull `[lo, hi)` (offset undone).
fn abs_hull(sh: &Shard) -> (i64, i64) {
    let (lo, hi) = sh.instance.horizon().unwrap_or((0, 0));
    (sh.offset + lo, sh.offset + hi)
}

/// The first previous-solve seed overlapping `hull`, if any.
fn find_seed(seeds: &[(i64, i64, WarmSeed)], hull: (i64, i64)) -> Option<&WarmSeed> {
    seeds.iter().find(|(lo, hi, _)| *lo < hull.1 && hull.0 < *hi).map(|(_, _, s)| s)
}

/// Carry every seed overlapping `hull` forward under the new hull (a
/// spliced shard keeps its region's certificates alive for the amend
/// that eventually dirties it).
fn carry_seeds(
    seeds: &[(i64, i64, WarmSeed)],
    hull: (i64, i64),
    out: &mut Vec<(i64, i64, WarmSeed)>,
) {
    for (lo, hi, seed) in seeds {
        if *lo < hull.1 && hull.0 < *hi {
            out.push((hull.0, hull.1, seed.clone()));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::EngineConfig;
    use atsched_core::solver::ShardMode;

    fn inst(g: i64, jobs: Vec<(i64, i64, i64)>) -> Instance {
        Instance::new(g, jobs.into_iter().map(|(r, d, p)| Job::new(r, d, p)).collect()).unwrap()
    }

    /// `roots` copies of a 3-job subtree at disjoint offsets.
    fn many_root(roots: usize) -> Instance {
        let mut jobs = Vec::new();
        for k in 0..roots as i64 {
            let base = 12 * k;
            jobs.push((base, base + 8, 2));
            jobs.push((base + 1, base + 4, 1));
            jobs.push((base + 5, base + 7, 1));
        }
        inst(2, jobs)
    }

    fn assert_bit_identical(a: &Outcome, b: &Outcome) {
        match (a, b) {
            (Outcome::Solved(x), Outcome::Solved(y)) => {
                assert_eq!(x.result.schedule, y.result.schedule);
                assert_eq!(x.result.z, y.result.z);
                assert_eq!(x.result.stats.lp_objective_exact, y.result.stats.lp_objective_exact);
                assert_eq!(x.result.stats.opened_slots, y.result.stats.opened_slots);
            }
            (Outcome::Infeasible, Outcome::Infeasible) => {}
            other => panic!("outcome mismatch: {other:?}"),
        }
    }

    #[test]
    fn open_then_amend_matches_cold_solve() {
        let opts = SolverOptions { shard: ShardMode::Force, ..SolverOptions::exact() };
        let engine = Engine::new(EngineConfig::default().workers(2));
        let session = engine.open_session(many_root(4), &opts);
        assert!(session.outcome().is_solved());

        // Move one job's window inside the second root, then add and
        // remove jobs; after every amend the outcome must be
        // bit-identical to a cold solve of the session's instance.
        let deltas = vec![
            JobDelta::new().modify_window(4, 13, 17),
            JobDelta::new().add(Job::new(1, 4, 1)),
            JobDelta::new().remove(5),
        ];
        let cold_engine = Engine::new(EngineConfig::default().cache(false).workers(2));
        for delta in &deltas {
            let outcome = session.amend(delta).expect("delta applies");
            let cold = cold_engine.solve_one(&session.instance(), &opts);
            assert_bit_identical(&outcome, &cold);
        }
    }

    #[test]
    fn amend_reuses_untouched_shards() {
        let opts = SolverOptions { shard: ShardMode::Force, ..SolverOptions::exact() };
        // Cache off isolates the session's own part splicing from the
        // engine-wide shard cache.
        let engine = Engine::new(EngineConfig::default().workers(1).cache(false));
        let session = engine.open_session(many_root(4), &opts);

        // Dirty only the second root (jobs 3..6 live in it).
        session.amend(&JobDelta::new().modify_window(4, 13, 17)).unwrap();
        let snap = engine.registry().snapshot();
        assert_eq!(snap.counter("engine.amend_shards_reused"), Some(3), "{snap:?}");
        assert_eq!(snap.counter("engine.amend_shards_solved"), Some(1), "{snap:?}");
        assert_eq!(snap.counter("engine.amends"), Some(1));
        assert_eq!(snap.histogram("engine.amend_ms").map(|h| h.count), Some(1));
        assert_eq!(snap.histogram("span.amend.ms").map(|h| h.count), Some(1));
    }

    #[test]
    fn amends_that_split_and_merge_roots_stay_exact() {
        let opts = SolverOptions { shard: ShardMode::Force, ..SolverOptions::exact() };
        let engine = Engine::new(EngineConfig::default().workers(2));
        // Two roots bridged into one by a spanning job, then split again.
        let session = engine.open_session(many_root(2), &opts);
        let cold = Engine::new(EngineConfig::default().cache(false));

        let bridged = session.amend(&JobDelta::new().add(Job::new(0, 20, 1))).unwrap();
        assert_bit_identical(&bridged, &cold.solve_one(&session.instance(), &opts));

        let split = session.amend(&JobDelta::new().remove(6)).unwrap();
        assert_bit_identical(&split, &cold.solve_one(&session.instance(), &opts));
    }

    #[test]
    fn infeasible_amend_keeps_session_repairable() {
        let opts = SolverOptions::exact();
        let engine = Engine::new(EngineConfig::default());
        let session = engine.open_session(inst(1, vec![(0, 4, 2)]), &opts);
        assert!(session.outcome().is_solved());

        // g=1, three unit jobs in a 2-slot window: infeasible.
        let overload =
            JobDelta::new().add(Job::new(0, 2, 1)).add(Job::new(0, 2, 1)).add(Job::new(0, 2, 1));
        let outcome = session.amend(&overload).unwrap();
        assert!(matches!(outcome, Outcome::Infeasible));
        assert_eq!(session.instance().num_jobs(), 4);

        // Removing the overload repairs the session.
        let repaired = session.amend(&JobDelta::new().remove(1).remove(2).remove(3)).unwrap();
        assert!(repaired.is_solved());
    }

    #[test]
    fn bad_delta_leaves_session_untouched() {
        let engine = Engine::new(EngineConfig::default());
        let session =
            engine.open_session(inst(2, vec![(0, 4, 2), (1, 3, 1)]), &SolverOptions::exact());
        let before = session.instance();
        let err = session.amend(&JobDelta::new().remove(9)).unwrap_err();
        assert!(matches!(err, DeltaError::UnknownJob { .. }));
        assert_eq!(session.instance(), before);
        assert!(session.outcome().is_solved());
    }

    #[test]
    fn session_table_lifecycle() {
        let engine = Engine::new(EngineConfig::default());
        let opts = SolverOptions::exact();
        let a = engine.open_session(inst(2, vec![(0, 4, 2)]), &opts).id();
        let b = engine.open_session(inst(2, vec![(0, 5, 3)]), &opts).id();
        assert_ne!(a, b);
        assert_eq!(engine.open_sessions(), 2);
        assert_eq!(engine.registry().snapshot().gauge("engine.sessions_open"), Some(2));

        // Re-attach and amend through the looked-up handle.
        let found = engine.session(a).expect("session a open");
        assert_eq!(found.id(), a);
        assert!(found.amend(&JobDelta::new().add(Job::new(1, 3, 1))).unwrap().is_solved());

        assert!(engine.close_session(a));
        assert!(!engine.close_session(a), "double close is a no-op");
        assert!(engine.session(a).is_none());
        assert_eq!(engine.open_sessions(), 1);
        assert_eq!(engine.registry().snapshot().gauge("engine.sessions_open"), Some(1));
        assert!(engine.close_session(b));
    }

    #[test]
    fn rigid_amends_warm_start_the_lp() {
        // Fully rigid instances (window length == processing) have
        // provably unique LP optima, and the LP model depends only on
        // window *shapes*, not absolute times — so sliding a rigid
        // instance along the timeline changes its content (dirty, no
        // splice) while the certificate captured by the previous amend
        // still proves the new optimum. The simplex never runs.
        let opts = SolverOptions::exact();
        let engine = Engine::new(EngineConfig::default().workers(1).cache(false));
        let session = engine.open_session(inst(2, vec![(0, 4, 4), (0, 4, 4)]), &opts);
        assert!(session.outcome().is_solved());

        // Amend 1: dirty solve, no seed yet (open captures none) — a
        // warm miss that captures the certificate. Amend 2: dirty again,
        // hulls overlap, certificate accepted.
        session.amend(&JobDelta::new().modify_window(0, 1, 5).modify_window(1, 1, 5)).unwrap();
        session.amend(&JobDelta::new().modify_window(0, 2, 6).modify_window(1, 2, 6)).unwrap();
        let snap = engine.registry().snapshot();
        assert_eq!(snap.counter("engine.amend_warm_misses"), Some(1), "{snap:?}");
        assert_eq!(snap.counter("engine.amend_warm_hits"), Some(1), "{snap:?}");
        // Bit-identity holds throughout, warm or cold.
        let cold =
            Engine::new(EngineConfig::default().cache(false)).solve_one(&session.instance(), &opts);
        assert_bit_identical(&session.outcome(), &cold);
    }
}
