//! Bounded span-event buffer and Chrome trace-event JSON export.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Default event capacity (~1M events ≈ a few hundred MB of JSON; far
/// above any bench corpus, small enough to bound a runaway soak).
const DEFAULT_CAPACITY: usize = 1 << 20;

static NEXT_TID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// Small stable per-thread id for trace rows (OS thread ids are
    /// u64 noise; Chrome renders one row per tid).
    static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
}

/// One completed span, relative to the buffer's epoch.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Stage name.
    pub name: &'static str,
    /// Start offset from the buffer epoch, microseconds.
    pub ts_us: f64,
    /// Duration, microseconds.
    pub dur_us: f64,
    /// Stable per-thread row id.
    pub tid: u64,
}

/// Append-only bounded buffer of completed span events.
///
/// Created by whoever wants a trace (the CLI's `--trace-out`), attached
/// to a [`crate::Collector`], filled by [`crate::Span`] drops, and
/// exported with [`TraceBuffer::to_chrome_json`].
///
/// ## Capacity semantics
///
/// The buffer is append-only up to `capacity` events; once full, every
/// further event is **silently discarded** (never evicting older
/// events — a trace keeps its beginning, which is where setup cost and
/// first-request anomalies live). Discards are counted: read the total
/// via [`dropped`](Self::dropped), and when the recording span's
/// collector carries a registry the drop is also bumped into its
/// `obs.trace_dropped` counter, so registry snapshots expose trace
/// truncation without asking the buffer.
#[derive(Debug)]
pub struct TraceBuffer {
    epoch: Instant,
    capacity: usize,
    events: Mutex<Vec<TraceEvent>>,
    dropped: AtomicU64,
}

impl Default for TraceBuffer {
    fn default() -> Self {
        Self::new()
    }
}

fn lock(m: &Mutex<Vec<TraceEvent>>) -> MutexGuard<'_, Vec<TraceEvent>> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl TraceBuffer {
    /// New buffer with the default capacity.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_CAPACITY)
    }

    /// New buffer holding at most `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        TraceBuffer {
            epoch: Instant::now(),
            capacity,
            events: Mutex::new(Vec::new()),
            dropped: AtomicU64::new(0),
        }
    }

    /// Append one completed span (called from [`crate::Span`]'s drop).
    /// Returns whether the event was kept — `false` means it was
    /// dropped against capacity (and counted).
    pub(crate) fn record(&self, name: &'static str, start: Instant, dur: Duration) -> bool {
        let ts = start.checked_duration_since(self.epoch).unwrap_or(Duration::ZERO);
        let event = TraceEvent {
            name,
            ts_us: ts.as_nanos() as f64 / 1e3,
            dur_us: dur.as_nanos() as f64 / 1e3,
            tid: TID.with(|t| *t),
        };
        let mut events = lock(&self.events);
        if events.len() < self.capacity {
            events.push(event);
            true
        } else {
            drop(events);
            self.dropped.fetch_add(1, Ordering::Relaxed);
            false
        }
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        lock(&self.events).len()
    }

    /// Whether the buffer holds no events.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events dropped because the buffer was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Copy of the buffered events, in completion order.
    pub fn events(&self) -> Vec<TraceEvent> {
        lock(&self.events).clone()
    }

    /// Render the buffer as Chrome trace-event JSON (the
    /// `{"traceEvents": [...]}` object format), loadable in
    /// `chrome://tracing` or Perfetto. Spans are complete events
    /// (`"ph":"X"`) with microsecond timestamps.
    pub fn to_chrome_json(&self) -> String {
        let events = lock(&self.events);
        let mut out = String::with_capacity(64 + events.len() * 96);
        out.push_str("{\"traceEvents\":[");
        for (i, e) in events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":\"");
            escape_into(&mut out, e.name);
            out.push_str("\",\"cat\":\"solver\",\"ph\":\"X\",\"pid\":1,\"tid\":");
            out.push_str(&e.tid.to_string());
            out.push_str(",\"ts\":");
            push_f64(&mut out, e.ts_us);
            out.push_str(",\"dur\":");
            push_f64(&mut out, e.dur_us);
            out.push('}');
        }
        out.push_str("],\"displayTimeUnit\":\"ms\"}");
        out
    }
}

/// JSON string escaping for span names (identifiers in practice, but
/// escape defensively).
fn escape_into(out: &mut String, s: &str) {
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

/// Write a finite, non-negative f64 with 3 decimal places (nanosecond
/// resolution for microsecond fields) without scientific notation.
fn push_f64(out: &mut String, v: f64) {
    out.push_str(&format!("{v:.3}"));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::{with_collector, Collector};
    use crate::registry::Registry;
    use crate::span::Span;
    use std::sync::Arc;

    #[test]
    fn spans_land_in_the_trace_buffer_in_completion_order() {
        let reg = Arc::new(Registry::new());
        let trace = Arc::new(TraceBuffer::new());
        let collector = Collector::new(reg).with_trace(Arc::clone(&trace));
        with_collector(collector, || {
            let _outer = Span::enter("outer");
            let _inner = Span::enter("inner");
        });
        let events = trace.events();
        assert_eq!(events.len(), 2);
        // Inner drops first; both share a thread row.
        assert_eq!(events[0].name, "inner");
        assert_eq!(events[1].name, "outer");
        assert_eq!(events[0].tid, events[1].tid);
        // Nesting: outer starts no later and ends no earlier.
        assert!(events[1].ts_us <= events[0].ts_us);
        assert!(events[1].ts_us + events[1].dur_us >= events[0].ts_us + events[0].dur_us);
    }

    #[test]
    fn chrome_json_is_well_formed() {
        let trace = TraceBuffer::new();
        trace.record("lp", Instant::now(), Duration::from_micros(1500));
        trace.record("round", Instant::now(), Duration::from_nanos(250));
        let json = trace.to_chrome_json();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"name\":\"lp\""));
        assert!(json.contains("\"dur\":1500.000"));
        // Sub-microsecond durations keep nanosecond resolution.
        assert!(json.contains("\"dur\":0.250"));
        // Balanced braces/brackets — cheap structural sanity check.
        assert_eq!(json.matches('{').count(), json.matches('}').count(), "unbalanced braces");
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn capacity_overflow_drops_and_counts() {
        let trace = TraceBuffer::with_capacity(2);
        for _ in 0..5 {
            trace.record("x", Instant::now(), Duration::from_micros(1));
        }
        assert_eq!(trace.len(), 2);
        assert_eq!(trace.dropped(), 3);
    }
}
