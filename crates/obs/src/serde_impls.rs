//! Wire (de)serialization for snapshot types, behind the `serde`
//! feature.
//!
//! The vendored serde stub has no map `Serialize` impls, so the
//! name-keyed sections are built manually as `Value::Map` trees — the
//! same idiom `crates/serve/src/protocol.rs` uses. On the wire a
//! [`RegistrySnapshot`] is:
//!
//! ```json
//! {
//!   "counters":   { "lp.pivots": 42, ... },
//!   "gauges":     { "serve.inflight": 0, ... },
//!   "histograms": { "span.lp.ms": { "count": 9, "sum": ..., "min": ...,
//!                                    "max": ..., "p50": ..., "p95": ...,
//!                                    "p99": ... }, ... }
//! }
//! ```

use crate::registry::{HistogramSnapshot, RegistrySnapshot};
use serde::de::{from_value, Deserialize, Deserializer, Error as DeError};
use serde::ser::{to_value, Error as SerError, Serialize, Serializer};
use serde::value::Value;

impl Serialize for HistogramSnapshot {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::Map(vec![
            ("count".to_string(), uint_value(self.count)),
            ("sum".to_string(), Value::Float(self.sum)),
            ("min".to_string(), Value::Float(self.min)),
            ("max".to_string(), Value::Float(self.max)),
            ("p50".to_string(), Value::Float(self.p50)),
            ("p95".to_string(), Value::Float(self.p95)),
            ("p99".to_string(), Value::Float(self.p99)),
        ]))
    }
}

impl<'de> Deserialize<'de> for HistogramSnapshot {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let entries = expect_map(deserializer.deserialize_value()?).map_err(D::Error::custom)?;
        let mut snap = HistogramSnapshot::default();
        for (key, value) in entries {
            match key.as_str() {
                "count" => snap.count = from_value(value).map_err(D::Error::custom)?,
                "sum" => snap.sum = from_value(value).map_err(D::Error::custom)?,
                "min" => snap.min = from_value(value).map_err(D::Error::custom)?,
                "max" => snap.max = from_value(value).map_err(D::Error::custom)?,
                "p50" => snap.p50 = from_value(value).map_err(D::Error::custom)?,
                "p95" => snap.p95 = from_value(value).map_err(D::Error::custom)?,
                "p99" => snap.p99 = from_value(value).map_err(D::Error::custom)?,
                other => {
                    return Err(D::Error::custom(format!("unknown histogram field `{other}`")))
                }
            }
        }
        Ok(snap)
    }
}

impl Serialize for RegistrySnapshot {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let counters =
            self.counters.iter().map(|(name, v)| (name.clone(), uint_value(*v))).collect();
        let gauges = self.gauges.iter().map(|(name, v)| (name.clone(), Value::Int(*v))).collect();
        let histograms = self
            .histograms
            .iter()
            .map(|(name, h)| Ok((name.clone(), to_value(h).map_err(S::Error::custom)?)))
            .collect::<Result<Vec<_>, S::Error>>()?;
        serializer.serialize_value(Value::Map(vec![
            ("counters".to_string(), Value::Map(counters)),
            ("gauges".to_string(), Value::Map(gauges)),
            ("histograms".to_string(), Value::Map(histograms)),
        ]))
    }
}

impl<'de> Deserialize<'de> for RegistrySnapshot {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let entries = expect_map(deserializer.deserialize_value()?).map_err(D::Error::custom)?;
        let mut snap = RegistrySnapshot::default();
        for (key, value) in entries {
            let section = expect_map(value).map_err(D::Error::custom)?;
            match key.as_str() {
                "counters" => {
                    for (name, v) in section {
                        snap.counters.push((name, from_value(v).map_err(D::Error::custom)?));
                    }
                }
                "gauges" => {
                    for (name, v) in section {
                        snap.gauges.push((name, from_value(v).map_err(D::Error::custom)?));
                    }
                }
                "histograms" => {
                    for (name, v) in section {
                        snap.histograms.push((name, from_value(v).map_err(D::Error::custom)?));
                    }
                }
                other => {
                    return Err(D::Error::custom(format!("unknown registry section `{other}`")))
                }
            }
        }
        Ok(snap)
    }
}

fn uint_value(v: u64) -> Value {
    match i64::try_from(v) {
        Ok(i) => Value::Int(i),
        Err(_) => Value::UInt(v),
    }
}

fn expect_map(v: Value) -> Result<Vec<(String, Value)>, String> {
    match v {
        Value::Map(entries) => Ok(entries),
        other => Err(format!("expected map, got {}", other.kind())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    #[test]
    fn registry_snapshot_roundtrips_through_value() {
        let reg = Registry::new();
        reg.counter("lp.pivots").add(42);
        reg.gauge("inflight").set(-2);
        let h = reg.histogram("span.lp.ms");
        h.record(1.5);
        h.record(80.0);
        let snap = reg.snapshot();
        let value = to_value(&snap).unwrap();
        let back: RegistrySnapshot = from_value(value).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn snapshot_serializes_as_name_keyed_maps() {
        let reg = Registry::new();
        reg.counter("a").inc();
        let value = to_value(&reg.snapshot()).unwrap();
        let Value::Map(sections) = value else { panic!("not a map") };
        assert_eq!(sections[0].0, "counters");
        let Value::Map(counters) = &sections[0].1 else { panic!("counters not a map") };
        assert_eq!(counters[0], ("a".to_string(), Value::Int(1)));
    }
}
