//! Wire (de)serialization for snapshot types, behind the `serde`
//! feature.
//!
//! The vendored serde stub has no map `Serialize` impls, so the
//! name-keyed sections are built manually as `Value::Map` trees — the
//! same idiom `crates/serve/src/protocol.rs` uses. On the wire a
//! [`RegistrySnapshot`] is:
//!
//! ```json
//! {
//!   "counters":   { "lp.pivots": 42, ... },
//!   "gauges":     { "serve.inflight": 0, ... },
//!   "histograms": { "span.lp.ms": { "count": 9, "sum": ..., "min": ...,
//!                                    "max": ..., "p50": ..., "p95": ...,
//!                                    "p99": ... }, ... }
//! }
//! ```

use crate::registry::{HistogramSnapshot, RegistrySnapshot};
use crate::window::{WindowRates, WindowStats, WindowedHistogramSnapshot};
use serde::de::{from_value, Deserialize, Deserializer, Error as DeError};
use serde::ser::{to_value, Error as SerError, Serialize, Serializer};
use serde::value::Value;

impl Serialize for HistogramSnapshot {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::Map(vec![
            ("count".to_string(), uint_value(self.count)),
            ("sum".to_string(), Value::Float(self.sum)),
            ("min".to_string(), Value::Float(self.min)),
            ("max".to_string(), Value::Float(self.max)),
            ("p50".to_string(), Value::Float(self.p50)),
            ("p95".to_string(), Value::Float(self.p95)),
            ("p99".to_string(), Value::Float(self.p99)),
        ]))
    }
}

impl<'de> Deserialize<'de> for HistogramSnapshot {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let entries = expect_map(deserializer.deserialize_value()?).map_err(D::Error::custom)?;
        let mut snap = HistogramSnapshot::default();
        for (key, value) in entries {
            match key.as_str() {
                "count" => snap.count = from_value(value).map_err(D::Error::custom)?,
                "sum" => snap.sum = from_value(value).map_err(D::Error::custom)?,
                "min" => snap.min = from_value(value).map_err(D::Error::custom)?,
                "max" => snap.max = from_value(value).map_err(D::Error::custom)?,
                "p50" => snap.p50 = from_value(value).map_err(D::Error::custom)?,
                "p95" => snap.p95 = from_value(value).map_err(D::Error::custom)?,
                "p99" => snap.p99 = from_value(value).map_err(D::Error::custom)?,
                other => {
                    return Err(D::Error::custom(format!("unknown histogram field `{other}`")))
                }
            }
        }
        Ok(snap)
    }
}

impl Serialize for WindowRates {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::Map(vec![
            ("rate_10s".to_string(), Value::Float(self.rate_10s)),
            ("rate_1m".to_string(), Value::Float(self.rate_1m)),
            ("rate_5m".to_string(), Value::Float(self.rate_5m)),
        ]))
    }
}

impl<'de> Deserialize<'de> for WindowRates {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let entries = expect_map(deserializer.deserialize_value()?).map_err(D::Error::custom)?;
        let mut rates = WindowRates::default();
        for (key, value) in entries {
            match key.as_str() {
                "rate_10s" => rates.rate_10s = from_value(value).map_err(D::Error::custom)?,
                "rate_1m" => rates.rate_1m = from_value(value).map_err(D::Error::custom)?,
                "rate_5m" => rates.rate_5m = from_value(value).map_err(D::Error::custom)?,
                other => return Err(D::Error::custom(format!("unknown window field `{other}`"))),
            }
        }
        Ok(rates)
    }
}

impl Serialize for WindowStats {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::Map(vec![
            ("count".to_string(), uint_value(self.count)),
            ("rate".to_string(), Value::Float(self.rate)),
            ("p50".to_string(), Value::Float(self.p50)),
            ("p95".to_string(), Value::Float(self.p95)),
            ("p99".to_string(), Value::Float(self.p99)),
        ]))
    }
}

impl<'de> Deserialize<'de> for WindowStats {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let entries = expect_map(deserializer.deserialize_value()?).map_err(D::Error::custom)?;
        let mut stats = WindowStats::default();
        for (key, value) in entries {
            match key.as_str() {
                "count" => stats.count = from_value(value).map_err(D::Error::custom)?,
                "rate" => stats.rate = from_value(value).map_err(D::Error::custom)?,
                "p50" => stats.p50 = from_value(value).map_err(D::Error::custom)?,
                "p95" => stats.p95 = from_value(value).map_err(D::Error::custom)?,
                "p99" => stats.p99 = from_value(value).map_err(D::Error::custom)?,
                other => {
                    return Err(D::Error::custom(format!("unknown window stats field `{other}`")))
                }
            }
        }
        Ok(stats)
    }
}

impl Serialize for WindowedHistogramSnapshot {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::Map(vec![
            ("10s".to_string(), to_value(&self.w10s).map_err(S::Error::custom)?),
            ("1m".to_string(), to_value(&self.w1m).map_err(S::Error::custom)?),
            ("5m".to_string(), to_value(&self.w5m).map_err(S::Error::custom)?),
        ]))
    }
}

impl<'de> Deserialize<'de> for WindowedHistogramSnapshot {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let entries = expect_map(deserializer.deserialize_value()?).map_err(D::Error::custom)?;
        let mut snap = WindowedHistogramSnapshot::default();
        for (key, value) in entries {
            match key.as_str() {
                "10s" => snap.w10s = from_value(value).map_err(D::Error::custom)?,
                "1m" => snap.w1m = from_value(value).map_err(D::Error::custom)?,
                "5m" => snap.w5m = from_value(value).map_err(D::Error::custom)?,
                other => return Err(D::Error::custom(format!("unknown window key `{other}`"))),
            }
        }
        Ok(snap)
    }
}

impl Serialize for RegistrySnapshot {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let counters =
            self.counters.iter().map(|(name, v)| (name.clone(), uint_value(*v))).collect();
        let gauges = self.gauges.iter().map(|(name, v)| (name.clone(), Value::Int(*v))).collect();
        let histograms = self
            .histograms
            .iter()
            .map(|(name, h)| Ok((name.clone(), to_value(h).map_err(S::Error::custom)?)))
            .collect::<Result<Vec<_>, S::Error>>()?;
        let windows = self
            .windows
            .iter()
            .map(|(name, w)| Ok((name.clone(), to_value(w).map_err(S::Error::custom)?)))
            .collect::<Result<Vec<_>, S::Error>>()?;
        let window_histograms = self
            .window_histograms
            .iter()
            .map(|(name, w)| Ok((name.clone(), to_value(w).map_err(S::Error::custom)?)))
            .collect::<Result<Vec<_>, S::Error>>()?;
        serializer.serialize_value(Value::Map(vec![
            ("counters".to_string(), Value::Map(counters)),
            ("gauges".to_string(), Value::Map(gauges)),
            ("histograms".to_string(), Value::Map(histograms)),
            ("windows".to_string(), Value::Map(windows)),
            ("window_histograms".to_string(), Value::Map(window_histograms)),
        ]))
    }
}

impl<'de> Deserialize<'de> for RegistrySnapshot {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let entries = expect_map(deserializer.deserialize_value()?).map_err(D::Error::custom)?;
        let mut snap = RegistrySnapshot::default();
        for (key, value) in entries {
            let section = expect_map(value).map_err(D::Error::custom)?;
            match key.as_str() {
                "counters" => {
                    for (name, v) in section {
                        snap.counters.push((name, from_value(v).map_err(D::Error::custom)?));
                    }
                }
                "gauges" => {
                    for (name, v) in section {
                        snap.gauges.push((name, from_value(v).map_err(D::Error::custom)?));
                    }
                }
                "histograms" => {
                    for (name, v) in section {
                        snap.histograms.push((name, from_value(v).map_err(D::Error::custom)?));
                    }
                }
                "windows" => {
                    for (name, v) in section {
                        snap.windows.push((name, from_value(v).map_err(D::Error::custom)?));
                    }
                }
                "window_histograms" => {
                    for (name, v) in section {
                        snap.window_histograms
                            .push((name, from_value(v).map_err(D::Error::custom)?));
                    }
                }
                other => {
                    return Err(D::Error::custom(format!("unknown registry section `{other}`")))
                }
            }
        }
        Ok(snap)
    }
}

fn uint_value(v: u64) -> Value {
    match i64::try_from(v) {
        Ok(i) => Value::Int(i),
        Err(_) => Value::UInt(v),
    }
}

fn expect_map(v: Value) -> Result<Vec<(String, Value)>, String> {
    match v {
        Value::Map(entries) => Ok(entries),
        other => Err(format!("expected map, got {}", other.kind())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    #[test]
    fn registry_snapshot_roundtrips_through_value() {
        let reg = Registry::new();
        reg.counter("lp.pivots").add(42);
        reg.gauge("inflight").set(-2);
        let h = reg.histogram("span.lp.ms");
        h.record(1.5);
        h.record(80.0);
        reg.windowed_counter("serve.requests").add(3);
        let wh = reg.windowed_histogram("serve.latency_ms");
        wh.record(2.5);
        wh.record(40.0);
        let snap = reg.snapshot();
        assert!(snap.window("serve.requests").is_some());
        assert!(snap.window_histogram("serve.latency_ms").is_some());
        let value = to_value(&snap).unwrap();
        let back: RegistrySnapshot = from_value(value).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn snapshot_serializes_as_name_keyed_maps() {
        let reg = Registry::new();
        reg.counter("a").inc();
        let value = to_value(&reg.snapshot()).unwrap();
        let Value::Map(sections) = value else { panic!("not a map") };
        assert_eq!(sections[0].0, "counters");
        let Value::Map(counters) = &sections[0].1 else { panic!("counters not a map") };
        assert_eq!(counters[0], ("a".to_string(), Value::Int(1)));
    }
}
