//! Request-scoped tracing: a server-assigned id plus per-stage
//! breadcrumbs, and a bounded structured event log for slow or errored
//! requests.
//!
//! A [`RequestTrace`] is created by whoever admits a request (the serve
//! router), attached to the worker's [`crate::Collector`], and filled
//! automatically: every [`crate::Span`] that drops while the collector
//! carries the trace appends a `(stage, duration)` breadcrumb. Because
//! the engine's isolation helpers re-install the caller's collector on
//! helper and pool threads, breadcrumbs from shard solves and budgeted
//! solves land on the same trace as the admitting request — which is
//! what makes one slow solve attributable to its connection, verb,
//! router shard, and LP stage.
//!
//! The trace is deliberately cheap enough to be on by default: one
//! `Arc` allocation per request, and one short mutex-guarded push per
//! completed span (spans are per-stage, not per-iteration).

use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::{Mutex, MutexGuard};
use std::time::Instant;

/// One completed stage inside a request.
#[derive(Debug, Clone, PartialEq)]
pub struct StageBreadcrumb {
    /// Span name (`solve`, `lp`, `round`, ...).
    pub name: &'static str,
    /// Stage wall time, milliseconds.
    pub ms: f64,
}

/// Per-request trace context: a server-assigned id, the request verb,
/// the router shard that owned it (once routed), and the per-stage span
/// breadcrumbs collected while it executed.
#[derive(Debug)]
pub struct RequestTrace {
    id: u64,
    verb: String,
    /// Router shard index, -1 until routed.
    shard: AtomicI64,
    started: Instant,
    stages: Mutex<Vec<StageBreadcrumb>>,
}

fn lock(m: &Mutex<Vec<StageBreadcrumb>>) -> MutexGuard<'_, Vec<StageBreadcrumb>> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl RequestTrace {
    /// A fresh trace for request `id` executing `verb`.
    pub fn new(id: u64, verb: impl Into<String>) -> Self {
        RequestTrace {
            id,
            verb: verb.into(),
            shard: AtomicI64::new(-1),
            started: Instant::now(),
            stages: Mutex::new(Vec::new()),
        }
    }

    /// The server-assigned request id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The request verb.
    pub fn verb(&self) -> &str {
        &self.verb
    }

    /// Record which router shard the request was dispatched to.
    pub fn set_shard(&self, shard: u64) {
        self.shard.store(shard as i64, Ordering::Relaxed);
    }

    /// The owning router shard, if the request was routed.
    pub fn shard(&self) -> Option<u64> {
        match self.shard.load(Ordering::Relaxed) {
            s if s >= 0 => Some(s as u64),
            _ => None,
        }
    }

    /// Milliseconds since the trace was created.
    pub fn elapsed_ms(&self) -> f64 {
        self.started.elapsed().as_secs_f64() * 1e3
    }

    /// Append one stage breadcrumb (called from [`crate::Span`] drops).
    pub fn record_stage(&self, name: &'static str, ms: f64) {
        lock(&self.stages).push(StageBreadcrumb { name, ms });
    }

    /// Copy of the breadcrumbs, in completion order.
    pub fn stages(&self) -> Vec<StageBreadcrumb> {
        lock(&self.stages).clone()
    }
}

/// One finished request worth keeping: its identity, outcome, and
/// per-stage timings, snapshotted from the [`RequestTrace`] when the
/// reply was sent.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestEvent {
    /// Server-assigned request id.
    pub id: u64,
    /// Request verb.
    pub verb: String,
    /// Owning router shard, if routed.
    pub shard: Option<u64>,
    /// End-to-end latency, milliseconds.
    pub total_ms: f64,
    /// Error kind for failed requests (`None` = success).
    pub error: Option<String>,
    /// Stage breadcrumbs as `(name, ms)`, in completion order.
    pub stages: Vec<(String, f64)>,
}

impl RequestEvent {
    /// Snapshot a finished trace into an event.
    pub fn from_trace(trace: &RequestTrace, total_ms: f64, error: Option<String>) -> Self {
        RequestEvent {
            id: trace.id(),
            verb: trace.verb().to_string(),
            shard: trace.shard(),
            total_ms,
            error,
            stages: trace.stages().into_iter().map(|s| (s.name.to_string(), s.ms)).collect(),
        }
    }
}

/// Bounded ring of recent noteworthy requests (slow or errored).
///
/// Pushing past the capacity evicts the oldest entry — the log answers
/// "what went wrong *recently*", not "what ever went wrong"; lifetime
/// accounting lives in the registry counters.
#[derive(Debug)]
pub struct EventLog {
    capacity: usize,
    entries: Mutex<std::collections::VecDeque<RequestEvent>>,
}

impl EventLog {
    /// A log keeping at most `capacity` events (minimum 1).
    pub fn new(capacity: usize) -> Self {
        EventLog {
            capacity: capacity.max(1),
            entries: Mutex::new(std::collections::VecDeque::new()),
        }
    }

    /// Append an event, evicting the oldest past capacity.
    pub fn push(&self, event: RequestEvent) {
        let mut entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        if entries.len() == self.capacity {
            entries.pop_front();
        }
        entries.push_back(event);
    }

    /// The most recent `n` events, newest first.
    pub fn recent(&self, n: usize) -> Vec<RequestEvent> {
        let entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        entries.iter().rev().take(n).cloned().collect()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.entries.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::{with_collector, Collector};
    use crate::registry::Registry;
    use crate::span::Span;
    use std::sync::Arc;

    #[test]
    fn spans_leave_breadcrumbs_on_the_collectors_request_trace() {
        let reg = Arc::new(Registry::new());
        let trace = Arc::new(RequestTrace::new(42, "solve"));
        let collector = Collector::new(reg).with_request(Arc::clone(&trace));
        with_collector(collector, || {
            let _outer = Span::enter("solve");
            let _inner = Span::enter("lp");
        });
        let stages = trace.stages();
        assert_eq!(stages.len(), 2);
        assert_eq!(stages[0].name, "lp", "inner drops first");
        assert_eq!(stages[1].name, "solve");
        assert_eq!(trace.id(), 42);
        assert_eq!(trace.verb(), "solve");
    }

    #[test]
    fn shard_is_unset_until_routed() {
        let trace = RequestTrace::new(1, "amend");
        assert_eq!(trace.shard(), None);
        trace.set_shard(3);
        assert_eq!(trace.shard(), Some(3));
    }

    #[test]
    fn event_log_is_bounded_and_newest_first() {
        let log = EventLog::new(2);
        for i in 0..5u64 {
            let trace = RequestTrace::new(i, "solve");
            log.push(RequestEvent::from_trace(&trace, i as f64, None));
        }
        assert_eq!(log.len(), 2);
        let recent = log.recent(10);
        assert_eq!(recent.len(), 2);
        assert_eq!(recent[0].id, 4);
        assert_eq!(recent[1].id, 3);
    }

    #[test]
    fn event_snapshots_carry_error_and_stages() {
        let trace = RequestTrace::new(7, "amend");
        trace.set_shard(1);
        trace.record_stage("amend", 3.5);
        let event = RequestEvent::from_trace(&trace, 4.0, Some("timed_out".into()));
        assert_eq!(event.shard, Some(1));
        assert_eq!(event.error.as_deref(), Some("timed_out"));
        assert_eq!(event.stages, vec![("amend".to_string(), 3.5)]);
    }
}
