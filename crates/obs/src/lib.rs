//! Observability layer for the nested active-time scheduling workspace.
//!
//! This crate is deliberately dependency-free (the optional `serde`
//! feature pulls in only the workspace's vendored stub, for wire
//! snapshots). It provides three cooperating pieces:
//!
//! * **Metrics** — [`Counter`], [`Gauge`], and a fixed log-bucket
//!   [`Histogram`] with nearest-rank p50/p95/p99, owned by a
//!   global-free [`Registry`]. Anything that wants metrics holds (or is
//!   handed) an `Arc<Registry>`; there is no process-wide singleton, so
//!   two engines in one process never share or clobber counters.
//! * **Collector plumbing** — deep crates (`lp`, `flow`, `core`) cannot
//!   know who owns the registry, so emission goes through a
//!   thread-local [`Collector`] installed with [`with_collector`] by
//!   whoever drives a solve (the engine). The free functions
//!   [`counter_add`] / [`histogram_record`] and [`Span::enter`] no-op
//!   cheaply when no collector is installed, which is also the
//!   "recording disabled" mode used to measure instrumentation
//!   overhead.
//! * **Spans** — [`Span::enter("lp")`](Span::enter) returns an RAII
//!   guard that records `span.lp.ms` (wall) and `span.lp.self_ms`
//!   (wall minus enclosed child spans) histograms on drop, and appends
//!   a complete event to the optional [`TraceBuffer`], exportable as
//!   Chrome trace-event JSON (`chrome://tracing` / Perfetto).
//!   Recording happens in `Drop`, so timings survive panics unwinding
//!   through `catch_unwind`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod collector;
mod metrics;
mod registry;
#[cfg(feature = "serde")]
mod serde_impls;
mod span;
mod trace;

pub use collector::{
    counter_add, current_collector, gauge_add, histogram_record, is_collecting, with_collector,
    Collector,
};
pub use metrics::{Counter, Gauge, Histogram};
pub use registry::{HistogramSnapshot, Registry, RegistrySnapshot};
pub use span::Span;
pub use trace::{TraceBuffer, TraceEvent};
