//! Observability layer for the nested active-time scheduling workspace.
//!
//! This crate is deliberately dependency-free (the optional `serde`
//! feature pulls in only the workspace's vendored stub, for wire
//! snapshots). It provides three cooperating pieces:
//!
//! * **Metrics** — [`Counter`], [`Gauge`], and a fixed log-bucket
//!   [`Histogram`] with nearest-rank p50/p95/p99, owned by a
//!   global-free [`Registry`]. Anything that wants metrics holds (or is
//!   handed) an `Arc<Registry>`; there is no process-wide singleton, so
//!   two engines in one process never share or clobber counters.
//! * **Collector plumbing** — deep crates (`lp`, `flow`, `core`) cannot
//!   know who owns the registry, so emission goes through a
//!   thread-local [`Collector`] installed with [`with_collector`] by
//!   whoever drives a solve (the engine). The free functions
//!   [`counter_add`] / [`histogram_record`] and [`Span::enter`] no-op
//!   cheaply when no collector is installed, which is also the
//!   "recording disabled" mode used to measure instrumentation
//!   overhead.
//! * **Spans** — [`Span::enter("lp")`](Span::enter) returns an RAII
//!   guard that records `span.lp.ms` (wall) and `span.lp.self_ms`
//!   (wall minus enclosed child spans) histograms on drop, and appends
//!   a complete event to the optional [`TraceBuffer`], exportable as
//!   Chrome trace-event JSON (`chrome://tracing` / Perfetto).
//!   Recording happens in `Drop`, so timings survive panics unwinding
//!   through `catch_unwind`.
//! * **Windowed metrics** — [`Registry::windowed_counter`] /
//!   [`Registry::windowed_histogram`] opt an instrument into an
//!   epoch-bucket ring (see [`WindowedCounter`]) yielding 10s/1m/5m
//!   rates and windowed p50/p95/p99 next to the lifetime values; the
//!   snapshot grows `windows` / `window_histograms` sections for
//!   exactly those instruments.
//! * **Request tracing** — a [`RequestTrace`] attached to the collector
//!   collects per-stage breadcrumbs from dropping spans, and a bounded
//!   [`EventLog`] retains recent slow/errored [`RequestEvent`]s for
//!   operator surfaces (the serve `stats` plane, `atsched top`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod collector;
mod metrics;
mod registry;
mod request;
#[cfg(feature = "serde")]
mod serde_impls;
mod span;
mod trace;
mod window;

pub use collector::{
    counter_add, current_collector, current_request, gauge_add, histogram_record, is_collecting,
    with_collector, Collector,
};
pub use metrics::{Counter, Gauge, Histogram};
pub use registry::{HistogramSnapshot, Registry, RegistrySnapshot};
pub use request::{EventLog, RequestEvent, RequestTrace, StageBreadcrumb};
pub use span::Span;
pub use trace::{TraceBuffer, TraceEvent};
pub use window::{
    Window, WindowRates, WindowStats, WindowedCounter, WindowedHistogram,
    WindowedHistogramSnapshot, BUCKET_SECS, RING,
};
