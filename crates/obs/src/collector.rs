//! Thread-local collector plumbing.
//!
//! Deep crates (`lp`, `flow`, `core`) emit metrics without knowing who
//! owns the registry: the driver (engine, bench, tests) installs a
//! [`Collector`] for the duration of a solve with [`with_collector`],
//! and the emission helpers here silently no-op when none is installed.

use crate::registry::Registry;
use crate::request::RequestTrace;
use crate::trace::TraceBuffer;
use std::cell::RefCell;
use std::sync::Arc;

/// Destination for metrics and trace events: a registry plus an
/// optional trace buffer and an optional request-scoped trace. Cheap
/// to clone (a few `Arc`s).
#[derive(Debug, Clone)]
pub struct Collector {
    /// Metric destination.
    pub registry: Arc<Registry>,
    /// Optional span trace destination.
    pub trace: Option<Arc<TraceBuffer>>,
    /// Optional request context: spans dropping under this collector
    /// leave `(stage, ms)` breadcrumbs on it.
    pub request: Option<Arc<RequestTrace>>,
}

impl Collector {
    /// Collector writing metrics to `registry`, with no tracing.
    pub fn new(registry: Arc<Registry>) -> Self {
        Collector { registry, trace: None, request: None }
    }

    /// Attach a trace buffer for span events.
    pub fn with_trace(mut self, trace: Arc<TraceBuffer>) -> Self {
        self.trace = Some(trace);
        self
    }

    /// Attach a request trace for per-stage breadcrumbs.
    pub fn with_request(mut self, request: Arc<RequestTrace>) -> Self {
        self.request = Some(request);
        self
    }
}

thread_local! {
    static CURRENT: RefCell<Option<Collector>> = const { RefCell::new(None) };
}

/// Restores the previously installed collector on drop — including
/// during panic unwinding, so an unwound solve never leaks its
/// collector into unrelated work on the same thread.
struct Restore(Option<Collector>);

impl Drop for Restore {
    fn drop(&mut self) {
        let prev = self.0.take();
        CURRENT.with(|c| *c.borrow_mut() = prev);
    }
}

/// Run `f` with `collector` installed as this thread's metric
/// destination; the previous collector (if any) is restored afterwards,
/// even if `f` panics.
pub fn with_collector<R>(collector: Collector, f: impl FnOnce() -> R) -> R {
    let prev = CURRENT.with(|c| c.borrow_mut().replace(collector));
    let _restore = Restore(prev);
    f()
}

/// The collector currently installed on this thread, if any. Use this
/// to propagate collection onto helper threads (see
/// `engine::isolate::with_budget`).
pub fn current_collector() -> Option<Collector> {
    CURRENT.with(|c| c.borrow().clone())
}

/// Whether a collector is installed on this thread.
pub fn is_collecting() -> bool {
    CURRENT.with(|c| c.borrow().is_some())
}

/// The request trace carried by this thread's collector, if any. Used
/// by drivers that install a fresh collector (the engine's `observed`
/// wrapper) to keep the admitting request's context attached.
pub fn current_request() -> Option<Arc<RequestTrace>> {
    CURRENT.with(|c| c.borrow().as_ref().and_then(|col| col.request.clone()))
}

/// Add `delta` to counter `name` in the installed registry; no-op when
/// no collector is installed.
pub fn counter_add(name: &str, delta: u64) {
    if let Some(c) = current_collector() {
        c.registry.counter(name).add(delta);
    }
}

/// Add `delta` to gauge `name` in the installed registry; no-op when no
/// collector is installed.
pub fn gauge_add(name: &str, delta: i64) {
    if let Some(c) = current_collector() {
        c.registry.gauge(name).add(delta);
    }
}

/// Record `value` into histogram `name` in the installed registry;
/// no-op when no collector is installed.
pub fn histogram_record(name: &str, value: f64) {
    if let Some(c) = current_collector() {
        c.registry.histogram(name).record(value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emission_is_a_noop_without_a_collector() {
        assert!(!is_collecting());
        counter_add("orphan", 1); // must not panic
        histogram_record("orphan.ms", 1.0);
    }

    #[test]
    fn with_collector_installs_and_restores() {
        let reg = Arc::new(Registry::new());
        with_collector(Collector::new(Arc::clone(&reg)), || {
            assert!(is_collecting());
            counter_add("seen", 2);
        });
        assert!(!is_collecting());
        assert_eq!(reg.counter("seen").get(), 2);
    }

    #[test]
    fn collector_is_restored_after_a_panic() {
        let outer = Arc::new(Registry::new());
        let inner = Arc::new(Registry::new());
        with_collector(Collector::new(Arc::clone(&outer)), || {
            let inner = Arc::clone(&inner);
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                with_collector(Collector::new(inner), || {
                    counter_add("inner", 1);
                    panic!("boom");
                })
            }));
            assert!(result.is_err());
            // The outer collector is back in place after the unwind.
            counter_add("outer", 1);
        });
        assert_eq!(inner.counter("inner").get(), 1);
        assert_eq!(outer.counter("outer").get(), 1);
        assert_eq!(outer.counter("inner").get(), 0);
    }
}
