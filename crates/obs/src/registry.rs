//! Global-free metric registry and its serializable snapshot types.

use crate::metrics::{Counter, Gauge, Histogram};
use crate::window::{WindowRates, WindowedCounter, WindowedHistogram, WindowedHistogramSnapshot};
use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, Mutex, MutexGuard};

/// Named home for counters, gauges, and histograms.
///
/// Instruments are created on first use and interned by name, so
/// `registry.counter("lp.pivots")` is cheap after the first call and
/// always returns the same underlying atomic. There is no global
/// registry: owners (the engine, the server) create one and hand out
/// `Arc<Registry>` clones.
///
/// Windowed views are opt-in per instrument:
/// [`windowed_counter`](Self::windowed_counter) /
/// [`windowed_histogram`](Self::windowed_histogram) wrap the same-name
/// lifetime instrument with an epoch-bucket ring, and snapshots then
/// carry 10s/1m/5m sections for exactly those instruments.
#[derive(Default)]
pub struct Registry {
    counters: Mutex<HashMap<String, Arc<Counter>>>,
    gauges: Mutex<HashMap<String, Arc<Gauge>>>,
    histograms: Mutex<HashMap<String, Arc<Histogram>>>,
    windowed_counters: Mutex<HashMap<String, Arc<WindowedCounter>>>,
    windowed_histograms: Mutex<HashMap<String, Arc<WindowedHistogram>>>,
}

impl fmt::Debug for Registry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Registry")
            .field("counters", &lock(&self.counters).len())
            .field("gauges", &lock(&self.gauges).len())
            .field("histograms", &lock(&self.histograms).len())
            .field("windowed_counters", &lock(&self.windowed_counters).len())
            .field("windowed_histograms", &lock(&self.windowed_histograms).len())
            .finish()
    }
}

/// Ignore mutex poisoning: metric maps stay structurally valid even if
/// a panic unwound through an insert.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl Registry {
    /// New empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Get or create the counter named `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = lock(&self.counters);
        if let Some(c) = map.get(name) {
            return Arc::clone(c);
        }
        let c = Arc::new(Counter::new());
        map.insert(name.to_string(), Arc::clone(&c));
        c
    }

    /// Get or create the gauge named `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = lock(&self.gauges);
        if let Some(g) = map.get(name) {
            return Arc::clone(g);
        }
        let g = Arc::new(Gauge::new());
        map.insert(name.to_string(), Arc::clone(&g));
        g
    }

    /// Get or create the histogram named `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = lock(&self.histograms);
        if let Some(h) = map.get(name) {
            return Arc::clone(h);
        }
        let h = Arc::new(Histogram::new());
        map.insert(name.to_string(), Arc::clone(&h));
        h
    }

    /// Get or create a windowed view over the counter named `name`.
    ///
    /// The windowed counter wraps the same-name lifetime counter:
    /// bumping through it updates both the cumulative value and the
    /// 10s/1m/5m ring, and snapshots gain a `windows` entry for it.
    pub fn windowed_counter(&self, name: &str) -> Arc<WindowedCounter> {
        let inner = self.counter(name);
        let mut map = lock(&self.windowed_counters);
        if let Some(w) = map.get(name) {
            return Arc::clone(w);
        }
        let w = Arc::new(WindowedCounter::new(inner));
        map.insert(name.to_string(), Arc::clone(&w));
        w
    }

    /// Get or create a windowed view over the histogram named `name`.
    ///
    /// Recording through it updates both the lifetime histogram and the
    /// ring, and snapshots gain a `window_histograms` entry carrying
    /// windowed p50/p95/p99 and sample rates.
    pub fn windowed_histogram(&self, name: &str) -> Arc<WindowedHistogram> {
        let inner = self.histogram(name);
        let mut map = lock(&self.windowed_histograms);
        if let Some(w) = map.get(name) {
            return Arc::clone(w);
        }
        let w = Arc::new(WindowedHistogram::new(inner));
        map.insert(name.to_string(), Arc::clone(&w));
        w
    }

    /// Point-in-time copy of every instrument, sorted by name.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let mut counters: Vec<(String, u64)> =
            lock(&self.counters).iter().map(|(k, v)| (k.clone(), v.get())).collect();
        counters.sort_by(|a, b| a.0.cmp(&b.0));
        let mut gauges: Vec<(String, i64)> =
            lock(&self.gauges).iter().map(|(k, v)| (k.clone(), v.get())).collect();
        gauges.sort_by(|a, b| a.0.cmp(&b.0));
        let mut histograms: Vec<(String, HistogramSnapshot)> = lock(&self.histograms)
            .iter()
            .map(|(k, v)| (k.clone(), HistogramSnapshot::of(v)))
            .collect();
        histograms.sort_by(|a, b| a.0.cmp(&b.0));
        let mut windows: Vec<(String, WindowRates)> =
            lock(&self.windowed_counters).iter().map(|(k, v)| (k.clone(), v.rates())).collect();
        windows.sort_by(|a, b| a.0.cmp(&b.0));
        let mut window_histograms: Vec<(String, WindowedHistogramSnapshot)> =
            lock(&self.windowed_histograms)
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect();
        window_histograms.sort_by(|a, b| a.0.cmp(&b.0));
        RegistrySnapshot { counters, gauges, histograms, windows, window_histograms }
    }
}

/// Frozen percentile summary of one [`Histogram`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct HistogramSnapshot {
    /// Number of samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: f64,
    /// Exact observed minimum (0.0 when empty).
    pub min: f64,
    /// Exact observed maximum (0.0 when empty).
    pub max: f64,
    /// Nearest-rank 50th percentile (bucket upper bound).
    pub p50: f64,
    /// Nearest-rank 95th percentile (bucket upper bound).
    pub p95: f64,
    /// Nearest-rank 99th percentile (bucket upper bound).
    pub p99: f64,
}

impl HistogramSnapshot {
    /// Summarize a live histogram.
    pub fn of(h: &Histogram) -> Self {
        HistogramSnapshot {
            count: h.count(),
            sum: h.sum(),
            min: h.min(),
            max: h.max(),
            p50: h.percentile(0.50),
            p95: h.percentile(0.95),
            p99: h.percentile(0.99),
        }
    }
}

/// Point-in-time copy of a [`Registry`], sorted by instrument name.
///
/// With the `serde` feature this serializes as a five-key map
/// (`counters`, `gauges`, `histograms`, `windows`,
/// `window_histograms`), each a name → value map — the wire format of
/// the serve `stats` verb and `atsched solve --metrics`. The window
/// sections only carry instruments that opted into windowing.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RegistrySnapshot {
    /// Counter values by name.
    pub counters: Vec<(String, u64)>,
    /// Gauge values by name.
    pub gauges: Vec<(String, i64)>,
    /// Histogram summaries by name.
    pub histograms: Vec<(String, HistogramSnapshot)>,
    /// Sliding-window rates for windowed counters, by name.
    pub windows: Vec<(String, WindowRates)>,
    /// Sliding-window summaries for windowed histograms, by name.
    pub window_histograms: Vec<(String, WindowedHistogramSnapshot)>,
}

impl RegistrySnapshot {
    /// Counter value by name, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(k, _)| k == name).map(|(_, v)| *v)
    }

    /// Gauge value by name, if present.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(k, _)| k == name).map(|(_, v)| *v)
    }

    /// Histogram summary by name, if present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|(k, _)| k == name).map(|(_, v)| v)
    }

    /// Windowed counter rates by name, if present.
    pub fn window(&self, name: &str) -> Option<&WindowRates> {
        self.windows.iter().find(|(k, _)| k == name).map(|(_, v)| v)
    }

    /// Windowed histogram summary by name, if present.
    pub fn window_histogram(&self, name: &str) -> Option<&WindowedHistogramSnapshot> {
        self.window_histograms.iter().find(|(k, _)| k == name).map(|(_, v)| v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn instruments_are_interned_by_name() {
        let reg = Registry::new();
        let a = reg.counter("x");
        let b = reg.counter("x");
        a.inc();
        b.add(2);
        assert_eq!(reg.counter("x").get(), 3);
        assert_eq!(reg.snapshot().counter("x"), Some(3));
    }

    #[test]
    fn concurrent_counter_increments_from_eight_threads() {
        let reg = Arc::new(Registry::new());
        let per_thread = 10_000u64;
        thread::scope(|s| {
            for _ in 0..8 {
                let reg = Arc::clone(&reg);
                s.spawn(move || {
                    let c = reg.counter("shared");
                    for _ in 0..per_thread {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(reg.counter("shared").get(), 8 * per_thread);
    }

    #[test]
    fn windowed_instruments_wrap_the_lifetime_instrument() {
        let reg = Registry::new();
        let w = reg.windowed_counter("serve.requests");
        w.add(5);
        // The same-name lifetime counter sees windowed bumps...
        assert_eq!(reg.counter("serve.requests").get(), 5);
        // ...and interning returns the same ring.
        reg.windowed_counter("serve.requests").add(1);
        assert_eq!(w.get(), 6);
        let wh = reg.windowed_histogram("serve.latency_ms");
        wh.record(2.0);
        assert_eq!(reg.histogram("serve.latency_ms").count(), 1);

        let snap = reg.snapshot();
        assert!(snap.window("serve.requests").is_some());
        assert!(snap.window("serve.latency_ms").is_none(), "histograms are not counters");
        let s = snap.window_histogram("serve.latency_ms").unwrap();
        assert_eq!(s.w5m.count, 1);
        // Non-windowed instruments stay out of the window sections.
        reg.counter("lp.pivots").inc();
        assert!(reg.snapshot().window("lp.pivots").is_none());
    }

    #[test]
    fn snapshot_is_sorted_and_complete() {
        let reg = Registry::new();
        reg.counter("b").inc();
        reg.counter("a").inc();
        reg.gauge("g").set(-4);
        reg.histogram("h").record(2.0);
        let snap = reg.snapshot();
        assert_eq!(
            snap.counters.iter().map(|(k, _)| k.as_str()).collect::<Vec<_>>(),
            vec!["a", "b"]
        );
        assert_eq!(snap.gauge("g"), Some(-4));
        let h = snap.histogram("h").unwrap();
        assert_eq!(h.count, 1);
        assert_eq!(h.max, 2.0);
        assert!(snap.histogram("missing").is_none());
    }
}
