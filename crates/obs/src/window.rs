//! Sliding-window aggregation: epoch-bucket rings layered over the
//! lifetime instruments, yielding short-horizon rates and windowed
//! percentiles alongside the cumulative values.
//!
//! A windowed instrument wraps the same-name lifetime instrument and
//! additionally files every emission into a ring of [`RING`] buckets,
//! each covering [`BUCKET_SECS`] seconds of wall clock. Reads merge the
//! buckets spanned by a [`Window`] (10 s / 1 m / 5 m), so an operator
//! sees "what is happening *now*" next to "what has happened ever".
//!
//! Windowing is **opt-in per instrument** (see
//! [`Registry::windowed_counter`](crate::Registry::windowed_counter)):
//! hot solver counters like `lp.pivots` stay plain atomic bumps, and
//! only the request-plane instruments pay the extra clock read + ring
//! update (two relaxed atomic ops in the common case).
//!
//! ## Accuracy
//!
//! Bucket rotation is lazy and lock-free: the first writer landing in a
//! stale ring slot CAS-tags it with the new epoch and zeroes the
//! counts. A concurrent writer racing that reset can lose its increment
//! for the *window* view (never for the lifetime value), so windowed
//! figures are approximate at bucket boundaries — the documented and
//! accepted trade for a zero-coordination hot path. Rates over a window
//! shorter than the instrument's uptime divide by the uptime instead,
//! so early readings are not diluted by empty history.
//!
//! Every read/write method has an `_at(epoch, ..)` twin taking an
//! explicit epoch, which is what the rotation tests use to cross epoch
//! boundaries deterministically; the clocked variants just call them
//! with `elapsed_secs / BUCKET_SECS`.

use crate::metrics::{Counter, Histogram, BUCKETS};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Seconds of wall clock covered by one ring bucket.
pub const BUCKET_SECS: u64 = 5;

/// Ring length: 64 buckets × 5 s = 320 s of history, comfortably more
/// than the longest [`Window`] (5 minutes).
pub const RING: usize = 64;

/// The three reporting horizons every windowed instrument serves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Window {
    /// Last 10 seconds (2 buckets).
    TenSec,
    /// Last minute (12 buckets).
    OneMin,
    /// Last five minutes (60 buckets).
    FiveMin,
}

impl Window {
    /// All horizons, shortest first.
    pub const ALL: [Window; 3] = [Window::TenSec, Window::OneMin, Window::FiveMin];

    /// Horizon length in seconds.
    pub fn secs(self) -> u64 {
        match self {
            Window::TenSec => 10,
            Window::OneMin => 60,
            Window::FiveMin => 300,
        }
    }

    /// Number of ring buckets the horizon spans.
    pub fn buckets(self) -> u64 {
        self.secs() / BUCKET_SECS
    }

    /// Human label used in wire formats (`10s` / `1m` / `5m`).
    pub fn label(self) -> &'static str {
        match self {
            Window::TenSec => "10s",
            Window::OneMin => "1m",
            Window::FiveMin => "5m",
        }
    }
}

/// One ring bucket: `tag` holds `epoch + 1` (0 = never used) so a slot
/// can tell whether its contents belong to the epoch a reader expects.
#[derive(Debug)]
struct Slot {
    tag: AtomicU64,
    count: AtomicU64,
}

impl Slot {
    fn new() -> Self {
        Slot { tag: AtomicU64::new(0), count: AtomicU64::new(0) }
    }

    /// Rotate the slot to `epoch` if it is stale. Returns false when the
    /// write belongs to an epoch the ring has already moved past (the
    /// caller should drop the windowed update; the lifetime instrument
    /// already has it).
    fn rotate(&self, epoch: u64) -> bool {
        let want = epoch + 1;
        let seen = self.tag.load(Ordering::Acquire);
        if seen == want {
            return true;
        }
        if seen > want {
            return false; // late writer; the window moved on
        }
        if self.tag.compare_exchange(seen, want, Ordering::AcqRel, Ordering::Acquire).is_ok() {
            self.count.store(0, Ordering::Release);
        }
        true
    }

    fn read(&self, epoch: u64) -> u64 {
        if self.tag.load(Ordering::Acquire) == epoch + 1 {
            self.count.load(Ordering::Relaxed)
        } else {
            0
        }
    }
}

/// Sliding-window rates for one counter, shortest horizon first.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct WindowRates {
    /// Events per second over the last 10 seconds.
    pub rate_10s: f64,
    /// Events per second over the last minute.
    pub rate_1m: f64,
    /// Events per second over the last five minutes.
    pub rate_5m: f64,
}

impl WindowRates {
    /// The rate for one horizon.
    pub fn get(&self, w: Window) -> f64 {
        match w {
            Window::TenSec => self.rate_10s,
            Window::OneMin => self.rate_1m,
            Window::FiveMin => self.rate_5m,
        }
    }
}

/// A counter that also files increments into an epoch-bucket ring so
/// 10 s / 1 m / 5 m rates can be read next to the lifetime total.
///
/// Wraps (and forwards to) the same-name lifetime [`Counter`], so the
/// plain `counters` section of a snapshot still carries the cumulative
/// value.
#[derive(Debug)]
pub struct WindowedCounter {
    inner: Arc<Counter>,
    start: Instant,
    slots: Vec<Slot>,
}

impl WindowedCounter {
    /// Windowed view over `inner`; the ring's epoch 0 starts now.
    pub fn new(inner: Arc<Counter>) -> Self {
        WindowedCounter {
            inner,
            start: Instant::now(),
            slots: (0..RING).map(|_| Slot::new()).collect(),
        }
    }

    /// The current epoch (elapsed seconds / [`BUCKET_SECS`]).
    pub fn epoch(&self) -> u64 {
        self.start.elapsed().as_secs() / BUCKET_SECS
    }

    /// Add `delta` to both the lifetime counter and the current bucket.
    pub fn add(&self, delta: u64) {
        self.add_at(self.epoch(), delta);
    }

    /// Increment by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Lifetime value (forwards to the wrapped counter).
    pub fn get(&self) -> u64 {
        self.inner.get()
    }

    /// Deterministic-epoch twin of [`add`](Self::add), for tests.
    pub fn add_at(&self, epoch: u64, delta: u64) {
        self.inner.add(delta);
        let slot = &self.slots[(epoch % RING as u64) as usize];
        if slot.rotate(epoch) {
            slot.count.fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// Events recorded in the buckets `w` spans, ending at `epoch`.
    pub fn window_count_at(&self, epoch: u64, w: Window) -> u64 {
        let lo = epoch.saturating_sub(w.buckets() - 1);
        (lo..=epoch).map(|e| self.slots[(e % RING as u64) as usize].read(e)).sum()
    }

    /// Events per second over `w`, ending at `epoch`. Divides by the
    /// uptime instead when the instrument is younger than the window.
    pub fn rate_at(&self, epoch: u64, w: Window) -> f64 {
        let uptime = (epoch + 1) * BUCKET_SECS;
        let secs = w.secs().min(uptime) as f64;
        self.window_count_at(epoch, w) as f64 / secs
    }

    /// All three windowed rates at the current epoch.
    pub fn rates(&self) -> WindowRates {
        self.rates_at(self.epoch())
    }

    /// Deterministic-epoch twin of [`rates`](Self::rates).
    pub fn rates_at(&self, epoch: u64) -> WindowRates {
        WindowRates {
            rate_10s: self.rate_at(epoch, Window::TenSec),
            rate_1m: self.rate_at(epoch, Window::OneMin),
            rate_5m: self.rate_at(epoch, Window::FiveMin),
        }
    }
}

/// One ring bucket of a [`WindowedHistogram`]: a tag plus a full set of
/// log buckets, so windowed percentiles merge exactly like lifetime
/// ones.
#[derive(Debug)]
struct HistSlot {
    tag: AtomicU64,
    count: AtomicU64,
    overflow: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

impl HistSlot {
    fn new() -> Self {
        HistSlot {
            tag: AtomicU64::new(0),
            count: AtomicU64::new(0),
            overflow: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    fn rotate(&self, epoch: u64) -> bool {
        let want = epoch + 1;
        let seen = self.tag.load(Ordering::Acquire);
        if seen == want {
            return true;
        }
        if seen > want {
            return false;
        }
        if self.tag.compare_exchange(seen, want, Ordering::AcqRel, Ordering::Acquire).is_ok() {
            self.count.store(0, Ordering::Release);
            self.overflow.store(0, Ordering::Release);
            for b in &self.buckets {
                b.store(0, Ordering::Release);
            }
        }
        true
    }

    fn live(&self, epoch: u64) -> bool {
        self.tag.load(Ordering::Acquire) == epoch + 1
    }
}

/// Percentile summary of one histogram over one window.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct WindowStats {
    /// Samples recorded inside the window.
    pub count: u64,
    /// Samples per second over the window.
    pub rate: f64,
    /// Nearest-rank p50 over the window's merged buckets.
    pub p50: f64,
    /// Nearest-rank p95 over the window's merged buckets.
    pub p95: f64,
    /// Nearest-rank p99 over the window's merged buckets.
    pub p99: f64,
}

/// All three windowed summaries of one histogram.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct WindowedHistogramSnapshot {
    /// Last 10 seconds.
    pub w10s: WindowStats,
    /// Last minute.
    pub w1m: WindowStats,
    /// Last five minutes.
    pub w5m: WindowStats,
}

impl WindowedHistogramSnapshot {
    /// The stats for one horizon.
    pub fn get(&self, w: Window) -> &WindowStats {
        match w {
            Window::TenSec => &self.w10s,
            Window::OneMin => &self.w1m,
            Window::FiveMin => &self.w5m,
        }
    }
}

/// A histogram that also files samples into an epoch-bucket ring so
/// windowed p50/p95/p99 and sample rates can be read next to the
/// lifetime percentiles.
///
/// Wraps (and forwards to) the same-name lifetime [`Histogram`]. Each
/// ring bucket carries its own full log-bucket array (64 slots × 128
/// buckets ≈ 64 KB), so windowed percentiles use exactly the lifetime
/// percentile algorithm over the merged live buckets.
#[derive(Debug)]
pub struct WindowedHistogram {
    inner: Arc<Histogram>,
    start: Instant,
    slots: Vec<HistSlot>,
}

impl WindowedHistogram {
    /// Windowed view over `inner`; the ring's epoch 0 starts now.
    pub fn new(inner: Arc<Histogram>) -> Self {
        WindowedHistogram {
            inner,
            start: Instant::now(),
            slots: (0..RING).map(|_| HistSlot::new()).collect(),
        }
    }

    /// The current epoch (elapsed seconds / [`BUCKET_SECS`]).
    pub fn epoch(&self) -> u64 {
        self.start.elapsed().as_secs() / BUCKET_SECS
    }

    /// The wrapped lifetime histogram.
    pub fn lifetime(&self) -> &Arc<Histogram> {
        &self.inner
    }

    /// Record a sample into both the lifetime histogram and the
    /// current bucket. NaN samples are ignored.
    pub fn record(&self, v: f64) {
        self.record_at(self.epoch(), v);
    }

    /// Deterministic-epoch twin of [`record`](Self::record), for tests.
    pub fn record_at(&self, epoch: u64, v: f64) {
        if v.is_nan() {
            return;
        }
        self.inner.record(v);
        let slot = &self.slots[(epoch % RING as u64) as usize];
        if !slot.rotate(epoch) {
            return;
        }
        let idx = Histogram::bucket_index(v);
        if idx >= BUCKETS {
            slot.overflow.fetch_add(1, Ordering::Relaxed);
        } else {
            slot.buckets[idx].fetch_add(1, Ordering::Relaxed);
        }
        slot.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Merged summary of the buckets `w` spans, ending at `epoch`.
    pub fn stats_at(&self, epoch: u64, w: Window) -> WindowStats {
        let mut merged = [0u64; BUCKETS];
        let mut overflow = 0u64;
        let mut count = 0u64;
        let lo = epoch.saturating_sub(w.buckets() - 1);
        for e in lo..=epoch {
            let slot = &self.slots[(e % RING as u64) as usize];
            if !slot.live(e) {
                continue;
            }
            for (m, b) in merged.iter_mut().zip(slot.buckets.iter()) {
                *m += b.load(Ordering::Relaxed);
            }
            overflow += slot.overflow.load(Ordering::Relaxed);
            count += slot.count.load(Ordering::Relaxed);
        }
        let uptime = (epoch + 1) * BUCKET_SECS;
        let secs = w.secs().min(uptime) as f64;
        WindowStats {
            count,
            rate: count as f64 / secs,
            p50: merged_percentile(&merged, overflow, count, 0.50, &self.inner),
            p95: merged_percentile(&merged, overflow, count, 0.95, &self.inner),
            p99: merged_percentile(&merged, overflow, count, 0.99, &self.inner),
        }
    }

    /// All three windowed summaries at the current epoch.
    pub fn snapshot(&self) -> WindowedHistogramSnapshot {
        self.snapshot_at(self.epoch())
    }

    /// Deterministic-epoch twin of [`snapshot`](Self::snapshot).
    pub fn snapshot_at(&self, epoch: u64) -> WindowedHistogramSnapshot {
        WindowedHistogramSnapshot {
            w10s: self.stats_at(epoch, Window::TenSec),
            w1m: self.stats_at(epoch, Window::OneMin),
            w5m: self.stats_at(epoch, Window::FiveMin),
        }
    }
}

/// Nearest-rank percentile over merged window buckets: the same
/// algorithm as [`Histogram::percentile`], except the exact-max clamp
/// uses the lifetime max (the window keeps no exact extremes) and
/// overflow ranks report the lifetime max directly.
fn merged_percentile(
    merged: &[u64; BUCKETS],
    overflow: u64,
    count: u64,
    q: f64,
    lifetime: &Histogram,
) -> f64 {
    let total = count.max(merged.iter().sum::<u64>() + overflow);
    if total == 0 {
        return 0.0;
    }
    let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
    let mut seen = 0u64;
    for (i, c) in merged.iter().enumerate() {
        seen += c;
        if seen >= rank {
            let max = lifetime.max();
            let bound = Histogram::bound(i);
            return if max > 0.0 { bound.min(max) } else { bound };
        }
    }
    lifetime.max()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counter() -> WindowedCounter {
        WindowedCounter::new(Arc::new(Counter::new()))
    }

    #[test]
    fn lifetime_and_window_views_agree_within_one_window() {
        let c = counter();
        c.add_at(0, 10);
        assert_eq!(c.get(), 10);
        assert_eq!(c.window_count_at(0, Window::TenSec), 10);
        assert_eq!(c.window_count_at(0, Window::FiveMin), 10);
        // Uptime (5 s) is shorter than every window: rates divide by it.
        assert_eq!(c.rate_at(0, Window::TenSec), 2.0);
        assert_eq!(c.rate_at(0, Window::FiveMin), 2.0);
    }

    #[test]
    fn buckets_age_out_of_short_windows_first() {
        let c = counter();
        c.add_at(0, 100);
        c.add_at(2, 4); // epoch 2: the 10s window is {1, 2} — excludes 0
        assert_eq!(c.window_count_at(2, Window::TenSec), 4);
        assert_eq!(c.window_count_at(2, Window::OneMin), 104);
        assert_eq!(c.get(), 104);
        // After a full minute the 1m window has aged the burst out too.
        assert_eq!(c.window_count_at(13, Window::OneMin), 4);
        assert_eq!(c.window_count_at(13, Window::FiveMin), 104);
    }

    #[test]
    fn ring_wraparound_reclaims_slots() {
        let c = counter();
        c.add_at(3, 7);
        // One full ring later the same slot index is reused: the stale
        // value must not leak into the new epoch's windows.
        let later = 3 + RING as u64;
        c.add_at(later, 1);
        assert_eq!(c.window_count_at(later, Window::TenSec), 1);
        assert_eq!(c.window_count_at(later, Window::FiveMin), 1);
        assert_eq!(c.get(), 8, "lifetime keeps everything");
    }

    #[test]
    fn late_writers_to_reclaimed_slots_are_dropped_from_windows() {
        let c = counter();
        let later = 5 + RING as u64;
        c.add_at(later, 3); // slot for epoch 5+RING is tagged
        c.add_at(5, 9); // a very late writer to the old epoch
        assert_eq!(c.get(), 12, "lifetime always counts");
        assert_eq!(c.window_count_at(later, Window::FiveMin), 3, "window does not");
    }

    #[test]
    fn windowed_histogram_rotates_and_merges() {
        let h = WindowedHistogram::new(Arc::new(Histogram::new()));
        for v in 1..=100 {
            h.record_at(0, v as f64);
        }
        let s = h.stats_at(0, Window::TenSec);
        assert_eq!(s.count, 100);
        assert!(s.p50 >= 50.0 && s.p50 <= 50.0 * 1.19, "p50 {}", s.p50);
        assert!(s.p99 >= 99.0 && s.p99 <= 100.0, "p99 {}", s.p99);
        // Two epochs later the burst is out of the 10s window but still
        // inside the lifetime histogram and the 1m window.
        h.record_at(2, 7.0);
        let s10 = h.stats_at(2, Window::TenSec);
        assert_eq!(s10.count, 1);
        assert_eq!(h.stats_at(2, Window::OneMin).count, 101);
        assert_eq!(h.lifetime().count(), 101);
    }

    #[test]
    fn empty_window_reports_zeros() {
        let h = WindowedHistogram::new(Arc::new(Histogram::new()));
        let s = h.stats_at(9, Window::TenSec);
        assert_eq!(s.count, 0);
        assert_eq!(s.rate, 0.0);
        assert_eq!(s.p50, 0.0);
    }

    #[test]
    fn concurrent_adds_race_rotation_without_losing_lifetime_counts() {
        use std::thread;
        let c = Arc::new(counter());
        let per_thread = 10_000u64;
        thread::scope(|s| {
            for t in 0..8 {
                let c = Arc::clone(&c);
                s.spawn(move || {
                    for i in 0..per_thread {
                        // Threads disagree about the epoch near the
                        // boundary, racing rotation on purpose.
                        c.add_at(i / 100 + t % 2, 1);
                    }
                });
            }
        });
        assert_eq!(c.get(), 8 * per_thread, "lifetime view is exact");
    }
}
