//! RAII stage spans with self-time accounting.

use crate::collector::{current_collector, Collector};
use std::cell::RefCell;
use std::time::Instant;

thread_local! {
    /// Per-thread stack of "nanoseconds spent in completed child
    /// spans" accumulators, one frame per live span.
    static CHILD_NS: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// An RAII timing span around one named stage.
///
/// `Span::enter("lp")` starts the clock; dropping the guard records
/// two histograms in the installed collector's registry —
/// `span.lp.ms` (wall time) and `span.lp.self_ms` (wall minus time
/// spent in spans nested inside it) — and, if the collector carries a
/// [`crate::TraceBuffer`], appends a Chrome complete event. When no
/// collector is installed on the thread, `enter` is a cheap no-op.
///
/// Recording happens in `Drop`, so a span whose body panics still
/// flushes its timing while the panic unwinds through it.
#[must_use = "a span records on drop; binding it to _ ends it immediately"]
#[derive(Debug)]
pub struct Span {
    ctx: Option<SpanCtx>,
}

#[derive(Debug)]
struct SpanCtx {
    name: &'static str,
    start: Instant,
    collector: Collector,
}

impl Span {
    /// Start a span named `name` if a collector is installed on this
    /// thread; otherwise return an inert guard.
    pub fn enter(name: &'static str) -> Span {
        let Some(collector) = current_collector() else {
            return Span { ctx: None };
        };
        CHILD_NS.with(|s| s.borrow_mut().push(0));
        Span { ctx: Some(SpanCtx { name, start: Instant::now(), collector }) }
    }

    /// The stage name, or `None` for an inert guard.
    pub fn name(&self) -> Option<&'static str> {
        self.ctx.as_ref().map(|c| c.name)
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(ctx) = self.ctx.take() else { return };
        let dur = ctx.start.elapsed();
        let dur_ns = u64::try_from(dur.as_nanos()).unwrap_or(u64::MAX);
        let child_ns = CHILD_NS.with(|s| {
            let mut stack = s.borrow_mut();
            let own_children = stack.pop().unwrap_or(0);
            if let Some(parent) = stack.last_mut() {
                *parent = parent.saturating_add(dur_ns);
            }
            own_children
        });
        let self_ns = dur_ns.saturating_sub(child_ns);
        let reg = &ctx.collector.registry;
        reg.histogram(&format!("span.{}.ms", ctx.name)).record(dur_ns as f64 / 1e6);
        reg.histogram(&format!("span.{}.self_ms", ctx.name)).record(self_ns as f64 / 1e6);
        if let Some(trace) = &ctx.collector.trace {
            if !trace.record(ctx.name, ctx.start, dur) {
                // Overflow is rare (buffer-capacity sized); the interned
                // lookup on this cold path keeps the hot path free of it.
                reg.counter("obs.trace_dropped").inc();
            }
        }
        if let Some(request) = &ctx.collector.request {
            request.record_stage(ctx.name, dur_ns as f64 / 1e6);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::with_collector;
    use crate::registry::Registry;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn span_without_collector_is_inert() {
        let span = Span::enter("idle");
        assert_eq!(span.name(), None);
    }

    #[test]
    fn nested_span_self_time_excludes_children() {
        let reg = Arc::new(Registry::new());
        with_collector(Collector::new(Arc::clone(&reg)), || {
            let _outer = Span::enter("outer");
            std::thread::sleep(Duration::from_millis(5));
            {
                let _inner = Span::enter("inner");
                std::thread::sleep(Duration::from_millis(20));
            }
        });
        let snap = reg.snapshot();
        let outer_total = snap.histogram("span.outer.ms").unwrap().max;
        let outer_self = snap.histogram("span.outer.self_ms").unwrap().max;
        let inner_total = snap.histogram("span.inner.ms").unwrap().max;
        assert!(outer_total >= 25.0, "outer total {outer_total}");
        assert!(inner_total >= 20.0, "inner total {inner_total}");
        // The accounting identity self = total − child holds exactly
        // regardless of scheduler preemption (which can inflate any
        // individual wall time), so assert that rather than comparing
        // two sleeps against each other.
        assert!(
            (outer_total - (outer_self + inner_total)).abs() < 5.0,
            "total {outer_total} ≠ self {outer_self} + child {inner_total}"
        );
        assert!(
            outer_self < outer_total,
            "self {outer_self} must exclude the child's {inner_total} from total {outer_total}"
        );
    }

    #[test]
    fn span_records_on_drop_during_panic_unwind() {
        let reg = Arc::new(Registry::new());
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            with_collector(Collector::new(Arc::clone(&reg)), || {
                let _span = Span::enter("doomed");
                panic!("solver bug");
            })
        }));
        assert!(result.is_err());
        assert_eq!(reg.snapshot().histogram("span.doomed.ms").unwrap().count, 1);
    }

    #[test]
    fn sibling_spans_accumulate_into_parent_child_time() {
        let reg = Arc::new(Registry::new());
        with_collector(Collector::new(Arc::clone(&reg)), || {
            let _outer = Span::enter("parent");
            for _ in 0..3 {
                let _child = Span::enter("leaf");
                std::thread::sleep(Duration::from_millis(4));
            }
        });
        let snap = reg.snapshot();
        assert_eq!(snap.histogram("span.leaf.ms").unwrap().count, 3);
        let parent_total = snap.histogram("span.parent.ms").unwrap().max;
        let parent_self = snap.histogram("span.parent.self_ms").unwrap().max;
        assert!(
            parent_self <= parent_total - 10.0,
            "self {parent_self} vs total {parent_total}: three 4ms children must be excluded"
        );
    }
}
