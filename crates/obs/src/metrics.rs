//! Counter, gauge, and fixed log-bucket histogram primitives.
//!
//! All three are lock-free (atomics only) so hot solver loops can bump
//! them without contention; aggregation work is deferred to snapshot
//! time.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// Monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// New counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `delta` to the counter.
    pub fn add(&self, delta: u64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Increment by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Signed instantaneous value (e.g. in-flight requests).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// New gauge at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Set to an absolute value.
    pub fn set(&self, value: i64) {
        self.value.store(value, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Lowest bucket upper bound, in the recorded unit (we use milliseconds
/// for latencies: 1µs resolution at the bottom).
const MIN_BOUND: f64 = 1e-3;
/// Geometric bucket growth factor: 2^(1/4), i.e. four buckets per
/// doubling, ≤ ~19% relative error on any reported percentile.
const GROWTH: f64 = 1.189_207_115_002_721;
/// Number of finite buckets; bucket `i` covers
/// `(MIN_BOUND·GROWTH^(i-1), MIN_BOUND·GROWTH^i]`, bucket 0 covers
/// `(-inf, MIN_BOUND]`. 128 buckets reach ~4.3e6 ms (≈72 minutes).
pub(crate) const BUCKETS: usize = 128;

/// Fixed log-bucket histogram with exact count/sum/min/max and
/// nearest-rank percentiles over the bucket bounds.
///
/// Values are `f64`; negative or NaN samples are clamped into the
/// lowest bucket / ignored respectively. Percentiles return the upper
/// bound of the bucket holding the nearest-rank sample, clamped to the
/// exact observed maximum, so they are upper bounds within one bucket
/// width (≤ ~19%) of the true sample percentile.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    /// Samples above the last finite bucket bound.
    overflow: AtomicU64,
    count: AtomicU64,
    /// f64 bit patterns, CAS-updated.
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// New empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            overflow: AtomicU64::new(0),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0f64.to_bits()),
            min: AtomicU64::new(f64::INFINITY.to_bits()),
            max: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
        }
    }

    /// Upper bound of finite bucket `i`.
    pub(crate) fn bound(i: usize) -> f64 {
        MIN_BOUND * GROWTH.powi(i as i32)
    }

    /// Index of the bucket a value falls into; `BUCKETS` means overflow.
    pub(crate) fn bucket_index(v: f64) -> usize {
        if v <= MIN_BOUND {
            return 0;
        }
        // Walk up from the log estimate to absorb float rounding: the
        // invariant is simply "first bucket whose bound >= v".
        let mut i = ((v / MIN_BOUND).ln() / GROWTH.ln()).floor() as usize;
        i = i.min(BUCKETS);
        while i < BUCKETS && Self::bound(i) < v {
            i += 1;
        }
        i
    }

    /// Record one sample. NaN samples are ignored.
    pub fn record(&self, v: f64) {
        if v.is_nan() {
            return;
        }
        let idx = Self::bucket_index(v);
        if idx >= BUCKETS {
            self.overflow.fetch_add(1, Ordering::Relaxed);
        } else {
            self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        }
        self.count.fetch_add(1, Ordering::Relaxed);
        atomic_f64_update(&self.sum, |s| s + v);
        atomic_f64_update(&self.min, |m| m.min(v));
        atomic_f64_update(&self.max, |m| m.max(v));
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded samples.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum.load(Ordering::Relaxed))
    }

    /// Exact minimum sample, or 0.0 when empty.
    pub fn min(&self) -> f64 {
        if self.count() == 0 {
            return 0.0;
        }
        f64::from_bits(self.min.load(Ordering::Relaxed))
    }

    /// Exact maximum sample, or 0.0 when empty.
    pub fn max(&self) -> f64 {
        if self.count() == 0 {
            return 0.0;
        }
        f64::from_bits(self.max.load(Ordering::Relaxed))
    }

    /// Mean of recorded samples, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() / n as f64
        }
    }

    /// Nearest-rank percentile `q ∈ [0, 1]`: upper bound of the bucket
    /// containing the ⌈q·n⌉-th smallest sample, clamped to the exact
    /// observed max. Returns 0.0 when empty.
    pub fn percentile(&self, q: f64) -> f64 {
        let n = self.count();
        if n == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        // Nearest-rank: 1-based rank ⌈q·n⌉, at least 1.
        let rank = ((q * n as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for i in 0..BUCKETS {
            seen += self.buckets[i].load(Ordering::Relaxed);
            if seen >= rank {
                return Self::bound(i).min(self.max());
            }
        }
        self.max()
    }

    /// Non-empty `(upper_bound, count)` bucket pairs, in ascending
    /// order; the overflow bucket reports `f64::INFINITY` as its bound.
    pub fn nonzero_buckets(&self) -> Vec<(f64, u64)> {
        let mut out = Vec::new();
        for i in 0..BUCKETS {
            let c = self.buckets[i].load(Ordering::Relaxed);
            if c > 0 {
                out.push((Self::bound(i), c));
            }
        }
        let over = self.overflow.load(Ordering::Relaxed);
        if over > 0 {
            out.push((f64::INFINITY, over));
        }
        out
    }
}

/// CAS-loop update of an `AtomicU64` holding f64 bits.
fn atomic_f64_update(cell: &AtomicU64, f: impl Fn(f64) -> f64) {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let new = f(f64::from_bits(cur)).to_bits();
        match cell.compare_exchange_weak(cur, new, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(actual) => cur = actual,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_matches_bound_invariant() {
        for &v in &[0.0, 1e-9, 1e-3, 1.5e-3, 1.0, 17.0, 4.0e6, 1.0e12] {
            let i = Histogram::bucket_index(v);
            if i < BUCKETS {
                assert!(Histogram::bound(i) >= v, "bound({i}) < {v}");
                if i > 0 {
                    assert!(Histogram::bound(i - 1) < v, "not the first bucket for {v}");
                }
            } else {
                assert!(Histogram::bound(BUCKETS - 1) < v);
            }
        }
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.sum(), 0.0);
        assert_eq!(h.min(), 0.0);
        assert_eq!(h.max(), 0.0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.percentile(0.5), 0.0);
        assert!(h.nonzero_buckets().is_empty());
    }

    #[test]
    fn single_sample_is_exact_everywhere() {
        let h = Histogram::new();
        h.record(3.25);
        assert_eq!(h.count(), 1);
        assert_eq!(h.min(), 3.25);
        assert_eq!(h.max(), 3.25);
        assert_eq!(h.mean(), 3.25);
        // One sample: every percentile is clamped to the exact max.
        assert_eq!(h.percentile(0.0), 3.25);
        assert_eq!(h.percentile(0.5), 3.25);
        assert_eq!(h.percentile(1.0), 3.25);
    }

    #[test]
    fn percentile_is_within_one_bucket_of_true_value() {
        let h = Histogram::new();
        for v in 1..=1000 {
            h.record(v as f64);
        }
        for &(q, truth) in &[(0.5, 500.0), (0.95, 950.0), (0.99, 990.0)] {
            let got = h.percentile(q);
            assert!(got >= truth, "p{q}: {got} < {truth}");
            assert!(got <= truth * GROWTH, "p{q}: {got} > {truth}·growth");
        }
        assert_eq!(h.max(), 1000.0);
        assert_eq!(h.percentile(1.0), 1000.0);
    }

    #[test]
    fn overflow_samples_are_counted_and_clamped_to_max() {
        let h = Histogram::new();
        h.record(1.0e12);
        assert_eq!(h.count(), 1);
        assert_eq!(h.percentile(0.99), 1.0e12);
        let buckets = h.nonzero_buckets();
        assert_eq!(buckets.len(), 1);
        assert!(buckets[0].0.is_infinite());
    }
}
