//! Property tests for the sliding-window aggregator.
//!
//! Two invariants the telemetry plane's consumers rely on:
//!
//! 1. **Windowed-vs-lifetime consistency** — when every sample lands
//!    inside one window (same epoch), the windowed percentiles must
//!    agree with the lifetime histogram's, because both run the same
//!    nearest-rank algorithm over the same bucket layout and the
//!    max clamp sees the same lifetime max.
//! 2. **Exact aging** — samples split across epochs are partitioned
//!    exactly: a window covering only the later epochs must report the
//!    percentiles of exactly the later samples (checked against a
//!    second histogram fed only those).

use atsched_obs::{Histogram, Window, WindowedCounter, WindowedHistogram};
use proptest::prelude::*;
use std::sync::Arc;

/// Upper bound of the bucket a value lands in, replicated from the
/// documented bucket layout (base 1e-3, growth 2^(1/4)).
fn bucket_upper_bound(v: f64) -> f64 {
    const MIN_BOUND: f64 = 1e-3;
    const GROWTH: f64 = 1.189_207_115_002_721;
    let mut bound = MIN_BOUND;
    while bound < v {
        bound *= GROWTH;
    }
    bound
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn prop_windowed_percentiles_match_lifetime_inside_one_window(
        raw in proptest::collection::vec(1u64..100_000_000u64, 1..200),
        epoch in 0u64..1000,
    ) {
        let wh = WindowedHistogram::new(Arc::new(Histogram::new()));
        for &us in &raw {
            wh.record_at(epoch, us as f64 / 1e3);
        }
        let lifetime = wh.lifetime();
        for w in Window::ALL {
            let stats = wh.stats_at(epoch, w);
            prop_assert_eq!(stats.count, raw.len() as u64);
            for (q, got) in [(0.50, stats.p50), (0.95, stats.p95), (0.99, stats.p99)] {
                let want = lifetime.percentile(q);
                prop_assert!(
                    (got - want).abs() <= want.abs() * 1e-12,
                    "window {:?} q={} got={} lifetime={}", w, q, got, want
                );
            }
        }
    }

    #[test]
    fn prop_window_ages_out_exactly_the_old_epochs(
        old in proptest::collection::vec(1u64..100_000_000u64, 1..100),
        fresh in proptest::collection::vec(1u64..100_000_000u64, 1..100),
    ) {
        // Burst at epoch 0, fresh samples at epoch 3 (15s later): the
        // 10s window sees only the fresh ones, the 1m window all.
        let wh = WindowedHistogram::new(Arc::new(Histogram::new()));
        for &us in &old {
            wh.record_at(0, us as f64 / 1e3);
        }
        for &us in &fresh {
            wh.record_at(3, us as f64 / 1e3);
        }
        let mut sorted_fresh: Vec<f64> = fresh.iter().map(|&us| us as f64 / 1e3).collect();
        sorted_fresh.sort_by(f64::total_cmp);

        let s10 = wh.stats_at(3, Window::TenSec);
        prop_assert_eq!(s10.count, fresh.len() as u64);
        // Windowed percentiles clamp bucket bounds to the *lifetime*
        // max (the ring keeps no exact extremes), so the oracle is the
        // fresh-only nearest-rank bucket bound under the same clamp.
        for (q, got) in [(0.50, s10.p50), (0.95, s10.p95), (0.99, s10.p99)] {
            let rank = ((q * sorted_fresh.len() as f64).ceil() as usize).clamp(1, sorted_fresh.len());
            let want = bucket_upper_bound(sorted_fresh[rank - 1]).min(wh.lifetime().max());
            prop_assert!(
                (got - want).abs() <= want.abs() * 1e-9,
                "q={} got={} fresh-only={}", q, got, want
            );
        }
        let s1m = wh.stats_at(3, Window::OneMin);
        prop_assert_eq!(s1m.count, (old.len() + fresh.len()) as u64);
    }

    #[test]
    fn prop_counter_windows_partition_by_epoch(
        counts in proptest::collection::vec(0u64..1000, 1..80),
    ) {
        // One bump batch per consecutive epoch; at the final epoch each
        // window must contain exactly the trailing `buckets()` batches.
        let wc = WindowedCounter::new(Arc::new(atsched_obs::Counter::new()));
        for (e, &n) in counts.iter().enumerate() {
            wc.add_at(e as u64, n);
        }
        let last = (counts.len() - 1) as u64;
        let total: u64 = counts.iter().sum();
        prop_assert_eq!(wc.get(), total);
        for w in Window::ALL {
            let tail: u64 = counts
                .iter()
                .rev()
                .take(w.buckets() as usize)
                .sum();
            prop_assert_eq!(
                wc.window_count_at(last, w), tail,
                "window {:?} at epoch {}", w, last
            );
        }
    }
}
