//! Property test: histogram percentiles against a sorted-vec oracle.
//!
//! The histogram quantizes into fixed log buckets, so it cannot return
//! the exact sample — but its answer is fully determined: for the
//! nearest-rank sample `x` (1-based rank ⌈q·n⌉) the histogram must
//! report `min(upper_bound(bucket_of(x)), observed_max)`, which in
//! particular brackets the true percentile within one bucket width
//! (≤ ~19% relative error).

use atsched_obs::Histogram;
use proptest::prelude::*;

/// The oracle: exact nearest-rank percentile over the raw samples.
fn oracle_nearest_rank(sorted: &[f64], q: f64) -> f64 {
    let n = sorted.len();
    assert!(n > 0);
    let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
    sorted[rank - 1]
}

/// Upper bound of the bucket a value lands in, replicated from the
/// documented bucket layout (base 1e-3, growth 2^(1/4)): the smallest
/// bound `1e-3 · g^i >= v`.
fn bucket_upper_bound(v: f64) -> f64 {
    const MIN_BOUND: f64 = 1e-3;
    const GROWTH: f64 = 1.189_207_115_002_721;
    let mut bound = MIN_BOUND;
    while bound < v {
        bound *= GROWTH;
    }
    bound
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]
    #[test]
    fn prop_histogram_percentiles_match_sorted_vec_oracle(
        // Samples in microseconds, 1µs .. 100s: spans ~7 decades of
        // buckets including the sub-resolution bottom bucket.
        raw in proptest::collection::vec(1u64..100_000_000u64, 1..200),
    ) {
        let samples: Vec<f64> = raw.iter().map(|&us| us as f64 / 1e3).collect();
        let hist = Histogram::new();
        for &s in &samples {
            hist.record(s);
        }
        let mut sorted = samples.clone();
        sorted.sort_by(f64::total_cmp);
        let max = *sorted.last().unwrap();

        prop_assert_eq!(hist.count(), samples.len() as u64);
        prop_assert_eq!(hist.max(), max);
        prop_assert_eq!(hist.min(), sorted[0]);

        for &q in &[0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0] {
            let truth = oracle_nearest_rank(&sorted, q);
            let expected = bucket_upper_bound(truth).min(max);
            let got = hist.percentile(q);
            // The oracle rebuilds bucket bounds by repeated
            // multiplication while the histogram uses powi, so the two
            // agree only up to float rounding in the last ulps.
            prop_assert!(
                (got - expected).abs() <= expected.abs() * 1e-9,
                "q={} truth={} expected={} got={}", q, truth, expected, got
            );
            // And the bracketing guarantee the callers rely on.
            prop_assert!(got >= truth || (got - max).abs() < f64::EPSILON);
            prop_assert!(got <= (truth * 1.19).max(1e-3).max(truth + 1e-12));
        }
    }

    #[test]
    fn prop_sum_and_mean_are_exact(
        raw in proptest::collection::vec(1u64..1_000_000u64, 1..50),
    ) {
        let samples: Vec<f64> = raw.iter().map(|&us| us as f64 / 1e3).collect();
        let hist = Histogram::new();
        let mut sum = 0.0;
        for &s in &samples {
            hist.record(s);
            sum += s;
        }
        // Single-threaded recording: sum is accumulated in the same
        // order, so it is bitwise identical.
        prop_assert_eq!(hist.sum(), sum);
        prop_assert_eq!(hist.mean(), sum / samples.len() as f64);
    }
}
