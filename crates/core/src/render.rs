//! SVG Gantt rendering of schedules (presentation utility).
//!
//! Produces a self-contained SVG string: one row per job showing its
//! window (light band) and its assigned slots (solid blocks), plus a
//! header row marking active slots. No external dependencies; output is
//! deterministic, making it safe to snapshot in tests.

use crate::instance::Instance;
use crate::schedule::Schedule;
use std::fmt::Write as _;

/// Rendering options.
#[derive(Debug, Clone)]
pub struct SvgOptions {
    /// Pixel width of one time slot.
    pub slot_width: u32,
    /// Pixel height of one job row.
    pub row_height: u32,
    /// Include the per-slot activity header row.
    pub header: bool,
}

impl Default for SvgOptions {
    fn default() -> Self {
        SvgOptions { slot_width: 18, row_height: 16, header: true }
    }
}

/// Render a schedule as an SVG document.
///
/// Returns an empty-chart SVG for empty instances. The schedule is not
/// re-verified here; pass verified schedules for meaningful pictures.
pub fn to_svg(inst: &Instance, schedule: &Schedule, opts: &SvgOptions) -> String {
    let (lo, hi) = inst.horizon().unwrap_or((0, 1));
    let cols = (hi - lo) as u32;
    let header_rows = opts.header as u32;
    let rows = inst.num_jobs() as u32 + header_rows;
    let label_w = 60u32;
    let width = label_w + cols * opts.slot_width + 10;
    let height = rows * (opts.row_height + 4) + 30;

    let mut svg = String::new();
    let _ = write!(
        svg,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{width}" height="{height}" font-family="monospace" font-size="11">"#
    );
    let x_of = |t: i64| label_w + ((t - lo) as u32) * opts.slot_width;
    let y_of = |row: u32| 20 + row * (opts.row_height + 4);

    // Time axis ticks.
    for t in lo..=hi {
        if (t - lo) % 2 == 0 {
            let _ = write!(svg, r##"<text x="{}" y="14" fill="#555">{t}</text>"##, x_of(t));
        }
    }

    // Header: active slots.
    if opts.header {
        let y = y_of(0);
        for (t, jobs) in schedule.slots.iter().zip(&schedule.assignment) {
            let color = if jobs.is_empty() { "#ddd" } else { "#444" };
            let _ = write!(
                svg,
                r##"<rect x="{}" y="{}" width="{}" height="{}" fill="{color}"/>"##,
                x_of(*t),
                y,
                opts.slot_width - 2,
                opts.row_height
            );
        }
        let _ = write!(
            svg,
            r##"<text x="2" y="{}" fill="#000">active</text>"##,
            y + opts.row_height - 4
        );
    }

    // Job rows: window band + assigned blocks.
    for (j, job) in inst.jobs.iter().enumerate() {
        let row = j as u32 + header_rows;
        let y = y_of(row);
        let _ = write!(
            svg,
            r##"<rect x="{}" y="{}" width="{}" height="{}" fill="#eef" stroke="#aac"/>"##,
            x_of(job.release),
            y,
            (job.window_len() as u32) * opts.slot_width - 2,
            opts.row_height
        );
        for (t, jobs) in schedule.slots.iter().zip(&schedule.assignment) {
            if jobs.contains(&j) {
                let _ = write!(
                    svg,
                    r##"<rect x="{}" y="{}" width="{}" height="{}" fill="#36c"/>"##,
                    x_of(*t),
                    y,
                    opts.slot_width - 2,
                    opts.row_height
                );
            }
        }
        let _ = write!(
            svg,
            r##"<text x="2" y="{}" fill="#000">j{j} p={}</text>"##,
            y + opts.row_height - 4,
            job.processing
        );
    }
    svg.push_str("</svg>");
    svg
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::Job;
    use crate::solver::{solve_nested, SolverOptions};

    fn inst(g: i64, jobs: Vec<(i64, i64, i64)>) -> Instance {
        Instance::new(g, jobs.into_iter().map(|(r, d, p)| Job::new(r, d, p)).collect()).unwrap()
    }

    #[test]
    fn svg_structure() {
        let i = inst(2, vec![(0, 4, 2), (1, 3, 1)]);
        let r = solve_nested(&i, &SolverOptions::exact()).unwrap();
        let svg = to_svg(&i, &r.schedule, &SvgOptions::default());
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        // One window band per job.
        assert_eq!(svg.matches("#eef").count(), 2);
        // Assigned blocks: p0 + p1 = 3 solid rects.
        assert_eq!(svg.matches("#36c").count(), 3);
        // Job labels present.
        assert!(svg.contains("j0 p=2"));
        assert!(svg.contains("j1 p=1"));
    }

    #[test]
    fn svg_without_header() {
        let i = inst(1, vec![(0, 2, 1)]);
        let r = solve_nested(&i, &SolverOptions::exact()).unwrap();
        let with = to_svg(&i, &r.schedule, &SvgOptions::default());
        let without = to_svg(&i, &r.schedule, &SvgOptions { header: false, ..Default::default() });
        assert!(with.contains(">active<"));
        assert!(!without.contains(">active<"));
    }

    #[test]
    fn svg_handles_negative_times() {
        let i = inst(1, vec![(-5, -2, 2)]);
        let r = solve_nested(&i, &SolverOptions::exact()).unwrap();
        let svg = to_svg(&i, &r.schedule, &SvgOptions::default());
        assert!(svg.contains("-5"));
        assert!(svg.ends_with("</svg>"));
    }

    #[test]
    fn svg_empty_instance() {
        let i = inst(1, vec![]);
        let svg = to_svg(&i, &Schedule::new(Vec::new(), Vec::new()), &SvgOptions::default());
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
    }

    #[test]
    fn svg_is_deterministic() {
        let i = inst(2, vec![(0, 6, 2), (1, 4, 1)]);
        let r = solve_nested(&i, &SolverOptions::exact()).unwrap();
        let a = to_svg(&i, &r.schedule, &SvgOptions::default());
        let b = to_svg(&i, &r.schedule, &SvgOptions::default());
        assert_eq!(a, b);
    }
}
