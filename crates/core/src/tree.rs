//! The laminar forest of distinct job windows (paper §2).
//!
//! Each node corresponds to one distinct window; node `i'` is a child of
//! `i` when `K(i') ⊊ K(i)` with nothing strictly between. Jobs belong to
//! the node whose interval equals their window. A node's *length* `L(i)`
//! is the number of slots in its interval not covered by child intervals —
//! its "own" slots. Own slots are interchangeable: every job allowed to
//! use one of them is allowed to use all of them, which is why the whole
//! pipeline can work with per-node open *counts* instead of concrete slot
//! indices.

use crate::instance::{Instance, InstanceError};

/// A node of the window forest.
#[derive(Debug, Clone)]
pub struct TreeNode {
    /// Hull interval `[lo, hi)`. For virtual nodes created by
    /// binarization the interval is the hull of the children (the node
    /// itself owns no slots).
    pub interval: (i64, i64),
    /// Parent node id, if any.
    pub parent: Option<usize>,
    /// Child node ids, ordered by interval start.
    pub children: Vec<usize>,
    /// Jobs belonging to this node (window equals interval; empty for
    /// virtual nodes).
    pub jobs: Vec<usize>,
    /// Slots in the interval not covered by any child interval, sorted.
    /// `L(i)` is the length of this vector.
    pub own_slots: Vec<i64>,
    /// True for nodes introduced by the canonical transformation.
    pub is_virtual: bool,
    /// Distance from the root of its tree.
    pub depth: usize,
}

impl TreeNode {
    /// The paper's `L(i)`: number of own slots.
    pub fn len(&self) -> i64 {
        self.own_slots.len() as i64
    }

    /// True iff the node owns no slots.
    pub fn is_empty(&self) -> bool {
        self.own_slots.is_empty()
    }

    /// True iff the node has no children.
    pub fn is_leaf(&self) -> bool {
        self.children.is_empty()
    }
}

/// The laminar forest over all distinct windows of an instance.
#[derive(Debug, Clone)]
pub struct Forest {
    /// All nodes; ids are indices.
    pub nodes: Vec<TreeNode>,
    /// Root node ids (one per tree), ordered by interval start.
    pub roots: Vec<usize>,
    /// `k(j)`: the node each job belongs to.
    pub job_node: Vec<usize>,
}

impl Forest {
    /// Build the forest of distinct windows.
    ///
    /// Fails with [`InstanceError::NotLaminar`] when two windows cross.
    pub fn build(inst: &Instance) -> Result<Self, InstanceError> {
        inst.check_laminar()?;

        // Distinct windows, outer-first: (r asc, d desc).
        let mut windows: Vec<(i64, i64)> =
            inst.jobs.iter().map(|j| (j.release, j.deadline)).collect();
        windows.sort_unstable_by_key(|&(r, d)| (r, -d));
        windows.dedup();

        let mut nodes: Vec<TreeNode> = Vec::with_capacity(windows.len());
        let mut roots: Vec<usize> = Vec::new();
        let mut stack: Vec<usize> = Vec::new(); // chain of currently-open nodes
        for &(r, d) in &windows {
            while let Some(&top) = stack.last() {
                if nodes[top].interval.1 <= r {
                    stack.pop();
                } else {
                    break;
                }
            }
            let parent = stack.last().copied();
            let id = nodes.len();
            nodes.push(TreeNode {
                interval: (r, d),
                parent,
                children: Vec::new(),
                jobs: Vec::new(),
                own_slots: Vec::new(),
                is_virtual: false,
                depth: 0,
            });
            match parent {
                Some(p) => nodes[p].children.push(id),
                None => roots.push(id),
            }
            stack.push(id);
        }

        // Attach jobs to their nodes.
        let mut job_node = vec![usize::MAX; inst.jobs.len()];
        for (jid, job) in inst.jobs.iter().enumerate() {
            let target = (job.release, job.deadline);
            // Windows are few; linear scan is fine and avoids a map.
            let node = nodes
                .iter()
                .position(|n| n.interval == target)
                .expect("every job window has a node");
            nodes[node].jobs.push(jid);
            job_node[jid] = node;
        }

        let mut forest = Forest { nodes, roots, job_node };
        forest.recompute_own_slots();
        forest.recompute_depths();
        Ok(forest)
    }

    /// Recompute `own_slots` for every node from intervals and children.
    pub(crate) fn recompute_own_slots(&mut self) {
        for id in 0..self.nodes.len() {
            let (lo, hi) = self.nodes[id].interval;
            let mut covered: Vec<(i64, i64)> =
                self.nodes[id].children.iter().map(|&c| self.nodes[c].interval).collect();
            covered.sort_unstable();
            let mut own = Vec::new();
            let mut t = lo;
            for (clo, chi) in covered {
                while t < clo {
                    own.push(t);
                    t += 1;
                }
                t = t.max(chi);
            }
            while t < hi {
                own.push(t);
                t += 1;
            }
            self.nodes[id].own_slots = own;
        }
    }

    /// Recompute depths from the parent pointers.
    pub(crate) fn recompute_depths(&mut self) {
        for id in self.topological_order() {
            self.nodes[id].depth = match self.nodes[id].parent {
                None => 0,
                Some(p) => self.nodes[p].depth + 1,
            };
        }
    }

    /// Number of nodes (`m` in the paper).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Parent-before-child order over all trees.
    pub fn topological_order(&self) -> Vec<usize> {
        let mut order = Vec::with_capacity(self.nodes.len());
        let mut stack: Vec<usize> = self.roots.clone();
        while let Some(id) = stack.pop() {
            order.push(id);
            stack.extend(self.nodes[id].children.iter().copied());
        }
        debug_assert_eq!(order.len(), self.nodes.len());
        order
    }

    /// Children-before-parent order over all trees.
    pub fn post_order(&self) -> Vec<usize> {
        let mut order = self.topological_order();
        order.reverse();
        order
    }

    /// `Des(i)`: the node ids in `i`'s subtree, `i` included (preorder).
    pub fn descendants(&self, i: usize) -> Vec<usize> {
        let mut out = Vec::new();
        let mut stack = vec![i];
        while let Some(id) = stack.pop() {
            out.push(id);
            stack.extend(self.nodes[id].children.iter().copied());
        }
        out
    }

    /// `Anc(i)`: `i` and its ancestors up to the root.
    pub fn ancestors(&self, i: usize) -> Vec<usize> {
        let mut out = vec![i];
        let mut cur = i;
        while let Some(p) = self.nodes[cur].parent {
            out.push(p);
            cur = p;
        }
        out
    }

    /// Is `a` an ancestor of `b` (including `a == b`)?
    pub fn is_ancestor(&self, a: usize, b: usize) -> bool {
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.nodes[cur].parent {
                Some(p) => cur = p,
                None => return false,
            }
        }
    }

    /// Job ids belonging to nodes of `i`'s subtree: `J(Des(i))`.
    pub fn jobs_in_subtree(&self, i: usize) -> Vec<usize> {
        let mut out = Vec::new();
        for id in self.descendants(i) {
            out.extend(self.nodes[id].jobs.iter().copied());
        }
        out
    }

    /// Total own slots over the whole forest (number of distinct slots
    /// covered by any window).
    pub fn total_slots(&self) -> i64 {
        self.nodes.iter().map(|n| n.len()).sum()
    }

    /// Consistency checks used by tests and debug assertions: intervals
    /// nest properly, own slots partition, jobs sit on matching intervals.
    pub fn validate(&self) -> Result<(), String> {
        for (id, n) in self.nodes.iter().enumerate() {
            if n.interval.0 >= n.interval.1 {
                return Err(format!("node {id} has empty interval"));
            }
            for &c in &n.children {
                let ci = self.nodes[c].interval;
                if !(n.interval.0 <= ci.0 && ci.1 <= n.interval.1) {
                    return Err(format!("child {c} escapes parent {id}"));
                }
                if self.nodes[c].parent != Some(id) {
                    return Err(format!("child {c} has wrong parent pointer"));
                }
            }
            // Children pairwise disjoint.
            let mut ivs: Vec<(i64, i64)> =
                n.children.iter().map(|&c| self.nodes[c].interval).collect();
            ivs.sort_unstable();
            for w in ivs.windows(2) {
                if w[0].1 > w[1].0 {
                    return Err(format!("node {id} has overlapping children"));
                }
            }
            // Own slots inside the interval and outside the children.
            for &t in &n.own_slots {
                if t < n.interval.0 || t >= n.interval.1 {
                    return Err(format!("node {id} own slot {t} outside interval"));
                }
                for &c in &n.children {
                    let ci = self.nodes[c].interval;
                    if ci.0 <= t && t < ci.1 {
                        return Err(format!("node {id} own slot {t} inside child"));
                    }
                }
            }
        }
        for (j, &k) in self.job_node.iter().enumerate() {
            if k >= self.nodes.len() {
                return Err(format!("job {j} points at missing node"));
            }
            if !self.nodes[k].jobs.contains(&j) {
                return Err(format!("job {j} not listed on its node"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::Job;

    fn inst(g: i64, jobs: Vec<(i64, i64, i64)>) -> Instance {
        Instance::new(g, jobs.into_iter().map(|(r, d, p)| Job::new(r, d, p)).collect()).unwrap()
    }

    #[test]
    fn single_window_single_node() {
        let f = Forest::build(&inst(2, vec![(0, 5, 2), (0, 5, 1)])).unwrap();
        assert_eq!(f.num_nodes(), 1);
        assert_eq!(f.roots, vec![0]);
        assert_eq!(f.nodes[0].jobs, vec![0, 1]);
        assert_eq!(f.nodes[0].own_slots, vec![0, 1, 2, 3, 4]);
        f.validate().unwrap();
    }

    #[test]
    fn nested_chain() {
        let f = Forest::build(&inst(2, vec![(0, 10, 1), (2, 7, 1), (3, 5, 1)])).unwrap();
        assert_eq!(f.num_nodes(), 3);
        let root = f.roots[0];
        assert_eq!(f.nodes[root].interval, (0, 10));
        let mid = f.nodes[root].children[0];
        assert_eq!(f.nodes[mid].interval, (2, 7));
        let leaf = f.nodes[mid].children[0];
        assert_eq!(f.nodes[leaf].interval, (3, 5));
        // Own slots exclude child ranges.
        assert_eq!(f.nodes[root].own_slots, vec![0, 1, 7, 8, 9]);
        assert_eq!(f.nodes[mid].own_slots, vec![2, 5, 6]);
        assert_eq!(f.nodes[leaf].own_slots, vec![3, 4]);
        assert_eq!(f.nodes[leaf].depth, 2);
        f.validate().unwrap();
    }

    #[test]
    fn forest_with_two_trees() {
        let f = Forest::build(&inst(1, vec![(0, 2, 1), (5, 8, 2), (6, 8, 1)])).unwrap();
        assert_eq!(f.roots.len(), 2);
        f.validate().unwrap();
    }

    #[test]
    fn duplicate_windows_collapse() {
        let f = Forest::build(&inst(1, vec![(0, 3, 1), (0, 3, 2), (1, 2, 1)])).unwrap();
        assert_eq!(f.num_nodes(), 2);
        assert_eq!(f.nodes[f.roots[0]].jobs.len(), 2);
        f.validate().unwrap();
    }

    #[test]
    fn descendants_and_ancestors() {
        let f = Forest::build(&inst(2, vec![(0, 10, 1), (1, 4, 1), (5, 9, 1), (6, 8, 1)])).unwrap();
        let root = f.roots[0];
        let mut des = f.descendants(root);
        des.sort_unstable();
        assert_eq!(des, vec![0, 1, 2, 3]);
        let deepest = (0..4).max_by_key(|&i| f.nodes[i].depth).unwrap();
        assert_eq!(f.nodes[deepest].interval, (6, 8));
        let anc = f.ancestors(deepest);
        assert_eq!(anc.len(), 3);
        assert!(f.is_ancestor(root, deepest));
        assert!(!f.is_ancestor(deepest, root));
        assert!(f.is_ancestor(deepest, deepest));
    }

    #[test]
    fn zero_length_own_slots() {
        // Children tile the parent exactly: parent owns nothing.
        let f = Forest::build(&inst(1, vec![(0, 4, 1), (0, 2, 1), (2, 4, 1)])).unwrap();
        let root = f.roots[0];
        assert!(f.nodes[root].own_slots.is_empty());
        assert_eq!(f.nodes[root].len(), 0);
        f.validate().unwrap();
    }

    #[test]
    fn orders_cover_all_nodes() {
        let f =
            Forest::build(&inst(2, vec![(0, 10, 1), (1, 4, 1), (5, 9, 1), (6, 8, 1), (11, 13, 1)]))
                .unwrap();
        let topo = f.topological_order();
        let post = f.post_order();
        assert_eq!(topo.len(), f.num_nodes());
        assert_eq!(post.len(), f.num_nodes());
        // Parent precedes child in topo, follows in post.
        for (idx, &id) in topo.iter().enumerate() {
            if let Some(p) = f.nodes[id].parent {
                assert!(topo[..idx].contains(&p));
            }
        }
        for (idx, &id) in post.iter().enumerate() {
            if let Some(p) = f.nodes[id].parent {
                assert!(post[idx + 1..].contains(&p));
            }
        }
    }
}
