//! Typed instance deltas: the input side of incremental solving.
//!
//! A [`JobDelta`] is a batch of add / remove / modify-window operations
//! against an existing [`Instance`]. [`apply`] turns the pair into the
//! amended instance, which a session layer can then re-decompose to
//! find the shards actually touched by the change (the *dirty-shard
//! rule*, DESIGN.md §12).
//!
//! ## Id semantics
//!
//! Every operation refers to jobs by their **pre-amend** id — an index
//! into the instance the delta is applied to. All operations in one
//! batch are interpreted against that same snapshot, so the order of
//! ops within a batch carries no meaning except for the append order of
//! added jobs. Concretely:
//!
//! * modifies rewrite the windows of surviving jobs in place;
//! * removes drop jobs, and the survivors are compacted keeping their
//!   relative order (post-amend ids shift down);
//! * adds append after the survivors, in the order given.
//!
//! Referring to the same pre-amend job twice (two modifies, a modify
//! plus a remove, two removes) is rejected as
//! [`DeltaError::DuplicateOp`] rather than silently picking a winner.
//! The amended job list is re-validated by [`Instance::new`]; window
//! shapes that break laminarity are *not* rejected here (the solver
//! rejects them later, exactly as it does for cold inputs).

use crate::instance::{Instance, InstanceError, Job};

/// One edit against a pre-amend instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeltaOp {
    /// Append a new job (post-amend id assigned after all survivors).
    Add(Job),
    /// Remove the job with this pre-amend id.
    Remove(usize),
    /// Rewrite the window of the job with pre-amend id `job` to
    /// `[release, deadline)`; processing time is unchanged.
    ModifyWindow {
        /// Pre-amend id of the job to modify.
        job: usize,
        /// New release time (window start, inclusive).
        release: i64,
        /// New deadline (window end, exclusive).
        deadline: i64,
    },
}

/// A batch of edits applied atomically to one instance snapshot.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct JobDelta {
    /// The operations; see the module docs for id semantics.
    pub ops: Vec<DeltaOp>,
}

impl JobDelta {
    /// An empty delta (applying it returns the instance unchanged).
    pub fn new() -> Self {
        JobDelta::default()
    }

    /// Append an add operation (builder style).
    #[allow(clippy::should_implement_trait)] // builder verb, not arithmetic
    pub fn add(mut self, job: Job) -> Self {
        self.ops.push(DeltaOp::Add(job));
        self
    }

    /// Append a remove operation (builder style).
    pub fn remove(mut self, job: usize) -> Self {
        self.ops.push(DeltaOp::Remove(job));
        self
    }

    /// Append a modify-window operation (builder style).
    pub fn modify_window(mut self, job: usize, release: i64, deadline: i64) -> Self {
        self.ops.push(DeltaOp::ModifyWindow { job, release, deadline });
        self
    }

    /// Number of operations in the batch.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when the batch has no operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

/// Why a delta could not be applied.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeltaError {
    /// An op referenced a pre-amend job id past the end of the instance.
    UnknownJob(usize),
    /// Two ops referenced the same pre-amend job id.
    DuplicateOp(usize),
    /// The amended job list failed [`Instance::new`] validation.
    Instance(InstanceError),
}

impl std::fmt::Display for DeltaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeltaError::UnknownJob(j) => write!(f, "delta references unknown job {j}"),
            DeltaError::DuplicateOp(j) => {
                write!(f, "delta references job {j} more than once")
            }
            DeltaError::Instance(e) => write!(f, "amended instance is invalid: {e}"),
        }
    }
}

impl std::error::Error for DeltaError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DeltaError::Instance(e) => Some(e),
            _ => None,
        }
    }
}

impl From<InstanceError> for DeltaError {
    fn from(e: InstanceError) -> Self {
        DeltaError::Instance(e)
    }
}

/// Apply `delta` to `inst`, producing the amended instance.
///
/// See the module docs for id semantics. The result is validated with
/// [`Instance::new`]; `g` is carried over unchanged.
pub fn apply(inst: &Instance, delta: &JobDelta) -> Result<Instance, DeltaError> {
    let n = inst.jobs.len();
    // None = untouched, Some(None) = removed, Some(Some(j)) = modified.
    let mut touched: Vec<Option<Option<Job>>> = vec![None; n];
    let mut added: Vec<Job> = Vec::new();

    for op in &delta.ops {
        match *op {
            DeltaOp::Add(job) => added.push(job),
            DeltaOp::Remove(j) => {
                if j >= n {
                    return Err(DeltaError::UnknownJob(j));
                }
                if touched[j].replace(None).is_some() {
                    return Err(DeltaError::DuplicateOp(j));
                }
            }
            DeltaOp::ModifyWindow { job, release, deadline } => {
                if job >= n {
                    return Err(DeltaError::UnknownJob(job));
                }
                let modified = Job::new(release, deadline, inst.jobs[job].processing);
                if touched[job].replace(Some(modified)).is_some() {
                    return Err(DeltaError::DuplicateOp(job));
                }
            }
        }
    }

    let mut jobs: Vec<Job> = Vec::with_capacity(n + added.len());
    for (j, slot) in touched.into_iter().enumerate() {
        match slot {
            None => jobs.push(inst.jobs[j]),
            Some(Some(modified)) => jobs.push(modified),
            Some(None) => {} // removed
        }
    }
    jobs.extend(added);
    Instance::new(inst.g, jobs).map_err(DeltaError::from)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inst(g: i64, jobs: Vec<(i64, i64, i64)>) -> Instance {
        Instance::new(g, jobs.into_iter().map(|(r, d, p)| Job::new(r, d, p)).collect()).unwrap()
    }

    #[test]
    fn empty_delta_is_identity() {
        let i = inst(2, vec![(0, 4, 2), (1, 3, 1)]);
        assert_eq!(apply(&i, &JobDelta::new()).unwrap(), i);
    }

    #[test]
    fn add_appends_after_survivors() {
        let i = inst(2, vec![(0, 4, 2)]);
        let out = apply(&i, &JobDelta::new().add(Job::new(6, 9, 1))).unwrap();
        assert_eq!(out.jobs, vec![Job::new(0, 4, 2), Job::new(6, 9, 1)]);
    }

    #[test]
    fn remove_compacts_keeping_order() {
        let i = inst(2, vec![(0, 4, 2), (5, 8, 1), (10, 12, 1)]);
        let out = apply(&i, &JobDelta::new().remove(1)).unwrap();
        assert_eq!(out.jobs, vec![Job::new(0, 4, 2), Job::new(10, 12, 1)]);
    }

    #[test]
    fn modify_rewrites_window_preserving_processing() {
        let i = inst(2, vec![(0, 4, 2), (5, 8, 1)]);
        let out = apply(&i, &JobDelta::new().modify_window(0, 10, 14)).unwrap();
        assert_eq!(out.jobs[0], Job::new(10, 14, 2));
        assert_eq!(out.jobs[1], Job::new(5, 8, 1));
    }

    #[test]
    fn ops_reference_the_pre_amend_snapshot() {
        // Remove job 0 and modify job 2: the modify still names the
        // *original* id 2, even though removal shifts it to index 1.
        let i = inst(1, vec![(0, 2, 1), (3, 5, 1), (6, 9, 1)]);
        let out = apply(&i, &JobDelta::new().remove(0).modify_window(2, 20, 23)).unwrap();
        assert_eq!(out.jobs, vec![Job::new(3, 5, 1), Job::new(20, 23, 1)]);
    }

    #[test]
    fn unknown_and_duplicate_ids_are_rejected() {
        let i = inst(1, vec![(0, 2, 1)]);
        assert_eq!(apply(&i, &JobDelta::new().remove(1)), Err(DeltaError::UnknownJob(1)));
        assert_eq!(
            apply(&i, &JobDelta::new().modify_window(3, 0, 2)),
            Err(DeltaError::UnknownJob(3))
        );
        assert_eq!(
            apply(&i, &JobDelta::new().remove(0).modify_window(0, 0, 2)),
            Err(DeltaError::DuplicateOp(0))
        );
        assert_eq!(
            apply(&i, &JobDelta::new().remove(0).remove(0)),
            Err(DeltaError::DuplicateOp(0))
        );
    }

    #[test]
    fn amended_instance_is_revalidated() {
        let i = inst(1, vec![(0, 4, 3)]);
        // Shrinking the window below the processing time must fail.
        let err = apply(&i, &JobDelta::new().modify_window(0, 0, 2)).unwrap_err();
        assert!(matches!(err, DeltaError::Instance(InstanceError::WindowTooShort(0))));
        // Adding an invalid job fails too.
        let err = apply(&i, &JobDelta::new().add(Job::new(0, 1, 0))).unwrap_err();
        assert!(matches!(err, DeltaError::Instance(InstanceError::BadProcessing(1))));
    }

    #[test]
    fn non_laminar_amendments_pass_validation_here() {
        // Laminarity is the *solver's* contract, not the delta layer's:
        // crossing windows apply fine and fail later, like cold inputs.
        let i = inst(1, vec![(0, 5, 1)]);
        let out = apply(&i, &JobDelta::new().add(Job::new(3, 8, 1))).unwrap();
        assert!(out.check_laminar().is_err());
    }
}
