//! LP-free combinatorial fast path: a bottom-up tree DP that solves the
//! strengthened LP of Figure 1(a) directly on the laminar forest.
//!
//! The strengthened LP lives entirely on the laminar tree, so general
//! simplex machinery is structurally overkill (cf. the flow/combinatorial
//! treatments of active-time LPs in Chang–Khuller–Mukherjee and
//! Chang–Gabow–Khuller). This module computes, per node `i`, a *demand*
//! `D(i)` — a lower bound on `x(Des(i))` implied by the LP constraints —
//! and a *capacity* `M(i) = Σ_{Des(i)} L`, then tries to pin the unique
//! `x`-vector attaining `Σ_roots D(root)` by propagating residual slack
//! top-down. The candidate is certified two ways:
//!
//! 1. **Feasibility** — a `g`-scaled integral max-flow (the Lemma 4.1
//!    deficiency network over job groups) proves a valid `y` exists for
//!    the candidate `x`, and harvests that `y` exactly.
//! 2. **Optimality + uniqueness** — `D(root)` is a valid LP lower bound
//!    by construction, so a feasible candidate with objective
//!    `Σ D(root)` is optimal; the top-down pinning only succeeds when
//!    every split is *forced*, which proves the optimal face is a single
//!    vertex, hence the exact simplex would return bit-identical `x`.
//!
//! Whenever any of this fails — a slack split that several nodes could
//! absorb, a demand DP that undershoots the true optimum (possible:
//! constraint (5) can bind through empty-but-positive nodes the DP does
//! not model), or an infeasible flow — the module *declines* with a
//! typed [`TreeDecline`] and the caller falls back to simplex. A decline
//! is never a verdict: the tree path either returns the provably-unique
//! LP optimum, proves the instance infeasible (`D(root) > M(root)`), or
//! says nothing.

use crate::instance::Instance;
use crate::lp_model::{group_jobs, FractionalSolution, JobGroup};
use crate::opt23::OptBounds;
use crate::tree::Forest;
use atsched_flow::FlowNetwork;
use atsched_num::Ratio;

/// Why the tree path declined an instance (the caller falls back to
/// simplex; each variant has a stable counter label).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TreeDecline {
    /// Residual slack at this node could be split between two or more
    /// variables — the optimal face may not be a single vertex, so
    /// bit-identity with simplex cannot be certified.
    NonUniqueSplit {
        /// The node whose slack split is ambiguous.
        node: usize,
    },
    /// The pinned candidate is not `y`-feasible (the demand DP undershot
    /// the LP optimum; e.g. constraint (5) binding through an empty
    /// node).
    FlowInfeasible,
    /// A pinned `x(i)` is not an integer multiple of `1/g` (cannot build
    /// the integral certification network).
    NonIntegralScale {
        /// The node with the non-`1/g`-integral value.
        node: usize,
    },
    /// Scaled capacities would overflow `i64`.
    Overflow,
}

impl TreeDecline {
    /// Stable label used in `lp.tree_fallback.<label>` counters.
    pub fn label(&self) -> &'static str {
        match self {
            TreeDecline::NonUniqueSplit { .. } => "nonunique",
            TreeDecline::FlowInfeasible => "flow",
            TreeDecline::NonIntegralScale { .. } => "scale",
            TreeDecline::Overflow => "overflow",
        }
    }
}

impl std::fmt::Display for TreeDecline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TreeDecline::NonUniqueSplit { node } => {
                write!(f, "slack split at node {node} is not forced")
            }
            TreeDecline::FlowInfeasible => {
                write!(f, "demand-DP candidate is not y-feasible")
            }
            TreeDecline::NonIntegralScale { node } => {
                write!(f, "x at node {node} is not a multiple of 1/g")
            }
            TreeDecline::Overflow => write!(f, "scaled capacities overflow i64"),
        }
    }
}

/// A successful tree-path outcome.
#[derive(Debug, Clone)]
pub enum TreeOutcome {
    /// The provably-unique LP optimum, with `y` harvested from the
    /// certification flow. Bit-identical (in `x` and objective) to what
    /// the exact simplex returns.
    Solved(FractionalSolution<Ratio>),
    /// `D(root) > M(root)` for some root: demanded open mass exceeds the
    /// subtree's total slots, so the instance (and the LP) is infeasible.
    Infeasible,
}

/// Solve the strengthened LP combinatorially on the laminar forest, or
/// decline.
///
/// `use_ceiling` / `ceiling_depth` must match what
/// [`build_opts`](crate::lp_model::build_opts) /
/// [`add_deep_ceilings`](crate::lp_model::add_deep_ceilings) would
/// receive, so the demand DP mirrors exactly the constraint set the
/// simplex path would solve.
pub fn solve_tree(
    forest: &Forest,
    inst: &Instance,
    bounds: &OptBounds,
    use_ceiling: bool,
    ceiling_depth: i64,
) -> Result<TreeOutcome, TreeDecline> {
    let m = forest.num_nodes();
    let g = inst.g;
    let groups = group_jobs(forest, inst);

    // --- Per-node demand inputs, mirroring the LP's constraint set. ---
    // Ceiling constraints (7)/(8) and the deep extension: only the
    // constraints the LP actually emits become DP bounds.
    let mut ceil_bound = vec![0i64; m];
    if use_ceiling {
        for (i, cb) in ceil_bound.iter_mut().enumerate() {
            if bounds.ge3[i] {
                *cb = 3;
            } else if bounds.ge2[i] {
                *cb = 2;
            }
        }
        if ceiling_depth > 3 {
            let deep = crate::opt23::compute_deep(forest, inst, ceiling_depth);
            for (i, cb) in ceil_bound.iter_mut().enumerate() {
                if deep.lower[i] > 3 {
                    *cb = (*cb).max(deep.lower[i]);
                }
            }
        }
    }
    // Constraint (2)+(5): a group with processing p forces x(Des(k)) ≥ p.
    let mut group_bound = vec![0i64; m];
    for grp in &groups {
        group_bound[grp.node] = group_bound[grp.node].max(grp.processing);
    }

    // --- Bottom-up DP: volume, capacity M, demand D. ---
    let order = forest.post_order();
    let mut vol = vec![0i64; m]; // Σ p over jobs in the subtree
    let mut cap = vec![0i64; m]; // M(i) = Σ_{Des(i)} L
    let mut demand = vec![Ratio::from_i64(0); m]; // D(i)
    for &i in &order {
        let node = &forest.nodes[i];
        let own_vol: i64 = node.jobs.iter().map(|&j| inst.jobs[j].processing).sum();
        vol[i] = own_vol + node.children.iter().map(|&c| vol[c]).sum::<i64>();
        cap[i] = node.len() + node.children.iter().map(|&c| cap[c]).sum::<i64>();
        let kids: Ratio = node.children.iter().map(|&c| demand[c].clone()).sum();
        // Constraint (2)+(3) summed: g·x(Des(i)) ≥ volume in the subtree.
        let d = kids
            .max(Ratio::from_frac(vol[i], g))
            .max(Ratio::from_i64(ceil_bound[i].max(group_bound[i])));
        demand[i] = d;
    }

    // --- Infeasibility: demanded mass exceeds available slots. ---
    for &r in &forest.roots {
        if demand[r] > Ratio::from_i64(cap[r]) {
            return Ok(TreeOutcome::Infeasible);
        }
    }

    // --- Top-down pinning: the split at every node must be forced. ---
    // Subtree totals t(i); processing parents before children
    // (topological order) so t(i) is known when node i is split.
    let mut total = vec![Ratio::from_i64(0); m];
    for &r in &forest.roots {
        total[r] = demand[r].clone();
    }
    let mut x = vec![Ratio::from_i64(0); m];
    for i in forest.topological_order() {
        let node = &forest.nodes[i];
        let own_len = Ratio::from_i64(node.len());
        let kids_demand: Ratio = node.children.iter().map(|&c| demand[c].clone()).sum();
        let slack = &total[i] - &kids_demand;
        if slack.is_negative() {
            // t(i) < Σ D(children) cannot happen for a consistently
            // pinned t; decline defensively rather than trust it.
            return Err(TreeDecline::NonUniqueSplit { node: i });
        }
        let kids_range: Ratio =
            node.children.iter().map(|&c| &Ratio::from_i64(cap[c]) - &demand[c]).sum();
        let full_range = &own_len + &kids_range;
        if slack > full_range {
            return Err(TreeDecline::NonUniqueSplit { node: i });
        }
        if slack.is_zero() {
            // Every variable pinned at its lower end.
            x[i] = Ratio::from_i64(0);
            for &c in &node.children {
                total[c] = demand[c].clone();
            }
        } else if slack == full_range {
            // Every variable pinned at its upper end.
            x[i] = own_len;
            for &c in &node.children {
                total[c] = Ratio::from_i64(cap[c]);
            }
        } else {
            // Slack is strictly interior: forced only if exactly one
            // variable has room to absorb it.
            let mut wide_child: Option<usize> = None;
            let mut wide = 0usize;
            for &c in &node.children {
                if Ratio::from_i64(cap[c]) > demand[c] {
                    wide += 1;
                    wide_child = Some(c);
                }
            }
            if !node.is_empty() {
                wide += 1;
            }
            if wide != 1 {
                return Err(TreeDecline::NonUniqueSplit { node: i });
            }
            for &c in &node.children {
                total[c] = demand[c].clone();
            }
            match wide_child {
                Some(c) if node.is_empty() => {
                    x[i] = Ratio::from_i64(0);
                    total[c] = &demand[c] + &slack;
                }
                _ => x[i] = slack,
            }
        }
    }

    // --- Certification: g-scaled integral flow over the group network.
    // Feasible iff a valid y exists for this x; the flow *is* that y. ---
    let sol = certify_flow(forest, inst, &groups, &x)?;
    debug_assert_eq!(sol.objective, forest.roots.iter().map(|&r| &demand[r]).sum::<Ratio>());
    Ok(TreeOutcome::Solved(sol))
}

/// Build the `g`-scaled group/node flow network for a candidate `x`,
/// check `y`-feasibility by max-flow, and harvest the exact `y`.
///
/// Scaling by `g` makes every capacity integral (each `x(i)` is a
/// multiple of `1/g` by construction): source→G carries `q·p·g`,
/// G→i carries `q·(g·x(i))` (constraint (5)), i→sink carries
/// `g·(g·x(i))` (constraint (3)). Saturating the source side is exactly
/// constraint (2); dividing the harvested flow by `g` yields a rational
/// `y` that satisfies the LP verbatim.
fn certify_flow(
    forest: &Forest,
    inst: &Instance,
    groups: &[JobGroup],
    x: &[Ratio],
) -> Result<FractionalSolution<Ratio>, TreeDecline> {
    let m = forest.num_nodes();
    let g = inst.g;
    // g·x(i) as exact integers.
    let mut xs = vec![0i64; m];
    for i in 0..m {
        let scaled = &x[i] * &Ratio::from_i64(g);
        if !scaled.is_integer() {
            return Err(TreeDecline::NonIntegralScale { node: i });
        }
        xs[i] = scaled.floor().to_i64().ok_or(TreeDecline::Overflow)?;
    }

    let mut net = FlowNetwork::new(2 + groups.len() + m);
    let (source, sink) = (0usize, 1usize);
    let group_node = |gid: usize| 2 + gid;
    let forest_node = |i: usize| 2 + groups.len() + i;

    let mut demand_total = 0i64;
    let mut y_edges: Vec<(usize, usize, atsched_flow::EdgeRef)> = Vec::new();
    for (gid, grp) in groups.iter().enumerate() {
        let need = grp
            .count()
            .checked_mul(grp.processing)
            .and_then(|v| v.checked_mul(g))
            .ok_or(TreeDecline::Overflow)?;
        demand_total = demand_total.checked_add(need).ok_or(TreeDecline::Overflow)?;
        net.add_edge(source, group_node(gid), need);
        for i in forest.descendants(grp.node) {
            if forest.nodes[i].is_empty() {
                continue;
            }
            let cap = grp.count().checked_mul(xs[i]).ok_or(TreeDecline::Overflow)?;
            let e = net.add_edge(group_node(gid), forest_node(i), cap);
            y_edges.push((i, gid, e));
        }
    }
    for (i, &xsi) in xs.iter().enumerate() {
        if forest.nodes[i].is_empty() {
            continue;
        }
        let cap = g.checked_mul(xsi).ok_or(TreeDecline::Overflow)?;
        net.add_edge(forest_node(i), sink, cap);
    }

    if net.max_flow(source, sink) != demand_total {
        return Err(TreeDecline::FlowInfeasible);
    }

    // Harvest y in the same (node, ascending-gid) layout the LP
    // projection produces.
    let mut y: Vec<Vec<(usize, Ratio)>> = vec![Vec::new(); m];
    for (i, gid, e) in y_edges {
        y[i].push((gid, Ratio::from_frac(net.flow_on(e), g)));
    }
    for per_node in &mut y {
        per_node.sort_by_key(|(gid, _)| *gid);
    }

    let objective: Ratio = x.iter().sum();
    Ok(FractionalSolution { x: x.to_vec(), y, objective })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::canonical::canonicalize;
    use crate::instance::Job;
    use crate::lp_model::build;
    use crate::opt23;

    type Cases = Vec<(i64, Vec<(i64, i64, i64)>)>;

    fn prep(g: i64, jobs: Vec<(i64, i64, i64)>) -> (Instance, Forest, OptBounds) {
        let inst = Instance::new(g, jobs.into_iter().map(|(r, d, p)| Job::new(r, d, p)).collect())
            .unwrap();
        let forest = Forest::build(&inst).unwrap();
        let canon = canonicalize(&forest, &inst);
        let bounds = opt23::compute(&canon, &inst);
        (inst, canon, bounds)
    }

    fn tree(g: i64, jobs: Vec<(i64, i64, i64)>) -> Result<TreeOutcome, TreeDecline> {
        let (inst, canon, bounds) = prep(g, jobs);
        solve_tree(&canon, &inst, &bounds, true, 3)
    }

    #[test]
    fn single_rigid_job_is_solved_exactly() {
        match tree(1, vec![(0, 3, 3)]).unwrap() {
            TreeOutcome::Solved(sol) => assert_eq!(sol.objective, Ratio::from_i64(3)),
            other => panic!("expected solved, got {other:?}"),
        }
    }

    #[test]
    fn gap2_family_matches_the_strengthened_lp() {
        // g+1 unit jobs in a width-2 window: strengthened LP gives 2.
        for g in [2i64, 3, 5] {
            match tree(g, vec![(0, 2, 1); (g + 1) as usize]).unwrap() {
                TreeOutcome::Solved(sol) => {
                    assert_eq!(sol.objective, Ratio::from_i64(2), "g = {g}")
                }
                other => panic!("expected solved for g = {g}, got {other:?}"),
            }
        }
    }

    #[test]
    fn solved_instances_match_simplex_bit_for_bit() {
        let cases: Cases = vec![
            (1, vec![(0, 3, 3)]),
            (2, vec![(0, 2, 1); 3]),
            (2, vec![(0, 6, 1); 5]),
            (3, vec![(0, 4, 1); 7]),
            (2, vec![(0, 4, 4), (0, 4, 4)]),
            // Two independent roots.
            (2, vec![(0, 2, 1), (0, 2, 1), (0, 2, 1), (10, 12, 1), (10, 12, 1), (10, 12, 1)]),
        ];
        let mut solved = 0usize;
        for (g, jobs) in cases {
            let (inst, canon, bounds) = prep(g, jobs.clone());
            match solve_tree(&canon, &inst, &bounds, true, 3) {
                Ok(TreeOutcome::Solved(sol)) => {
                    let lp = build::<Ratio>(&canon, &inst, &bounds);
                    let simplex = lp.solve().unwrap();
                    assert_eq!(sol.objective, simplex.objective, "{g} {jobs:?}");
                    assert_eq!(sol.x, simplex.x, "{g} {jobs:?}");
                    sol.check(&canon, &inst, &lp.groups).unwrap();
                    solved += 1;
                }
                Ok(TreeOutcome::Infeasible) => panic!("feasible case flagged infeasible"),
                Err(_) => {} // declining is always allowed
            }
        }
        assert!(solved >= 4, "tree path solved only {solved} of the easy cases");
    }

    #[test]
    fn infeasible_instances_are_proven_infeasible() {
        // Volume 3 > capacity 1·2 within window [0,2).
        match tree(1, vec![(0, 2, 1); 3]).unwrap() {
            TreeOutcome::Infeasible => {}
            other => panic!("expected infeasible, got {other:?}"),
        }
    }

    #[test]
    fn ambiguous_split_declines_instead_of_guessing() {
        // 5 unit jobs spread over a wide window with two wide children:
        // the LP optimum 5/2 can place the fractional mass in several
        // ways, so the tree path must decline, not pick one.
        let (inst, canon, bounds) = prep(2, vec![(0, 8, 1), (0, 8, 1), (1, 3, 1), (5, 7, 1)]);
        match solve_tree(&canon, &inst, &bounds, true, 3) {
            Err(d) => assert_eq!(d.label(), "nonunique"),
            Ok(TreeOutcome::Solved(sol)) => {
                // If it *did* pin a unique optimum, it must match simplex.
                let lp = build::<Ratio>(&canon, &inst, &bounds);
                let simplex = lp.solve().unwrap();
                assert_eq!(sol.x, simplex.x);
            }
            Ok(TreeOutcome::Infeasible) => panic!("feasible case flagged infeasible"),
        }
    }

    #[test]
    fn decline_labels_are_stable() {
        assert_eq!(TreeDecline::NonUniqueSplit { node: 0 }.label(), "nonunique");
        assert_eq!(TreeDecline::FlowInfeasible.label(), "flow");
        assert_eq!(TreeDecline::NonIntegralScale { node: 0 }.label(), "scale");
        assert_eq!(TreeDecline::Overflow.label(), "overflow");
    }
}
