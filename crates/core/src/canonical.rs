//! The canonical-tree transformation (paper Definition 2.1).
//!
//! A tree is *canonical* when (a) every node has at most two children and
//! (b) every leaf is *rigid* — it contains a job whose processing time
//! equals the leaf's length, so any feasible solution must open the whole
//! leaf interval.
//!
//! Two rewrites achieve this:
//!
//! 1. **Binarization.** A node with `t > 2` children gets a left-deep
//!    chain of *virtual* nodes, each covering the hull of its children.
//!    Virtual nodes carry no jobs and own no slots (`L = 0`). Note the
//!    hull of a virtual node may contain slots owned by the original
//!    parent (when the folded children are not adjacent); ownership is
//!    tracked explicitly through `own_slots`, which this pass never
//!    reassigns, so capacity accounting is unaffected.
//! 2. **Leaf rigidification.** For a leaf whose longest job `j` has
//!    `p_j < L`, a child covering the first `p_j` own slots is split off
//!    and job `j` moves into it (the paper's "reduce `j`'s window to match
//!    `i'`'s"); the child is rigid by construction. This is WLOG for the
//!    optimum because slots inside a leaf interval are interchangeable.

use crate::instance::Instance;
use crate::tree::{Forest, TreeNode};

/// Apply both rewrites, producing a canonical forest.
///
/// Job-to-node assignments (`job_node`) are updated for moved jobs; the
/// instance itself is not modified (original windows stay authoritative
/// for final schedule verification).
pub fn canonicalize(forest: &Forest, inst: &Instance) -> Forest {
    let mut f = forest.clone();
    binarize(&mut f);
    rigidify_leaves(&mut f, inst);
    f.recompute_depths();
    debug_assert!(validate_canonical(&f, inst).is_ok(), "canonicalize broke the forest");
    f
}

/// Rewrite 1: every node ends with at most two children.
fn binarize(f: &mut Forest) {
    let original = f.nodes.len();
    for id in 0..original {
        loop {
            let kids = f.nodes[id].children.clone();
            if kids.len() <= 2 {
                break;
            }
            // Fold the two leftmost children under a fresh virtual node.
            let (a, b) = (kids[0], kids[1]);
            let hull = (f.nodes[a].interval.0, f.nodes[b].interval.1);
            let vid = f.nodes.len();
            f.nodes.push(TreeNode {
                interval: hull,
                parent: Some(id),
                children: vec![a, b],
                jobs: Vec::new(),
                own_slots: Vec::new(), // virtual: L = 0
                is_virtual: true,
                depth: 0,
            });
            f.nodes[a].parent = Some(vid);
            f.nodes[b].parent = Some(vid);
            let mut new_kids = vec![vid];
            new_kids.extend_from_slice(&kids[2..]);
            f.nodes[id].children = new_kids;
        }
    }
}

/// Rewrite 2: every leaf becomes rigid.
fn rigidify_leaves(f: &mut Forest, inst: &Instance) {
    let original = f.nodes.len();
    for id in 0..original {
        if !f.nodes[id].is_leaf() {
            continue;
        }
        debug_assert!(!f.nodes[id].jobs.is_empty(), "real leaves always carry a job");
        let &jmax = f.nodes[id]
            .jobs
            .iter()
            .max_by_key(|&&j| inst.jobs[j].processing)
            .expect("leaf has jobs");
        let p = inst.jobs[jmax].processing;
        let len = f.nodes[id].len();
        debug_assert!(p <= len, "job longer than its window");
        if p == len {
            continue; // already rigid
        }
        // Split off the first p own slots into a rigid child holding jmax.
        let own = std::mem::take(&mut f.nodes[id].own_slots);
        let (head, tail) = own.split_at(p as usize);
        let child_interval = (head[0], head[p as usize - 1] + 1);
        debug_assert_eq!(child_interval.1 - child_interval.0, p, "leaf own slots are contiguous");
        let cid = f.nodes.len();
        f.nodes.push(TreeNode {
            interval: child_interval,
            parent: Some(id),
            children: Vec::new(),
            jobs: vec![jmax],
            own_slots: head.to_vec(),
            is_virtual: false,
            depth: 0,
        });
        f.nodes[id].own_slots = tail.to_vec();
        f.nodes[id].children.push(cid);
        f.nodes[id].jobs.retain(|&j| j != jmax);
        f.job_node[jmax] = cid;
    }
}

/// Structural checks for a canonical forest. Returns a description of the
/// first violation found.
pub fn validate_canonical(f: &Forest, inst: &Instance) -> Result<(), String> {
    for (id, n) in f.nodes.iter().enumerate() {
        if n.children.len() > 2 {
            return Err(format!("node {id} has {} children", n.children.len()));
        }
        if n.is_virtual && (!n.jobs.is_empty() || !n.own_slots.is_empty()) {
            return Err(format!("virtual node {id} carries jobs or slots"));
        }
        if n.is_leaf() {
            if n.is_virtual {
                return Err(format!("virtual leaf {id}"));
            }
            let rigid = n.jobs.iter().any(|&j| inst.jobs[j].processing == n.len());
            if !rigid {
                return Err(format!("leaf {id} is not rigid"));
            }
        }
        for &c in &n.children {
            if f.nodes[c].parent != Some(id) {
                return Err(format!("child {c} of {id} has wrong parent"));
            }
            let ci = f.nodes[c].interval;
            if !(n.interval.0 <= ci.0 && ci.1 <= n.interval.1) {
                return Err(format!("child {c} escapes parent {id}"));
            }
        }
    }
    // Own slots globally partition the covered slots: no slot owned twice,
    // and the total count matches the instance's candidate slots.
    let mut all: Vec<i64> = f.nodes.iter().flat_map(|n| n.own_slots.iter().copied()).collect();
    all.sort_unstable();
    let before = all.len();
    all.dedup();
    if all.len() != before {
        return Err("a slot is owned by two nodes".into());
    }
    if all != inst.candidate_slots() {
        return Err("own slots do not cover the candidate slots".into());
    }
    // Jobs point at real nodes whose interval sits inside their window.
    for (j, &k) in f.job_node.iter().enumerate() {
        let n = &f.nodes[k];
        if n.is_virtual {
            return Err(format!("job {j} assigned to virtual node"));
        }
        if !n.jobs.contains(&j) {
            return Err(format!("job {j} missing from node {k}"));
        }
        let job = &inst.jobs[j];
        if n.interval.0 < job.release || n.interval.1 > job.deadline {
            return Err(format!("job {j}'s node interval escapes its window"));
        }
        if (n.interval.1 - n.interval.0) < job.processing {
            return Err(format!("job {j}'s node interval shorter than p_j"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::Job;

    fn inst(g: i64, jobs: Vec<(i64, i64, i64)>) -> Instance {
        Instance::new(g, jobs.into_iter().map(|(r, d, p)| Job::new(r, d, p)).collect()).unwrap()
    }

    fn canonical(g: i64, jobs: Vec<(i64, i64, i64)>) -> (Instance, Forest) {
        let i = inst(g, jobs);
        let f = Forest::build(&i).unwrap();
        let c = canonicalize(&f, &i);
        validate_canonical(&c, &i).unwrap();
        (i, c)
    }

    #[test]
    fn already_rigid_leaf_unchanged() {
        let (_, c) = canonical(2, vec![(0, 3, 3)]);
        assert_eq!(c.num_nodes(), 1);
        assert!(c.nodes[0].is_leaf());
    }

    #[test]
    fn non_rigid_leaf_gets_rigid_child() {
        let (i, c) = canonical(2, vec![(0, 5, 2), (0, 5, 1)]);
        assert_eq!(c.num_nodes(), 2);
        let root = c.roots[0];
        assert_eq!(c.nodes[root].children.len(), 1);
        let child = c.nodes[root].children[0];
        assert_eq!(c.nodes[child].interval, (0, 2));
        assert_eq!(c.nodes[child].own_slots, vec![0, 1]);
        assert_eq!(c.nodes[root].own_slots, vec![2, 3, 4]);
        // The longest job moved down.
        assert_eq!(c.job_node[0], child);
        assert_eq!(c.job_node[1], root);
        assert!(validate_canonical(&c, &i).is_ok());
    }

    #[test]
    fn wide_node_is_binarized() {
        // Root [0,12) with four children.
        let (_, c) = canonical(2, vec![(0, 12, 1), (0, 2, 2), (3, 5, 2), (6, 8, 2), (9, 11, 2)]);
        for n in &c.nodes {
            assert!(n.children.len() <= 2);
        }
        // Two virtual nodes were added for four children.
        assert_eq!(c.nodes.iter().filter(|n| n.is_virtual).count(), 2);
        // Virtual nodes own nothing even though their hulls cover gaps.
        for n in c.nodes.iter().filter(|n| n.is_virtual) {
            assert!(n.own_slots.is_empty());
        }
        // The root's own gap slots survived.
        let root = c.roots[0];
        assert_eq!(c.nodes[root].own_slots, vec![2, 5, 8, 11]);
    }

    #[test]
    fn virtual_hull_does_not_steal_parent_slots() {
        // Children [0,1), [2,3), [4,5) of root [0,6): the virtual hull
        // (0,3) contains root-owned slot 1.
        let (_, c) = canonical(1, vec![(0, 6, 1), (0, 1, 1), (2, 3, 1), (4, 5, 1)]);
        let root = c.roots[0];
        assert_eq!(c.nodes[root].own_slots, vec![1, 3, 5]);
        let total: i64 = c.nodes.iter().map(|n| n.len()).sum();
        assert_eq!(total, 6);
    }

    #[test]
    fn deep_rigid_split_preserves_slot_partition() {
        let (i, c) = canonical(3, vec![(0, 20, 4), (2, 9, 3), (2, 9, 1), (12, 18, 2)]);
        assert!(validate_canonical(&c, &i).is_ok());
        // Every leaf rigid.
        for n in c.nodes.iter().filter(|n| n.is_leaf()) {
            assert!(n.jobs.iter().any(|&j| i.jobs[j].processing == n.len()));
        }
    }

    #[test]
    fn tie_on_longest_job_is_fine() {
        let (i, c) = canonical(2, vec![(0, 4, 2), (0, 4, 2), (0, 4, 1)]);
        assert!(validate_canonical(&c, &i).is_ok());
        let moved = c.job_node.iter().filter(|&&k| c.nodes[k].is_leaf()).count();
        assert!(moved >= 1);
    }
}
