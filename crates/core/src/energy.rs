//! Energy accounting for schedules — the paper's motivating application
//! (§1: "it takes the same amount of energy to run regardless of how many
//! jobs are running"), made concrete.
//!
//! The active-time objective counts on-slots, implicitly assuming
//! transitions are free. Real machines pay a startup cost, so an
//! operator bridges short gaps by idling instead of powering down. Given
//! a schedule and a [`PowerModel`], [`simulate`] applies the *optimal
//! offline* bridging policy (keep the machine on across a gap of `d`
//! slots iff `d · idle_power < startup_cost` — the classic ski-rental
//! threshold, which is exactly optimal offline) and reports the resulting
//! energy breakdown. Experiment E13 uses this to measure how well the
//! active-time proxy tracks true energy as startup costs grow.

use crate::schedule::Schedule;

/// Machine power parameters (arbitrary consistent units).
#[derive(Debug, Clone, PartialEq)]
pub struct PowerModel {
    /// Energy per active slot (machine on, ≥ 1 job running).
    pub active_power: f64,
    /// Energy per idle-bridged slot (machine on, nothing running).
    pub idle_power: f64,
    /// Energy per off→on transition.
    pub startup_cost: f64,
}

impl PowerModel {
    /// Transitions free: energy ∝ active slots (the paper's objective).
    pub fn transition_free() -> Self {
        PowerModel { active_power: 1.0, idle_power: 0.0, startup_cost: 0.0 }
    }

    /// A server-ish profile: idling costs 40% of active power, a cold
    /// start costs as much as three active slots.
    pub fn server() -> Self {
        PowerModel { active_power: 1.0, idle_power: 0.4, startup_cost: 3.0 }
    }
}

/// Simulation outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyReport {
    /// Slots running at least one job.
    pub active_slots: usize,
    /// Gap slots bridged by idling (cheaper than a restart).
    pub idle_slots: i64,
    /// Contiguous on-intervals after bridging (= startups paid).
    pub on_blocks: usize,
    /// Total energy under the model.
    pub total_energy: f64,
}

/// Simulate a schedule under a power model with optimal gap bridging.
///
/// Open-but-empty slots in the schedule are ignored (an operator would
/// not power on for them); only slots with work count as active.
pub fn simulate(schedule: &Schedule, model: &PowerModel) -> EnergyReport {
    let active: Vec<i64> = schedule
        .slots
        .iter()
        .zip(&schedule.assignment)
        .filter(|(_, a)| !a.is_empty())
        .map(|(&t, _)| t)
        .collect();
    let active_slots = active.len();
    if active.is_empty() {
        return EnergyReport { active_slots: 0, idle_slots: 0, on_blocks: 0, total_energy: 0.0 };
    }
    let mut idle_slots = 0i64;
    let mut on_blocks = 1usize;
    for w in active.windows(2) {
        let gap = w[1] - w[0] - 1;
        if gap == 0 {
            continue;
        }
        let idle_cost = gap as f64 * model.idle_power;
        if idle_cost < model.startup_cost {
            idle_slots += gap; // bridge
        } else {
            on_blocks += 1; // power down and restart
        }
    }
    let total_energy = active_slots as f64 * model.active_power
        + idle_slots as f64 * model.idle_power
        + on_blocks as f64 * model.startup_cost;
    EnergyReport { active_slots, idle_slots, on_blocks, total_energy }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sched(slots: Vec<i64>) -> Schedule {
        let assignment = slots.iter().map(|_| vec![0usize]).collect();
        Schedule::new(slots, assignment)
    }

    #[test]
    fn transition_free_counts_active_slots() {
        let s = sched(vec![0, 5, 9]);
        let r = simulate(&s, &PowerModel::transition_free());
        assert_eq!(r.active_slots, 3);
        assert_eq!(r.total_energy, 3.0);
        // startup_cost 0 → never bridge (0 < 0 is false), 3 blocks free.
        assert_eq!(r.on_blocks, 3);
        assert_eq!(r.idle_slots, 0);
    }

    #[test]
    fn short_gaps_bridged_long_gaps_restarted() {
        // Gaps of 1 and 10 under server profile: 1·0.4 < 3 → bridge;
        // 10·0.4 = 4 ≥ 3 → restart.
        let s = sched(vec![0, 2, 13]);
        let r = simulate(&s, &PowerModel::server());
        assert_eq!(r.idle_slots, 1);
        assert_eq!(r.on_blocks, 2);
        let expected = 3.0 * 1.0 + 1.0 * 0.4 + 2.0 * 3.0;
        assert!((r.total_energy - expected).abs() < 1e-12);
    }

    #[test]
    fn contiguous_schedule_single_block() {
        let s = sched(vec![3, 4, 5, 6]);
        let r = simulate(&s, &PowerModel::server());
        assert_eq!(r.on_blocks, 1);
        assert_eq!(r.idle_slots, 0);
        assert!((r.total_energy - (4.0 + 3.0)).abs() < 1e-12);
    }

    #[test]
    fn empty_slots_do_not_cost() {
        let mut s = sched(vec![0, 1, 2]);
        s.assignment[1].clear(); // opened but empty
        let r = simulate(&s, &PowerModel::server());
        assert_eq!(r.active_slots, 2);
        // The empty slot creates a gap of 1, bridged under the server
        // profile.
        assert_eq!(r.idle_slots, 1);
        assert_eq!(r.on_blocks, 1);
    }

    #[test]
    fn empty_schedule_is_free() {
        let s = Schedule::new(Vec::new(), Vec::new());
        let r = simulate(&s, &PowerModel::server());
        assert_eq!(r.total_energy, 0.0);
        assert_eq!(r.on_blocks, 0);
    }

    #[test]
    fn threshold_boundary_prefers_restart_on_tie() {
        // gap · idle == startup: restarting ties; we restart (strict <
        // bridges). Both choices cost the same total energy.
        let model = PowerModel { active_power: 1.0, idle_power: 1.0, startup_cost: 2.0 };
        let s = sched(vec![0, 3]); // gap 2: 2·1 == 2
        let r = simulate(&s, &model);
        assert_eq!(r.on_blocks, 2);
        assert_eq!(r.idle_slots, 0);
        assert!((r.total_energy - (2.0 + 4.0)).abs() < 1e-12);
    }
}
