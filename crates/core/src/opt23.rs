//! Oracles for the strengthened LP constraints (7) and (8): is
//! `OPT_i ≥ 2`, is `OPT_i ≥ 3`?
//!
//! `OPT_i` is the minimum number of slots needed to schedule `J(Des(i))`
//! (the jobs of node `i`'s subtree) alone. The paper notes both checks
//! "can be done easily"; concretely:
//!
//! * **One slot suffices** iff every subtree job is unit, there are at
//!   most `g` of them, and their windows share a slot. Windows are
//!   laminar, so the intersection is simply `[max r, min d)`.
//! * **Two slots suffice** only if every `p_j ≤ 2` and `Σ p_j ≤ 2g`.
//!   By a left-shift exchange argument, if any two slots work then some
//!   pair from the candidate set `{r_j, r_j + 1}` works, and a pair
//!   `(t₁, t₂)` is checked by a closed-form Hall condition — no flow
//!   needed for two slots.

use crate::instance::Instance;
use crate::tree::Forest;

/// Which nodes are known to need at least 2 (resp. 3) slots.
#[derive(Debug, Clone)]
pub struct OptBounds {
    /// `OPT_i ≥ 2`, per node.
    pub ge2: Vec<bool>,
    /// `OPT_i ≥ 3`, per node.
    pub ge3: Vec<bool>,
}

/// Compute both oracles for every node of the forest.
///
/// Job windows are taken from the forest's job→node assignment (so rigid
/// leaf splits from the canonical transformation are respected).
pub fn compute(forest: &Forest, inst: &Instance) -> OptBounds {
    let m = forest.num_nodes();
    let mut ge2 = vec![false; m];
    let mut ge3 = vec![false; m];
    for i in 0..m {
        let jobs = forest.jobs_in_subtree(i);
        if jobs.is_empty() {
            continue; // OPT = 0
        }
        let windows: Vec<(i64, i64, i64)> = jobs
            .iter()
            .map(|&j| {
                let node = &forest.nodes[forest.job_node[j]];
                (node.interval.0, node.interval.1, inst.jobs[j].processing)
            })
            .collect();
        let one = one_slot_suffices(inst.g, &windows);
        let two = one || two_slots_suffice(inst.g, &windows);
        ge2[i] = !one;
        ge3[i] = !two;
    }
    OptBounds { ge2, ge3 }
}

/// Generalized ceiling oracle (paper extension): per node, the largest
/// `k ≤ max_k` with `OPT_i ≥ k` proven. The paper stops at 3 — "it is
/// not clear how to take advantage of this same constraint in the
/// general version" — but for the nested LP every `Σ_{Des(i)} x ≥ k`
/// with `OPT_i ≥ k` is a valid inequality, so deeper oracles can only
/// tighten the relaxation. Experiment E11 measures how much.
#[derive(Debug, Clone)]
pub struct DeepBounds {
    /// `lower[i]` = best proven lower bound on `OPT_i` (0 for empty
    /// subtrees; capped at `max_k`).
    pub lower: Vec<i64>,
}

/// Compute proven `OPT_i` lower bounds up to `max_k` per node.
///
/// Soundness is one-sided: when the exhaustive check is too expensive the
/// oracle stops early and reports the bound proven so far, never an
/// over-claim.
pub fn compute_deep(forest: &Forest, inst: &Instance, max_k: i64) -> DeepBounds {
    let m = forest.num_nodes();
    let mut lower = vec![0i64; m];
    for (i, low) in lower.iter_mut().enumerate().take(m) {
        let jobs = forest.jobs_in_subtree(i);
        if jobs.is_empty() {
            continue;
        }
        let windows: Vec<(i64, i64, i64)> = jobs
            .iter()
            .map(|&j| {
                let node = &forest.nodes[forest.job_node[j]];
                (node.interval.0, node.interval.1, inst.jobs[j].processing)
            })
            .collect();
        let mut bound = 1i64; // nonempty ⇒ at least one slot
        for k in 1..max_k {
            // OPT ≥ k+1 iff k slots do NOT suffice.
            if at_most_k_slots(inst.g, &windows, k) != Some(false) {
                break;
            }
            bound = k + 1;
        }
        *low = bound;
    }
    DeepBounds { lower }
}

/// Can the jobs run in at most `k` slots?
/// `Some(true/false)` when decided; `None` when the enumeration budget
/// ran out (treat as "maybe" — callers must only act on `Some(false)`).
fn at_most_k_slots(g: i64, windows: &[(i64, i64, i64)], k: i64) -> Option<bool> {
    const COMBO_BUDGET: usize = 50_000;
    let volume: i64 = windows.iter().map(|w| w.2).sum();
    if volume > k * g {
        return Some(false);
    }
    if windows.iter().any(|&(_, _, p)| p > k) {
        return Some(false);
    }
    // Left-shift exchange argument, generalized: some optimal k-slot
    // solution uses only slots of the form r_j + δ with 0 ≤ δ < k.
    let mut cands: Vec<i64> = Vec::new();
    for &(r, d, _) in windows {
        for delta in 0..k {
            if r + delta < d {
                cands.push(r + delta);
            }
        }
    }
    cands.sort_unstable();
    cands.dedup();
    if (cands.len() as i64) < k {
        return Some(false);
    }
    let mut budget = COMBO_BUDGET;
    let mut pick: Vec<i64> = Vec::with_capacity(k as usize);
    combo_search(g, windows, k as usize, &cands, 0, &mut pick, &mut budget)
}

/// DFS over slot combinations; `None` when the budget is exhausted.
fn combo_search(
    g: i64,
    windows: &[(i64, i64, i64)],
    k: usize,
    cands: &[i64],
    start: usize,
    pick: &mut Vec<i64>,
    budget: &mut usize,
) -> Option<bool> {
    if pick.len() == k {
        if *budget == 0 {
            return None;
        }
        *budget -= 1;
        return Some(slots_schedulable(g, windows, pick));
    }
    for idx in start..cands.len() {
        if cands.len() - idx < k - pick.len() {
            break;
        }
        pick.push(cands[idx]);
        match combo_search(g, windows, k, cands, idx + 1, pick, budget) {
            Some(true) => {
                pick.pop();
                return Some(true);
            }
            Some(false) => {}
            None => {
                pick.pop();
                return None;
            }
        }
        pick.pop();
    }
    Some(false)
}

/// Flow feasibility of a fixed slot set for windowed jobs.
fn slots_schedulable(g: i64, windows: &[(i64, i64, i64)], slots: &[i64]) -> bool {
    use atsched_flow::FlowNetwork;
    let n = windows.len();
    let mut net = FlowNetwork::new(2 + n + slots.len());
    let volume: i64 = windows.iter().map(|w| w.2).sum();
    for (j, &(r, d, p)) in windows.iter().enumerate() {
        net.add_edge(0, 2 + j, p);
        for (s, &t) in slots.iter().enumerate() {
            if r <= t && t < d {
                net.add_edge(2 + j, 2 + n + s, 1);
            }
        }
    }
    for s in 0..slots.len() {
        net.add_edge(2 + n + s, 1, g);
    }
    net.max_flow(0, 1) == volume
}

/// Can all jobs `(r, d, p)` run in a single common slot?
fn one_slot_suffices(g: i64, windows: &[(i64, i64, i64)]) -> bool {
    if windows.len() as i64 > g {
        return false;
    }
    if windows.iter().any(|&(_, _, p)| p > 1) {
        return false;
    }
    let max_r = windows.iter().map(|w| w.0).max().unwrap();
    let min_d = windows.iter().map(|w| w.1).min().unwrap();
    max_r < min_d
}

/// Can all jobs run in two slots?
fn two_slots_suffice(g: i64, windows: &[(i64, i64, i64)]) -> bool {
    let volume: i64 = windows.iter().map(|w| w.2).sum();
    if volume > 2 * g {
        return false;
    }
    if windows.iter().any(|&(_, _, p)| p > 2) {
        return false;
    }
    // Candidate slot positions (left-shift exchange argument).
    let mut cands: Vec<i64> = Vec::with_capacity(windows.len() * 2);
    for &(r, d, _) in windows {
        cands.push(r);
        if r + 1 < d {
            cands.push(r + 1);
        }
    }
    cands.sort_unstable();
    cands.dedup();
    for (a, &t1) in cands.iter().enumerate() {
        for &t2 in &cands[a + 1..] {
            if pair_feasible(g, windows, t1, t2) {
                return true;
            }
        }
    }
    false
}

/// Closed-form feasibility of the slot pair `(t1, t2)`, `t1 < t2`.
fn pair_feasible(g: i64, windows: &[(i64, i64, i64)], t1: i64, t2: i64) -> bool {
    let contains = |r: i64, d: i64, t: i64| r <= t && t < d;
    let mut only_t1 = 0i64; // unit jobs that can use only t1
    let mut only_t2 = 0i64;
    let mut flex = 0i64; // unit jobs that can use either
    let mut long = 0i64; // p = 2 jobs (need both)
    for &(r, d, p) in windows {
        let c1 = contains(r, d, t1);
        let c2 = contains(r, d, t2);
        match (p, c1, c2) {
            (2, true, true) => long += 1,
            (2, _, _) => return false, // a p=2 job must see both slots
            (1, true, true) => flex += 1,
            (1, true, false) => only_t1 += 1,
            (1, false, true) => only_t2 += 1,
            (1, false, false) => return false,
            _ => unreachable!("p ∈ {{1,2}} checked by caller"),
        }
    }
    only_t1 + long <= g && only_t2 + long <= g && only_t1 + only_t2 + flex + 2 * long <= 2 * g
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Test-case table: (g, [(release, deadline, processing)]).
    type Cases = Vec<(i64, Vec<(i64, i64, i64)>)>;
    use crate::feasibility::slots_feasible;
    use crate::instance::{Instance, Job};
    use proptest::prelude::*;

    fn inst(g: i64, jobs: Vec<(i64, i64, i64)>) -> Instance {
        Instance::new(g, jobs.into_iter().map(|(r, d, p)| Job::new(r, d, p)).collect()).unwrap()
    }

    fn bounds(g: i64, jobs: Vec<(i64, i64, i64)>) -> (Instance, Forest, OptBounds) {
        let i = inst(g, jobs);
        let f = Forest::build(&i).unwrap();
        let b = compute(&f, &i);
        (i, f, b)
    }

    #[test]
    fn deep_bounds_agree_with_pair_oracles() {
        let shapes: Cases = vec![
            (1, vec![(0, 5, 1)]),
            (10, vec![(0, 5, 3)]),
            (3, vec![(0, 2, 1); 4]),
            (5, vec![(0, 10, 1), (1, 3, 1), (6, 8, 1)]),
            (5, vec![(0, 12, 1), (1, 3, 1), (5, 7, 1), (9, 11, 1)]),
            (2, vec![(0, 9, 1); 5]),
        ];
        for (g, jobs) in shapes {
            let (_, f, b) = bounds(g, jobs.clone());
            let deep = compute_deep(&f, &inst(g, jobs.clone()), 3);
            for i in 0..f.num_nodes() {
                assert_eq!(deep.lower[i] >= 2, b.ge2[i], "{jobs:?} node {i} (k=2)");
                assert_eq!(deep.lower[i] >= 3, b.ge3[i], "{jobs:?} node {i} (k=3)");
            }
        }
    }

    #[test]
    fn deep_bounds_reach_four_and_beyond() {
        // 5 disjoint singleton-window unit jobs + a long-window unit job.
        let jobs: Vec<(i64, i64, i64)> =
            (0..5).map(|i| (2 * i, 2 * i + 1, 1)).chain([(0, 10, 1)]).collect();
        // g = 1: the 5 forced slots are full, the flexible job needs a
        // sixth → OPT = 6.
        let (_, f, _) = bounds(1, jobs.clone());
        let deep = compute_deep(&f, &inst(1, jobs.clone()), 7);
        assert_eq!(deep.lower[f.roots[0]], 6);
        // g = 2: the flexible job shares a forced slot → OPT = 5.
        let (_, f2, _) = bounds(2, jobs.clone());
        let deep2 = compute_deep(&f2, &inst(2, jobs), 7);
        assert_eq!(deep2.lower[f2.roots[0]], 5);
    }

    #[test]
    fn deep_bounds_volume_capped() {
        // 4g+1 unit jobs in one window of width 6: OPT = 5 by volume.
        let g = 2;
        let (_, f, _) = bounds(g, vec![(0, 6, 1); 9]);
        let deep = compute_deep(&f, &inst(g, vec![(0, 6, 1); 9]), 6);
        assert_eq!(deep.lower[f.roots[0]], 5);
    }

    #[test]
    fn single_unit_job_needs_one_slot() {
        let (_, f, b) = bounds(1, vec![(0, 5, 1)]);
        let root = f.roots[0];
        assert!(!b.ge2[root]);
        assert!(!b.ge3[root]);
    }

    #[test]
    fn long_job_forces_ge2_and_ge3() {
        let (_, f, b) = bounds(10, vec![(0, 5, 3)]);
        let root = f.roots[0];
        assert!(b.ge2[root]);
        assert!(b.ge3[root]);
    }

    #[test]
    fn capacity_forces_ge2() {
        // g + 1 unit jobs sharing one window of width 2 (the paper's §1
        // gap-2 family): one slot cannot hold them, two can.
        let (_, f, b) = bounds(3, vec![(0, 2, 1); 4]);
        let root = f.roots[0];
        assert!(b.ge2[root]);
        assert!(!b.ge3[root]);
    }

    #[test]
    fn disjoint_windows_force_ge2() {
        let (_, f, b) = bounds(5, vec![(0, 10, 1), (1, 3, 1), (6, 8, 1)]);
        let root = f.roots[0];
        assert!(b.ge2[root]);
        assert!(!b.ge3[root]); // slots 1 and 6 cover everything
                               // Subtree of leaf [1,3) alone needs just one slot.
        let leaf = (0..f.num_nodes()).find(|&i| f.nodes[i].interval == (1, 3)).unwrap();
        assert!(!b.ge2[leaf]);
    }

    #[test]
    fn three_disjoint_leaves_force_ge3() {
        let (_, f, b) = bounds(5, vec![(0, 12, 1), (1, 3, 1), (5, 7, 1), (9, 11, 1)]);
        let root = f.roots[0];
        assert!(b.ge2[root]);
        assert!(b.ge3[root]);
    }

    #[test]
    fn volume_forces_ge3() {
        // 2g + 1 units in one wide window.
        let (_, f, b) = bounds(2, vec![(0, 9, 1); 5]);
        let root = f.roots[0];
        assert!(b.ge2[root]);
        assert!(b.ge3[root]);
    }

    #[test]
    fn p2_jobs_use_pair() {
        let (_, f, b) = bounds(2, vec![(0, 4, 2), (0, 4, 2), (1, 3, 1), (1, 3, 1)]);
        // Two p=2 jobs + two unit jobs in nested windows: slots 1,2 hold
        // 2+2+1+1 = 6 > 2g = 4? g=2 → 2 slots give 4 capacity < 6 → ge3.
        let root = f.roots[0];
        assert!(b.ge3[root]);
        let (_, f2, b2) = bounds(3, vec![(0, 4, 2), (0, 4, 2), (1, 3, 1), (1, 3, 1)]);
        let root2 = f2.roots[0];
        assert!(b2.ge2[root2]);
        assert!(!b2.ge3[root2]); // slots {1,2} fit 6 ≤ 2·3 with pairwise caps
    }

    /// Ground truth by brute force: OPT_i computed by enumerating all
    /// 1- and 2-subsets of the node's interval slots and running the flow
    /// feasibility check on the subtree jobs.
    fn brute_opt_le(inst: &Instance, f: &Forest, i: usize, k: usize) -> bool {
        let jobs = f.jobs_in_subtree(i);
        if jobs.is_empty() {
            return true;
        }
        // Restrict the instance to subtree jobs (windows from the forest).
        let sub = Instance::new(
            inst.g,
            jobs.iter()
                .map(|&j| {
                    let nd = &f.nodes[f.job_node[j]];
                    Job::new(nd.interval.0, nd.interval.1, inst.jobs[j].processing)
                })
                .collect(),
        )
        .unwrap();
        let (lo, hi) = f.nodes[i].interval;
        let slots: Vec<i64> = (lo..hi).collect();
        if k >= 1 {
            for &a in &slots {
                if slots_feasible(&sub, &[a]) {
                    return true;
                }
            }
        }
        if k >= 2 {
            for a in 0..slots.len() {
                for b in a + 1..slots.len() {
                    if slots_feasible(&sub, &[slots[a], slots[b]]) {
                        return true;
                    }
                }
            }
        }
        false
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn prop_oracles_match_brute_force(
            g in 1i64..4,
            raw in proptest::collection::vec((0i64..6, 1i64..5, 1i64..3), 1..6),
        ) {
            // Build a laminar set: windows nested inside [0, 12).
            let mut jobs = vec![(0i64, 12i64, 1i64)];
            for (start, len, p) in raw {
                let d = (start + len.max(p)).min(12);
                let r = start.min(d - p.min(len.max(p)));
                // keep nested under the root and laminar by making all
                // windows share the left endpoint of a dyadic family
                let r2 = r - (r % 3); // starts at multiples of 3
                let d2 = (r2 + 3).min(12).max(r2 + p);
                if d2 <= 12 {
                    jobs.push((r2, d2, p.min(d2 - r2)));
                }
            }
            let inst = Instance::new(
                g,
                jobs.iter().map(|&(r, d, p)| Job::new(r, d, p)).collect(),
            ).unwrap();
            prop_assume!(inst.check_laminar().is_ok());
            let f = Forest::build(&inst).unwrap();
            let b = compute(&f, &inst);
            for i in 0..f.num_nodes() {
                let le1 = brute_opt_le(&inst, &f, i, 1);
                let le2 = brute_opt_le(&inst, &f, i, 2);
                prop_assert_eq!(b.ge2[i], !le1, "node {} ge2 mismatch", i);
                prop_assert_eq!(b.ge3[i], !le2, "node {} ge3 mismatch", i);
            }
        }
    }
}
