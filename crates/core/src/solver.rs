//! The end-to-end 9/5-approximation solver (Theorem 4.15).
//!
//! Pipeline: window forest → canonical forest → strengthened LP →
//! Lemma 3.1 push-down → Algorithm 1 rounding → max-flow schedule
//! extraction → independent verification.
//!
//! Two LP backends are offered. The exact backend solves the LP over big
//! rationals, so every rounding comparison is decided exactly and the
//! 9/5 guarantee is unconditional. The `f64` backend is much faster on
//! large instances; because tiny tableau noise could in principle flip a
//! comparison at a boundary, the final schedule is *always* re-verified,
//! and a repair pass (counted in [`SolveStats::repair_opened`], normally
//! zero) can open additional slots if extraction ever falls short.

use crate::canonical::canonicalize;
use crate::feasibility::{counts_to_slots, extract_assignment};
use crate::instance::Instance;
use crate::lp_model::{build_opts, NestedLpError};
use crate::opt23;
use crate::rounding::check_budget;
use crate::schedule::Schedule;
use crate::transform::push_down;
use crate::tree::Forest;
use atsched_lp::Scalar;
use atsched_num::Ratio;
use atsched_obs as obs;
use std::fmt;
use std::time::{Duration, Instant};

/// Which arithmetic the LP + rounding pipeline runs in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LpBackend {
    /// Exact big-rational simplex (reference path; unconditional 9/5).
    Exact,
    /// `f64` simplex with tolerances (fast path for sweeps).
    Float,
    /// Hybrid: solve the LP in `f64`, then *rationalize* the solution
    /// (continued-fraction snapping via
    /// [`Ratio::from_f64_approx`](atsched_num::Ratio::from_f64_approx))
    /// and run the transformation + rounding exactly. Falls back to the
    /// plain float pipeline when the snapped solution fails the exact
    /// LP-feasibility re-check. Near-float speed with exact rounding
    /// comparisons.
    FloatThenSnap,
}

/// Whether a driver may split an instance at the forest roots and solve
/// the pieces independently (see `crate::decompose`).
///
/// Sharding is a *driver-level* policy: [`solve_nested`] itself always
/// solves the instance it is given monolithically, and the engine/facade
/// layers consult this option to decide whether to decompose first. The
/// decomposition is exact — the strengthened LP is block-diagonal across
/// trees and every later stage acts tree-locally — so the merged result
/// opens exactly the slots the monolithic solve would
/// (`RoundingChoice::Shuffled` is the one exception: its tie-break RNG
/// is global, so sharding is always declined for it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardMode {
    /// Decompose when the instance has ≥ 2 roots and enough jobs for the
    /// fan-out to pay for itself (the default).
    Auto,
    /// Never decompose.
    Off,
    /// Decompose whenever the instance has ≥ 2 roots, regardless of size.
    Force,
}

impl ShardMode {
    /// Stable lowercase label (`auto` / `off` / `force`).
    pub fn label(&self) -> &'static str {
        match self {
            ShardMode::Auto => "auto",
            ShardMode::Off => "off",
            ShardMode::Force => "force",
        }
    }
}

impl std::str::FromStr for ShardMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "auto" => Ok(ShardMode::Auto),
            "off" => Ok(ShardMode::Off),
            "force" => Ok(ShardMode::Force),
            other => Err(format!("unknown shard mode '{other}' (auto|off|force)")),
        }
    }
}

/// Arithmetic discipline for the exact backend's LP stage.
///
/// Orthogonal to [`LpBackend`]: only consulted when `backend` is
/// [`LpBackend::Exact`] (the float backends are approximate by design
/// and ignore it). Warm-started solves ([`solve_nested_seeded`]) also
/// ignore it — the seed protocol is defined over the pure exact solver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrecisionMode {
    /// f64-first with exact verification (the default): solve the LP in
    /// `f64`, re-derive the final basis exactly, certify optimality and
    /// uniqueness, and fall back to the exact simplex on any failure.
    /// Bit-identical to [`PrecisionMode::Exact`] in every case — see
    /// [`atsched_lp::Model::solve_hybrid`].
    Hybrid,
    /// Pure big-rational simplex (the reference discipline).
    Exact,
    /// f64-first with exact re-derivation but *without* the optimality
    /// certificate: a float mis-pivot could leave the (still exactly
    /// rational, still LP-feasible) solution suboptimal. For throwaway
    /// sweeps; the final schedule is re-verified regardless.
    F64Unchecked,
}

impl PrecisionMode {
    /// Stable lowercase label (`hybrid` / `exact` / `f64-unchecked`).
    pub fn label(&self) -> &'static str {
        match self {
            PrecisionMode::Hybrid => "hybrid",
            PrecisionMode::Exact => "exact",
            PrecisionMode::F64Unchecked => "f64-unchecked",
        }
    }
}

impl std::str::FromStr for PrecisionMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "hybrid" => Ok(PrecisionMode::Hybrid),
            "exact" => Ok(PrecisionMode::Exact),
            "f64-unchecked" => Ok(PrecisionMode::F64Unchecked),
            other => Err(format!("unknown precision mode '{other}' (hybrid|exact|f64-unchecked)")),
        }
    }
}

/// Which solver attacks the strengthened LP on the exact backend.
///
/// Orthogonal to [`PrecisionMode`]: `precision` picks the *arithmetic*
/// of the simplex stage, `lp_path` picks whether simplex runs at all.
/// The combinatorial tree path ([`crate::treelp`]) solves the LP
/// directly on the laminar forest and is bit-identical to simplex
/// whenever it answers; it declines (with a typed
/// [`TreeDecline`](crate::treelp::TreeDecline) reason) on shapes it
/// cannot certify. Only consulted when `backend` is
/// [`LpBackend::Exact`]; warm-started solves ([`solve_nested_seeded`])
/// ignore it, like they ignore `precision`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LpPath {
    /// Try the tree path first, silently fall back to simplex on a
    /// decline (the default). Counters record the split:
    /// `lp.tree_solved` vs `lp.tree_fallback.<reason>`.
    Auto,
    /// Tree path only: a decline is surfaced as
    /// [`SolveError::TreeDeclined`]. For coverage tests and diagnostics.
    Tree,
    /// Simplex only: never attempt the tree path.
    Simplex,
}

impl LpPath {
    /// Stable lowercase label (`auto` / `tree` / `simplex`).
    pub fn label(&self) -> &'static str {
        match self {
            LpPath::Auto => "auto",
            LpPath::Tree => "tree",
            LpPath::Simplex => "simplex",
        }
    }
}

impl std::str::FromStr for LpPath {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "auto" => Ok(LpPath::Auto),
            "tree" => Ok(LpPath::Tree),
            "simplex" => Ok(LpPath::Simplex),
            other => Err(format!("unknown lp path '{other}' (auto|tree|simplex)")),
        }
    }
}

/// Solver configuration.
#[derive(Debug, Clone)]
pub struct SolverOptions {
    /// Arithmetic backend.
    pub backend: LpBackend,
    /// Drop open-but-empty slots from the final schedule (default true).
    pub compact: bool,
    /// Include the ceiling constraints (7)/(8) in the LP (default true —
    /// the paper's algorithm; `false` degrades the LP to the natural tree
    /// relaxation and is provided for the E10 ablation).
    pub use_ceiling: bool,
    /// Post-optimization: greedily close open slots while feasibility is
    /// preserved (default false — the paper's algorithm does not do
    /// this; closing slots can only improve the solution, so the 9/5
    /// guarantee is unaffected when enabled).
    pub polish: bool,
    /// Tie-breaking for Algorithm 1's "choose arbitrarily".
    pub round_choice: crate::rounding::RoundingChoice,
    /// Paper extension: ceiling-constraint depth. 3 = the paper's (7)/(8)
    /// only; higher values also add `Σ_{Des(i)} x ≥ k` wherever the
    /// exhaustive oracle proves `OPT_i ≥ k ≤ ceiling_depth`. Only
    /// meaningful when `use_ceiling` is true.
    pub ceiling_depth: i64,
    /// Root-decomposition policy for drivers that support it (the batch
    /// engine, the `Solve` facade, the CLI and the serve layer).
    /// [`solve_nested`] ignores this field.
    pub shard: ShardMode,
    /// Arithmetic discipline for the exact backend's LP stage (ignored
    /// by the float backends). The [`PrecisionMode::Hybrid`] default is
    /// bit-identical to [`PrecisionMode::Exact`], just faster.
    pub precision: PrecisionMode,
    /// LP solver selection for the exact backend: the combinatorial
    /// tree path, simplex, or try-tree-then-fall-back (the
    /// [`LpPath::Auto`] default). Bit-identical in every case.
    pub lp_path: LpPath,
}

impl SolverOptions {
    /// Exact reference configuration (the paper's algorithm verbatim).
    ///
    /// Ships with [`PrecisionMode::Hybrid`]: the LP runs f64-first but
    /// every answer is exactly re-derived and certified (or the exact
    /// simplex is rerun), so results are bit-identical to
    /// [`PrecisionMode::Exact`] while typically much faster.
    pub fn exact() -> Self {
        SolverOptions {
            backend: LpBackend::Exact,
            compact: true,
            use_ceiling: true,
            polish: false,
            round_choice: crate::rounding::RoundingChoice::LargestFraction,
            ceiling_depth: 3,
            shard: ShardMode::Auto,
            precision: PrecisionMode::Hybrid,
            lp_path: LpPath::Auto,
        }
    }

    /// Fast floating-point configuration.
    pub fn float() -> Self {
        SolverOptions { backend: LpBackend::Float, ..SolverOptions::exact() }
    }

    /// Pick the arithmetic discipline for the exact backend's LP stage.
    pub fn with_precision(mut self, precision: PrecisionMode) -> Self {
        self.precision = precision;
        self
    }

    /// Pick the LP solver path for the exact backend.
    pub fn with_lp_path(mut self, lp_path: LpPath) -> Self {
        self.lp_path = lp_path;
        self
    }

    /// Enable the slot-closing post-optimization.
    pub fn polished(mut self) -> Self {
        self.polish = true;
        self
    }

    /// Drop the ceiling constraints (ablation configuration).
    pub fn without_ceiling(mut self) -> Self {
        self.use_ceiling = false;
        self
    }

    /// Enable deeper ceiling constraints up to `OPT_i ≥ k` (extension).
    pub fn with_ceiling_depth(mut self, k: i64) -> Self {
        self.ceiling_depth = k.max(3);
        self
    }
}

impl Default for SolverOptions {
    fn default() -> Self {
        SolverOptions::exact()
    }
}

/// Wall-clock time spent in each pipeline stage.
///
/// Filled by [`solve_nested`]; stages that did not run (e.g. on the
/// empty-instance fast path) stay at zero.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageTimings {
    /// Window-forest construction + canonical transformation + OPT
    /// lower-bound oracle.
    pub canonicalize: Duration,
    /// Building and solving the strengthened LP (both attempts, for the
    /// snap backend).
    pub lp: Duration,
    /// Lemma 3.1 push-down.
    pub transform: Duration,
    /// Algorithm 1 rounding.
    pub round: Duration,
    /// Slot materialization, max-flow extraction, repair and polish.
    pub extract: Duration,
    /// Independent final verification.
    pub verify: Duration,
}

impl StageTimings {
    /// Sum over all stages.
    pub fn total(&self) -> Duration {
        self.canonicalize + self.lp + self.transform + self.round + self.extract + self.verify
    }
}

/// Everything the solver learned along the way.
#[derive(Debug, Clone)]
pub struct SolveStats {
    /// Nodes in the raw window forest.
    pub nodes_original: usize,
    /// Nodes after the canonical transformation.
    pub nodes_canonical: usize,
    /// LP optimum (`Σ x`), as `f64` for reporting.
    pub lp_objective: f64,
    /// LP optimum rendered exactly (exact backend only).
    pub lp_objective_exact: Option<String>,
    /// Push-down moves performed by the Lemma 3.1 transformation.
    pub transform_moves: usize,
    /// `I`-nodes rounded up by Algorithm 1.
    pub rounded_up: usize,
    /// Slots opened by the integral solution (`Σ x̃`).
    pub opened_slots: i64,
    /// Active slots in the final schedule (≤ `opened_slots`).
    pub active_slots: usize,
    /// Slots a repair pass had to add beyond `x̃` (0 on the exact path).
    pub repair_opened: i64,
    /// Slots removed by the polish pass (0 unless
    /// [`SolverOptions::polish`]).
    pub polish_closed: i64,
    /// `opened / lp_objective` — certified ≤ 9/5 by Lemma 3.3 (when the
    /// ceiling constraints are enabled).
    pub opened_over_lp: f64,
    /// Wall-clock time per pipeline stage.
    pub timings: StageTimings,
}

/// Solver output: a verified schedule plus statistics.
#[derive(Debug, Clone)]
pub struct SolveResult {
    /// The verified schedule.
    pub schedule: Schedule,
    /// Pipeline statistics.
    pub stats: SolveStats,
    /// Integral per-node open counts on the canonical forest.
    pub z: Vec<i64>,
    /// The canonical forest the counts refer to.
    pub forest: Forest,
}

/// Solver errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolveError {
    /// Instance validation failed (e.g. windows are not laminar).
    Instance(crate::instance::InstanceError),
    /// The instance (equivalently the LP) is infeasible.
    Infeasible,
    /// The LP solver gave up (possible only on the float backend).
    Lp(atsched_lp::LpError),
    /// The combinatorial tree path declined the instance and fallback
    /// was forbidden ([`LpPath::Tree`] only — [`LpPath::Auto`] falls
    /// back to simplex instead of surfacing this).
    TreeDeclined(crate::treelp::TreeDecline),
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::Instance(e) => write!(f, "{e}"),
            SolveError::Infeasible => write!(f, "instance is infeasible"),
            SolveError::Lp(e) => write!(f, "{e}"),
            SolveError::TreeDeclined(d) => write!(f, "tree LP path declined: {d}"),
        }
    }
}

impl std::error::Error for SolveError {}

/// Solve a nested (laminar) instance with the 9/5-approximation.
///
/// Returns an error if windows are not laminar or the instance is
/// infeasible. The returned schedule always passes
/// [`Schedule::verify`].
pub fn solve_nested(inst: &Instance, opts: &SolverOptions) -> Result<SolveResult, SolveError> {
    if inst.jobs.is_empty() {
        return Ok(SolveResult {
            schedule: Schedule::new(Vec::new(), Vec::new()),
            stats: SolveStats {
                nodes_original: 0,
                nodes_canonical: 0,
                lp_objective: 0.0,
                lp_objective_exact: Some("0".into()),
                transform_moves: 0,
                rounded_up: 0,
                opened_slots: 0,
                active_slots: 0,
                repair_opened: 0,
                polish_closed: 0,
                opened_over_lp: 1.0,
                timings: StageTimings::default(),
            },
            z: Vec::new(),
            forest: Forest { nodes: Vec::new(), roots: Vec::new(), job_node: Vec::new() },
        });
    }
    // Outer span: covers the whole pipeline (dropped when the chosen
    // backend returns). Stage spans nest inside it.
    let _solve_span = obs::Span::enter("solve");
    let stage = Instant::now();
    let span = obs::Span::enter("canonicalize");
    let forest = Forest::build(inst).map_err(SolveError::Instance)?;
    let nodes_original = forest.num_nodes();
    let canon = canonicalize(&forest, inst);
    let bounds = opt23::compute(&canon, inst);
    let timings = StageTimings { canonicalize: stage.elapsed(), ..StageTimings::default() };
    drop(span);

    match opts.backend {
        LpBackend::Exact => {
            // Combinatorial fast path: solve the LP directly on the
            // laminar forest when the shape allows a certified answer.
            if opts.lp_path != LpPath::Simplex {
                let stage = Instant::now();
                match crate::treelp::solve_tree(
                    &canon,
                    inst,
                    &bounds,
                    opts.use_ceiling,
                    opts.ceiling_depth,
                ) {
                    Ok(crate::treelp::TreeOutcome::Solved(sol)) => {
                        let mut timings = timings;
                        timings.lp = stage.elapsed();
                        obs::histogram_record("span.lp.ms", timings.lp.as_secs_f64() * 1e3);
                        obs::counter_add("lp.tree_solved", 1);
                        return finish_pipeline::<Ratio>(
                            inst,
                            canon,
                            nodes_original,
                            opts,
                            sol,
                            timings,
                        );
                    }
                    Ok(crate::treelp::TreeOutcome::Infeasible) => {
                        return Err(SolveError::Infeasible)
                    }
                    Err(decline) => {
                        match decline.label() {
                            "nonunique" => obs::counter_add("lp.tree_fallback.nonunique", 1),
                            "flow" => obs::counter_add("lp.tree_fallback.flow", 1),
                            "scale" => obs::counter_add("lp.tree_fallback.scale", 1),
                            _ => obs::counter_add("lp.tree_fallback.overflow", 1),
                        }
                        if opts.lp_path == LpPath::Tree {
                            return Err(SolveError::TreeDeclined(decline));
                        }
                        // Auto: fall through to the simplex pipelines.
                    }
                }
            }
            match opts.precision {
                PrecisionMode::Exact => {
                    run_pipeline::<Ratio>(inst, canon, nodes_original, &bounds, opts, timings)
                }
                PrecisionMode::Hybrid | PrecisionMode::F64Unchecked => run_hybrid_pipeline(
                    inst,
                    canon,
                    nodes_original,
                    &bounds,
                    opts,
                    timings,
                    opts.precision == PrecisionMode::Hybrid,
                ),
            }
        }
        LpBackend::Float => {
            run_pipeline::<f64>(inst, canon, nodes_original, &bounds, opts, timings)
        }
        LpBackend::FloatThenSnap => {
            run_snap_pipeline(inst, canon, nodes_original, &bounds, opts, timings)
        }
    }
}

/// An opaque warm-start seed for [`solve_nested_seeded`]: the primal/
/// dual certificate of a prior exact LP solve.
///
/// Captured by a `capture = true` solve and fed back into a later solve
/// of a closely related instance. Reuse is gated by an exact
/// optimality-and-uniqueness proof against the new LP (see
/// [`atsched_lp::Model::try_warm`]), so a seeded solve is always
/// bit-identical to a cold one — at worst the seed is declined and the
/// LP is solved from scratch.
#[derive(Debug, Clone)]
pub struct WarmSeed {
    cert: crate::lp_model::LpCertificate<Ratio>,
}

/// Result of [`solve_nested_seeded`].
#[derive(Debug)]
pub struct SeededSolve {
    /// The solve result — bit-identical to what [`solve_nested`] returns.
    pub result: SolveResult,
    /// A seed for a future solve: the accepted input seed on a warm hit,
    /// or a freshly captured certificate when `capture` was requested.
    pub seed: Option<WarmSeed>,
    /// True when the input seed was accepted and the simplex never ran.
    pub warm_hit: bool,
}

/// [`solve_nested`] with LP warm-starting across related solves.
///
/// Exact-backend only: on any other backend (or the empty instance)
/// this delegates to [`solve_nested`] and returns no seed. When `seed`
/// is provided and certifies the unique optimum of the amended LP, the
/// LP stage is skipped; `capture` harvests a certificate from a cold
/// solve (one extra presolve-free LP solve — worth it only when the
/// seed will actually be reused). The returned [`SolveResult`] is
/// bit-identical to a cold [`solve_nested`] in every case.
pub fn solve_nested_seeded(
    inst: &Instance,
    opts: &SolverOptions,
    seed: Option<&WarmSeed>,
    capture: bool,
) -> Result<SeededSolve, SolveError> {
    if inst.jobs.is_empty() || opts.backend != LpBackend::Exact {
        return solve_nested(inst, opts).map(|result| SeededSolve {
            result,
            seed: None,
            warm_hit: false,
        });
    }
    let _solve_span = obs::Span::enter("solve");
    let stage = Instant::now();
    let span = obs::Span::enter("canonicalize");
    let forest = Forest::build(inst).map_err(SolveError::Instance)?;
    let nodes_original = forest.num_nodes();
    let canon = canonicalize(&forest, inst);
    let bounds = opt23::compute(&canon, inst);
    let mut timings = StageTimings { canonicalize: stage.elapsed(), ..StageTimings::default() };
    drop(span);

    let stage = Instant::now();
    let lp_span = obs::Span::enter("lp");
    let mut lp = build_opts::<Ratio>(&canon, inst, &bounds, opts.use_ceiling);
    if opts.use_ceiling && opts.ceiling_depth > 3 {
        let deep = crate::opt23::compute_deep(&canon, inst, opts.ceiling_depth);
        crate::lp_model::add_deep_ceilings(&mut lp, &canon, &deep);
    }
    let warm = lp.solve_warm(seed.map(|s| &s.cert), capture).map_err(|e| match e {
        NestedLpError::Infeasible => SolveError::Infeasible,
        NestedLpError::Solver(e) => SolveError::Lp(e),
    })?;
    timings.lp = stage.elapsed();
    drop(lp_span);

    let warm_hit = warm.warm_hit;
    let seed_out = warm.certificate.map(|cert| WarmSeed { cert });
    let result =
        finish_pipeline::<Ratio>(inst, canon, nodes_original, opts, warm.solution, timings)?;
    Ok(SeededSolve { result, seed: seed_out, warm_hit })
}

/// Job-count gate for the Lemma 4.1 deficiency cross-check on the
/// hybrid path. The check enumerates `2^n` job subsets, so it is only
/// affordable (and only run) on small instances; 12 keeps it well under
/// a millisecond and off the critical path of larger solves.
const LEMMA41_JOB_LIMIT: usize = 12;

/// Exact backend under [`PrecisionMode::Hybrid`] /
/// [`PrecisionMode::F64Unchecked`]: the LP stage runs the f64-first,
/// exactly-verified pipeline ([`NestedLp::solve_hybrid`]); everything
/// downstream is the ordinary exact pipeline on the re-derived rational
/// solution. On small instances the rounded integral certificate is
/// additionally cross-checked against the paper's Lemma 4.1
/// characterization; a violation (never observed — it would indicate a
/// rounding-stage bug, since the schedule already re-verified by
/// max-flow) re-runs the whole pipeline in pure exact arithmetic.
fn run_hybrid_pipeline(
    inst: &Instance,
    canon: Forest,
    nodes_original: usize,
    bounds: &opt23::OptBounds,
    opts: &SolverOptions,
    mut timings: StageTimings,
    certify: bool,
) -> Result<SolveResult, SolveError> {
    let stage = Instant::now();
    let lp_span = obs::Span::enter("lp");
    let mut lp = build_opts::<Ratio>(&canon, inst, bounds, opts.use_ceiling);
    if opts.use_ceiling && opts.ceiling_depth > 3 {
        let deep = crate::opt23::compute_deep(&canon, inst, opts.ceiling_depth);
        crate::lp_model::add_deep_ceilings(&mut lp, &canon, &deep);
    }
    let (sol, _outcome) = lp.solve_hybrid(certify).map_err(|e| match e {
        NestedLpError::Infeasible => SolveError::Infeasible,
        NestedLpError::Solver(e) => SolveError::Lp(e),
    })?;
    timings.lp = stage.elapsed();
    drop(lp_span);

    let canonicalize = timings.canonicalize;
    let result = finish_pipeline::<Ratio>(inst, canon, nodes_original, opts, sol, timings)?;
    if certify
        && inst.num_jobs() <= LEMMA41_JOB_LIMIT
        && crate::certify::check_lemma_4_1(&result.forest, inst, &result.z, LEMMA41_JOB_LIMIT)
            .is_err()
    {
        obs::counter_add("solver.hybrid_lemma41_fallbacks", 1);
        let timings = StageTimings { canonicalize, ..StageTimings::default() };
        return run_pipeline::<Ratio>(inst, result.forest, nodes_original, bounds, opts, timings);
    }
    Ok(result)
}

/// Hybrid backend: float LP, rationalized solution, exact rounding.
fn run_snap_pipeline(
    inst: &Instance,
    canon: Forest,
    nodes_original: usize,
    bounds: &opt23::OptBounds,
    opts: &SolverOptions,
    mut timings: StageTimings,
) -> Result<SolveResult, SolveError> {
    let stage = Instant::now();
    let lp_span = obs::Span::enter("lp");
    let mut lp = build_opts::<f64>(&canon, inst, bounds, opts.use_ceiling);
    if opts.use_ceiling && opts.ceiling_depth > 3 {
        let deep = crate::opt23::compute_deep(&canon, inst, opts.ceiling_depth);
        crate::lp_model::add_deep_ceilings(&mut lp, &canon, &deep);
    }
    let sol_f = lp.solve().map_err(|e| match e {
        NestedLpError::Infeasible => SolveError::Infeasible,
        NestedLpError::Solver(e) => SolveError::Lp(e),
    })?;
    timings.lp = stage.elapsed();

    // Rationalize. Simplex vertices of these LPs have modest
    // denominators; 10^6 comfortably covers them while still absorbing
    // float noise.
    const MAX_DEN: u64 = 1_000_000;
    let snap = |v: &f64| Ratio::from_f64_approx(*v, MAX_DEN);
    let snapped: Option<crate::lp_model::FractionalSolution<Ratio>> = (|| {
        let x: Option<Vec<Ratio>> = sol_f.x.iter().map(snap).collect();
        let x = x?;
        let mut y: Vec<Vec<(usize, Ratio)>> = Vec::with_capacity(sol_f.y.len());
        for per_node in &sol_f.y {
            let mut row = Vec::with_capacity(per_node.len());
            for (gid, v) in per_node {
                row.push((*gid, snap(v)?));
            }
            y.push(row);
        }
        let objective: Ratio = x.iter().sum();
        Some(crate::lp_model::FractionalSolution { x, y, objective })
    })();

    let stage = Instant::now();
    if let Some(sol_q) = snapped {
        let groups = crate::lp_model::group_jobs(&canon, inst);
        if sol_q.check(&canon, inst, &groups).is_ok() {
            timings.lp += stage.elapsed();
            drop(lp_span);
            return finish_pipeline::<Ratio>(inst, canon, nodes_original, opts, sol_q, timings);
        }
    }
    // Snap failed LP feasibility: fall back to the plain float pipeline.
    timings.lp += stage.elapsed();
    drop(lp_span);
    finish_pipeline::<f64>(inst, canon, nodes_original, opts, sol_f, timings)
}

fn run_pipeline<S: Scalar>(
    inst: &Instance,
    canon: Forest,
    nodes_original: usize,
    bounds: &opt23::OptBounds,
    opts: &SolverOptions,
    mut timings: StageTimings,
) -> Result<SolveResult, SolveError> {
    let stage = Instant::now();
    let lp_span = obs::Span::enter("lp");
    let mut lp = build_opts::<S>(&canon, inst, bounds, opts.use_ceiling);
    if opts.use_ceiling && opts.ceiling_depth > 3 {
        let deep = crate::opt23::compute_deep(&canon, inst, opts.ceiling_depth);
        crate::lp_model::add_deep_ceilings(&mut lp, &canon, &deep);
    }
    let sol = lp.solve().map_err(|e| match e {
        NestedLpError::Infeasible => SolveError::Infeasible,
        NestedLpError::Solver(e) => SolveError::Lp(e),
    })?;
    timings.lp = stage.elapsed();
    drop(lp_span);
    finish_pipeline::<S>(inst, canon, nodes_original, opts, sol, timings)
}

/// Everything after the LP: Lemma 3.1 transform, Algorithm 1 rounding,
/// schedule extraction and verification.
fn finish_pipeline<S: Scalar>(
    inst: &Instance,
    canon: Forest,
    nodes_original: usize,
    opts: &SolverOptions,
    sol: crate::lp_model::FractionalSolution<S>,
    mut timings: StageTimings,
) -> Result<SolveResult, SolveError> {
    let lp_objective = sol.objective.to_f64();
    let lp_exact = exact_objective_string(&sol.objective);

    let stage = Instant::now();
    let span = obs::Span::enter("transform");
    let transformed = push_down(&canon, sol);
    debug_assert!(crate::transform::check_claim1(
        &canon,
        &transformed.solution,
        &transformed.top_positive
    )
    .is_ok());
    timings.transform = stage.elapsed();
    drop(span);

    let stage = Instant::now();
    let span = obs::Span::enter("round");
    let rounded = crate::rounding::round_with(
        &canon,
        &transformed.solution,
        &transformed.top_positive,
        opts.round_choice,
    );
    debug_assert!(check_budget(&canon, &transformed.solution, &rounded).is_ok());
    timings.round = stage.elapsed();
    drop(span);

    let stage = Instant::now();
    let span = obs::Span::enter("extract");
    // Materialize and extract; repair only if extraction falls short
    // (never on the exact path — Theorem 4.5).
    let mut z = rounded.z.clone();
    let mut repair_opened = 0i64;
    let assignment = loop {
        let slots = counts_to_slots(&canon, &z);
        if let Some(a) = extract_assignment(inst, &slots) {
            break a;
        }
        // Open one more slot at the node with spare own slots that most
        // increases schedulable volume (greedy repair).
        let mut best: Option<(usize, i64)> = None;
        for i in 0..canon.num_nodes() {
            if z[i] >= canon.nodes[i].len() {
                continue;
            }
            z[i] += 1;
            let vol =
                crate::feasibility::max_schedulable_volume(inst, &counts_to_slots(&canon, &z));
            z[i] -= 1;
            if best.is_none_or(|(_, bv)| vol > bv) {
                best = Some((i, vol));
            }
        }
        let (node, _) = best.expect("repair impossible: instance infeasible despite feasible LP");
        z[node] += 1;
        repair_opened += 1;
    };

    let slots = counts_to_slots(&canon, &z);
    let mut schedule = Schedule::new(slots, assignment);
    let opened_before_polish: i64 = z.iter().sum();

    // Optional post-optimization: close open slots while the rest stays
    // feasible (can only improve — and re-extraction keeps verifying).
    let mut polish_closed = 0i64;
    if opts.polish {
        let mut open = schedule.slots.clone();
        let mut idx = 0;
        while idx < open.len() {
            let mut trial = open.clone();
            trial.remove(idx);
            if crate::feasibility::slots_feasible(inst, &trial) {
                open = trial;
                polish_closed += 1;
            } else {
                idx += 1;
            }
        }
        if polish_closed > 0 {
            let assignment =
                extract_assignment(inst, &open).expect("polish only keeps feasible sets");
            schedule = Schedule::new(open, assignment);
        }
    }

    if opts.compact {
        schedule.compact();
    }
    timings.extract = stage.elapsed();
    drop(span);

    let stage = Instant::now();
    let span = obs::Span::enter("verify");
    schedule.verify(inst).expect("extracted schedule must verify; this is a bug");
    timings.verify = stage.elapsed();
    drop(span);

    let opened_slots: i64 = opened_before_polish - polish_closed;
    let stats = SolveStats {
        nodes_original,
        nodes_canonical: canon.num_nodes(),
        lp_objective,
        lp_objective_exact: lp_exact,
        transform_moves: transformed.moves,
        rounded_up: rounded.rounded_up.len(),
        opened_slots,
        active_slots: schedule.active_time(),
        repair_opened,
        polish_closed,
        opened_over_lp: if lp_objective > 0.0 { opened_slots as f64 / lp_objective } else { 1.0 },
        timings,
    };
    Ok(SolveResult { schedule, stats, z, forest: canon })
}

fn exact_objective_string<S: Scalar>(obj: &S) -> Option<String> {
    // Render exactly only when the scalar is the exact type.
    let s = format!("{obj}");
    if std::any::TypeId::of::<S>() == std::any::TypeId::of::<Ratio>() {
        Some(s)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Test-case table: (g, [(release, deadline, processing)]).
    type Cases = Vec<(i64, Vec<(i64, i64, i64)>)>;
    use crate::instance::Job;

    fn inst(g: i64, jobs: Vec<(i64, i64, i64)>) -> Instance {
        Instance::new(g, jobs.into_iter().map(|(r, d, p)| Job::new(r, d, p)).collect()).unwrap()
    }

    fn solve_ok(g: i64, jobs: Vec<(i64, i64, i64)>) -> SolveResult {
        let i = inst(g, jobs);
        let r = solve_nested(&i, &SolverOptions::exact()).unwrap();
        r.schedule.verify(&i).unwrap();
        assert_eq!(r.stats.repair_opened, 0, "exact path must never repair");
        assert!(
            r.stats.opened_over_lp <= 1.8 + 1e-9,
            "approximation bound violated: {}",
            r.stats.opened_over_lp
        );
        r
    }

    #[test]
    fn empty_instance() {
        let i = inst(3, vec![]);
        let r = solve_nested(&i, &SolverOptions::exact()).unwrap();
        assert_eq!(r.stats.opened_slots, 0);
    }

    #[test]
    fn single_job() {
        let r = solve_ok(1, vec![(0, 5, 2)]);
        assert_eq!(r.stats.active_slots, 2);
    }

    #[test]
    fn gap2_family_solved_optimally() {
        // g+1 unit jobs, width-2 window: OPT = 2 and our LP = 2.
        for g in [2i64, 3, 4] {
            let r = solve_ok(g, vec![(0, 2, 1); (g + 1) as usize]);
            assert_eq!(r.stats.active_slots, 2, "g = {g}");
        }
    }

    #[test]
    fn nested_three_levels() {
        let r = solve_ok(2, vec![(0, 10, 2), (1, 6, 2), (2, 5, 1), (7, 9, 1)]);
        assert!(r.stats.active_slots >= 3);
        assert!(r.stats.nodes_canonical >= r.stats.nodes_original);
    }

    #[test]
    fn forest_instances_work() {
        let r = solve_ok(2, vec![(0, 3, 2), (5, 9, 1), (5, 9, 1), (12, 14, 2)]);
        assert!(r.stats.active_slots >= 5); // 2 + 1 + 2
    }

    #[test]
    fn infeasible_is_reported() {
        let i = inst(1, vec![(0, 2, 1); 3]);
        assert_eq!(solve_nested(&i, &SolverOptions::exact()).unwrap_err(), SolveError::Infeasible);
    }

    #[test]
    fn non_laminar_is_rejected() {
        let i = inst(1, vec![(0, 5, 1), (3, 8, 1)]);
        assert!(matches!(
            solve_nested(&i, &SolverOptions::exact()).unwrap_err(),
            SolveError::Instance(crate::instance::InstanceError::NotLaminar(_, _))
        ));
    }

    #[test]
    fn float_backend_agrees_on_small_instances() {
        let cases: Cases = vec![
            (2, vec![(0, 8, 2), (1, 4, 1), (5, 7, 1)]),
            (3, vec![(0, 2, 1); 4]),
            (2, vec![(0, 10, 2), (1, 6, 2), (2, 5, 1), (7, 9, 1)]),
        ];
        for (g, jobs) in cases {
            let i = inst(g, jobs);
            let e = solve_nested(&i, &SolverOptions::exact()).unwrap();
            let f = solve_nested(&i, &SolverOptions::float()).unwrap();
            f.schedule.verify(&i).unwrap();
            assert!((e.stats.lp_objective - f.stats.lp_objective).abs() < 1e-6);
        }
    }

    #[test]
    fn polish_never_hurts_and_verifies() {
        let cases: Cases = vec![
            (2, vec![(0, 12, 3), (1, 6, 2), (2, 5, 1), (7, 11, 2)]),
            (3, vec![(0, 2, 1); 4]),
            (2, vec![(0, 10, 2), (1, 6, 2), (2, 5, 1), (7, 9, 1)]),
        ];
        for (g, jobs) in cases {
            let i = inst(g, jobs);
            let plain = solve_nested(&i, &SolverOptions::exact()).unwrap();
            let polished = solve_nested(&i, &SolverOptions::exact().polished()).unwrap();
            polished.schedule.verify(&i).unwrap();
            assert!(polished.stats.active_slots <= plain.stats.active_slots);
            assert!(polished.stats.opened_slots <= plain.stats.opened_slots);
            assert_eq!(
                polished.stats.opened_slots,
                plain.stats.opened_slots - polished.stats.polish_closed
            );
        }
    }

    #[test]
    fn without_ceiling_still_feasible_but_weaker_lp() {
        // On the gap2 family the natural tree LP sits at 1 + 1/g < 2.
        let i = inst(4, vec![(0, 2, 1); 5]);
        let ablated = solve_nested(&i, &SolverOptions::exact().without_ceiling()).unwrap();
        ablated.schedule.verify(&i).unwrap();
        assert!(ablated.stats.lp_objective < 2.0 - 1e-9);
        let full = solve_nested(&i, &SolverOptions::exact()).unwrap();
        assert!((full.stats.lp_objective - 2.0).abs() < 1e-9);
    }

    #[test]
    fn rounding_choices_all_feasible() {
        use crate::rounding::RoundingChoice;
        let i = inst(2, vec![(0, 12, 3), (1, 6, 2), (2, 5, 1), (7, 11, 2)]);
        for choice in [
            RoundingChoice::LargestFraction,
            RoundingChoice::FirstId,
            RoundingChoice::Shuffled(3),
            RoundingChoice::Shuffled(99),
        ] {
            let opts = SolverOptions { round_choice: choice, ..SolverOptions::exact() };
            let r = solve_nested(&i, &opts).unwrap();
            r.schedule.verify(&i).unwrap();
            assert_eq!(r.stats.repair_opened, 0, "{choice:?}");
            assert!(r.stats.opened_over_lp <= 1.8 + 1e-9, "{choice:?}");
        }
    }

    #[test]
    fn snap_backend_matches_exact() {
        let cases: Cases = vec![
            (2, vec![(0, 8, 2), (1, 4, 1), (5, 7, 1)]),
            (3, vec![(0, 2, 1); 4]),
            (2, vec![(0, 10, 2), (1, 6, 2), (2, 5, 1), (7, 9, 1)]),
            (2, vec![(0, 12, 3), (1, 6, 2), (2, 5, 1), (7, 11, 2)]),
        ];
        for (g, jobs) in cases {
            let i = inst(g, jobs.clone());
            let exact = solve_nested(&i, &SolverOptions::exact()).unwrap();
            let snap = solve_nested(
                &i,
                &SolverOptions { backend: LpBackend::FloatThenSnap, ..SolverOptions::exact() },
            )
            .unwrap();
            snap.schedule.verify(&i).unwrap();
            assert!((exact.stats.lp_objective - snap.stats.lp_objective).abs() < 1e-6, "{jobs:?}");
            assert!(snap.stats.opened_slots as f64 <= 1.8 * snap.stats.lp_objective + 1e-6);
        }
    }

    #[test]
    fn snap_backend_reports_infeasible() {
        let i = inst(1, vec![(0, 2, 1); 3]);
        let opts = SolverOptions { backend: LpBackend::FloatThenSnap, ..SolverOptions::exact() };
        assert_eq!(solve_nested(&i, &opts).unwrap_err(), SolveError::Infeasible);
    }

    #[test]
    fn stats_are_consistent() {
        let r = solve_ok(2, vec![(0, 12, 3), (1, 6, 2), (2, 5, 1), (7, 11, 2)]);
        assert_eq!(r.stats.opened_slots, r.z.iter().sum::<i64>());
        assert!(r.stats.active_slots as i64 <= r.stats.opened_slots);
        assert!(r.stats.lp_objective > 0.0);
        assert!(r.stats.lp_objective_exact.is_some());
    }

    #[test]
    fn seeded_solve_matches_cold_and_reuses_certificates() {
        let i = inst(2, vec![(0, 12, 3), (1, 6, 2), (2, 5, 1), (7, 11, 2)]);
        let opts = SolverOptions::exact();
        let cold = solve_nested(&i, &opts).unwrap();

        // Capture pass: same result as cold, plus a certificate.
        let first = solve_nested_seeded(&i, &opts, None, true).unwrap();
        assert!(!first.warm_hit);
        assert_eq!(first.result.z, cold.z);
        assert_eq!(first.result.stats.lp_objective_exact, cold.stats.lp_objective_exact);
        assert_eq!(first.result.schedule.slots, cold.schedule.slots);
        let seed = first.seed.expect("capture must produce a seed");

        // Re-solving the *same* instance with the seed is bit-identical
        // whether or not the certificate managed to prove uniqueness
        // (slack windows usually admit alternate LP optima, so a decline
        // and cold re-solve is the common outcome here).
        let second = solve_nested_seeded(&i, &opts, Some(&seed), true).unwrap();
        assert_eq!(second.result.z, cold.z);
        assert_eq!(second.result.stats.lp_objective_exact, cold.stats.lp_objective_exact);
        assert_eq!(second.result.schedule.slots, cold.schedule.slots);
        assert_eq!(second.result.schedule.assignment, cold.schedule.assignment);

        // A seed from a *different* instance is declined, never wrong.
        let other = inst(2, vec![(0, 12, 3), (1, 6, 2), (2, 5, 2), (7, 11, 2)]);
        let third = solve_nested_seeded(&other, &opts, Some(&seed), false).unwrap();
        assert!(!third.warm_hit);
        assert!(third.seed.is_none(), "no capture requested");
        let other_cold = solve_nested(&other, &opts).unwrap();
        assert_eq!(third.result.z, other_cold.z);
        assert_eq!(third.result.stats.lp_objective_exact, other_cold.stats.lp_objective_exact);
    }

    #[test]
    fn rigid_instances_warm_hit() {
        // Window length == processing pins every LP variable, so the
        // captured certificate proves uniqueness and the re-solve skips
        // the simplex entirely.
        let i = inst(2, vec![(0, 4, 4), (0, 4, 4)]);
        let opts = SolverOptions::exact();
        let cold = solve_nested(&i, &opts).unwrap();
        let first = solve_nested_seeded(&i, &opts, None, true).unwrap();
        let seed = first.seed.expect("capture must produce a seed");
        let second = solve_nested_seeded(&i, &opts, Some(&seed), true).unwrap();
        assert!(second.warm_hit, "rigid LP must accept its own certificate");
        assert!(second.seed.is_some(), "warm hit keeps the seed alive");
        assert_eq!(second.result.z, cold.z);
        assert_eq!(second.result.stats.lp_objective_exact, cold.stats.lp_objective_exact);
        assert_eq!(second.result.schedule.slots, cold.schedule.slots);
        assert_eq!(second.result.schedule.assignment, cold.schedule.assignment);
    }

    #[test]
    fn seeded_solve_degrades_gracefully_off_the_exact_backend() {
        let i = inst(2, vec![(0, 8, 2), (1, 4, 1), (5, 7, 1)]);
        let r = solve_nested_seeded(&i, &SolverOptions::float(), None, true).unwrap();
        assert!(!r.warm_hit);
        assert!(r.seed.is_none(), "float backend never captures");
        r.result.schedule.verify(&i).unwrap();

        let empty = inst(3, vec![]);
        let r = solve_nested_seeded(&empty, &SolverOptions::exact(), None, true).unwrap();
        assert_eq!(r.result.stats.opened_slots, 0);
        assert!(r.seed.is_none());
    }

    #[test]
    fn precision_mode_labels_round_trip() {
        for mode in [PrecisionMode::Hybrid, PrecisionMode::Exact, PrecisionMode::F64Unchecked] {
            assert_eq!(mode.label().parse::<PrecisionMode>().unwrap(), mode);
        }
        assert!("float".parse::<PrecisionMode>().is_err());
    }

    #[test]
    fn hybrid_precision_is_bit_identical_to_exact() {
        let cases: Cases = vec![
            (2, vec![(0, 8, 2), (1, 4, 1), (5, 7, 1)]),
            (3, vec![(0, 2, 1); 4]),
            (2, vec![(0, 10, 2), (1, 6, 2), (2, 5, 1), (7, 9, 1)]),
            (2, vec![(0, 12, 3), (1, 6, 2), (2, 5, 1), (7, 11, 2)]),
            (2, vec![(0, 3, 2), (5, 9, 1), (5, 9, 1), (12, 14, 2)]),
            (1, vec![(0, 5, 2)]),
        ];
        for (g, jobs) in cases {
            let i = inst(g, jobs.clone());
            let pure = SolverOptions::exact().with_precision(PrecisionMode::Exact);
            let e = solve_nested(&i, &pure).unwrap();
            let h = solve_nested(&i, &SolverOptions::exact()).unwrap();
            assert_eq!(h.z, e.z, "{jobs:?}");
            assert_eq!(h.schedule.slots, e.schedule.slots, "{jobs:?}");
            assert_eq!(h.schedule.assignment, e.schedule.assignment, "{jobs:?}");
            assert_eq!(h.stats.lp_objective_exact, e.stats.lp_objective_exact, "{jobs:?}");
            assert_eq!(h.stats.opened_slots, e.stats.opened_slots, "{jobs:?}");

            // Unchecked mode skips the certificate but still re-derives
            // exactly; the schedule must verify in every case.
            let unchecked = SolverOptions::exact().with_precision(PrecisionMode::F64Unchecked);
            let u = solve_nested(&i, &unchecked).unwrap();
            u.schedule.verify(&i).unwrap();
            assert!(u.stats.lp_objective_exact.is_some(), "unchecked path stays rational");
        }
    }

    #[test]
    fn hybrid_precision_reports_infeasible() {
        let i = inst(1, vec![(0, 2, 1); 3]);
        assert_eq!(solve_nested(&i, &SolverOptions::exact()).unwrap_err(), SolveError::Infeasible);
        let unchecked = SolverOptions::exact().with_precision(PrecisionMode::F64Unchecked);
        assert_eq!(solve_nested(&i, &unchecked).unwrap_err(), SolveError::Infeasible);
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(48))]
        /// Hybrid precision ≡ pure exact on random laminar instances:
        /// same z-vector, same slots, same assignment, same exact LP
        /// objective — bit for bit. (Generator shape borrowed from the
        /// opt23 oracle test.)
        #[test]
        fn prop_hybrid_precision_matches_exact(
            g in 1i64..4,
            raw in proptest::collection::vec((0i64..6, 1i64..5, 1i64..3), 1..6),
        ) {
            let mut jobs = vec![(0i64, 12i64, 1i64)];
            for (start, len, p) in raw {
                let d = (start + len.max(p)).min(12);
                let r = start.min(d - p.min(len.max(p)));
                let r2 = r - (r % 3);
                let d2 = (r2 + 3).min(12).max(r2 + p);
                if d2 <= 12 {
                    jobs.push((r2, d2, p.min(d2 - r2)));
                }
            }
            let i = inst(g, jobs);
            proptest::prop_assume!(i.check_laminar().is_ok());
            let pure = SolverOptions::exact().with_precision(PrecisionMode::Exact);
            match (solve_nested(&i, &SolverOptions::exact()), solve_nested(&i, &pure)) {
                (Ok(h), Ok(e)) => {
                    proptest::prop_assert_eq!(h.z, e.z);
                    proptest::prop_assert_eq!(h.schedule.slots, e.schedule.slots);
                    proptest::prop_assert_eq!(h.schedule.assignment, e.schedule.assignment);
                    proptest::prop_assert_eq!(
                        h.stats.lp_objective_exact, e.stats.lp_objective_exact);
                }
                (Err(a), Err(b)) => proptest::prop_assert_eq!(a, b),
                (h, e) => proptest::prop_assert!(false, "diverged: {:?} vs {:?}", h, e),
            }
        }
    }

    #[test]
    fn stage_timings_are_recorded() {
        let r = solve_ok(2, vec![(0, 12, 3), (1, 6, 2), (2, 5, 1), (7, 11, 2)]);
        let t = r.stats.timings;
        // Stages actually executed must have been measured; LP work
        // dominates and can never be zero on a non-empty instance.
        assert!(t.lp > Duration::ZERO);
        assert!(t.total() >= t.lp);

        // The empty-instance fast path reports all-zero timings.
        let empty = solve_nested(&inst(3, vec![]), &SolverOptions::exact()).unwrap();
        assert_eq!(empty.stats.timings, StageTimings::default());
    }
}
