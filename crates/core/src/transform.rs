//! The LP-solution transformation of Lemma 3.1 (paper §3.2).
//!
//! Repeatedly move fractional open mass from an ancestor `i₁` with
//! `x(i₁) > 0` to a strict descendant `i₂` with slack (`x(i₂) < L(i₂)`),
//! shifting `θ = min(L(i₂) − x(i₂), x(i₁))` of `x` and a proportional
//! `θ/x(i₁)` share of every `y(i₁, ·)` down with it. Every job assignable
//! to `i₁` is assignable to `i₂` (windows only shrink going down), so all
//! LP constraints remain satisfied.
//!
//! After the fixpoint, any node with positive `x` has a *fully open*
//! strict-descendant set, and the topmost positive nodes form the
//! antichain `I` with the properties of Claim 1.

use crate::instance::Instance;
use crate::lp_model::{FractionalSolution, JobGroup};
use crate::tree::Forest;
use atsched_lp::Scalar;

/// Outcome of the transformation.
#[derive(Debug, Clone)]
pub struct Transformed<S> {
    /// The rewritten solution (same objective value as the input).
    pub solution: FractionalSolution<S>,
    /// The antichain `I`: topmost nodes with `x > 0`, sorted by id.
    pub top_positive: Vec<usize>,
    /// Number of push-down moves performed (for stats).
    pub moves: usize,
}

/// Apply Lemma 3.1 until no violating pair remains.
///
/// Deterministic strategy: among slack nodes that still have a positive
/// strict ancestor, take the *deepest* (so its own descendants are
/// already full) and pull from its *topmost* positive ancestor. Each move
/// either zeroes the ancestor or fills the descendant, so at most
/// `O(m²)` moves happen; a safety cap asserts this.
pub fn push_down<S: Scalar>(forest: &Forest, mut sol: FractionalSolution<S>) -> Transformed<S> {
    let m = forest.num_nodes();
    let cap = 4 * m * m + 16;
    let mut moves = 0usize;

    loop {
        // Deepest slack node with a positive strict ancestor.
        let mut pick: Option<(usize, usize)> = None; // (i2, depth)
        for i2 in 0..m {
            let len = S::from_i64(forest.nodes[i2].len());
            if !len.sub(&sol.x[i2]).is_positive() {
                continue; // full (or L = 0)
            }
            let has_positive_anc =
                forest.ancestors(i2)[1..].iter().any(|&a| sol.x[a].is_positive());
            if !has_positive_anc {
                continue;
            }
            let d = forest.nodes[i2].depth;
            if pick.is_none_or(|(_, pd)| d > pd) {
                pick = Some((i2, d));
            }
        }
        let Some((i2, _)) = pick else { break };
        // Topmost positive strict ancestor.
        let i1 = *forest.ancestors(i2)[1..]
            .iter()
            .rfind(|&&a| sol.x[a].is_positive())
            .expect("checked above");

        let slack = S::from_i64(forest.nodes[i2].len()).sub(&sol.x[i2]);
        let theta = if slack < sol.x[i1] { slack } else { sol.x[i1].clone() };
        debug_assert!(theta.is_positive());

        // Scale y(i1, ·) by x'(i1)/x(i1) and move the difference to i2.
        let x1_old = sol.x[i1].clone();
        let x1_new = x1_old.sub(&theta);
        let scale = theta.div(&x1_old); // fraction moved
        let moved: Vec<(usize, S)> =
            sol.y[i1].iter().map(|(gid, yv)| (*gid, yv.mul(&scale))).collect();
        for (gid, delta) in moved {
            if delta.is_zero() {
                continue;
            }
            if let Some(slot) = sol.y[i1].iter_mut().find(|(g, _)| *g == gid) {
                slot.1 = slot.1.sub(&delta);
            }
            match sol.y[i2].iter_mut().find(|(g, _)| *g == gid) {
                Some(slot) => slot.1 = slot.1.add(&delta),
                None => sol.y[i2].push((gid, delta)),
            }
        }
        sol.x[i1] = x1_new;
        sol.x[i2] = sol.x[i2].add(&theta);

        moves += 1;
        assert!(moves <= cap, "Lemma 3.1 push-down failed to converge");
    }

    // The objective is invariant (mass only moves); refresh the cached
    // field so downstream consumers see a consistent record.
    sol.objective = sol.x.iter().fold(S::zero(), |a, b| a.add(b));
    let top_positive = compute_top_positive(forest, &sol);
    Transformed { solution: sol, top_positive, moves }
}

/// The antichain `I`: nodes with `x > 0` whose strict ancestors all have
/// `x = 0`.
pub fn compute_top_positive<S: Scalar>(forest: &Forest, sol: &FractionalSolution<S>) -> Vec<usize> {
    (0..forest.num_nodes())
        .filter(|&i| {
            sol.x[i].is_positive()
                && forest.ancestors(i)[1..].iter().all(|&a| !sol.x[a].is_positive())
        })
        .collect()
}

/// Check the properties of Claim 1 on a transformed solution; returns the
/// first violation. Used as a test oracle / debug assertion.
pub fn check_claim1<S: Scalar>(
    forest: &Forest,
    sol: &FractionalSolution<S>,
    top: &[usize],
) -> Result<(), String> {
    // (1a) antichain.
    for &a in top {
        for &b in top {
            if a != b && forest.is_ancestor(a, b) {
                return Err(format!("(1a): {a} is an ancestor of {b}"));
            }
        }
    }
    // (1b) Des(I) contains all leaves — equivalently every leaf has an
    // ancestor (or itself) in I. Only required when the LP actually
    // schedules work, i.e. every leaf's subtree carries volume; in a
    // canonical forest leaves are rigid so x(leaf) = L > 0.
    for (id, n) in forest.nodes.iter().enumerate() {
        if n.is_leaf() && !n.jobs.is_empty() {
            let covered = forest.ancestors(id).iter().any(|a| top.contains(a));
            if !covered {
                return Err(format!("(1b): leaf {id} not under I"));
            }
        }
    }
    for &i in top {
        // (1c)
        if !sol.x[i].is_positive() {
            return Err(format!("(1c): x[{i}] not positive"));
        }
        // (1d) strict descendants fully open.
        for d in forest.descendants(i) {
            if d == i {
                continue;
            }
            let len = S::from_i64(forest.nodes[d].len());
            if len.sub(&sol.x[d]).is_positive() {
                return Err(format!("(1d): descendant {d} of {i} not full"));
            }
        }
        // (1e) strict ancestors zero.
        for &a in &forest.ancestors(i)[1..] {
            if sol.x[a].is_positive() {
                return Err(format!("(1e): ancestor {a} of {i} positive"));
            }
        }
    }
    Ok(())
}

/// Convenience: total `y` mass per group (conserved by the transform).
pub fn group_mass<S: Scalar>(sol: &FractionalSolution<S>, groups: &[JobGroup]) -> Vec<S> {
    let mut mass = vec![S::zero(); groups.len()];
    for per_node in &sol.y {
        for (gid, yv) in per_node {
            mass[*gid] = mass[*gid].add(yv);
        }
    }
    mass
}

/// Debug helper shared by tests: objective preserved, constraints hold,
/// Claim 1 holds.
pub fn verify_transform<S: Scalar>(
    forest: &Forest,
    inst: &Instance,
    groups: &[JobGroup],
    before: &FractionalSolution<S>,
    out: &Transformed<S>,
) -> Result<(), String> {
    let obj_before: S = before.x.iter().fold(S::zero(), |a, b| a.add(b));
    let obj_after: S = out.solution.x.iter().fold(S::zero(), |a, b| a.add(b));
    let diff = obj_before.sub(&obj_after);
    if diff.is_positive() || diff.neg().is_positive() {
        return Err(format!("objective changed: {obj_before} → {obj_after}"));
    }
    out.solution.check(forest, inst, groups)?;
    check_claim1(forest, &out.solution, &out.top_positive)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::canonical::canonicalize;
    use crate::instance::{Instance, Job};
    use crate::lp_model::{build, group_jobs};
    use crate::opt23;
    use atsched_num::Ratio;

    fn setup(
        g: i64,
        jobs: Vec<(i64, i64, i64)>,
    ) -> (Instance, Forest, Vec<JobGroup>, FractionalSolution<Ratio>) {
        let inst = Instance::new(g, jobs.into_iter().map(|(r, d, p)| Job::new(r, d, p)).collect())
            .unwrap();
        let forest = Forest::build(&inst).unwrap();
        let canon = canonicalize(&forest, &inst);
        let bounds = opt23::compute(&canon, &inst);
        let lp = build::<Ratio>(&canon, &inst, &bounds);
        let sol = lp.solve().unwrap();
        let groups = group_jobs(&canon, &inst);
        (inst, canon, groups, sol)
    }

    #[test]
    fn transform_preserves_feasibility_and_objective() {
        let (inst, canon, groups, sol) =
            setup(2, vec![(0, 10, 2), (1, 5, 2), (1, 5, 1), (6, 9, 2), (6, 9, 1)]);
        let before = sol.clone();
        let out = push_down(&canon, sol);
        verify_transform(&canon, &inst, &groups, &before, &out).unwrap();
    }

    #[test]
    fn handmade_violation_is_fixed() {
        // Construct a feasible solution that deliberately puts mass on an
        // ancestor while a descendant has slack, then push down.
        let (inst, canon, groups, _) = setup(2, vec![(0, 6, 1), (1, 3, 2)]);
        // Nodes: root [0,6) (+ rigid child [1,3) of the original child).
        // Hand solution: schedule everything as high as possible.
        let m = canon.num_nodes();
        let mut x = vec![Ratio::zero(); m];
        let mut y: Vec<Vec<(usize, Ratio)>> = vec![Vec::new(); m];
        // Open the whole tree: x = L, put each group at its own node.
        for (i, xi) in x.iter_mut().enumerate().take(m) {
            *xi = Ratio::from_i64(canon.nodes[i].len());
        }
        for (gid, grp) in groups.iter().enumerate() {
            // schedule at k(G) itself (has enough own slots here)
            let node = grp.node;
            y[node].push((gid, Ratio::from_i64(grp.count() * grp.processing)));
        }
        let sol = FractionalSolution { objective: x.iter().sum(), x, y };
        sol.check(&canon, &inst, &groups).unwrap();
        let before = sol.clone();
        let out = push_down(&canon, sol);
        verify_transform(&canon, &inst, &groups, &before, &out).unwrap();
        // Already full everywhere → no moves possible.
        assert_eq!(out.moves, 0);
    }

    #[test]
    fn mass_moves_down_from_root() {
        // Root has slack-y child; put fractional mass on root on purpose.
        let (inst, canon, groups, _) = setup(4, vec![(0, 8, 1), (2, 6, 1)]);
        let m = canon.num_nodes();
        // Find root and the real child.
        let root = canon.roots[0];
        let mut x = vec![Ratio::zero(); m];
        let mut y: Vec<Vec<(usize, Ratio)>> = vec![Vec::new(); m];
        x[root] = Ratio::from_i64(2);
        // Both groups scheduled in root's own slots (legal: both jobs'
        // windows contain... only the root job! so schedule group of the
        // child at its own node).
        for (gid, grp) in groups.iter().enumerate() {
            if grp.node == root {
                y[root].push((gid, Ratio::from_i64(grp.count() * grp.processing)));
            } else {
                x[grp.node] = x[grp.node].clone() + Ratio::one();
                y[grp.node].push((gid, Ratio::from_i64(grp.count() * grp.processing)));
            }
        }
        let sol = FractionalSolution { objective: x.iter().sum(), x, y };
        sol.check(&canon, &inst, &groups).unwrap();
        let before = sol.clone();
        let out = push_down(&canon, sol);
        verify_transform(&canon, &inst, &groups, &before, &out).unwrap();
        assert!(out.moves > 0);
        // Root mass must now be zero or every strict descendant full.
        if out.solution.x[root].is_positive() {
            for d in canon.descendants(root) {
                if d != root {
                    assert_eq!(out.solution.x[d], Ratio::from_i64(canon.nodes[d].len()));
                }
            }
        }
    }

    #[test]
    fn group_mass_conserved() {
        let (_, canon, groups, sol) =
            setup(3, vec![(0, 12, 3), (1, 6, 2), (2, 5, 1), (7, 11, 2), (7, 11, 1)]);
        let before_mass = group_mass(&sol, &groups);
        let out = push_down(&canon, sol);
        let after_mass = group_mass(&out.solution, &groups);
        assert_eq!(before_mass, after_mass);
    }
}
