//! Concrete schedules and an independent verifier.

use crate::instance::Instance;
use std::collections::HashMap;
use std::fmt;

/// A concrete schedule: which slots are open and which jobs run in each.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Schedule {
    /// Open slots, sorted and distinct.
    pub slots: Vec<i64>,
    /// Jobs running in each open slot (parallel to `slots`).
    pub assignment: Vec<Vec<usize>>,
}

/// Why a schedule failed verification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScheduleError {
    /// Slot list not sorted/distinct or lengths mismatched.
    Malformed,
    /// A slot runs more than `g` jobs.
    OverCapacity(i64),
    /// A job appears twice in one slot.
    DuplicateInSlot(usize, i64),
    /// A job is scheduled outside its window.
    OutsideWindow(usize, i64),
    /// A job received fewer or more than `p_j` slots.
    WrongVolume(usize),
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::Malformed => write!(f, "malformed schedule"),
            ScheduleError::OverCapacity(t) => write!(f, "slot {t} exceeds capacity g"),
            ScheduleError::DuplicateInSlot(j, t) => write!(f, "job {j} duplicated in slot {t}"),
            ScheduleError::OutsideWindow(j, t) => {
                write!(f, "job {j} scheduled at {t} outside window")
            }
            ScheduleError::WrongVolume(j) => write!(f, "job {j} did not receive exactly p_j slots"),
        }
    }
}

impl std::error::Error for ScheduleError {}

impl Schedule {
    /// Build from sorted slots + per-slot job lists.
    pub fn new(slots: Vec<i64>, assignment: Vec<Vec<usize>>) -> Self {
        Schedule { slots, assignment }
    }

    /// Number of *active* slots: open slots actually running a job. This
    /// is the paper's objective (an opened-but-empty slot can always be
    /// closed).
    pub fn active_time(&self) -> usize {
        self.assignment.iter().filter(|a| !a.is_empty()).count()
    }

    /// Number of open slots (≥ `active_time`).
    pub fn open_slots(&self) -> usize {
        self.slots.len()
    }

    /// Drop open-but-empty slots.
    pub fn compact(&mut self) {
        let mut slots = Vec::with_capacity(self.slots.len());
        let mut assignment = Vec::with_capacity(self.assignment.len());
        for (t, a) in self.slots.iter().zip(self.assignment.drain(..)) {
            if !a.is_empty() {
                slots.push(*t);
                assignment.push(a);
            }
        }
        self.slots = slots;
        self.assignment = assignment;
    }

    /// Full independent validation against the instance: structure,
    /// capacity `g`, windows, per-slot uniqueness, and exact volumes.
    pub fn verify(&self, inst: &Instance) -> Result<(), ScheduleError> {
        if self.slots.len() != self.assignment.len() {
            return Err(ScheduleError::Malformed);
        }
        if !self.slots.windows(2).all(|w| w[0] < w[1]) {
            return Err(ScheduleError::Malformed);
        }
        let mut volume: HashMap<usize, i64> = HashMap::new();
        for (t, jobs) in self.slots.iter().zip(&self.assignment) {
            if jobs.len() as i64 > inst.g {
                return Err(ScheduleError::OverCapacity(*t));
            }
            let mut seen = jobs.clone();
            seen.sort_unstable();
            if seen.windows(2).any(|w| w[0] == w[1]) {
                let dup = seen.windows(2).find(|w| w[0] == w[1]).unwrap()[0];
                return Err(ScheduleError::DuplicateInSlot(dup, *t));
            }
            for &j in jobs {
                if j >= inst.num_jobs() {
                    return Err(ScheduleError::Malformed);
                }
                if !inst.jobs[j].window_contains(*t) {
                    return Err(ScheduleError::OutsideWindow(j, *t));
                }
                *volume.entry(j).or_insert(0) += 1;
            }
        }
        for (j, job) in inst.jobs.iter().enumerate() {
            if volume.get(&j).copied().unwrap_or(0) != job.processing {
                return Err(ScheduleError::WrongVolume(j));
            }
        }
        Ok(())
    }

    /// ASCII timeline: one row per job, `#` where it runs, `.` inside its
    /// window, space outside. Used by the demo binaries.
    pub fn render_timeline(&self, inst: &Instance) -> String {
        let Some((lo, hi)) = inst.horizon() else {
            return String::new();
        };
        let width = (hi - lo) as usize;
        let mut out = String::new();
        let slot_col = |t: i64| (t - lo) as usize;
        // Header: active slots marked.
        let mut header = vec![' '; width];
        for (t, a) in self.slots.iter().zip(&self.assignment) {
            header[slot_col(*t)] = if a.is_empty() { 'o' } else { 'O' };
        }
        out.push_str("slots: ");
        out.extend(header);
        out.push('\n');
        for (j, job) in inst.jobs.iter().enumerate() {
            let mut row = vec![' '; width];
            for t in job.release..job.deadline {
                row[slot_col(t)] = '.';
            }
            for (t, a) in self.slots.iter().zip(&self.assignment) {
                if a.contains(&j) {
                    row[slot_col(*t)] = '#';
                }
            }
            out.push_str(&format!("j{j:<4}: "));
            out.extend(row);
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::Job;

    fn inst(g: i64, jobs: Vec<(i64, i64, i64)>) -> Instance {
        Instance::new(g, jobs.into_iter().map(|(r, d, p)| Job::new(r, d, p)).collect()).unwrap()
    }

    #[test]
    fn valid_schedule_passes() {
        let i = inst(2, vec![(0, 4, 2), (1, 3, 1)]);
        let s = Schedule::new(vec![1, 2], vec![vec![0, 1], vec![0]]);
        s.verify(&i).unwrap();
        assert_eq!(s.active_time(), 2);
    }

    #[test]
    fn over_capacity_detected() {
        let i = inst(1, vec![(0, 2, 1), (0, 2, 1)]);
        let s = Schedule::new(vec![0], vec![vec![0, 1]]);
        assert_eq!(s.verify(&i), Err(ScheduleError::OverCapacity(0)));
    }

    #[test]
    fn duplicate_in_slot_detected() {
        let i = inst(3, vec![(0, 3, 2)]);
        let s = Schedule::new(vec![0], vec![vec![0, 0]]);
        assert_eq!(s.verify(&i), Err(ScheduleError::DuplicateInSlot(0, 0)));
    }

    #[test]
    fn outside_window_detected() {
        let i = inst(1, vec![(2, 4, 1)]);
        let s = Schedule::new(vec![1], vec![vec![0]]);
        assert_eq!(s.verify(&i), Err(ScheduleError::OutsideWindow(0, 1)));
    }

    #[test]
    fn wrong_volume_detected() {
        let i = inst(1, vec![(0, 4, 2)]);
        let s = Schedule::new(vec![0], vec![vec![0]]);
        assert_eq!(s.verify(&i), Err(ScheduleError::WrongVolume(0)));
        let s2 = Schedule::new(vec![0, 1, 2], vec![vec![0], vec![0], vec![0]]);
        assert_eq!(s2.verify(&i), Err(ScheduleError::WrongVolume(0)));
    }

    #[test]
    fn malformed_detected() {
        let i = inst(1, vec![(0, 2, 1)]);
        assert_eq!(
            Schedule::new(vec![1, 0], vec![vec![0], vec![]]).verify(&i),
            Err(ScheduleError::Malformed)
        );
        assert_eq!(Schedule::new(vec![0], vec![]).verify(&i), Err(ScheduleError::Malformed));
    }

    #[test]
    fn compact_drops_empty_slots() {
        let i = inst(1, vec![(0, 3, 1)]);
        let mut s = Schedule::new(vec![0, 1, 2], vec![vec![], vec![0], vec![]]);
        s.verify(&i).unwrap();
        assert_eq!(s.open_slots(), 3);
        assert_eq!(s.active_time(), 1);
        s.compact();
        assert_eq!(s.open_slots(), 1);
        assert_eq!(s.slots, vec![1]);
        s.verify(&i).unwrap();
    }

    #[test]
    fn timeline_renders() {
        let i = inst(2, vec![(0, 4, 2), (1, 3, 1)]);
        let s = Schedule::new(vec![1, 2], vec![vec![0, 1], vec![0]]);
        let tl = s.render_timeline(&i);
        assert!(tl.contains('#'));
        assert!(tl.lines().count() == 3);
    }
}
