//! Root decomposition of a laminar instance (the shard layer's core).
//!
//! Disjoint root windows of the laminar forest are fully independent
//! subproblems: no job window spans two trees, the strengthened LP is
//! block-diagonal across trees, the Lemma 3.1 push-down and Algorithm 1
//! rounding act tree-locally, and max-flow extraction never routes a job
//! into another tree's slots. So an instance can be split at the forest
//! roots, each piece solved on its own, and the results reassembled —
//! opening exactly the slots the monolithic solve would.
//!
//! Two pieces of bookkeeping make the split exact and cache-friendly:
//!
//! * **Offset normalization** — each shard instance is shifted so its
//!   root window starts at 0. Identical subtree shapes occurring at
//!   different absolute times therefore produce *identical* shard
//!   instances, which is what lets the engine's content-keyed solve
//!   cache hit across shards. The shift is undone on merge.
//! * **Order preservation** — shard jobs keep their original relative
//!   order, so per-shard results translate back by a simple index map
//!   and the merged schedule is deterministic.
//!
//! The one configuration that does *not* decompose is
//! `RoundingChoice::Shuffled`: its tie-break RNG advances globally
//! across the whole forest, so per-tree solves would consume different
//! random streams than the monolith. Drivers decline sharding for it.

use crate::instance::{Instance, InstanceError};
use crate::schedule::Schedule;
use crate::solver::{SolveResult, SolveStats, StageTimings};
use crate::tree::{Forest, TreeNode};
use atsched_num::Ratio;

/// One independent sub-instance rooted at a single tree of the forest.
#[derive(Debug, Clone)]
pub struct Shard {
    /// The sub-instance, shifted so its root window starts at slot 0.
    pub instance: Instance,
    /// Amount the shard was shifted down by (the root window's start);
    /// added back to every slot on merge.
    pub offset: i64,
    /// Original job ids, indexed by shard-local job id. Preserves the
    /// original relative order.
    pub jobs: Vec<usize>,
}

/// An instance split at its forest roots.
#[derive(Debug, Clone)]
pub struct Decomposition {
    /// One shard per root, ordered by root window start.
    pub shards: Vec<Shard>,
}

impl Decomposition {
    /// Number of shards (= number of forest roots).
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// True when the instance had no jobs.
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }
}

/// Split `inst` at the roots of its laminar forest.
///
/// Returns one [`Shard`] per root window, ordered by window start; an
/// empty instance yields an empty decomposition. Fails with
/// [`InstanceError::NotLaminar`] when windows cross.
pub fn decompose(inst: &Instance) -> Result<Decomposition, InstanceError> {
    inst.check_laminar()?;

    // Sweep jobs outer-first (r asc, d desc): a job starts a new root
    // group exactly when its release is past the current root's end —
    // within a group laminarity keeps every window inside the first.
    let mut order: Vec<usize> = (0..inst.jobs.len()).collect();
    order.sort_by_key(|&j| (inst.jobs[j].release, -inst.jobs[j].deadline));

    let mut groups: Vec<(i64, Vec<usize>)> = Vec::new(); // (root lo, members)
    let mut cur_hi = i64::MIN;
    for &j in &order {
        let job = &inst.jobs[j];
        if job.release >= cur_hi {
            groups.push((job.release, Vec::new()));
            cur_hi = job.deadline;
        }
        groups.last_mut().expect("group opened above").1.push(j);
    }

    let mut shards = Vec::with_capacity(groups.len());
    for (lo, mut members) in groups {
        // Original relative order, so shard-local ids map back trivially.
        members.sort_unstable();
        let jobs = members.iter().map(|&j| inst.jobs[j]).collect();
        let sub = Instance::new(inst.g, jobs)?.shifted(-lo);
        shards.push(Shard { instance: sub, offset: lo, jobs: members });
    }
    Ok(Decomposition { shards })
}

/// Reassemble per-shard solve results into one [`SolveResult`] for the
/// original instance.
///
/// Slots are shifted back by each shard's offset (root windows are
/// disjoint and shards are ordered, so concatenation stays sorted),
/// shard-local job ids are mapped through [`Shard::jobs`], the canonical
/// forests are reindexed side by side, and stats/certificate vectors are
/// summed. The exact LP objective is re-summed over big rationals, so
/// the merged value matches the monolithic solve's rendering. Stage
/// timings are summed across shards — they measure work done, not wall
/// clock, when shards ran concurrently.
///
/// `parts` must be positionally parallel to `dec.shards`. The merged
/// schedule is re-verified against `inst`; a failure here is a bug in
/// the decomposition, not in the input.
pub fn merge(inst: &Instance, dec: &Decomposition, parts: &[SolveResult]) -> SolveResult {
    assert_eq!(parts.len(), dec.shards.len(), "one result per shard");

    let mut slots: Vec<i64> = Vec::new();
    let mut assignment: Vec<Vec<usize>> = Vec::new();
    let mut z: Vec<i64> = Vec::new();
    let mut nodes: Vec<TreeNode> = Vec::new();
    let mut roots: Vec<usize> = Vec::new();
    let mut job_node = vec![usize::MAX; inst.num_jobs()];

    let mut stats = SolveStats {
        nodes_original: 0,
        nodes_canonical: 0,
        lp_objective: 0.0,
        lp_objective_exact: None,
        transform_moves: 0,
        rounded_up: 0,
        opened_slots: 0,
        active_slots: 0,
        repair_opened: 0,
        polish_closed: 0,
        opened_over_lp: 1.0,
        timings: StageTimings::default(),
    };
    let mut exact_sum: Option<Ratio> = Some(Ratio::zero());

    for (shard, part) in dec.shards.iter().zip(parts) {
        let off = shard.offset;
        slots.extend(part.schedule.slots.iter().map(|&t| t + off));
        assignment.extend(
            part.schedule
                .assignment
                .iter()
                .map(|jobs| jobs.iter().map(|&k| shard.jobs[k]).collect::<Vec<usize>>()),
        );
        z.extend(part.z.iter().copied());

        // Reindex the shard's canonical forest next to the ones already
        // merged: node ids get a base offset, intervals and own slots
        // shift back to absolute time, job lists map to original ids.
        let base = nodes.len();
        for node in &part.forest.nodes {
            nodes.push(TreeNode {
                interval: (node.interval.0 + off, node.interval.1 + off),
                parent: node.parent.map(|p| p + base),
                children: node.children.iter().map(|&c| c + base).collect(),
                jobs: node.jobs.iter().map(|&k| shard.jobs[k]).collect(),
                own_slots: node.own_slots.iter().map(|&t| t + off).collect(),
                is_virtual: node.is_virtual,
                depth: node.depth,
            });
        }
        roots.extend(part.forest.roots.iter().map(|&r| r + base));
        for (k, &orig) in shard.jobs.iter().enumerate() {
            job_node[orig] = part.forest.job_node[k] + base;
        }

        let s = &part.stats;
        stats.nodes_original += s.nodes_original;
        stats.nodes_canonical += s.nodes_canonical;
        stats.lp_objective += s.lp_objective;
        stats.transform_moves += s.transform_moves;
        stats.rounded_up += s.rounded_up;
        stats.opened_slots += s.opened_slots;
        stats.active_slots += s.active_slots;
        stats.repair_opened += s.repair_opened;
        stats.polish_closed += s.polish_closed;
        stats.timings.canonicalize += s.timings.canonicalize;
        stats.timings.lp += s.timings.lp;
        stats.timings.transform += s.timings.transform;
        stats.timings.round += s.timings.round;
        stats.timings.extract += s.timings.extract;
        stats.timings.verify += s.timings.verify;
        exact_sum = match (exact_sum, &s.lp_objective_exact) {
            (Some(mut acc), Some(txt)) => txt.parse::<Ratio>().ok().map(|r| {
                acc += &r;
                acc
            }),
            _ => None,
        };
    }

    stats.lp_objective_exact = exact_sum.map(|r| r.to_string());
    stats.opened_over_lp =
        if stats.lp_objective > 0.0 { stats.opened_slots as f64 / stats.lp_objective } else { 1.0 };

    let schedule = Schedule::new(slots, assignment);
    schedule.verify(inst).expect("merged shard schedule must verify; this is a bug");
    let forest = Forest { nodes, roots, job_node };
    // The solver's forest is the *canonical* one, whose invariant is
    // deliberately looser than `Forest::validate` (a virtual hull may
    // contain parent-owned slots) — so check the canonical contract.
    debug_assert!(
        crate::canonical::validate_canonical(&forest, inst).is_ok(),
        "merged forest not canonical: {:?}",
        crate::canonical::validate_canonical(&forest, inst)
    );
    SolveResult { schedule, stats, z, forest }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::Job;
    use crate::solver::{solve_nested, SolverOptions};

    fn inst(g: i64, jobs: Vec<(i64, i64, i64)>) -> Instance {
        Instance::new(g, jobs.into_iter().map(|(r, d, p)| Job::new(r, d, p)).collect()).unwrap()
    }

    #[test]
    fn empty_instance_decomposes_to_nothing() {
        let dec = decompose(&inst(2, vec![])).unwrap();
        assert!(dec.is_empty());
    }

    #[test]
    fn single_root_is_one_shard() {
        let i = inst(2, vec![(3, 11, 2), (4, 7, 1)]);
        let dec = decompose(&i).unwrap();
        assert_eq!(dec.len(), 1);
        let shard = &dec.shards[0];
        // Normalized to start at 0.
        assert_eq!(shard.offset, 3);
        assert_eq!(shard.instance.horizon(), Some((0, 8)));
        assert_eq!(shard.jobs, vec![0, 1]);
    }

    #[test]
    fn roots_split_and_keep_original_job_order() {
        // Jobs deliberately interleave the two roots.
        let i = inst(2, vec![(10, 14, 2), (0, 5, 1), (11, 13, 1), (1, 4, 1)]);
        let dec = decompose(&i).unwrap();
        assert_eq!(dec.len(), 2);
        assert_eq!(dec.shards[0].offset, 0);
        assert_eq!(dec.shards[0].jobs, vec![1, 3]);
        assert_eq!(dec.shards[1].offset, 10);
        assert_eq!(dec.shards[1].jobs, vec![0, 2]);
        // Second shard normalized: windows (0,4) and (1,3).
        assert_eq!(dec.shards[1].instance.jobs[0], Job::new(0, 4, 2));
        assert_eq!(dec.shards[1].instance.jobs[1], Job::new(1, 3, 1));
    }

    #[test]
    fn identical_subtrees_normalize_to_identical_shards() {
        let i = inst(2, vec![(0, 4, 2), (1, 3, 1), (20, 24, 2), (21, 23, 1)]);
        let dec = decompose(&i).unwrap();
        assert_eq!(dec.len(), 2);
        assert_eq!(dec.shards[0].instance, dec.shards[1].instance);
    }

    #[test]
    fn touching_windows_are_separate_roots() {
        // [0,4) and [4,8) share an endpoint but are disjoint.
        let i = inst(1, vec![(0, 4, 1), (4, 8, 1)]);
        let dec = decompose(&i).unwrap();
        assert_eq!(dec.len(), 2);
    }

    #[test]
    fn non_laminar_is_rejected() {
        let i = inst(1, vec![(0, 5, 1), (3, 8, 1)]);
        assert!(matches!(decompose(&i), Err(InstanceError::NotLaminar(_, _))));
    }

    #[test]
    fn merge_reassembles_the_monolithic_result() {
        let cases = vec![
            inst(2, vec![(0, 3, 2), (5, 9, 1), (5, 9, 1), (12, 14, 2)]),
            inst(2, vec![(10, 14, 2), (0, 5, 1), (11, 13, 1), (1, 4, 1)]),
            inst(3, vec![(0, 2, 1), (0, 2, 1), (4, 6, 1), (8, 12, 3), (9, 11, 1)]),
        ];
        let opts = SolverOptions::exact();
        for i in cases {
            let whole = solve_nested(&i, &opts).unwrap();
            let dec = decompose(&i).unwrap();
            assert!(dec.len() >= 2, "case must be multi-root");
            let parts: Vec<SolveResult> =
                dec.shards.iter().map(|s| solve_nested(&s.instance, &opts).unwrap()).collect();
            let merged = merge(&i, &dec, &parts);

            merged.schedule.verify(&i).unwrap();
            assert_eq!(merged.stats.opened_slots, whole.stats.opened_slots);
            assert_eq!(merged.stats.active_slots, whole.stats.active_slots);
            assert_eq!(merged.z.iter().sum::<i64>(), whole.z.iter().sum::<i64>());
            assert_eq!(merged.stats.lp_objective_exact, whole.stats.lp_objective_exact);
            assert!((merged.stats.lp_objective - whole.stats.lp_objective).abs() < 1e-9);
            crate::canonical::validate_canonical(&merged.forest, &i).unwrap();
        }
    }

    #[test]
    fn merge_preserves_certificate_consistency() {
        // The merged (z, forest) pair must satisfy the Lemma 4.1
        // characterization exactly as the per-shard pairs did.
        let i = inst(2, vec![(0, 4, 2), (1, 3, 1), (8, 12, 2), (9, 11, 1)]);
        let opts = SolverOptions::exact();
        let dec = decompose(&i).unwrap();
        let parts: Vec<SolveResult> =
            dec.shards.iter().map(|s| solve_nested(&s.instance, &opts).unwrap()).collect();
        let merged = merge(&i, &dec, &parts);
        crate::certify::check_lemma_4_1(&merged.forest, &i, &merged.z, 16).unwrap();
    }

    #[test]
    fn infeasible_shard_surfaces_on_its_own() {
        // Root [0,2) is infeasible for g=1 with 3 unit jobs; root [5,9)
        // is fine. Decomposition isolates the infeasibility.
        let i = inst(1, vec![(0, 2, 1), (0, 2, 1), (0, 2, 1), (5, 9, 2)]);
        let dec = decompose(&i).unwrap();
        assert_eq!(dec.len(), 2);
        let first = solve_nested(&dec.shards[0].instance, &SolverOptions::exact());
        assert!(matches!(first, Err(crate::solver::SolveError::Infeasible)));
        let second = solve_nested(&dec.shards[1].instance, &SolverOptions::exact());
        assert!(second.is_ok());
    }
}
