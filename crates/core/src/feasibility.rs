//! Max-flow feasibility tests and schedule extraction (paper §1 and the
//! network of Lemma 4.1).
//!
//! Two equivalent views are provided:
//!
//! * **Concrete slots** — `source → job (cap p_j) → slot (cap 1) → sink
//!   (cap g)`, one node per open slot. Used for final schedules and for
//!   the baselines, which manipulate explicit slot sets.
//! * **Per-node counts** — `source → job (cap p_j) → tree node (cap z_i)
//!   → sink (cap g·z_i)`, the aggregated network from the paper's proof of
//!   Lemma 4.1. Own slots of a node are interchangeable, so `z_i` open
//!   slots in node `i` behave exactly like any concrete choice of `z_i`
//!   own slots. Used by the rounding pipeline and the exact solver, where
//!   it keeps networks small.

use crate::instance::Instance;
use crate::tree::Forest;
use atsched_flow::FlowNetwork;

/// Maximum total job volume schedulable when exactly the given slots are
/// open. Slots must be sorted and distinct.
pub fn max_schedulable_volume(inst: &Instance, slots: &[i64]) -> i64 {
    debug_assert!(slots.windows(2).all(|w| w[0] < w[1]), "slots must be sorted+distinct");
    let n = inst.num_jobs();
    let s = 0usize;
    let t = 1usize;
    let job_base = 2usize;
    let slot_base = 2 + n;
    let mut net = FlowNetwork::new(2 + n + slots.len());
    for (j, job) in inst.jobs.iter().enumerate() {
        net.add_edge(s, job_base + j, job.processing);
        // Window slots: binary-search the open-slot range.
        let lo = slots.partition_point(|&x| x < job.release);
        let hi = slots.partition_point(|&x| x < job.deadline);
        for k in lo..hi {
            net.add_edge(job_base + j, slot_base + k, 1);
        }
    }
    for k in 0..slots.len() {
        net.add_edge(slot_base + k, t, inst.g);
    }
    net.max_flow(s, t)
}

/// Can all jobs be fully scheduled with exactly the given open slots?
pub fn slots_feasible(inst: &Instance, slots: &[i64]) -> bool {
    max_schedulable_volume(inst, slots) == inst.total_volume()
}

/// Extract a concrete assignment (job ids per open slot) when feasible.
///
/// Returns `None` when the slot set cannot schedule all jobs.
pub fn extract_assignment(inst: &Instance, slots: &[i64]) -> Option<Vec<Vec<usize>>> {
    debug_assert!(slots.windows(2).all(|w| w[0] < w[1]));
    let n = inst.num_jobs();
    let s = 0usize;
    let t = 1usize;
    let job_base = 2usize;
    let slot_base = 2 + n;
    let mut net = FlowNetwork::new(2 + n + slots.len());
    let mut job_slot_edges: Vec<(usize, usize, atsched_flow::EdgeRef)> = Vec::new();
    for (j, job) in inst.jobs.iter().enumerate() {
        net.add_edge(s, job_base + j, job.processing);
        let lo = slots.partition_point(|&x| x < job.release);
        let hi = slots.partition_point(|&x| x < job.deadline);
        for k in lo..hi {
            let e = net.add_edge(job_base + j, slot_base + k, 1);
            job_slot_edges.push((j, k, e));
        }
    }
    for k in 0..slots.len() {
        net.add_edge(slot_base + k, t, inst.g);
    }
    if net.max_flow(s, t) != inst.total_volume() {
        return None;
    }
    let mut assignment = vec![Vec::new(); slots.len()];
    for (j, k, e) in job_slot_edges {
        if net.flow_on(e) > 0 {
            assignment[k].push(j);
        }
    }
    Some(assignment)
}

/// Like [`extract_assignment`], but *load-balanced*: among assignments on
/// the given open slots, minimize the maximum per-slot load (binary
/// search on a uniform cap, one flow check per step). Returns the
/// assignment and the optimal peak load.
///
/// Motivation: the active-time objective only counts on-slots, but a
/// datacenter operator also cares about the peak draw within an on-slot;
/// this picks the flattest schedule among the optimal ones.
pub fn extract_assignment_balanced(
    inst: &Instance,
    slots: &[i64],
) -> Option<(Vec<Vec<usize>>, i64)> {
    if !slots_feasible(inst, slots) {
        return None;
    }
    if slots.is_empty() {
        return Some((Vec::new(), 0));
    }
    let volume = inst.total_volume();
    let mut lo = (volume + slots.len() as i64 - 1) / slots.len() as i64; // ⌈V/S⌉
    let mut hi = inst.g;
    lo = lo.clamp(0, hi);
    let feasible_with_cap = |cap: i64| -> Option<Vec<Vec<usize>>> {
        let capped = Instance::new(cap.max(1), inst.jobs.clone()).ok()?;
        extract_assignment(&capped, slots)
    };
    // Invariant: hi is feasible (checked above with cap = g).
    let mut best = None;
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        match feasible_with_cap(mid) {
            Some(a) => {
                best = Some((a, mid));
                hi = mid;
            }
            None => lo = mid + 1,
        }
    }
    match best {
        Some((a, peak)) if peak == lo => Some((a, peak)),
        _ => feasible_with_cap(lo).map(|a| (a, lo)),
    }
}

/// Feasibility of per-node open counts `z` (one entry per forest node)
/// via the aggregated network of Lemma 4.1.
///
/// # Panics
/// Panics if `z` has the wrong length or an entry exceeds `L(i)`.
pub fn counts_feasible(forest: &Forest, inst: &Instance, z: &[i64]) -> bool {
    assert_eq!(z.len(), forest.num_nodes());
    for (i, n) in forest.nodes.iter().enumerate() {
        assert!(0 <= z[i] && z[i] <= n.len(), "z[{i}] = {} outside [0, L = {}]", z[i], n.len());
    }
    let n = inst.num_jobs();
    let s = 0usize;
    let t = 1usize;
    let job_base = 2usize;
    let node_base = 2 + n;
    let mut net = FlowNetwork::new(2 + n + forest.num_nodes());
    for (j, job) in inst.jobs.iter().enumerate() {
        net.add_edge(s, job_base + j, job.processing);
        for i in forest.descendants(forest.job_node[j]) {
            if z[i] > 0 {
                net.add_edge(job_base + j, node_base + i, z[i]);
            }
        }
    }
    for (i, &zi) in z.iter().enumerate().take(forest.num_nodes()) {
        if zi > 0 {
            net.add_edge(node_base + i, t, inst.g * zi);
        }
    }
    net.max_flow(s, t) == inst.total_volume()
}

/// Materialize per-node counts into concrete slots (the leftmost `z_i`
/// own slots of each node), sorted.
pub fn counts_to_slots(forest: &Forest, z: &[i64]) -> Vec<i64> {
    assert_eq!(z.len(), forest.num_nodes());
    let mut slots = Vec::new();
    for (i, n) in forest.nodes.iter().enumerate() {
        slots.extend_from_slice(&n.own_slots[..z[i] as usize]);
    }
    slots.sort_unstable();
    slots
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::Job;

    fn inst(g: i64, jobs: Vec<(i64, i64, i64)>) -> Instance {
        Instance::new(g, jobs.into_iter().map(|(r, d, p)| Job::new(r, d, p)).collect()).unwrap()
    }

    #[test]
    fn trivial_feasible() {
        let i = inst(2, vec![(0, 2, 1), (0, 2, 1)]);
        assert!(slots_feasible(&i, &[0]));
        assert!(slots_feasible(&i, &[1]));
        assert!(slots_feasible(&i, &[0, 1]));
    }

    #[test]
    fn capacity_binds() {
        let i = inst(2, vec![(0, 2, 1), (0, 2, 1), (0, 2, 1)]);
        assert!(!slots_feasible(&i, &[0])); // 3 units > g = 2
        assert!(slots_feasible(&i, &[0, 1]));
    }

    #[test]
    fn window_binds() {
        let i = inst(5, vec![(0, 2, 1), (4, 6, 1)]);
        assert!(!slots_feasible(&i, &[0])); // second job's window missed
        assert!(slots_feasible(&i, &[1, 4]));
        assert!(!slots_feasible(&i, &[2, 3])); // both outside windows
    }

    #[test]
    fn preemption_not_duplication() {
        // p = 2 needs two *distinct* slots even with huge g.
        let i = inst(10, vec![(0, 3, 2)]);
        assert!(!slots_feasible(&i, &[1]));
        assert!(slots_feasible(&i, &[0, 2]));
    }

    #[test]
    fn volume_reports_partial() {
        let i = inst(1, vec![(0, 4, 2), (0, 4, 2)]);
        assert_eq!(max_schedulable_volume(&i, &[0, 1]), 2);
        assert_eq!(max_schedulable_volume(&i, &[0, 1, 2, 3]), 4);
    }

    #[test]
    fn extraction_matches_feasibility() {
        let i = inst(2, vec![(0, 4, 2), (1, 3, 1), (1, 3, 1)]);
        let a = extract_assignment(&i, &[1, 2]).unwrap();
        // Validate by hand: every slot ≤ g jobs, no dup within a slot.
        let mut per_job = vec![0i64; 3];
        for (k, lst) in a.iter().enumerate() {
            assert!(lst.len() as i64 <= 2);
            let mut uniq = lst.clone();
            uniq.dedup();
            assert_eq!(uniq.len(), lst.len());
            for &j in lst {
                per_job[j] += 1;
                let _ = k;
            }
        }
        assert_eq!(per_job, vec![2, 1, 1]);
        assert!(extract_assignment(&i, &[1]).is_none());
    }

    #[test]
    fn balanced_extraction_minimizes_peak() {
        // 4 unit jobs, 2 slots, g = 4: plain extraction may pile 4 into
        // one slot; balanced must split 2/2.
        let i = inst(4, vec![(0, 2, 1); 4]);
        let (a, peak) = extract_assignment_balanced(&i, &[0, 1]).unwrap();
        assert_eq!(peak, 2);
        assert!(a.iter().all(|slot| slot.len() <= 2));
        // Validity.
        let s = crate::schedule::Schedule::new(vec![0, 1], a);
        s.verify(&i).unwrap();
    }

    #[test]
    fn balanced_extraction_peak_lower_bounded_by_volume() {
        // 5 units over 2 slots: peak ≥ ⌈5/2⌉ = 3.
        let i = inst(5, vec![(0, 2, 1); 5]);
        let (_, peak) = extract_assignment_balanced(&i, &[0, 1]).unwrap();
        assert_eq!(peak, 3);
    }

    #[test]
    fn balanced_extraction_respects_windows() {
        // One slot serves a tight window alone: peak can't flatten below
        // the forced co-location.
        let i = inst(3, vec![(0, 1, 1), (0, 1, 1), (0, 4, 1), (0, 4, 1)]);
        let (a, peak) = extract_assignment_balanced(&i, &[0, 2]).unwrap();
        assert_eq!(peak, 2);
        let s = crate::schedule::Schedule::new(vec![0, 2], a);
        s.verify(&i).unwrap();
    }

    #[test]
    fn balanced_extraction_infeasible_none() {
        let i = inst(1, vec![(0, 2, 1); 3]);
        assert!(extract_assignment_balanced(&i, &[0, 1]).is_none());
        let empty = inst(1, vec![]);
        assert_eq!(extract_assignment_balanced(&empty, &[]), Some((Vec::new(), 0)));
    }

    #[test]
    fn counts_view_matches_slots_view() {
        let i = inst(2, vec![(0, 6, 2), (1, 4, 2), (1, 4, 1)]);
        let f = Forest::build(&i).unwrap();
        // Nodes: [0,6) root and [1,4) child.
        let root = f.roots[0];
        let child = f.nodes[root].children[0];
        let mut z = vec![0i64; f.num_nodes()];
        z[child] = 2;
        // Two slots inside [1,4): can fit (2+2+1=5 > 2*2=4)? No.
        assert!(!counts_feasible(&f, &i, &z));
        z[root] = 1;
        assert!(counts_feasible(&f, &i, &z));
        let slots = counts_to_slots(&f, &z);
        assert_eq!(slots.len(), 3);
        assert!(slots_feasible(&i, &slots));
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn counts_bounds_checked() {
        let i = inst(1, vec![(0, 2, 1)]);
        let f = Forest::build(&i).unwrap();
        let _ = counts_feasible(&f, &i, &[3]);
    }
}
