//! # atsched-core
//!
//! The primary contribution of *"Brief Announcement: Nested Active-Time
//! Scheduling"* (Cao, Fineman, Li, Mestre, Russell, Umboh — SPAA 2022):
//! a **9/5-approximation** for active-time scheduling when job windows are
//! laminar (nested), together with every substrate the algorithm needs.
//!
//! ## Problem
//!
//! `n` preemptible jobs; job `j` has processing time `p_j`, release `r_j`
//! and deadline `d_j`. A machine runs up to `g` jobs per integer time
//! slot; preemption only at slot boundaries. Minimize the number of
//! *active* slots (slots with at least one job) subject to every job being
//! fully scheduled inside its window `[r_j, d_j)`.
//!
//! ## Pipeline (paper §§2–4)
//!
//! 1. [`tree`] — build the laminar tree of distinct job windows.
//! 2. [`canonical`] — make the tree *canonical* (binary, rigid leaves;
//!    Definition 2.1).
//! 3. [`lp_model`] — the strengthened LP of Figure 1(a), including the
//!    `OPT_i ≥ 2 / ≥ 3` constraints computed by [`opt23`].
//! 4. [`transform`] — the Lemma 3.1 push-down transformation, after which
//!    the positive nodes form the antichain `I`.
//! 5. [`rounding`] — Algorithm 1: floor on `I`, then bottom-up round-ups
//!    within the `(9/5)·x(Des(i))` budget.
//! 6. [`feasibility`] / [`schedule`] — max-flow based schedule extraction
//!    and an independent verifier.
//! 7. [`certify`] — an executable version of the paper's *analysis*
//!    (node types B/C₁/C₂, the triples of Algorithm 2, Lemmas 4.7–4.13),
//!    used as a test oracle.
//!
//! The one-call entry point is [`solver::solve_nested`].
//!
//! ## Example
//!
//! ```
//! use atsched_core::instance::{Instance, Job};
//! use atsched_core::solver::{solve_nested, SolverOptions};
//!
//! // Two nested windows: a long job over [0,4) and two unit jobs in [1,3).
//! let inst = Instance::new(2, vec![
//!     Job::new(0, 4, 2),
//!     Job::new(1, 3, 1),
//!     Job::new(1, 3, 1),
//! ]).unwrap();
//! let result = solve_nested(&inst, &SolverOptions::exact()).unwrap();
//! assert!(result.schedule.verify(&inst).is_ok());
//! assert!(result.stats.opened_slots <= 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod canonical;
pub mod certify;
pub mod decompose;
pub mod delta;
pub mod energy;
pub mod feasibility;
pub mod instance;
pub mod lp_model;
pub mod opt23;
pub mod render;
pub mod rounding;
pub mod schedule;
pub mod solver;
pub mod transform;
pub mod tree;
pub mod treelp;

pub use delta::{DeltaError, DeltaOp, JobDelta};
pub use instance::{Instance, InstanceError, Job};
pub use schedule::Schedule;
pub use solver::{
    solve_nested, solve_nested_seeded, LpBackend, LpPath, PrecisionMode, SeededSolve, ShardMode,
    SolveError, SolveResult, SolveStats, SolverOptions, StageTimings, WarmSeed,
};
pub use treelp::TreeDecline;
