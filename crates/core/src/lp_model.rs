//! The strengthened linear program of Figure 1(a) (paper §3.1).
//!
//! Variables: `x(i)` = fractional number of open slots in node `i`;
//! `y(i,j)` = amount of job `j` scheduled in node `i`'s own slots.
//! Constraints (numbers as in the paper):
//!
//! * (2) `Σ_{i ∈ Des(k(j))} y(i,j) ≥ p_j` — jobs fully scheduled;
//! * (3) `Σ_{j ∈ J(Anc(i))} y(i,j) ≤ g·x(i)` — slot capacity;
//! * (4) `x(i) ≤ L(i)` — a node cannot open more than its own slots;
//! * (5) `y(i,j) ≤ x(i)` — one unit of a job per slot;
//! * (6) `y(i,j) = 0` elsewhere — encoded by not creating the variable;
//! * (7)/(8) `Σ_{i' ∈ Des(i)} x(i') ≥ 2 (resp. 3)` whenever the
//!   [`opt23`](crate::opt23) oracle proves `OPT_i ≥ 2 (resp. 3)` —
//!   the *ceiling constraints* that push the integrality gap below 2 on
//!   nested instances.
//!
//! ### Job grouping
//!
//! Jobs sharing the same node and processing time are interchangeable, so
//! they are aggregated into *groups*: a group of `q` identical jobs gets
//! one `y(i,G)` variable with `(2) Σ y(i,G) ≥ q·p` and `(5) y(i,G) ≤
//! q·x(i)`. Splitting a group solution evenly recovers a per-job solution
//! and vice versa, so the projection onto `x` — all the rounding pipeline
//! consumes — is exactly preserved while the LP shrinks dramatically on
//! the adversarial families (e.g. the Lemma 5.1 instance has `g` groups
//! of `g` identical unit jobs).

use crate::instance::Instance;
use crate::opt23::OptBounds;
use crate::tree::Forest;
use atsched_lp::{Cmp, HybridOutcome, LpStatus, Model, Scalar, VarId};
use atsched_num::Ratio;

/// A maximal set of interchangeable jobs: same node, same processing time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobGroup {
    /// The node the group belongs to (`k(G)`).
    pub node: usize,
    /// Common processing time.
    pub processing: i64,
    /// Member job ids.
    pub jobs: Vec<usize>,
}

impl JobGroup {
    /// Number of jobs in the group.
    pub fn count(&self) -> i64 {
        self.jobs.len() as i64
    }
}

/// Group the instance's jobs by `(k(j), p_j)`.
pub fn group_jobs(forest: &Forest, inst: &Instance) -> Vec<JobGroup> {
    let mut groups: Vec<JobGroup> = Vec::new();
    for (j, job) in inst.jobs.iter().enumerate() {
        let node = forest.job_node[j];
        match groups.iter_mut().find(|g| g.node == node && g.processing == job.processing) {
            Some(g) => g.jobs.push(j),
            None => groups.push(JobGroup { node, processing: job.processing, jobs: vec![j] }),
        }
    }
    groups
}

/// The assembled LP plus the variable layout needed to read solutions
/// back.
#[derive(Debug, Clone)]
pub struct NestedLp<S> {
    /// The underlying model (minimize `Σ x(i)`).
    pub model: Model<S>,
    /// `x(i)` variable per node.
    pub x_vars: Vec<VarId>,
    /// `y(i, G)` variables: per node, the `(group id, var)` pairs.
    pub y_vars: Vec<Vec<(usize, VarId)>>,
    /// The job groups.
    pub groups: Vec<JobGroup>,
}

/// A fractional solution in node space, as consumed by the
/// [`transform`](crate::transform) and [`rounding`](crate::rounding)
/// stages.
#[derive(Debug, Clone)]
pub struct FractionalSolution<S> {
    /// `x(i)` per node.
    pub x: Vec<S>,
    /// Per node: `(group id, y mass)` pairs.
    pub y: Vec<Vec<(usize, S)>>,
    /// `Σ x(i)`.
    pub objective: S,
}

/// Errors from building/solving the nested LP.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NestedLpError {
    /// The LP is infeasible — equivalently, the instance itself is
    /// infeasible (the flow polytope underlying (2)/(3)/(5) is integral).
    Infeasible,
    /// The simplex solver gave up (only possible on the `f64` path).
    Solver(atsched_lp::LpError),
}

impl std::fmt::Display for NestedLpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NestedLpError::Infeasible => write!(f, "instance (and hence LP) is infeasible"),
            NestedLpError::Solver(e) => write!(f, "LP solver failure: {e}"),
        }
    }
}

impl std::error::Error for NestedLpError {}

/// Build the strengthened LP for a (canonical) forest (ceiling
/// constraints included — the paper's Figure 1(a)).
pub fn build<S: Scalar>(forest: &Forest, inst: &Instance, bounds: &OptBounds) -> NestedLp<S> {
    build_opts(forest, inst, bounds, true)
}

/// Build the LP with or without the ceiling constraints (7)/(8).
///
/// Disabling them yields the *natural* tree LP, whose integrality gap is
/// 2 on nested instances — used by the ablation experiment (E10) to show
/// the constraints are what makes 9/5 possible.
pub fn build_opts<S: Scalar>(
    forest: &Forest,
    inst: &Instance,
    bounds: &OptBounds,
    use_ceiling: bool,
) -> NestedLp<S> {
    let m = forest.num_nodes();
    let groups = group_jobs(forest, inst);
    let mut model: Model<S> = Model::new();

    let x_vars: Vec<VarId> = (0..m).map(|i| model.add_var(format!("x{i}"), S::one())).collect();

    // y variables only where the node can actually hold work: L(i) > 0.
    let mut y_vars: Vec<Vec<(usize, VarId)>> = vec![Vec::new(); m];
    for (gid, grp) in groups.iter().enumerate() {
        for i in forest.descendants(grp.node) {
            if !forest.nodes[i].is_empty() {
                let v = model.add_var(format!("y{i}g{gid}"), S::zero());
                y_vars[i].push((gid, v));
            }
        }
    }

    // (2) every group fully scheduled: Σ_i y(i,G) ≥ q·p.
    for (gid, grp) in groups.iter().enumerate() {
        let mut terms = Vec::new();
        for i in forest.descendants(grp.node) {
            if let Some((_, v)) = y_vars[i].iter().find(|(g, _)| *g == gid) {
                terms.push((*v, S::one()));
            }
        }
        model.add_constraint(terms, Cmp::Ge, S::from_i64(grp.count() * grp.processing));
    }

    // (3) capacity per node: Σ_G y(i,G) − g·x(i) ≤ 0.
    for i in 0..m {
        if forest.nodes[i].is_empty() {
            continue;
        }
        let mut terms: Vec<(VarId, S)> = y_vars[i].iter().map(|(_, v)| (*v, S::one())).collect();
        terms.push((x_vars[i], S::from_i64(-inst.g)));
        model.add_constraint(terms, Cmp::Le, S::zero());
    }

    // (4) x(i) ≤ L(i).
    for (i, &xv) in x_vars.iter().enumerate().take(m) {
        model.add_constraint(vec![(xv, S::one())], Cmp::Le, S::from_i64(forest.nodes[i].len()));
    }

    // (5) y(i,G) ≤ q·x(i).
    for i in 0..m {
        for (gid, v) in &y_vars[i] {
            let q = groups[*gid].count();
            model.add_constraint(
                vec![(*v, S::one()), (x_vars[i], S::from_i64(-q))],
                Cmp::Le,
                S::zero(),
            );
        }
    }

    // (7)/(8) ceiling constraints from the OPT_i oracles.
    for i in 0..m {
        if use_ceiling && (bounds.ge2[i] || bounds.ge3[i]) {
            let terms: Vec<(VarId, S)> =
                forest.descendants(i).into_iter().map(|d| (x_vars[d], S::one())).collect();
            let rhs = if bounds.ge3[i] { 3 } else { 2 };
            model.add_constraint(terms, Cmp::Ge, S::from_i64(rhs));
        }
    }

    NestedLp { model, x_vars, y_vars, groups }
}

/// Paper extension: append generalized ceiling constraints
/// `Σ_{i' ∈ Des(i)} x(i') ≥ k` for every node whose
/// [`DeepBounds`](crate::opt23::DeepBounds) lower bound `k` exceeds 3
/// (levels 2 and 3 are already present when the LP was built with the
/// standard ceiling constraints).
pub fn add_deep_ceilings<S: Scalar>(
    lp: &mut NestedLp<S>,
    forest: &Forest,
    deep: &crate::opt23::DeepBounds,
) {
    for i in 0..forest.num_nodes() {
        if deep.lower[i] <= 3 {
            continue;
        }
        let terms: Vec<(VarId, S)> =
            forest.descendants(i).into_iter().map(|d| (lp.x_vars[d], S::one())).collect();
        lp.model.add_constraint(terms, Cmp::Ge, S::from_i64(deep.lower[i]));
    }
}

/// A primal/dual certificate harvested from a prior solve of a
/// [`NestedLp`], in raw model-variable space.
///
/// Fed back into [`NestedLp::solve_warm`] on a later, closely related
/// model: when the certificate still proves a *unique* optimum there
/// ([`Model::try_warm`]), the LP solve is skipped entirely and the
/// result is bit-identical to a cold solve.
#[derive(Debug, Clone)]
pub struct LpCertificate<S> {
    /// Primal values, one per model variable.
    pub x: Vec<S>,
    /// Dual multipliers, one per model constraint.
    pub y: Vec<S>,
}

/// Outcome of [`NestedLp::solve_warm`].
#[derive(Debug)]
pub struct WarmSolve<S> {
    /// The (projected) LP optimum.
    pub solution: FractionalSolution<S>,
    /// A certificate for seeding a future solve, when one was reused or
    /// capture was requested and succeeded.
    pub certificate: Option<LpCertificate<S>>,
    /// True when `seed` was accepted and the simplex never ran.
    pub warm_hit: bool,
}

impl<S: Scalar> NestedLp<S> {
    /// Solve and project onto node space.
    pub fn solve(&self) -> Result<FractionalSolution<S>, NestedLpError> {
        let sol = self.model.solve().map_err(NestedLpError::Solver)?;
        match sol.status {
            LpStatus::Optimal => {}
            LpStatus::Infeasible => return Err(NestedLpError::Infeasible),
            LpStatus::Unbounded => unreachable!("objective Σx ≥ 0 is bounded below"),
        }
        Ok(self.project(&sol))
    }

    /// Solve with an optional warm certificate from a prior solve.
    ///
    /// When `seed` is present and [`Model::try_warm`] proves it is the
    /// unique optimum of *this* model, the simplex is skipped and the
    /// seeded solution is returned — provably bit-identical to what a
    /// cold [`NestedLp::solve`] would produce. Otherwise the model is
    /// solved cold; in that case `capture` additionally runs the
    /// dual-reporting solver to harvest a fresh certificate for future
    /// seeding. The cold primal path is *unchanged* by capture: the
    /// pipeline solution always comes from the same presolved solve a
    /// cold caller gets, so capturing never perturbs this solve's
    /// result.
    pub fn solve_warm(
        &self,
        seed: Option<&LpCertificate<S>>,
        capture: bool,
    ) -> Result<WarmSolve<S>, NestedLpError> {
        if let Some(cert) = seed {
            if let Some(sol) = self.model.try_warm(&cert.x, &cert.y) {
                return Ok(WarmSolve {
                    solution: self.project(&sol),
                    certificate: Some(cert.clone()),
                    warm_hit: true,
                });
            }
        }
        let solution = self.solve()?;
        let certificate = if capture {
            // A second, presolve-free solve purely for the duals. Its
            // primal may sit on a different optimal vertex than the
            // pipeline solution above — irrelevant: the pair only needs
            // to be self-consistent, and reuse later re-proves
            // uniqueness against the then-current model.
            match self.model.solve_with_duals() {
                Ok((dual_sol, duals)) if dual_sol.status == LpStatus::Optimal => {
                    Some(LpCertificate { x: dual_sol.values, y: duals })
                }
                _ => None,
            }
        } else {
            None
        };
        Ok(WarmSolve { solution, certificate, warm_hit: false })
    }

    fn project(&self, sol: &atsched_lp::Solution<S>) -> FractionalSolution<S> {
        let x: Vec<S> = self.x_vars.iter().map(|v| sol.value(*v).clone()).collect();
        let y: Vec<Vec<(usize, S)>> = self
            .y_vars
            .iter()
            .map(|per_node| per_node.iter().map(|(gid, v)| (*gid, sol.value(*v).clone())).collect())
            .collect();
        FractionalSolution { objective: sol.objective.clone(), x, y }
    }
}

impl NestedLp<Ratio> {
    /// Solve via the f64-first, exactly-verified hybrid pipeline
    /// ([`Model::solve_hybrid`]) and project onto node space.
    ///
    /// With `certify = true` the projected solution is bit-identical to
    /// [`NestedLp::solve`]: either the optimality-and-uniqueness
    /// certificate proves the float basis yields the exact solver's
    /// vertex, or the pipeline already fell back to the exact simplex.
    /// The returned [`HybridOutcome`] says which path was taken.
    pub fn solve_hybrid(
        &self,
        certify: bool,
    ) -> Result<(FractionalSolution<Ratio>, HybridOutcome), NestedLpError> {
        let (sol, _info, outcome) =
            self.model.solve_hybrid(certify).map_err(NestedLpError::Solver)?;
        match sol.status {
            LpStatus::Optimal => Ok((self.project(&sol), outcome)),
            LpStatus::Infeasible => Err(NestedLpError::Infeasible),
            LpStatus::Unbounded => unreachable!("objective Σx ≥ 0 is bounded below"),
        }
    }
}

impl<S: Scalar> FractionalSolution<S> {
    /// Re-check LP feasibility of this solution against the forest
    /// (used after the Lemma 3.1 transformation in tests/debug).
    pub fn check(
        &self,
        forest: &Forest,
        inst: &Instance,
        groups: &[JobGroup],
    ) -> Result<(), String> {
        let m = forest.num_nodes();
        let bad = |msg: String| -> Result<(), String> { Err(msg) };
        for i in 0..m {
            if self.x[i].is_negative() {
                return bad(format!("x[{i}] negative"));
            }
            if self.x[i].sub(&S::from_i64(forest.nodes[i].len())).is_positive() {
                return bad(format!("x[{i}] exceeds L"));
            }
            let mut used = S::zero();
            for (gid, yv) in &self.y[i] {
                if yv.is_negative() {
                    return bad(format!("y[{i},{gid}] negative"));
                }
                let cap = S::from_i64(groups[*gid].count()).mul(&self.x[i]);
                if yv.sub(&cap).is_positive() {
                    return bad(format!("y[{i},{gid}] exceeds q·x"));
                }
                used = used.add(yv);
            }
            let cap = S::from_i64(inst.g).mul(&self.x[i]);
            if used.sub(&cap).is_positive() {
                return bad(format!("node {i} over capacity"));
            }
        }
        for (gid, grp) in groups.iter().enumerate() {
            let mut got = S::zero();
            for i in forest.descendants(grp.node) {
                if let Some((_, yv)) = self.y[i].iter().find(|(g, _)| *g == gid) {
                    got = got.add(yv);
                }
            }
            let need = S::from_i64(grp.count() * grp.processing);
            if need.sub(&got).is_positive() {
                return bad(format!("group {gid} under-scheduled"));
            }
        }
        Ok(())
    }

    /// `x(Des(i))` — the fractional open mass in a subtree.
    pub fn x_subtree(&self, forest: &Forest, i: usize) -> S {
        let mut acc = S::zero();
        for d in forest.descendants(i) {
            acc = acc.add(&self.x[d]);
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::canonical::canonicalize;
    use crate::instance::Job;
    use crate::opt23;
    use atsched_num::Ratio;

    fn pipeline(
        g: i64,
        jobs: Vec<(i64, i64, i64)>,
    ) -> (Instance, Forest, FractionalSolution<Ratio>) {
        let inst = Instance::new(g, jobs.into_iter().map(|(r, d, p)| Job::new(r, d, p)).collect())
            .unwrap();
        let forest = Forest::build(&inst).unwrap();
        let canon = canonicalize(&forest, &inst);
        let bounds = opt23::compute(&canon, &inst);
        let lp = build::<Ratio>(&canon, &inst, &bounds);
        let sol = lp.solve().unwrap();
        sol.check(&canon, &inst, &lp.groups).unwrap();
        (inst, canon, sol)
    }

    #[test]
    fn grouping_merges_identical_jobs() {
        let inst = Instance::new(2, vec![Job::new(0, 4, 1), Job::new(0, 4, 1), Job::new(0, 4, 2)])
            .unwrap();
        let forest = Forest::build(&inst).unwrap();
        let groups = group_jobs(&forest, &inst);
        assert_eq!(groups.len(), 2);
        let unit = groups.iter().find(|g| g.processing == 1).unwrap();
        assert_eq!(unit.jobs.len(), 2);
    }

    #[test]
    fn single_rigid_job_gives_exact_lp() {
        let (_, _, sol) = pipeline(1, vec![(0, 3, 3)]);
        assert_eq!(sol.objective, Ratio::from_i64(3));
    }

    #[test]
    fn lp_lower_bounds_volume_over_g() {
        // 5 unit jobs, g = 2 → LP ≥ ceil-free volume bound 5/2.
        let (_, _, sol) = pipeline(2, vec![(0, 6, 1); 5]);
        assert!(sol.objective >= Ratio::from_frac(5, 2));
    }

    #[test]
    fn ceiling_constraint_closes_gap2_family() {
        // g+1 unit jobs in a width-2 window: natural LP would give
        // 1 + 1/g, the strengthened LP must give exactly 2 (= OPT).
        for g in [2i64, 3, 5] {
            let (_, _, sol) = pipeline(g, vec![(0, 2, 1); (g + 1) as usize]);
            assert_eq!(sol.objective, Ratio::from_i64(2), "g = {g}");
        }
    }

    #[test]
    fn infeasible_instance_reported() {
        // Volume 3 > capacity 1·2 within window [0,2).
        let inst = Instance::new(1, vec![Job::new(0, 2, 1); 3]).unwrap();
        let forest = Forest::build(&inst).unwrap();
        let canon = canonicalize(&forest, &inst);
        let bounds = opt23::compute(&canon, &inst);
        let lp = build::<Ratio>(&canon, &inst, &bounds);
        assert_eq!(lp.solve().unwrap_err(), NestedLpError::Infeasible);
    }

    #[test]
    fn lp_is_a_lower_bound_on_known_opt() {
        // Nested instance where OPT = 4: long job p=2 in [0,6), and two
        // rigid pairs [1,3), [4,6) hmm — verify only LP ≤ 4 here; exact
        // OPT checks live in the baselines crate.
        let (_, _, sol) = pipeline(2, vec![(0, 6, 2), (1, 3, 2), (3, 5, 2)]);
        assert!(sol.objective <= Ratio::from_i64(6));
        assert!(sol.objective >= Ratio::from_i64(4)); // rigid leaves force 2+2
    }

    #[test]
    fn f64_backend_close_to_exact() {
        let inst = Instance::new(
            2,
            vec![Job::new(0, 8, 2), Job::new(1, 4, 1), Job::new(1, 4, 1), Job::new(5, 7, 2)],
        )
        .unwrap();
        let forest = Forest::build(&inst).unwrap();
        let canon = canonicalize(&forest, &inst);
        let bounds = opt23::compute(&canon, &inst);
        let exact = build::<Ratio>(&canon, &inst, &bounds).solve().unwrap();
        let fl = build::<f64>(&canon, &inst, &bounds).solve().unwrap();
        assert!((exact.objective.to_f64() - fl.objective).abs() < 1e-6);
    }
}
