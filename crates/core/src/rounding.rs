//! Algorithm 1: rounding the transformed LP solution to an integral
//! per-node open count `x̃ ∈ ℕ^m` (paper §3.3).
//!
//! Start from `x̃(i) = ⌊x(i)⌋` on the antichain `I` and `x̃(i) = x(i)`
//! elsewhere (integral there by Claim 1: strict descendants of `I` are
//! fully open, strict ancestors are zero). Then walk `Anc(I)` bottom-up;
//! at each node `i`, while the subtree budget
//! `(9/5)·x(Des(i)) ≥ x̃(Des(i)) + 1` permits, round one floored
//! descendant back up to its ceiling. Lemma 3.3 gives
//! `x̃([m]) ≤ (9/5)·x([m])`, and §4 of the paper proves the result is
//! always feasible.
//!
//! The paper's "choose such an i′ arbitrarily" is resolved by picking the
//! descendant with the largest fractional part (ties by node id) — the
//! feasibility proof is choice-independent, and this heuristic recovers
//! the most value per round-up.

use crate::lp_model::FractionalSolution;
use crate::tree::Forest;
use atsched_lp::Scalar;

/// Result of Algorithm 1.
#[derive(Debug, Clone)]
pub struct Rounded {
    /// Integral open count per node (`x̃`).
    pub z: Vec<i64>,
    /// Nodes of `I` that were rounded up to their ceiling.
    pub rounded_up: Vec<usize>,
    /// Nodes of `I` left at their floor.
    pub left_floored: Vec<usize>,
}

impl Rounded {
    /// `Σ x̃(i)` — the number of slots the integral solution opens.
    pub fn total_open(&self) -> i64 {
        self.z.iter().sum()
    }
}

/// How Algorithm 1 resolves the paper's "choose such an i′ arbitrarily".
///
/// The feasibility theorem (§4) is choice-independent; exposing the
/// choice lets the ablation experiment confirm that empirically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoundingChoice {
    /// Round up the descendant with the largest fractional part
    /// (default: recovers the most value per round-up).
    LargestFraction,
    /// Smallest node id (a literal reading of "arbitrary").
    FirstId,
    /// Deterministic pseudo-random pick from the given seed.
    Shuffled(u64),
}

/// Run Algorithm 1 with the default tie-breaking.
///
/// `top` is the antichain `I` produced by
/// [`transform::push_down`](crate::transform::push_down).
///
/// # Panics
/// Panics if a non-`I` node carries a non-integral `x` (that would mean
/// the Lemma 3.1 transformation was skipped or broken).
pub fn round<S: Scalar>(forest: &Forest, sol: &FractionalSolution<S>, top: &[usize]) -> Rounded {
    round_with(forest, sol, top, RoundingChoice::LargestFraction)
}

/// Run Algorithm 1 with an explicit tie-breaking rule.
pub fn round_with<S: Scalar>(
    forest: &Forest,
    sol: &FractionalSolution<S>,
    top: &[usize],
    choice: RoundingChoice,
) -> Rounded {
    let m = forest.num_nodes();
    let is_top = {
        let mut v = vec![false; m];
        for &i in top {
            v[i] = true;
        }
        v
    };

    // Line 1: floors on I, exact values elsewhere.
    let mut z: Vec<i64> = Vec::with_capacity(m);
    for (i, &top) in is_top.iter().enumerate().take(m) {
        let xi = &sol.x[i];
        if top {
            z.push(xi.floor_int());
        } else {
            let v = xi.floor_int();
            let back = S::from_i64(v);
            let frac = xi.sub(&back);
            assert!(frac.is_zero() || top, "node {i} outside I has fractional x = {xi}");
            z.push(v);
        }
    }

    // Anc(I): every node having an I-descendant (I nodes included),
    // processed bottom-to-top.
    let mut anc_of_top: Vec<usize> =
        (0..m).filter(|&i| top.iter().any(|&t| forest.is_ancestor(i, t))).collect();
    anc_of_top.sort_by_key(|&i| std::cmp::Reverse(forest.nodes[i].depth));

    let mut rounded_up: Vec<usize> = Vec::new();
    let five = S::from_i64(5);
    let nine = S::from_i64(9);
    let mut rng_state = match choice {
        RoundingChoice::Shuffled(seed) => seed.wrapping_add(0x9E3779B97F4A7C15),
        _ => 0,
    };
    for &i in &anc_of_top {
        let des = forest.descendants(i);
        // x(Des(i)) is fixed; x̃(Des(i)) grows as we round up.
        let x_des: S = des.iter().fold(S::zero(), |a, &d| a.add(&sol.x[d]));
        let budget = nine.mul(&x_des); // compare 9·x(Des) ≥ 5·(x̃(Des)+1)
        loop {
            let z_des: i64 = des.iter().map(|&d| z[d]).sum();
            let need = five.mul(&S::from_i64(z_des + 1));
            if need.sub(&budget).is_positive() {
                break; // budget exhausted at this node
            }
            // Candidates: floored I-descendants still below their x.
            let mut candidates: Vec<(usize, S)> = Vec::new();
            for &d in &des {
                if !is_top[d] {
                    continue;
                }
                let frac = sol.x[d].sub(&S::from_i64(z[d]));
                if frac.is_positive() {
                    candidates.push((d, frac));
                }
            }
            if candidates.is_empty() {
                break; // line 8: nothing left to round up
            }
            let pick = match choice {
                // Total order, not `partial_cmp(..).expect(..)`: a NaN
                // fraction from a degenerate `f64-unchecked` solve must
                // pick deterministically, not panic the solver thread
                // (the final schedule is re-verified regardless).
                RoundingChoice::LargestFraction => candidates
                    .iter()
                    .enumerate()
                    .max_by(|(_, (_, a)), (_, (_, b))| a.total_cmp(b))
                    .map(|(idx, _)| idx)
                    .expect("nonempty"),
                RoundingChoice::FirstId => 0, // candidates follow preorder; take first
                RoundingChoice::Shuffled(_) => {
                    rng_state = rng_state.wrapping_add(0x9E3779B97F4A7C15);
                    let mut s = rng_state;
                    s = (s ^ (s >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                    s = (s ^ (s >> 27)).wrapping_mul(0x94D049BB133111EB);
                    ((s ^ (s >> 31)) % candidates.len() as u64) as usize
                }
            };
            let d = candidates[pick].0;
            z[d] = sol.x[d].ceil_int();
            rounded_up.push(d);
        }
    }

    let left_floored = top.iter().copied().filter(|&i| !rounded_up.contains(&i)).collect();
    Rounded { z, rounded_up, left_floored }
}

/// Check Lemma 3.3: `x̃([m]) ≤ (9/5)·x([m])`, per tree of the forest.
pub fn check_budget<S: Scalar>(
    forest: &Forest,
    sol: &FractionalSolution<S>,
    rounded: &Rounded,
) -> Result<(), String> {
    for &root in &forest.roots {
        let des = forest.descendants(root);
        let x_tot: S = des.iter().fold(S::zero(), |a, &d| a.add(&sol.x[d]));
        let z_tot: i64 = des.iter().map(|&d| rounded.z[d]).sum();
        let lhs = S::from_i64(5 * z_tot);
        let rhs = S::from_i64(9).mul(&x_tot);
        if lhs.sub(&rhs).is_positive() {
            return Err(format!(
                "tree at {root}: x̃ = {z_tot} exceeds (9/5)·x = {}",
                rhs.to_f64() / 5.0
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Test-case table: (g, [(release, deadline, processing)]).
    type Cases = Vec<(i64, Vec<(i64, i64, i64)>)>;
    use crate::canonical::canonicalize;
    use crate::instance::{Instance, Job};
    use crate::lp_model::build;
    use crate::opt23;
    use crate::transform::push_down;
    use atsched_num::Ratio;

    fn run(
        g: i64,
        jobs: Vec<(i64, i64, i64)>,
    ) -> (Instance, Forest, FractionalSolution<Ratio>, Vec<usize>, Rounded) {
        let inst = Instance::new(g, jobs.into_iter().map(|(r, d, p)| Job::new(r, d, p)).collect())
            .unwrap();
        let forest = Forest::build(&inst).unwrap();
        let canon = canonicalize(&forest, &inst);
        let bounds = opt23::compute(&canon, &inst);
        let lp = build::<Ratio>(&canon, &inst, &bounds);
        let sol = lp.solve().unwrap();
        let out = push_down(&canon, sol);
        let rounded = round(&canon, &out.solution, &out.top_positive);
        check_budget(&canon, &out.solution, &rounded).unwrap();
        (inst, canon, out.solution, out.top_positive, rounded)
    }

    #[test]
    fn integral_lp_rounds_to_itself() {
        // A single rigid job: LP is integral, nothing to round.
        let (_, canon, sol, _, rounded) = run(1, vec![(0, 3, 3)]);
        for i in 0..canon.num_nodes() {
            assert_eq!(Ratio::from_i64(rounded.z[i]), sol.x[i]);
        }
        assert!(rounded.rounded_up.is_empty());
    }

    #[test]
    fn z_respects_node_capacity() {
        let (_, canon, _, _, rounded) =
            run(2, vec![(0, 12, 2), (1, 5, 2), (1, 5, 1), (6, 11, 3), (7, 10, 1)]);
        for i in 0..canon.num_nodes() {
            assert!(rounded.z[i] >= 0);
            assert!(rounded.z[i] <= canon.nodes[i].len());
        }
    }

    #[test]
    fn budget_lemma_3_3_holds() {
        // A handful of shapes; check_budget runs inside run().
        run(2, vec![(0, 6, 1); 5]);
        run(3, vec![(0, 20, 4), (2, 9, 3), (2, 9, 1), (12, 18, 2)]);
        run(1, vec![(0, 4, 1), (1, 3, 1)]);
    }

    #[test]
    fn fractional_mass_gets_rounded_somewhere() {
        // g+1 unit jobs in width-2 window: LP = 2 (integral thanks to the
        // ceiling constraint) → z total = 2.
        let (_, _, _, _, rounded) = run(3, vec![(0, 2, 1); 4]);
        assert_eq!(rounded.total_open(), 2);
    }

    #[test]
    fn budget_boundary_is_inclusive() {
        // Hand-built solution on a two-node chain (root + rigid leaf):
        // x(leaf) = 1, x(root) = f, I = {root}. Algorithm 1's condition
        // at the root is 9·(1+f) ≥ 5·(x̃+1) with x̃ = 1 initially, i.e.
        // f ≥ 1/9 — *inclusive* at the boundary.
        let inst = Instance::new(2, vec![Job::new(0, 1, 1), Job::new(0, 3, 1)]).unwrap();
        let forest = Forest::build(&inst).unwrap();
        let root = forest.roots[0];
        let leaf = forest.nodes[root].children[0];
        let mk = |f: Ratio| {
            let mut x = vec![Ratio::zero(); forest.num_nodes()];
            x[leaf] = Ratio::one();
            x[root] = f;
            FractionalSolution {
                objective: x.iter().sum(),
                x,
                y: vec![Vec::new(); forest.num_nodes()],
            }
        };
        // Exactly 1/9: rounds up (9·(10/9) = 10 ≥ 10).
        let sol = mk(Ratio::from_frac(1, 9));
        let r = round(&forest, &sol, &[root]);
        assert_eq!(r.z[root], 1, "boundary case must round up");
        assert_eq!(r.z[leaf], 1);
        // Slightly below: stays floored.
        let sol = mk(Ratio::from_frac(1, 9) - Ratio::from_frac(1, 1000));
        let r = round(&forest, &sol, &[root]);
        assert_eq!(r.z[root], 0, "below the boundary must stay floored");
        // Slightly above: rounds up.
        let sol = mk(Ratio::from_frac(1, 9) + Ratio::from_frac(1, 1000));
        let r = round(&forest, &sol, &[root]);
        assert_eq!(r.z[root], 1);
    }

    #[test]
    fn exact_boundary_differs_from_f64_noise() {
        // The same boundary with f64 scalars: a value that *prints* as
        // 1/9 but carries float error can fall on either side; the exact
        // path is deterministic. This documents why the reference
        // pipeline is rational.
        let inst = Instance::new(2, vec![Job::new(0, 1, 1), Job::new(0, 3, 1)]).unwrap();
        let forest = Forest::build(&inst).unwrap();
        let root = forest.roots[0];
        let leaf = forest.nodes[root].children[0];
        let mut x = vec![0.0f64; forest.num_nodes()];
        x[leaf] = 1.0;
        x[root] = 1.0 / 9.0; // not exactly 1/9 in binary
        let sol = FractionalSolution {
            objective: x.iter().sum(),
            x,
            y: vec![Vec::new(); forest.num_nodes()],
        };
        let r = round(&forest, &sol, &[root]);
        // Either outcome is *feasibility*-safe; assert only that the
        // result is a valid floor/ceil bracket.
        assert!(r.z[root] == 0 || r.z[root] == 1);
    }

    #[test]
    fn nan_fraction_does_not_panic_the_rounder() {
        // A degenerate `f64-unchecked` solve can hand the rounder a NaN
        // open count. The candidate picker must stay total — the old
        // `partial_cmp(..).expect("scalars are ordered")` turned that
        // into a solver-thread panic. With `total_cmp` the NaN floors
        // to 0, the NaN budget reads as exhausted, and the caller's
        // schedule check decides whether the solve survives.
        let inst = Instance::new(2, vec![Job::new(0, 1, 1), Job::new(0, 3, 1)]).unwrap();
        let forest = Forest::build(&inst).unwrap();
        let root = forest.roots[0];
        let leaf = forest.nodes[root].children[0];
        let mut x = vec![0.0f64; forest.num_nodes()];
        x[leaf] = 1.0;
        x[root] = f64::NAN;
        let sol = FractionalSolution {
            objective: x.iter().sum(),
            x,
            y: vec![Vec::new(); forest.num_nodes()],
        };
        let r = round(&forest, &sol, &[root]);
        assert_eq!(r.z[root], 0, "NaN must floor to 0, not panic");
        assert_eq!(r.z[leaf], 1);
        // Tie-break variants walk the same candidate path; none may
        // panic on the poisoned scalar either.
        for choice in [RoundingChoice::FirstId, RoundingChoice::Shuffled(7)] {
            let r = round_with(&forest, &sol, &[root], choice);
            assert_eq!(r.z[root], 0);
        }
    }

    #[test]
    fn z_brackets_x_per_node() {
        let cases: Cases = vec![
            (2, vec![(0, 8, 2), (1, 4, 1), (5, 7, 1)]),
            (3, vec![(0, 10, 1), (0, 10, 1), (2, 6, 2), (7, 9, 2)]),
        ];
        for (g, jobs) in cases {
            let (_, canon, sol, _, rounded) = run(g, jobs);
            for i in 0..canon.num_nodes() {
                // floor(x) ≤ z ≤ ceil(x): Algorithm 1 only floors or ceils.
                assert!(Ratio::from_i64(rounded.z[i]) >= Ratio::from_int(sol.x[i].floor()));
                assert!(Ratio::from_i64(rounded.z[i]) <= Ratio::from_int(sol.x[i].ceil()));
            }
        }
    }
}
