//! Problem instances: jobs with windows, and the machine parallelism `g`.

use std::fmt;

/// One job: processing time `p` must fit inside the window `[r, d)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Job {
    /// Release time (window start, inclusive).
    pub release: i64,
    /// Deadline (window end, exclusive).
    pub deadline: i64,
    /// Processing time in slots: the job must be assigned to exactly
    /// `processing` distinct slots inside `[release, deadline)`.
    pub processing: i64,
}

impl Job {
    /// Construct a job; validity is checked when building an [`Instance`].
    pub fn new(release: i64, deadline: i64, processing: i64) -> Self {
        Job { release, deadline, processing }
    }

    /// Window length `d - r` in slots.
    pub fn window_len(&self) -> i64 {
        self.deadline - self.release
    }

    /// Does slot `t` (covering `[t, t+1)`) lie inside the window?
    pub fn window_contains(&self, t: i64) -> bool {
        self.release <= t && t < self.deadline
    }
}

/// Why an instance failed validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InstanceError {
    /// `g < 1`.
    BadParallelism(i64),
    /// A job had `p < 1`.
    BadProcessing(usize),
    /// A job's window is too short for its processing time.
    WindowTooShort(usize),
    /// Two windows cross (overlap without nesting) — the instance is not
    /// laminar. Carries the offending job indices.
    NotLaminar(usize, usize),
    /// The instance admits no feasible schedule even with every slot open.
    Infeasible,
}

impl fmt::Display for InstanceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InstanceError::BadParallelism(g) => write!(f, "machine parallelism g = {g} < 1"),
            InstanceError::BadProcessing(j) => write!(f, "job {j} has processing time < 1"),
            InstanceError::WindowTooShort(j) => {
                write!(f, "job {j}'s window is shorter than its processing time")
            }
            InstanceError::NotLaminar(a, b) => {
                write!(f, "windows of jobs {a} and {b} cross; instance is not laminar")
            }
            InstanceError::Infeasible => {
                write!(f, "instance is infeasible even with all slots open")
            }
        }
    }
}

impl std::error::Error for InstanceError {}

/// A validated active-time scheduling instance.
///
/// Construction checks the per-job sanity conditions (`p ≥ 1`,
/// `d ≥ r + p`, `g ≥ 1`). It does *not* require laminarity — general
/// instances are valid inputs for the baselines and the per-slot LPs —
/// and does not check global feasibility (use
/// [`Instance::is_feasible_all_open`]); the nested solver checks both.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Instance {
    /// Machine parallelism: jobs per active slot.
    pub g: i64,
    /// The jobs. Job ids used throughout the workspace are indices into
    /// this vector.
    pub jobs: Vec<Job>,
}

impl Instance {
    /// Validate and construct.
    pub fn new(g: i64, jobs: Vec<Job>) -> Result<Self, InstanceError> {
        if g < 1 {
            return Err(InstanceError::BadParallelism(g));
        }
        for (idx, j) in jobs.iter().enumerate() {
            if j.processing < 1 {
                return Err(InstanceError::BadProcessing(idx));
            }
            if j.window_len() < j.processing {
                return Err(InstanceError::WindowTooShort(idx));
            }
        }
        Ok(Instance { g, jobs })
    }

    /// Number of jobs.
    pub fn num_jobs(&self) -> usize {
        self.jobs.len()
    }

    /// Total processing volume `Σ p_j`.
    pub fn total_volume(&self) -> i64 {
        self.jobs.iter().map(|j| j.processing).sum()
    }

    /// The half-open hull `[min r, max d)` of all windows, or `None` when
    /// there are no jobs.
    pub fn horizon(&self) -> Option<(i64, i64)> {
        if self.jobs.is_empty() {
            return None;
        }
        let lo = self.jobs.iter().map(|j| j.release).min().unwrap();
        let hi = self.jobs.iter().map(|j| j.deadline).max().unwrap();
        Some((lo, hi))
    }

    /// All slot indices inside at least one job window, sorted.
    ///
    /// These are the only slots worth opening; any schedule restricted to
    /// them is as good as the unrestricted one.
    pub fn candidate_slots(&self) -> Vec<i64> {
        let mut events: Vec<(i64, i64)> =
            self.jobs.iter().map(|j| (j.release, j.deadline)).collect();
        events.sort_unstable();
        let mut out = Vec::new();
        let mut covered_until = i64::MIN;
        for (r, d) in events {
            let start = r.max(covered_until);
            for t in start..d {
                out.push(t);
            }
            covered_until = covered_until.max(d);
        }
        out
    }

    /// Are the windows laminar (pairwise nested or disjoint)?
    ///
    /// Returns the first crossing pair on failure.
    pub fn check_laminar(&self) -> Result<(), InstanceError> {
        // Sort windows (keeping job ids) by (r asc, d desc); sweep with a
        // stack of currently-open windows.
        let mut order: Vec<usize> = (0..self.jobs.len()).collect();
        order.sort_by_key(|&i| (self.jobs[i].release, -self.jobs[i].deadline));
        let mut stack: Vec<usize> = Vec::new();
        for &i in &order {
            let (r, d) = (self.jobs[i].release, self.jobs[i].deadline);
            while let Some(&top) = stack.last() {
                if self.jobs[top].deadline <= r {
                    stack.pop();
                } else {
                    break;
                }
            }
            if let Some(&top) = stack.last() {
                // `top` is still open: r < d_top. Nested requires d <= d_top.
                if d > self.jobs[top].deadline {
                    return Err(InstanceError::NotLaminar(top, i));
                }
            }
            stack.push(i);
        }
        Ok(())
    }

    /// Feasibility with *every* candidate slot open, via max-flow
    /// (paper §1: "testing feasibility is an easy exercise applying max
    /// flow").
    pub fn is_feasible_all_open(&self) -> bool {
        let slots = self.candidate_slots();
        crate::feasibility::slots_feasible(self, &slots)
    }

    /// The same instance translated in time by `delta` (negative allowed;
    /// the whole library supports negative slot indices).
    pub fn shifted(&self, delta: i64) -> Instance {
        Instance {
            g: self.g,
            jobs: self
                .jobs
                .iter()
                .map(|j| Job::new(j.release + delta, j.deadline + delta, j.processing))
                .collect(),
        }
    }

    /// Concatenate instances that share the same `g` (job ids of later
    /// parts are offset by the earlier parts' job counts). Useful for
    /// composing adversarial families; the result is re-validated.
    pub fn merged(parts: &[&Instance]) -> Result<Instance, InstanceError> {
        let g = parts.first().map(|p| p.g).unwrap_or(1);
        if let Some(bad) = parts.iter().find(|p| p.g != g) {
            return Err(InstanceError::BadParallelism(bad.g));
        }
        let jobs: Vec<Job> = parts.iter().flat_map(|p| p.jobs.iter().copied()).collect();
        Instance::new(g, jobs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation_rejects_bad_inputs() {
        assert!(matches!(Instance::new(0, vec![]), Err(InstanceError::BadParallelism(0))));
        assert!(matches!(
            Instance::new(1, vec![Job::new(0, 2, 0)]),
            Err(InstanceError::BadProcessing(0))
        ));
        assert!(matches!(
            Instance::new(1, vec![Job::new(0, 2, 3)]),
            Err(InstanceError::WindowTooShort(0))
        ));
    }

    #[test]
    fn laminar_accepts_nested_and_disjoint() {
        let inst = Instance::new(
            2,
            vec![
                Job::new(0, 10, 1),
                Job::new(1, 4, 2),
                Job::new(2, 3, 1),
                Job::new(5, 8, 1),
                Job::new(1, 4, 1), // duplicate window
            ],
        )
        .unwrap();
        assert!(inst.check_laminar().is_ok());
    }

    #[test]
    fn laminar_rejects_crossing() {
        let inst = Instance::new(1, vec![Job::new(0, 5, 1), Job::new(3, 8, 1)]).unwrap();
        let err = inst.check_laminar().unwrap_err();
        assert!(matches!(err, InstanceError::NotLaminar(0, 1)));
    }

    #[test]
    fn laminar_shared_endpoints_are_fine() {
        // [0,4) ⊃ [0,2) and [0,4) ⊃ [2,4): shared endpoints, still laminar.
        let inst = Instance::new(1, vec![Job::new(0, 4, 1), Job::new(0, 2, 1), Job::new(2, 4, 1)])
            .unwrap();
        assert!(inst.check_laminar().is_ok());
    }

    #[test]
    fn candidate_slots_merge_overlaps() {
        let inst =
            Instance::new(1, vec![Job::new(0, 3, 1), Job::new(1, 2, 1), Job::new(10, 12, 1)])
                .unwrap();
        assert_eq!(inst.candidate_slots(), vec![0, 1, 2, 10, 11]);
    }

    #[test]
    fn horizon_and_volume() {
        let inst = Instance::new(3, vec![Job::new(2, 6, 2), Job::new(0, 3, 1)]).unwrap();
        assert_eq!(inst.horizon(), Some((0, 6)));
        assert_eq!(inst.total_volume(), 3);
        assert_eq!(Instance::new(1, vec![]).unwrap().horizon(), None);
    }

    #[test]
    fn shifted_supports_negative_time() {
        let inst = Instance::new(2, vec![Job::new(0, 6, 2), Job::new(1, 4, 1)]).unwrap();
        let moved = inst.shifted(-10);
        assert_eq!(moved.horizon(), Some((-10, -4)));
        assert!(moved.check_laminar().is_ok());
        assert!(moved.is_feasible_all_open());
        assert_eq!(moved.candidate_slots(), (-10..-4).collect::<Vec<i64>>());
        // Solving at negative coordinates works end to end.
        let r =
            crate::solver::solve_nested(&moved, &crate::solver::SolverOptions::exact()).unwrap();
        r.schedule.verify(&moved).unwrap();
        assert!(r.schedule.slots.iter().all(|&t| t < 0));
    }

    #[test]
    fn merged_concatenates_and_validates() {
        let a = Instance::new(2, vec![Job::new(0, 3, 1)]).unwrap();
        let b = Instance::new(2, vec![Job::new(5, 8, 2)]).unwrap();
        let m = Instance::merged(&[&a, &b]).unwrap();
        assert_eq!(m.num_jobs(), 2);
        assert!(m.check_laminar().is_ok());
        let c = Instance::new(3, vec![Job::new(0, 2, 1)]).unwrap();
        assert!(matches!(Instance::merged(&[&a, &c]), Err(InstanceError::BadParallelism(3))));
        assert_eq!(Instance::merged(&[]).unwrap().num_jobs(), 0);
    }

    #[test]
    fn job_window_contains() {
        let j = Job::new(2, 5, 1);
        assert!(!j.window_contains(1));
        assert!(j.window_contains(2));
        assert!(j.window_contains(4));
        assert!(!j.window_contains(5));
    }
}
