//! Executable version of the paper's *analysis* (§4.2–4.3): node typing,
//! the triples of Algorithm 2, and the counting/structure lemmas.
//!
//! None of this is needed to *run* the 9/5-approximation — feasibility of
//! the rounded solution is established constructively by max-flow — but
//! having the analysis executable lets property tests check that the
//! quantities the proof relies on (Lemma 4.7's case split, Lemma 4.9's
//! `n₂ ≥ 2n₁` count, Lemma 4.11's triple structure) actually hold on
//! randomly generated instances, exactly as the paper claims.

use crate::lp_model::FractionalSolution;
use crate::rounding::Rounded;
use crate::tree::Forest;
use atsched_lp::Scalar;

/// Paper §4.2 node types for members of the antichain `I`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeType {
    /// `x(Des(i)) ∈ {1} ∪ [4/3, ∞)`.
    B,
    /// `x(Des(i)) ∈ (1, 4/3)` and `x̃(Des(i)) = 1`.
    C1,
    /// `x(Des(i)) ∈ (1, 4/3)` and `x̃(Des(i)) = 2`.
    C2,
}

/// Classification of every `I`-node.
#[derive(Debug, Clone)]
pub struct Typing {
    /// `(node, type)` per `I`-node, in id order.
    pub types: Vec<(usize, NodeType)>,
}

impl Typing {
    /// Nodes of a given type.
    pub fn of(&self, t: NodeType) -> Vec<usize> {
        self.types.iter().filter(|(_, ty)| *ty == t).map(|(i, _)| *i).collect()
    }
}

/// Classify the `I`-nodes (paper §4.2).
///
/// # Panics
/// Panics if a type-C node's `x̃(Des)` is not 1 or 2 — that would
/// contradict the structure the paper derives from rigidity, so it is a
/// bug, not an input condition.
pub fn classify<S: Scalar>(
    forest: &Forest,
    sol: &FractionalSolution<S>,
    top: &[usize],
    rounded: &Rounded,
) -> Typing {
    let four_thirds_num = S::from_i64(4);
    let three = S::from_i64(3);
    let one = S::one();
    let mut types = Vec::with_capacity(top.len());
    for &i in top {
        let x_des = sol.x_subtree(forest, i);
        // C ⇔ 1 < x(Des) < 4/3  ⇔  x > 1 and 3x < 4.
        let is_c =
            x_des.sub(&one).is_positive() && four_thirds_num.sub(&three.mul(&x_des)).is_positive();
        if !is_c {
            types.push((i, NodeType::B));
            continue;
        }
        let z_des: i64 = forest.descendants(i).iter().map(|&d| rounded.z[d]).sum();
        match z_des {
            1 => types.push((i, NodeType::C1)),
            2 => types.push((i, NodeType::C2)),
            other => panic!("type-C node {i} has x̃(Des) = {other}, expected 1 or 2"),
        }
    }
    Typing { types }
}

/// A triple `(i₁, i₂, i₃)`: one C₁ node charged to two C₂ nodes.
pub type Triple = (usize, usize, usize);

/// Outcome of Algorithm 2.
#[derive(Debug, Clone)]
pub struct Triples {
    /// The constructed triples.
    pub triples: Vec<Triple>,
    /// C₁ nodes that could not be covered (empty when the paper's
    /// counting lemma holds, which the tests assert).
    pub uncovered: Vec<usize>,
}

/// Are `a` and `b` siblings (same parent)?
fn brothers(forest: &Forest, a: usize, b: usize) -> bool {
    forest.nodes[a].parent.is_some() && forest.nodes[a].parent == forest.nodes[b].parent
}

/// Algorithm 2: construct disjoint triples covering every C₁ node, never
/// separating a C₁C₂ brother pair.
///
/// Processing follows the paper: ancestors of `I` with at least three
/// `I`-descendants, bottom-to-top; within a step, a C₁'s C₂ brother (if
/// any, and still unused) is taken first, and otherwise the *nearest*
/// unused C₂ nodes are preferred, avoiding C₂ nodes reserved as brothers
/// of still-uncovered C₁ nodes.
pub fn build_triples<S: Scalar>(
    forest: &Forest,
    sol: &FractionalSolution<S>,
    top: &[usize],
    rounded: &Rounded,
) -> Triples {
    let typing = classify(forest, sol, top, rounded);
    build_triples_from_typing(forest, &typing)
}

/// Triples from a precomputed typing (see [`build_triples`]).
pub fn build_triples_from_typing(forest: &Forest, typing: &Typing) -> Triples {
    let c1: Vec<usize> = typing.of(NodeType::C1);
    let c2: Vec<usize> = typing.of(NodeType::C2);
    let mut covered: Vec<usize> = Vec::new();
    let mut used: Vec<usize> = Vec::new();
    let mut triples: Vec<Triple> = Vec::new();

    // Ancestors of I with ≥ 3 I-descendants, bottom-to-top.
    let i_nodes: Vec<usize> = typing.types.iter().map(|(i, _)| *i).collect();
    let mut hosts: Vec<usize> = (0..forest.num_nodes())
        .filter(|&a| i_nodes.iter().filter(|&&t| forest.is_ancestor(a, t)).count() >= 3)
        .collect();
    hosts.sort_by_key(|&a| std::cmp::Reverse(forest.nodes[a].depth));

    for &host in &hosts {
        loop {
            // Uncovered C1 inside Des(host); take the deepest first.
            let next_c1 = c1
                .iter()
                .filter(|&&n| !covered.contains(&n) && forest.is_ancestor(host, n))
                .max_by_key(|&&n| forest.nodes[n].depth);
            let Some(&i1) = next_c1 else { break };

            let avail: Vec<usize> = c2
                .iter()
                .copied()
                .filter(|&n| !used.contains(&n) && forest.is_ancestor(host, n))
                .collect();

            let mut picks: Vec<usize> = Vec::new();
            // 1. The brother pair must stay together.
            if let Some(&b) = avail.iter().find(|&&m| brothers(forest, i1, m)) {
                picks.push(b);
            }
            // 2. Fill up preferring nearer, unreserved C2s.
            let mut rest: Vec<usize> =
                avail.iter().copied().filter(|m| !picks.contains(m)).collect();
            let reserved_set: Vec<usize> = c1
                .iter()
                .copied()
                .filter(|&n| n != i1 && !covered.contains(&n))
                .filter_map(|n| rest.iter().copied().find(|&m| brothers(forest, n, m)))
                .collect();
            rest.sort_by_key(|&m| {
                let is_reserved = reserved_set.contains(&m);
                let dist = lca_distance(forest, i1, m);
                (is_reserved, dist, m)
            });
            for m in rest {
                if picks.len() >= 2 {
                    break;
                }
                picks.push(m);
            }
            if picks.len() < 2 {
                // The counting lemma failed (should not happen); report.
                return Triples {
                    triples,
                    uncovered: c1.iter().copied().filter(|n| !covered.contains(n)).collect(),
                };
            }
            covered.push(i1);
            used.push(picks[0]);
            used.push(picks[1]);
            triples.push((i1, picks[0], picks[1]));
        }
    }
    Triples { triples, uncovered: c1.iter().copied().filter(|n| !covered.contains(n)).collect() }
}

/// Depth of the lowest common ancestor walk from `a` to `b` (smaller =
/// closer in the tree).
fn lca_distance(forest: &Forest, a: usize, b: usize) -> usize {
    let anc_a = forest.ancestors(a);
    let anc_b = forest.ancestors(b);
    for (steps, x) in anc_a.iter().enumerate() {
        if let Some(pos) = anc_b.iter().position(|y| y == x) {
            return steps + pos;
        }
    }
    usize::MAX // different trees
}

/// Lemma 4.9 check: within every subtree hosting ≥ 3 `I`-nodes,
/// `n₂ ≥ 2·n₁` (except when `n₁ = 0`, where it is trivial).
pub fn check_lemma_4_9(forest: &Forest, typing: &Typing) -> Result<(), String> {
    let c1 = typing.of(NodeType::C1);
    let c2 = typing.of(NodeType::C2);
    let i_nodes: Vec<usize> = typing.types.iter().map(|(i, _)| *i).collect();
    for a in 0..forest.num_nodes() {
        let in_sub = |set: &[usize]| set.iter().filter(|&&n| forest.is_ancestor(a, n)).count();
        if in_sub(&i_nodes) < 3 {
            continue;
        }
        let n1 = in_sub(&c1);
        let n2 = in_sub(&c2);
        if n1 > 0 && n2 < 2 * n1 {
            return Err(format!("subtree of {a}: n1 = {n1}, n2 = {n2} < 2·n1"));
        }
    }
    Ok(())
}

/// Lemma 4.11 check on constructed triples: each triple satisfies
/// (4.11a) `i₂, i₃ ∈ Des⁺(par(i₁))`, or (4.11b) `i₁, i₂` are brothers and
/// `i₃ ∈ Des⁺(par(par(i₁)))`.
///
/// Returns the fraction of triples satisfying the structural condition
/// (the paper's construction achieves 1.0; ours prefers near nodes and is
/// checked in tests to achieve it as well on generated workloads).
pub fn check_lemma_4_11(forest: &Forest, triples: &[Triple]) -> (usize, usize) {
    let mut ok = 0;
    for &(i1, i2, i3) in triples {
        let cond_a = forest.nodes[i1].parent.is_some_and(|p| {
            forest.is_ancestor(p, i2) && forest.is_ancestor(p, i3) && i2 != p && i3 != p
        });
        let cond_b = brothers(forest, i1, i2)
            && forest.nodes[i1]
                .parent
                .and_then(|p| forest.nodes[p].parent)
                .is_some_and(|gp| forest.is_ancestor(gp, i3) && i3 != gp);
        if cond_a || cond_b {
            ok += 1;
        }
    }
    (ok, triples.len())
}

/// Literal Lemma 4.1: an integral `x̃` is feasible **iff** for every job
/// subset `J'`,
///
/// ```text
/// Σ_i min(|J'(Anc(i))|, g) · x̃(i)  ≥  p(J').            (9)
/// ```
///
/// This enumerates all `2^n` subsets, so it is gated behind a job-count
/// limit; it exists to validate the paper's characterization against the
/// max-flow oracle, in both directions (see tests).
/// Returns the first violating subset if any.
pub fn check_lemma_4_1(
    forest: &Forest,
    inst: &crate::instance::Instance,
    z: &[i64],
    max_jobs: usize,
) -> Result<(), Vec<usize>> {
    let n = inst.num_jobs();
    assert!(n <= max_jobs, "Lemma 4.1 enumeration limited to {max_jobs} jobs");
    let m = forest.num_nodes();
    // Precompute Anc(i) membership per job: job j counts at node i iff
    // k(j) ∈ Anc(i), i.e. i ∈ Des(k(j)).
    let mut counts_at: Vec<Vec<usize>> = vec![Vec::new(); m]; // node → jobs
    for j in 0..n {
        for i in forest.descendants(forest.job_node[j]) {
            counts_at[i].push(j);
        }
    }
    for mask in 1u64..(1 << n) {
        let jobs: Vec<usize> = (0..n).filter(|&j| mask >> j & 1 == 1).collect();
        let volume: i64 = jobs.iter().map(|&j| inst.jobs[j].processing).sum();
        let mut capacity = 0i64;
        for i in 0..m {
            if z[i] == 0 {
                continue;
            }
            let in_subset = counts_at[i].iter().filter(|j| mask >> **j & 1 == 1).count() as i64;
            capacity += in_subset.min(inst.g) * z[i];
        }
        if capacity < volume {
            return Err(jobs);
        }
    }
    Ok(())
}

/// Triples must be disjoint and cover all C₁ nodes.
pub fn check_triples_cover(typing: &Typing, t: &Triples) -> Result<(), String> {
    if !t.uncovered.is_empty() {
        return Err(format!("uncovered C1 nodes: {:?}", t.uncovered));
    }
    let mut seen: Vec<usize> = Vec::new();
    for &(a, b, c) in &t.triples {
        for n in [a, b, c] {
            if seen.contains(&n) {
                return Err(format!("node {n} appears in two triples"));
            }
            seen.push(n);
        }
    }
    let c1 = typing.of(NodeType::C1);
    for n in c1 {
        if !t.triples.iter().any(|&(a, _, _)| a == n) {
            return Err(format!("C1 node {n} missing from triples"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Test-case table: (g, [(release, deadline, processing)]).
    type Cases = Vec<(i64, Vec<(i64, i64, i64)>)>;
    use crate::canonical::canonicalize;
    use crate::instance::{Instance, Job};
    use crate::lp_model::build;
    use crate::opt23;
    use crate::rounding::round;
    use crate::transform::push_down;
    use atsched_num::Ratio;

    fn full_pipeline(
        g: i64,
        jobs: Vec<(i64, i64, i64)>,
    ) -> (Forest, FractionalSolution<Ratio>, Vec<usize>, Rounded) {
        let inst = Instance::new(g, jobs.into_iter().map(|(r, d, p)| Job::new(r, d, p)).collect())
            .unwrap();
        let forest = Forest::build(&inst).unwrap();
        let canon = canonicalize(&forest, &inst);
        let bounds = opt23::compute(&canon, &inst);
        let lp = build::<Ratio>(&canon, &inst, &bounds);
        let sol = lp.solve().unwrap();
        let out = push_down(&canon, sol);
        let rounded = round(&canon, &out.solution, &out.top_positive);
        (canon, out.solution, out.top_positive, rounded)
    }

    #[test]
    fn integral_solutions_classify_as_b() {
        let (canon, sol, top, rounded) = full_pipeline(1, vec![(0, 3, 3)]);
        let typing = classify(&canon, &sol, &top, &rounded);
        for (_, t) in &typing.types {
            assert_eq!(*t, NodeType::B);
        }
    }

    #[test]
    fn lemma_4_9_on_assorted_instances() {
        let cases: Cases = vec![
            (2, vec![(0, 8, 2), (1, 4, 1), (5, 7, 1)]),
            (3, vec![(0, 2, 1); 4]),
            (2, vec![(0, 20, 1), (1, 4, 2), (5, 8, 2), (9, 12, 2), (13, 16, 2)]),
            (4, vec![(0, 30, 2), (1, 6, 3), (7, 12, 3), (13, 18, 3), (19, 24, 3)]),
        ];
        for (g, jobs) in cases {
            let (canon, sol, top, rounded) = full_pipeline(g, jobs);
            let typing = classify(&canon, &sol, &top, &rounded);
            check_lemma_4_9(&canon, &typing).unwrap();
            let triples = build_triples_from_typing(&canon, &typing);
            check_triples_cover(&typing, &triples).unwrap();
        }
    }

    /// Synthetic typings: the LP rarely leaves C₁ nodes on constructible
    /// instances (every C node's round-up budget at its first ≥2-mass
    /// ancestor is positive — consistent with the paper's Lemma 4.7 case
    /// analysis), so the triple-construction code paths are additionally
    /// driven with hand-assigned types on real forests.
    #[test]
    fn synthetic_triples_wide_forest() {
        // Root with 6 child windows; I = the 6 children.
        let jobs: Vec<(i64, i64, i64)> =
            (0..6).map(|i| (3 * i, 3 * i + 2, 1)).chain(std::iter::once((0, 18, 1))).collect();
        let inst = Instance::new(3, jobs.into_iter().map(|(r, d, p)| Job::new(r, d, p)).collect())
            .unwrap();
        let forest = Forest::build(&inst).unwrap();
        let canon = canonicalize(&forest, &inst);
        let children: Vec<usize> = (0..canon.num_nodes())
            .filter(|&i| {
                !canon.nodes[i].is_virtual
                    && canon.nodes[i].interval.1 - canon.nodes[i].interval.0 == 2
            })
            .collect();
        assert_eq!(children.len(), 6);
        // 2 C1 and 4 C2 nodes, placed so the counting lemma's hypothesis
        // holds in every binarization subtree (left-deep virtual chain):
        // a C1 only after two C2s to its left.
        let pattern =
            [NodeType::C2, NodeType::C2, NodeType::C1, NodeType::C2, NodeType::C2, NodeType::C1];
        let typing =
            Typing { types: children.iter().enumerate().map(|(k, &n)| (n, pattern[k])).collect() };
        check_lemma_4_9(&canon, &typing).unwrap();
        let triples = build_triples_from_typing(&canon, &typing);
        check_triples_cover(&typing, &triples).unwrap();
        assert_eq!(triples.triples.len(), 2);
        let (ok, total) = check_lemma_4_11(&canon, &triples.triples);
        assert_eq!(ok, total);
    }

    #[test]
    fn synthetic_triples_brother_pairs_stay_together() {
        // Root with three pairs of sibling windows: each pair (C1, C2)
        // is a brother pair; the third C2 comes from elsewhere.
        let mut jobs: Vec<(i64, i64, i64)> = Vec::new();
        for b in 0..3i64 {
            jobs.push((5 * b, 5 * b + 2, 1)); // left sibling
            jobs.push((5 * b + 2, 5 * b + 4, 1)); // right sibling
            jobs.push((5 * b, 5 * b + 4, 1)); // their parent window
        }
        jobs.push((0, 15, 1)); // root
        let inst = Instance::new(3, jobs.into_iter().map(|(r, d, p)| Job::new(r, d, p)).collect())
            .unwrap();
        let forest = Forest::build(&inst).unwrap();
        let canon = canonicalize(&forest, &inst);
        // Identify the sibling windows per block.
        let find = |lo: i64, hi: i64| {
            (0..canon.num_nodes())
                .find(|&i| canon.nodes[i].interval == (lo, hi) && !canon.nodes[i].is_virtual)
                .unwrap()
        };
        let mut types = Vec::new();
        for b in 0..3i64 {
            types.push((find(5 * b, 5 * b + 2), NodeType::C1));
            types.push((find(5 * b + 2, 5 * b + 4), NodeType::C2));
        }
        // Three extra C2s so n2 ≥ 2·n1 (use a second job window trick:
        // reuse parents as C2 carriers is not possible — parents are
        // ancestors of I; instead mark only 1 C1 + its brother C2 + the
        // other two blocks' siblings all C2).
        let typing = Typing {
            types: types
                .into_iter()
                .enumerate()
                .map(|(k, (n, t))| if k == 0 { (n, t) } else { (n, NodeType::C2) })
                .collect(),
        };
        check_lemma_4_9(&canon, &typing).unwrap();
        let triples = build_triples_from_typing(&canon, &typing);
        check_triples_cover(&typing, &triples).unwrap();
        assert_eq!(triples.triples.len(), 1);
        // The C1's brother must be inside its triple (pair not broken).
        let (i1, i2, i3) = triples.triples[0];
        let brother_of_i1 = (0..canon.num_nodes())
            .find(|&n| {
                n != i1
                    && canon.nodes[n].parent == canon.nodes[i1].parent
                    && canon.nodes[i1].parent.is_some()
            })
            .unwrap();
        assert!(i2 == brother_of_i1 || i3 == brother_of_i1);
    }

    #[test]
    fn lemma_4_1_matches_flow_oracle_both_directions() {
        use crate::feasibility::counts_feasible;
        // Enumerate all count vectors z on small instances; Lemma 4.1's
        // condition and max-flow feasibility must agree exactly.
        let shapes: Cases = vec![
            (2, vec![(0, 4, 2), (1, 3, 1)]),
            (1, vec![(0, 3, 1), (0, 3, 1), (1, 2, 1)]),
            (2, vec![(0, 6, 2), (1, 3, 2), (4, 6, 1)]),
            (3, vec![(0, 2, 1); 4]),
        ];
        for (g, jobs) in shapes {
            let inst = Instance::new(g, jobs.iter().map(|&(r, d, p)| Job::new(r, d, p)).collect())
                .unwrap();
            let forest = Forest::build(&inst).unwrap();
            let lens: Vec<i64> = forest.nodes.iter().map(|n| n.len()).collect();
            // Iterate the full z-grid (small by construction).
            let mut z = vec![0i64; lens.len()];
            loop {
                let flow_ok = counts_feasible(&forest, &inst, &z);
                let lemma_ok = check_lemma_4_1(&forest, &inst, &z, 8).is_ok();
                assert_eq!(flow_ok, lemma_ok, "disagreement at z = {z:?} on {jobs:?} (g = {g})");
                // Next grid point.
                let mut idx = 0;
                loop {
                    if idx == z.len() {
                        break;
                    }
                    if z[idx] < lens[idx] {
                        z[idx] += 1;
                        break;
                    }
                    z[idx] = 0;
                    idx += 1;
                }
                if idx == z.len() {
                    break;
                }
            }
        }
    }

    #[test]
    fn lemma_4_1_violating_subset_is_reported() {
        // Infeasible z must come with a concrete witness J'.
        let inst = Instance::new(1, vec![Job::new(0, 2, 1), Job::new(0, 2, 1)]).unwrap();
        let forest = Forest::build(&inst).unwrap();
        let z = vec![1i64]; // one slot for two unit jobs at g = 1
        let witness = check_lemma_4_1(&forest, &inst, &z, 8).unwrap_err();
        assert_eq!(witness, vec![0, 1]);
    }

    #[test]
    fn typing_partitions_i() {
        let (canon, sol, top, rounded) =
            full_pipeline(2, vec![(0, 12, 3), (1, 6, 2), (2, 5, 1), (7, 11, 2)]);
        let typing = classify(&canon, &sol, &top, &rounded);
        assert_eq!(typing.types.len(), top.len());
        let total = typing.of(NodeType::B).len()
            + typing.of(NodeType::C1).len()
            + typing.of(NodeType::C2).len();
        assert_eq!(total, top.len());
    }
}
