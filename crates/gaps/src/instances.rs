//! Nested integrality-gap instance families.

use atsched_core::instance::{Instance, Job};

/// The Lemma 5.1 instance: one long job with `p = g` and window
/// `[0, 2g)`, plus `g` groups of `g` unit jobs, group `i` windowed on
/// `[2i, 2i+2)`.
///
/// * Fractional (both the CW LP and our strengthened LP admit it):
///   `g + 2` open slots.
/// * Integral optimum: `g + ⌈g/2⌉` (proved in the paper; verified against
///   the exact solver in tests for small `g`).
/// * Ratio → 3/2 as `g → ∞`.
pub fn lemma51_instance(g: i64) -> Instance {
    assert!(g >= 1);
    let mut jobs = vec![Job::new(0, 2 * g, g)];
    for i in 0..g {
        for _ in 0..g {
            jobs.push(Job::new(2 * i, 2 * i + 2, 1));
        }
    }
    Instance::new(g, jobs).expect("valid by construction")
}

/// Known integral optimum of [`lemma51_instance`]: `g + ⌈g/2⌉`.
pub fn lemma51_integral_opt(g: i64) -> i64 {
    g + (g + 1) / 2
}

/// The paper's explicit fractional solution for [`lemma51_instance`]
/// costs `g + 2` slots, so every LP it satisfies (Călinescu–Wang's, and
/// the natural LP) has optimum ≤ `g + 2`. This is an *upper bound* on
/// the LP value — exactly what the integrality-gap lower bound
/// `OPT / (g+2) → 3/2` needs.
pub fn lemma51_fractional_upper(g: i64) -> i64 {
    g + 2
}

/// The §1 gap-2 family for the *natural* LP: `g + 1` unit jobs sharing
/// the window `[0, 2)`.
///
/// * Natural LP optimum: `(g+1)/g = 1 + 1/g` (open both slots to extent
///   `(g+1)/(2g)`).
/// * Integral optimum: 2.
/// * Ratio `2g/(g+1) → 2`. Our strengthened LP values it at exactly 2
///   via the `OPT_i ≥ 2` ceiling constraint.
pub fn gap2_instance(g: i64) -> Instance {
    assert!(g >= 1);
    let jobs = vec![Job::new(0, 2, 1); (g + 1) as usize];
    Instance::new(g, jobs).expect("valid by construction")
}

/// Width-`k` generalization of [`gap2_instance`]: `(k-1)·g + 1` unit jobs
/// sharing the window `[0, k)`.
///
/// * Integral optimum: `k` (volume `(k-1)g + 1 > (k-1)g`).
/// * Volume bound / natural LP: `(k-1) + 1/g`.
/// * The paper's LP (ceilings up to `OPT_i ≥ 3`) reaches `max(3, (k-1) +
///   1/g)` — still a gap of ≈ `k/(k-1)` for `k ≥ 4`.
/// * With the *extension* ceilings up to depth `k`, the LP closes to
///   exactly `k` (experiment E11).
pub fn gapk_instance(g: i64, k: i64) -> Instance {
    assert!(g >= 1 && k >= 1);
    let jobs = vec![Job::new(0, k, 1); ((k - 1) * g + 1) as usize];
    Instance::new(g, jobs).expect("valid by construction")
}

#[cfg(test)]
mod tests {
    use super::*;
    use atsched_baselines::exact::nested_opt;

    #[test]
    fn lemma51_shape() {
        let inst = lemma51_instance(3);
        assert_eq!(inst.num_jobs(), 1 + 9);
        assert_eq!(inst.horizon(), Some((0, 6)));
        assert!(inst.check_laminar().is_ok());
        assert!(inst.is_feasible_all_open());
    }

    #[test]
    fn lemma51_integral_opt_matches_exact_solver() {
        for g in 1..=3i64 {
            let inst = lemma51_instance(g);
            let s = nested_opt(&inst, 0).unwrap();
            assert_eq!(s.active_time() as i64, lemma51_integral_opt(g), "g = {g}");
        }
    }

    #[test]
    fn gapk_shape_and_opt() {
        for (g, k) in [(2i64, 4i64), (3, 4), (2, 5)] {
            let inst = gapk_instance(g, k);
            assert!(inst.check_laminar().is_ok());
            let s = nested_opt(&inst, 0).unwrap();
            assert_eq!(s.active_time() as i64, k, "g={g} k={k}");
        }
        assert_eq!(gapk_instance(3, 2), super::gap2_instance(3));
    }

    #[test]
    fn gap2_shape_and_opt() {
        for g in 1..=5i64 {
            let inst = gap2_instance(g);
            assert!(inst.check_laminar().is_ok());
            let s = nested_opt(&inst, 0).unwrap();
            assert_eq!(s.active_time(), 2, "g = {g}");
        }
    }
}
