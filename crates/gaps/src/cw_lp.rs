//! Călinescu–Wang's strengthened per-slot LP (Figure 3 of the paper).
//!
//! On top of the natural relaxation it adds, for every time interval
//! `I = [t₁, t₂)`, the *ceiling constraint*
//!
//! ```text
//! Σ_{t ∈ I} x(t)  ≥  ⌈ (Σ_j q_j(I)) / g ⌉
//! ```
//!
//! where `q_j(I)` is the number of slots job `j` must occupy inside `I`
//! even if every slot outside `I` were active:
//! `q_j(I) = max(0, p_j − |window_j \ I|)`.
//!
//! The paper (Lemma 5.1) shows this LP still has a gap of at least 3/2 on
//! nested instances, via [`crate::instances::lemma51_instance`].

use crate::natural_lp::{build as build_natural, PerSlotLp};
use atsched_core::instance::Instance;
use atsched_lp::{Cmp, LpStatus, Scalar};

/// `q_j(I)`: mandatory occupancy of window `[r, d)` job with processing
/// `p` inside the interval `[t1, t2)`.
pub fn q_j(r: i64, d: i64, p: i64, t1: i64, t2: i64) -> i64 {
    let window = d - r;
    let overlap = (d.min(t2) - r.max(t1)).max(0);
    (p - (window - overlap)).max(0)
}

/// Build the CW LP: natural LP + ceiling constraints over all endpoint
/// pairs (it suffices to use window endpoints as interval boundaries —
/// sliding `t₁`/`t₂` between endpoints cannot increase any `q_j`, so
/// every other interval's constraint is dominated by an endpoint one).
pub fn build<S: Scalar>(inst: &Instance) -> PerSlotLp<S> {
    let mut lp = build_natural::<S>(inst);
    let mut endpoints: Vec<i64> = inst.jobs.iter().flat_map(|j| [j.release, j.deadline]).collect();
    endpoints.sort_unstable();
    endpoints.dedup();
    for (ai, &t1) in endpoints.iter().enumerate() {
        for &t2 in &endpoints[ai + 1..] {
            let demand: i64 =
                inst.jobs.iter().map(|j| q_j(j.release, j.deadline, j.processing, t1, t2)).sum();
            if demand == 0 {
                continue;
            }
            let rhs = (demand + inst.g - 1) / inst.g; // ⌈demand / g⌉
            let terms: Vec<_> = lp
                .x_vars
                .iter()
                .filter(|&&(t, _)| t1 <= t && t < t2)
                .map(|&(_, v)| (v, S::one()))
                .collect();
            lp.model.add_constraint(terms, Cmp::Ge, S::from_i64(rhs));
        }
    }
    lp
}

/// Solve the CW LP; `None` when infeasible.
pub fn value<S: Scalar>(inst: &Instance) -> Option<S> {
    let lp = build::<S>(inst);
    let sol = lp.model.solve().expect("simplex failure");
    match sol.status {
        LpStatus::Optimal => Some(sol.objective),
        LpStatus::Infeasible => None,
        LpStatus::Unbounded => unreachable!("min Σx ≥ 0"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instances::{gap2_instance, lemma51_fractional_upper, lemma51_instance};
    use crate::natural_lp;
    use atsched_core::instance::Job;
    use atsched_num::Ratio;

    #[test]
    fn q_j_cases() {
        // window [0,4), p = 3.
        assert_eq!(q_j(0, 4, 3, 0, 4), 3); // whole window
        assert_eq!(q_j(0, 4, 3, 1, 3), 1); // 2 outside → at least 1 inside
        assert_eq!(q_j(0, 4, 3, 3, 4), 0); // 3 outside → possibly none
        assert_eq!(q_j(0, 4, 3, 5, 9), 0); // disjoint
        assert_eq!(q_j(2, 4, 2, 0, 3), 1); // rigid-ish partial
    }

    #[test]
    fn cw_closes_gap2_family() {
        // The ceiling constraint on I = [0,2) demands ⌈(g+1)/g⌉ = 2 slots:
        // the CW LP values the family at its integral optimum.
        for g in 2..=4i64 {
            let inst = gap2_instance(g);
            assert_eq!(value::<Ratio>(&inst), Some(Ratio::from_i64(2)), "g = {g}");
        }
    }

    #[test]
    fn cw_at_least_natural() {
        let cases = vec![
            Instance::new(2, vec![Job::new(0, 6, 2), Job::new(1, 3, 1)]).unwrap(),
            lemma51_instance(2),
            gap2_instance(3),
        ];
        for inst in cases {
            let n = natural_lp::value::<Ratio>(&inst).unwrap();
            let c = value::<Ratio>(&inst).unwrap();
            assert!(c >= n);
        }
    }

    #[test]
    fn cw_on_lemma51_is_between_bounds() {
        for g in 2..=3i64 {
            let inst = lemma51_instance(g);
            let v = value::<Ratio>(&inst).unwrap();
            // ≥ natural LP value (g+1); ≤ the paper's explicit g+2 solution.
            assert!(v >= Ratio::from_i64(g + 1), "g = {g}: {v}");
            assert!(v <= Ratio::from_i64(lemma51_fractional_upper(g)), "g = {g}: {v}");
        }
    }

    #[test]
    fn infeasible_reported() {
        let inst = Instance::new(1, vec![Job::new(0, 2, 2), Job::new(0, 2, 2)]).unwrap();
        assert_eq!(value::<Ratio>(&inst), None);
    }
}
