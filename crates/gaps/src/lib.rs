//! # atsched-gaps
//!
//! Integrality-gap studies (paper §5 and the §1 discussion):
//!
//! * [`natural_lp`] — the natural per-slot LP relaxation whose gap is 2
//!   even on nested instances.
//! * [`cw_lp`] — Călinescu–Wang's strengthened per-slot LP (Figure 3 of
//!   the paper), with the `q_j(I)` ceiling constraints.
//! * [`instances`] — the nested gap families: the Lemma 5.1 instance
//!   (gap → 3/2 for both strengthened LPs) and the `g+1` unit-jobs
//!   family (gap → 2 for the natural LP).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cw_lp;
pub mod instances;
pub mod natural_lp;
pub mod search;
