//! Empirical integrality-gap search.
//!
//! The paper brackets the strengthened tree LP's integrality gap on
//! nested instances between 3/2 (Lemma 5.1-style constructions) and 5/3
//! (the algorithm's analysis — Lemma 3.3's 9/5 uses a 5/3-gap bound on
//! the LP: "the integrality gap of our LP on the nested version is at
//! most 5/3"). This module searches random laminar instances for large
//! `OPT / LP` ratios, reporting the best witnesses found. A witness above
//! 3/2 would localize the true gap inside the open interval; experiment
//! E12 records what the search actually finds.

use atsched_baselines::exact::nested_opt;
use atsched_core::instance::Instance;
use atsched_core::solver::{solve_nested, LpBackend, SolverOptions};
use atsched_workloads::generators::{random_laminar, LaminarConfig};

/// Search configuration.
#[derive(Debug, Clone)]
pub struct SearchConfig {
    /// Random seeds to try.
    pub seeds: u64,
    /// Machine parallelism values to sweep.
    pub gs: Vec<i64>,
    /// Horizon for generated instances (kept small so exact OPT is fast).
    pub horizon: i64,
    /// How many top candidates to re-verify with the exact LP backend.
    pub exact_top: usize,
}

impl Default for SearchConfig {
    fn default() -> Self {
        SearchConfig { seeds: 200, gs: vec![2, 3, 4], horizon: 14, exact_top: 5 }
    }
}

/// A gap witness: an instance together with its LP value and optimum.
#[derive(Debug, Clone)]
pub struct GapWitness {
    /// The instance.
    pub instance: Instance,
    /// Tree-LP optimum (exact for the re-verified top candidates).
    pub lp: f64,
    /// Integral optimum.
    pub opt: i64,
    /// `opt / lp`.
    pub ratio: f64,
}

/// Run the search; returns witnesses sorted by descending ratio (at most
/// `exact_top`, all re-verified with the exact rational LP).
pub fn search_tree_lp_gap(cfg: &SearchConfig) -> Vec<GapWitness> {
    let mut candidates: Vec<GapWitness> = Vec::new();
    for &g in &cfg.gs {
        for seed in 0..cfg.seeds {
            let gen_cfg = LaminarConfig {
                g,
                horizon: cfg.horizon,
                max_depth: 3,
                max_children: 3,
                jobs_per_node: (1, 2),
                max_processing: 3,
                child_percent: 65,
            };
            let inst = random_laminar(&gen_cfg, seed);
            let float = SolverOptions { backend: LpBackend::Float, ..SolverOptions::exact() };
            let Ok(sol) = solve_nested(&inst, &float) else { continue };
            let lp = sol.stats.lp_objective;
            let Some(opt) = nested_opt(&inst, lp.ceil() as i64) else { continue };
            let opt = opt.active_time() as i64;
            let ratio = opt as f64 / lp.max(1e-9);
            if ratio > 1.0 + 1e-9 {
                candidates.push(GapWitness { instance: inst, lp, opt, ratio });
            }
        }
    }
    candidates.sort_by(|a, b| b.ratio.partial_cmp(&a.ratio).expect("finite ratios"));
    candidates.truncate(cfg.exact_top);
    // Re-verify the survivors with exact rational arithmetic.
    for w in &mut candidates {
        let exact = solve_nested(&w.instance, &SolverOptions::exact())
            .expect("was feasible with the float backend");
        w.lp = exact.stats.lp_objective;
        w.ratio = w.opt as f64 / w.lp.max(1e-9);
    }
    candidates.sort_by(|a, b| b.ratio.partial_cmp(&a.ratio).expect("finite ratios"));
    candidates
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn search_finds_known_gap_regime() {
        // A tiny search must (a) terminate, (b) produce only valid
        // witnesses with OPT ≥ LP, (c) never exceed the algorithm's 9/5
        // certificate (the LP gap is provably < 9/5 on any instance the
        // solver handles: ALG ≤ (9/5)·LP and ALG ≥ OPT).
        let cfg = SearchConfig { seeds: 25, gs: vec![2, 3], horizon: 12, exact_top: 3 };
        let out = search_tree_lp_gap(&cfg);
        for w in &out {
            assert!(w.ratio >= 1.0);
            assert!(w.ratio < 1.8 + 1e-6, "gap witness beats the 9/5 analysis?!");
            assert!(w.opt as f64 >= w.lp - 1e-6);
        }
        // Sorted descending.
        for pair in out.windows(2) {
            assert!(pair[0].ratio >= pair[1].ratio);
        }
    }

    #[test]
    fn lemma51_family_beats_random_search_typically() {
        // The crafted family reaches OPT/LP = (g + ⌈g/2⌉)/(g+1); compare
        // with whatever a small random search finds.
        use crate::instances::{lemma51_instance, lemma51_integral_opt};
        let inst = lemma51_instance(4);
        let lp = solve_nested(&inst, &SolverOptions::exact()).unwrap().stats.lp_objective;
        let crafted = lemma51_integral_opt(4) as f64 / lp;
        assert!(crafted > 1.19, "crafted family ratio: {crafted}");
    }
}
