//! The natural per-slot LP relaxation of active-time scheduling
//! (Chang–Khuller–Mukherjee'17): open extents `x(t) ∈ [0,1]` per slot,
//! fractional assignments `y(t,j)`, no ceiling constraints.
//!
//! Its integrality gap is 2 even on nested instances (paper §1) — the
//! witness family is [`crate::instances::gap2_instance`].
//!
//! Jobs with identical `(r, d, p)` are aggregated into groups (`y(t,G) ≤
//! q·x(t)`), which is exact for the same symmetry reason as in
//! `atsched_core::lp_model` and keeps the adversarial families tractable
//! for the exact rational simplex.

use atsched_core::instance::Instance;
use atsched_lp::{Cmp, LpStatus, Model, Scalar, VarId};

/// A per-slot LP plus its variable layout.
#[derive(Debug, Clone)]
pub struct PerSlotLp<S> {
    /// The model (minimize `Σ x(t)`).
    pub model: Model<S>,
    /// `(slot, var)` pairs.
    pub x_vars: Vec<(i64, VarId)>,
    /// Per (slot index, group index) assignment variables.
    pub y_vars: Vec<Vec<(usize, VarId)>>,
    /// Job groups: `(release, deadline, processing, count)`.
    pub groups: Vec<(i64, i64, i64, i64)>,
}

/// Group identical jobs: returns `(r, d, p, count)` tuples.
pub fn group_identical(inst: &Instance) -> Vec<(i64, i64, i64, i64)> {
    let mut groups: Vec<(i64, i64, i64, i64)> = Vec::new();
    for j in &inst.jobs {
        match groups
            .iter_mut()
            .find(|g| g.0 == j.release && g.1 == j.deadline && g.2 == j.processing)
        {
            Some(g) => g.3 += 1,
            None => groups.push((j.release, j.deadline, j.processing, 1)),
        }
    }
    groups
}

/// Build the natural LP (no ceiling constraints).
pub fn build<S: Scalar>(inst: &Instance) -> PerSlotLp<S> {
    let slots = inst.candidate_slots();
    let groups = group_identical(inst);
    let mut model: Model<S> = Model::new();
    let x_vars: Vec<(i64, VarId)> =
        slots.iter().map(|&t| (t, model.add_var(format!("x{t}"), S::one()))).collect();
    let mut y_vars: Vec<Vec<(usize, VarId)>> = vec![Vec::new(); slots.len()];
    for (gid, &(r, d, _, _)) in groups.iter().enumerate() {
        for (k, &(t, _)) in x_vars.iter().enumerate() {
            if r <= t && t < d {
                let v = model.add_var(format!("y{t}g{gid}"), S::zero());
                y_vars[k].push((gid, v));
            }
        }
    }
    // Jobs fully scheduled: Σ_t y(t,G) ≥ q·p.
    for (gid, &(_, _, p, q)) in groups.iter().enumerate() {
        let mut terms = Vec::new();
        for per_slot in &y_vars {
            if let Some((_, v)) = per_slot.iter().find(|(g, _)| *g == gid) {
                terms.push((*v, S::one()));
            }
        }
        model.add_constraint(terms, Cmp::Ge, S::from_i64(q * p));
    }
    // Capacity: Σ_G y(t,G) ≤ g·x(t).
    for (k, per_slot) in y_vars.iter().enumerate() {
        let mut terms: Vec<(VarId, S)> = per_slot.iter().map(|(_, v)| (*v, S::one())).collect();
        terms.push((x_vars[k].1, S::from_i64(-inst.g)));
        model.add_constraint(terms, Cmp::Le, S::zero());
    }
    // Per-slot job share: y(t,G) ≤ q·x(t); and x(t) ≤ 1.
    for (k, per_slot) in y_vars.iter().enumerate() {
        for (gid, v) in per_slot {
            let q = groups[*gid].3;
            model.add_constraint(
                vec![(*v, S::one()), (x_vars[k].1, S::from_i64(-q))],
                Cmp::Le,
                S::zero(),
            );
        }
    }
    for &(_, v) in &x_vars {
        model.add_constraint(vec![(v, S::one())], Cmp::Le, S::one());
    }
    PerSlotLp { model, x_vars, y_vars, groups }
}

/// Solve the natural LP; `None` when infeasible.
pub fn value<S: Scalar>(inst: &Instance) -> Option<S> {
    let lp = build::<S>(inst);
    let sol = lp.model.solve().expect("simplex failure");
    match sol.status {
        LpStatus::Optimal => Some(sol.objective),
        LpStatus::Infeasible => None,
        LpStatus::Unbounded => unreachable!("min Σx ≥ 0"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instances::{gap2_instance, lemma51_instance};
    use atsched_core::instance::Job;
    use atsched_num::Ratio;

    #[test]
    fn single_job_lp_equals_p() {
        let inst = Instance::new(1, vec![Job::new(0, 5, 3)]).unwrap();
        assert_eq!(value::<Ratio>(&inst), Some(Ratio::from_i64(3)));
    }

    #[test]
    fn gap2_family_value_is_one_plus_one_over_g() {
        for g in 2..=5i64 {
            let inst = gap2_instance(g);
            let v = value::<Ratio>(&inst).unwrap();
            assert_eq!(v, Ratio::from_i64(1) + Ratio::from_frac(1, g), "g = {g}");
        }
    }

    #[test]
    fn lemma51_value_is_g_plus_one() {
        // Volume bound (g²+g)/g = g+1 is attained fractionally.
        for g in 2..=3i64 {
            let inst = lemma51_instance(g);
            let v = value::<Ratio>(&inst).unwrap();
            assert_eq!(v, Ratio::from_i64(g + 1), "g = {g}");
        }
    }

    #[test]
    fn infeasible_reported() {
        let inst = Instance::new(1, vec![Job::new(0, 2, 1); 3]).unwrap();
        assert_eq!(value::<Ratio>(&inst), None);
    }

    #[test]
    fn grouping_counts() {
        let inst = Instance::new(2, vec![Job::new(0, 2, 1), Job::new(0, 2, 1), Job::new(0, 3, 1)])
            .unwrap();
        let g = group_identical(&inst);
        assert_eq!(g.len(), 2);
        assert!(g.contains(&(0, 2, 1, 2)));
        assert!(g.contains(&(0, 3, 1, 1)));
    }
}
