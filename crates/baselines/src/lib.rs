//! # atsched-baselines
//!
//! Baseline and exact algorithms for active-time scheduling, used as
//! comparison points and ground truth for the 9/5-approximation:
//!
//! * [`greedy`] — minimal-feasible greedy deactivation (the CKM'17
//!   3-approximation) with configurable scan orders, including the
//!   directional scans standing in for Kumar–Khuller's 2-approximation
//!   (see DESIGN.md, "Substitutions").
//! * [`unit_opt`] — exact polynomial algorithm for unit processing times
//!   (the CGK'14 claim), via capacitated interval stabbing.
//! * [`exact`] — exact optimum by branch-and-bound over per-node open
//!   counts (laminar instances) and by brute force over slot subsets
//!   (any instance; small horizons only).
//! * [`bounds`] — combinatorial lower bounds.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bounds;
pub mod exact;
pub mod greedy;
pub mod incremental;
pub mod unit_opt;
