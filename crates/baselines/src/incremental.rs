//! Warm-started incremental feasibility for greedy deactivation.
//!
//! **Scope note.** "Incremental" here means incremental *within one
//! greedy solve*: the max-flow feasibility oracle is kept warm while
//! slots close one at a time. It is unrelated to incremental solving
//! *across instance revisions* — re-solving after jobs are added,
//! removed, or re-windowed — which lives in the engine's session layer
//! (`atsched_engine::Session`, `Engine::open_session`, DESIGN.md §12).
//!
//! The plain greedy re-runs a full max-flow (cost `O(V·E)`-ish, `V = Σp`)
//! for *every* candidate slot. This engine keeps one flow alive: to test
//! closing slot `t` it cancels only the ≤ `g` units currently routed
//! through `t`, zeroes the slot's sink capacity, and re-augments — the
//! re-augmentation needs at most `g` paths instead of `Σp`. Feasibility
//! answers are identical to the from-scratch test (max-flow value is
//! state-independent), so `minimal_feasible_fast` returns exactly the
//! same open set as [`crate::greedy::minimal_feasible`] for the same scan
//! order; the tests assert this.

use crate::greedy::{GreedyResult, ScanOrder};
use atsched_core::instance::Instance;
use atsched_core::schedule::Schedule;
use atsched_flow::{EdgeRef, FlowNetwork};

/// A live scheduling flow supporting incremental slot closing.
pub struct IncrementalScheduler {
    net: FlowNetwork,
    source: usize,
    sink: usize,
    job_edges: Vec<EdgeRef>,
    slot_edges: Vec<EdgeRef>,
    /// Per slot index: `(job, edge)` pairs.
    slot_jobs: Vec<Vec<(usize, EdgeRef)>>,
    slots: Vec<i64>,
    open: Vec<bool>,
    volume: i64,
    g: i64,
}

impl IncrementalScheduler {
    /// Build the flow over all candidate slots; `None` when infeasible.
    pub fn new(inst: &Instance) -> Option<Self> {
        let slots = inst.candidate_slots();
        let n = inst.num_jobs();
        let source = 0usize;
        let sink = 1usize;
        let job_base = 2usize;
        let slot_base = 2 + n;
        let mut net = FlowNetwork::new(2 + n + slots.len());
        let mut job_edges = Vec::with_capacity(n);
        let mut slot_jobs: Vec<Vec<(usize, EdgeRef)>> = vec![Vec::new(); slots.len()];
        for (j, job) in inst.jobs.iter().enumerate() {
            job_edges.push(net.add_edge(source, job_base + j, job.processing));
            let lo = slots.partition_point(|&x| x < job.release);
            let hi = slots.partition_point(|&x| x < job.deadline);
            for (k, sj) in slot_jobs.iter_mut().enumerate().take(hi).skip(lo) {
                let e = net.add_edge(job_base + j, slot_base + k, 1);
                sj.push((j, e));
            }
        }
        let slot_edges: Vec<EdgeRef> =
            (0..slots.len()).map(|k| net.add_edge(slot_base + k, sink, inst.g)).collect();
        let volume = inst.total_volume();
        if net.max_flow(source, sink) != volume {
            return None;
        }
        Some(IncrementalScheduler {
            net,
            source,
            sink,
            job_edges,
            slot_edges,
            slot_jobs,
            open: vec![true; slots.len()],
            slots,
            volume,
            g: inst.g,
        })
    }

    /// Candidate slots, in order (parallel to the `open` flags).
    pub fn slots(&self) -> &[i64] {
        &self.slots
    }

    /// Total job volume the flow keeps saturated.
    pub fn volume(&self) -> i64 {
        self.volume
    }

    /// Try closing slot index `k` permanently; returns whether it stuck.
    pub fn try_close(&mut self, k: usize) -> bool {
        assert!(self.open[k], "slot already closed");
        // Cancel every unit routed through the slot.
        let mut displaced = 0i64;
        for (j, e) in self.slot_jobs[k].clone() {
            let f = self.net.flow_on(e);
            if f > 0 {
                debug_assert_eq!(f, 1);
                self.net.decrease_flow(self.job_edges[j], 1);
                self.net.decrease_flow(e, 1);
                self.net.decrease_flow(self.slot_edges[k], 1);
                displaced += 1;
            }
        }
        self.net.set_capacity(self.slot_edges[k], 0);
        let regained = self.net.max_flow(self.source, self.sink);
        if regained == displaced {
            self.open[k] = false;
            return true;
        }
        debug_assert!(regained < displaced);
        // Restore and re-augment back to a maximum flow.
        self.net.set_capacity(self.slot_edges[k], self.g);
        let back = self.net.max_flow(self.source, self.sink);
        debug_assert_eq!(regained + back, displaced, "flow restoration failed");
        false
    }

    /// Surviving open slots (sorted).
    pub fn open_slots(&self) -> Vec<i64> {
        self.slots.iter().zip(&self.open).filter(|(_, &o)| o).map(|(&t, _)| t).collect()
    }

    /// Read the current assignment (jobs per open slot) off the flow.
    pub fn assignment(&self) -> Vec<Vec<usize>> {
        let mut out = Vec::new();
        for (k, &is_open) in self.open.iter().enumerate() {
            if !is_open {
                continue;
            }
            let mut jobs: Vec<usize> = self.slot_jobs[k]
                .iter()
                .filter(|(_, e)| self.net.flow_on(*e) > 0)
                .map(|(j, _)| *j)
                .collect();
            jobs.sort_unstable();
            out.push(jobs);
        }
        out
    }
}

/// Drop-in fast variant of
/// [`minimal_feasible`](crate::greedy::minimal_feasible): identical
/// output, one warm-started flow instead of `O(T)` cold ones.
pub fn minimal_feasible_fast(inst: &Instance, order: ScanOrder) -> Option<GreedyResult> {
    let mut engine = IncrementalScheduler::new(inst)?;
    let examined = engine.slots().len();
    let mut scan: Vec<usize> = (0..examined).collect();
    match order {
        ScanOrder::LeftToRight => {}
        ScanOrder::RightToLeft => scan.reverse(),
        ScanOrder::Shuffled(seed) => crate::greedy::shuffle_indices(&mut scan, seed),
    }
    let mut deactivated = 0usize;
    for k in scan {
        if engine.try_close(k) {
            deactivated += 1;
        }
    }
    let mut schedule = Schedule::new(engine.open_slots(), engine.assignment());
    schedule.compact();
    debug_assert!(schedule.verify(inst).is_ok());
    Some(GreedyResult { schedule, examined, deactivated })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Test-case table: (g, [(release, deadline, processing)]).
    type Cases = Vec<(i64, Vec<(i64, i64, i64)>)>;
    use crate::greedy::minimal_feasible;
    use atsched_core::instance::Job;
    use atsched_workloads::generators::{random_laminar, LaminarConfig};

    fn inst(g: i64, jobs: Vec<(i64, i64, i64)>) -> Instance {
        Instance::new(g, jobs.into_iter().map(|(r, d, p)| Job::new(r, d, p)).collect()).unwrap()
    }

    #[test]
    fn infeasible_returns_none() {
        let i = inst(1, vec![(0, 2, 1); 3]);
        assert!(minimal_feasible_fast(&i, ScanOrder::LeftToRight).is_none());
    }

    #[test]
    fn matches_slow_greedy_handpicked() {
        let cases: Cases = vec![
            (1, vec![(0, 6, 2)]),
            (2, vec![(0, 10, 2), (1, 4, 1), (1, 4, 1), (5, 9, 2), (6, 8, 1)]),
            (3, vec![(0, 2, 1); 4]),
            (2, vec![(0, 12, 4), (2, 6, 2), (7, 11, 2)]),
        ];
        for (g, jobs) in cases {
            let i = inst(g, jobs.clone());
            for order in [ScanOrder::LeftToRight, ScanOrder::RightToLeft, ScanOrder::Shuffled(5)] {
                let slow = minimal_feasible(&i, order).unwrap();
                let fast = minimal_feasible_fast(&i, order).unwrap();
                fast.schedule.verify(&i).unwrap();
                assert_eq!(slow.schedule.slots, fast.schedule.slots, "{jobs:?} order {order:?}");
                assert_eq!(slow.deactivated, fast.deactivated);
            }
        }
    }

    #[test]
    fn matches_slow_greedy_random() {
        for seed in 0..15u64 {
            let cfg = LaminarConfig { g: 3, horizon: 20, ..Default::default() };
            let i = random_laminar(&cfg, seed);
            for order in [ScanOrder::LeftToRight, ScanOrder::RightToLeft, ScanOrder::Shuffled(9)] {
                let slow = minimal_feasible(&i, order).unwrap();
                let fast = minimal_feasible_fast(&i, order).unwrap();
                assert_eq!(slow.schedule.slots, fast.schedule.slots, "seed {seed}");
            }
        }
    }

    #[test]
    fn failed_close_restores_flow() {
        // Tight instance where some closes must fail.
        let i = inst(1, vec![(0, 3, 3)]);
        let mut eng = IncrementalScheduler::new(&i).unwrap();
        assert!(!eng.try_close(0));
        assert!(!eng.try_close(1));
        assert!(!eng.try_close(2));
        // All still open, assignment complete.
        assert_eq!(eng.open_slots(), vec![0, 1, 2]);
        let mut s = Schedule::new(eng.open_slots(), eng.assignment());
        s.compact();
        s.verify(&i).unwrap();
    }
}
