//! Combinatorial lower bounds on the active-time optimum.

use atsched_core::instance::Instance;

/// `max_j p_j`: a single job already needs this many active slots.
pub fn longest_job_lb(inst: &Instance) -> i64 {
    inst.jobs.iter().map(|j| j.processing).max().unwrap_or(0)
}

/// The interval-volume bound: for every interval `[a, b)`, the jobs whose
/// windows lie inside it need `⌈(Σ p_j) / g⌉` slots *within* the
/// interval; the best such bound over all intervals (with endpoints drawn
/// from window endpoints) is a global lower bound.
pub fn interval_volume_lb(inst: &Instance) -> i64 {
    let mut endpoints: Vec<i64> = inst.jobs.iter().flat_map(|j| [j.release, j.deadline]).collect();
    endpoints.sort_unstable();
    endpoints.dedup();
    let mut best = 0i64;
    for (ai, &a) in endpoints.iter().enumerate() {
        for &b in &endpoints[ai + 1..] {
            let vol: i64 = inst
                .jobs
                .iter()
                .filter(|j| a <= j.release && j.deadline <= b)
                .map(|j| j.processing)
                .sum();
            if vol > 0 {
                best = best.max((vol + inst.g - 1) / inst.g);
            }
        }
    }
    best
}

/// The strongest combinatorial bound available here.
pub fn combined_lb(inst: &Instance) -> i64 {
    longest_job_lb(inst).max(interval_volume_lb(inst))
}

#[cfg(test)]
mod tests {
    use super::*;
    use atsched_core::instance::Job;

    fn inst(g: i64, jobs: Vec<(i64, i64, i64)>) -> Instance {
        Instance::new(g, jobs.into_iter().map(|(r, d, p)| Job::new(r, d, p)).collect()).unwrap()
    }

    #[test]
    fn longest_job() {
        assert_eq!(longest_job_lb(&inst(5, vec![(0, 9, 4), (0, 3, 1)])), 4);
        assert_eq!(longest_job_lb(&inst(1, vec![])), 0);
    }

    #[test]
    fn volume_in_subwindow_dominates() {
        // 5 unit jobs crammed into [2,4): needs ⌈5/2⌉ = 3 > window..., the
        // bound still reports 3 (the instance is infeasible, bounds don't
        // care).
        let i = inst(2, vec![(0, 10, 1), (2, 4, 1), (2, 4, 1), (2, 4, 1), (2, 4, 1)]);
        // Interval [0,10) holds volume 5 → ⌈5/2⌉ = 3 beats [2,4)'s 2.
        assert_eq!(interval_volume_lb(&i), 3);
        let i2 = inst(2, vec![(2, 6, 1); 5]);
        assert_eq!(interval_volume_lb(&i2), 3);
    }

    #[test]
    fn combined_takes_max() {
        let i = inst(3, vec![(0, 10, 6), (1, 3, 1)]);
        assert_eq!(combined_lb(&i), 6);
        let i2 = inst(1, vec![(0, 4, 1), (0, 4, 1), (0, 4, 1)]);
        assert_eq!(combined_lb(&i2), 3);
    }
}
