//! Minimal-feasible greedy deactivation.
//!
//! Chang–Khuller–Mukherjee (J. Scheduling 2017) prove that *any* minimal
//! feasible slot set is a 3-approximation; Kumar–Khuller (SPAA 2018 BA)
//! reach 2 by choosing deactivation candidates carefully. This module
//! implements the family with pluggable scan orders; see DESIGN.md
//! ("Substitutions") for how the directional scans stand in for the exact
//! KK rule.
//!
//! All variants start from every candidate slot open (feasibility
//! required), then repeatedly try to deactivate slots in scan order,
//! keeping a deactivation iff the remaining set stays feasible. The
//! result is minimal feasible by construction.

use atsched_core::feasibility::{extract_assignment, slots_feasible};
use atsched_core::instance::Instance;
use atsched_core::schedule::Schedule;

/// Order in which slots are offered for deactivation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScanOrder {
    /// Earliest slot first.
    LeftToRight,
    /// Latest slot first (empirically the strongest directional variant on
    /// the adversarial families).
    RightToLeft,
    /// Deterministic pseudo-random order from the given seed — the
    /// "arbitrary minimal feasible" 3-approximation of CKM'17.
    Shuffled(u64),
}

/// Result of the greedy.
#[derive(Debug, Clone)]
pub struct GreedyResult {
    /// Verified schedule on the surviving slots.
    pub schedule: Schedule,
    /// Slots examined (== candidate slots).
    pub examined: usize,
    /// Deactivations that stuck.
    pub deactivated: usize,
}

/// Run greedy deactivation. Returns `None` if the instance is infeasible
/// (even with all slots open).
pub fn minimal_feasible(inst: &Instance, order: ScanOrder) -> Option<GreedyResult> {
    let mut open = inst.candidate_slots();
    if !slots_feasible(inst, &open) {
        return None;
    }
    let examined = open.len();
    let mut scan: Vec<i64> = open.clone();
    match order {
        ScanOrder::LeftToRight => {}
        ScanOrder::RightToLeft => scan.reverse(),
        ScanOrder::Shuffled(seed) => shuffle(&mut scan, seed),
    }
    let mut deactivated = 0usize;
    for t in scan {
        let pos = open.binary_search(&t).expect("slot still tracked");
        open.remove(pos);
        if slots_feasible(inst, &open) {
            deactivated += 1;
        } else {
            open.insert(pos, t);
        }
    }
    let assignment = extract_assignment(inst, &open).expect("final set is feasible");
    let mut schedule = Schedule::new(open, assignment);
    schedule.compact();
    Some(GreedyResult { schedule, examined, deactivated })
}

/// Index-shuffle used by the incremental variant (same stream as
/// [`shuffle`], applied to positions, so both variants visit slots in the
/// same order for a given seed).
pub(crate) fn shuffle_indices(v: &mut [usize], seed: u64) {
    let mut tmp: Vec<i64> = v.iter().map(|&x| x as i64).collect();
    shuffle(&mut tmp, seed);
    for (dst, src) in v.iter_mut().zip(tmp) {
        *dst = src as usize;
    }
}

/// Fisher–Yates with a SplitMix64 stream (keeps `rand` out of the
/// library's dependency set; determinism matters for reproducibility).
fn shuffle(v: &mut [i64], seed: u64) {
    let mut state = seed.wrapping_add(0x9E3779B97F4A7C15);
    let mut next = move || {
        state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    };
    for i in (1..v.len()).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        v.swap(i, j);
    }
}

/// Check minimality: removing any single open slot breaks feasibility.
pub fn is_minimal_feasible(inst: &Instance, slots: &[i64]) -> bool {
    if !slots_feasible(inst, slots) {
        return false;
    }
    for i in 0..slots.len() {
        let mut reduced = slots.to_vec();
        reduced.remove(i);
        if slots_feasible(inst, &reduced) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Test-case table: (g, [(release, deadline, processing)]).
    type Cases = Vec<(i64, Vec<(i64, i64, i64)>)>;
    use atsched_core::instance::Job;

    fn inst(g: i64, jobs: Vec<(i64, i64, i64)>) -> Instance {
        Instance::new(g, jobs.into_iter().map(|(r, d, p)| Job::new(r, d, p)).collect()).unwrap()
    }

    fn all_orders() -> Vec<ScanOrder> {
        vec![
            ScanOrder::LeftToRight,
            ScanOrder::RightToLeft,
            ScanOrder::Shuffled(1),
            ScanOrder::Shuffled(42),
        ]
    }

    #[test]
    fn single_job_opens_p_slots() {
        for order in all_orders() {
            let i = inst(1, vec![(0, 6, 2)]);
            let r = minimal_feasible(&i, order).unwrap();
            r.schedule.verify(&i).unwrap();
            assert_eq!(r.schedule.active_time(), 2);
        }
    }

    #[test]
    fn infeasible_returns_none() {
        let i = inst(1, vec![(0, 2, 1); 3]);
        assert!(minimal_feasible(&i, ScanOrder::LeftToRight).is_none());
    }

    #[test]
    fn results_are_minimal() {
        let i = inst(2, vec![(0, 10, 2), (1, 4, 1), (1, 4, 1), (5, 9, 2), (6, 8, 1)]);
        for order in all_orders() {
            let r = minimal_feasible(&i, order).unwrap();
            r.schedule.verify(&i).unwrap();
            // The surviving open set is minimal feasible.
            assert!(is_minimal_feasible(&i, &r.schedule.slots));
        }
    }

    #[test]
    fn greedy_within_three_times_volume_bound() {
        // Minimal feasible ⇒ ≤ 3·OPT (CKM'17); check against the crude
        // volume LB on a batch of shapes.
        let shapes: Cases = vec![
            (2, vec![(0, 8, 2), (1, 4, 1), (5, 7, 1)]),
            (3, vec![(0, 2, 1); 4]),
            (2, vec![(0, 12, 4), (2, 6, 2), (7, 11, 2)]),
            (1, vec![(0, 3, 1), (4, 7, 2), (8, 11, 3)]),
        ];
        for (g, jobs) in shapes {
            let i = inst(g, jobs);
            let lb = crate::bounds::combined_lb(&i);
            for order in all_orders() {
                let r = minimal_feasible(&i, order).unwrap();
                assert!((r.schedule.active_time() as i64) <= 3 * lb.max(1), "order {order:?}");
            }
        }
    }

    #[test]
    fn shuffle_is_deterministic() {
        let mut a: Vec<i64> = (0..50).collect();
        let mut b: Vec<i64> = (0..50).collect();
        shuffle(&mut a, 7);
        shuffle(&mut b, 7);
        assert_eq!(a, b);
        let mut c: Vec<i64> = (0..50).collect();
        shuffle(&mut c, 8);
        assert_ne!(a, c);
    }
}
