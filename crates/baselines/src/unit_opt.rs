//! Exact optimum for unit processing times (the Chang–Gabow–Khuller'14
//! polynomial-time claim).
//!
//! With `p_j = 1` for all jobs, a slot set `S` is feasible iff Hall's
//! condition holds, and because a job-set's neighborhood is a union of
//! intervals the condition decomposes per interval:
//!
//! > for every interval `[a, b)`:  `g·|S ∩ [a, b)| ≥ dem[a, b)`,
//!
//! where `dem[a, b)` counts jobs whose window lies inside `[a, b)`. So
//! the problem is *interval covering by points with capacities*, solved
//! optimally by the classical sweep: visit the (finitely many) demand
//! intervals ordered by right endpoint (inner intervals first on ties)
//! and repair any deficiency by opening the rightmost closed slots of the
//! interval — slots pushed right serve every later interval that could
//! have used the original position. Optimality is additionally
//! cross-checked against brute force in this module's tests (our source
//! for CGK'14 is the survey citation in the paper, so we verify rather
//! than assume).

use atsched_core::feasibility::extract_assignment;
use atsched_core::instance::Instance;
use atsched_core::schedule::Schedule;

/// Errors from the unit-job solver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UnitOptError {
    /// Some job has `p_j > 1`.
    NotUnit(usize),
    /// No feasible schedule exists.
    Infeasible,
}

impl std::fmt::Display for UnitOptError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UnitOptError::NotUnit(j) => write!(f, "job {j} has processing time > 1"),
            UnitOptError::Infeasible => write!(f, "unit instance is infeasible"),
        }
    }
}

impl std::error::Error for UnitOptError {}

/// Exact minimum active time for a unit-job instance (windows may be
/// arbitrary — laminarity is not required).
pub fn solve_unit(inst: &Instance) -> Result<Schedule, UnitOptError> {
    for (j, job) in inst.jobs.iter().enumerate() {
        if job.processing != 1 {
            return Err(UnitOptError::NotUnit(j));
        }
    }
    // Demand intervals: all endpoint pairs with positive demand, visited
    // by right endpoint ascending, inner (larger `a`) first on ties.
    let mut endpoints: Vec<i64> = inst.jobs.iter().flat_map(|j| [j.release, j.deadline]).collect();
    endpoints.sort_unstable();
    endpoints.dedup();
    let mut intervals: Vec<(i64, i64, i64)> = Vec::new(); // (a, b, dem)
    for (ai, &a) in endpoints.iter().enumerate() {
        for &b in &endpoints[ai + 1..] {
            let dem = inst.jobs.iter().filter(|j| a <= j.release && j.deadline <= b).count() as i64;
            if dem > 0 {
                intervals.push((a, b, dem));
            }
        }
    }
    intervals.sort_unstable_by_key(|&(a, b, _)| (b, std::cmp::Reverse(a)));

    let mut slots: Vec<i64> = Vec::new(); // sorted open slots
    for (a, b, dem) in intervals {
        let required = (dem + inst.g - 1) / inst.g; // ⌈dem/g⌉ slots in [a,b)
        let lo = slots.partition_point(|&t| t < a);
        let hi = slots.partition_point(|&t| t < b);
        let mut have = (hi - lo) as i64;
        // Repair the deficiency with the rightmost closed slots of [a,b).
        let mut t = b - 1;
        while have < required {
            if t < a {
                return Err(UnitOptError::Infeasible);
            }
            match slots.binary_search(&t) {
                Ok(_) => {}
                Err(pos) => {
                    slots.insert(pos, t);
                    have += 1;
                }
            }
            t -= 1;
        }
    }
    let assignment = extract_assignment(inst, &slots).ok_or(UnitOptError::Infeasible)?;
    let mut schedule = Schedule::new(slots, assignment);
    schedule.compact();
    Ok(schedule)
}

#[cfg(test)]
mod tests {
    use super::*;
    use atsched_core::feasibility::slots_feasible;
    use atsched_core::instance::Job;
    use proptest::prelude::*;

    fn inst(g: i64, jobs: Vec<(i64, i64)>) -> Instance {
        Instance::new(g, jobs.into_iter().map(|(r, d)| Job::new(r, d, 1)).collect()).unwrap()
    }

    /// Brute-force minimum active time for tiny instances.
    fn brute_opt(inst: &Instance) -> Option<usize> {
        let cand = inst.candidate_slots();
        assert!(cand.len() <= 16, "brute force limited to small horizons");
        for k in 0..=cand.len() {
            let mut found = false;
            let mut pick = vec![0usize; k];
            // iterate k-combinations
            fn combos(
                cand: &[i64],
                k: usize,
                start: usize,
                pick: &mut Vec<i64>,
                inst: &Instance,
                found: &mut bool,
            ) {
                if *found {
                    return;
                }
                if pick.len() == k {
                    if slots_feasible(inst, pick) {
                        *found = true;
                    }
                    return;
                }
                for i in start..cand.len() {
                    pick.push(cand[i]);
                    combos(cand, k, i + 1, pick, inst, found);
                    pick.pop();
                    if *found {
                        return;
                    }
                }
            }
            let mut buf = Vec::new();
            combos(&cand, k, 0, &mut buf, inst, &mut found);
            pick.clear();
            if found {
                return Some(k);
            }
        }
        None
    }

    #[test]
    fn rejects_non_unit() {
        let i = Instance::new(1, vec![Job::new(0, 3, 2)]).unwrap();
        assert_eq!(solve_unit(&i), Err(UnitOptError::NotUnit(0)));
    }

    #[test]
    fn batches_share_slots() {
        // g jobs with identical windows need exactly one slot.
        let i = inst(4, vec![(0, 5); 4]);
        let s = solve_unit(&i).unwrap();
        s.verify(&i).unwrap();
        assert_eq!(s.active_time(), 1);
    }

    #[test]
    fn capacity_forces_two() {
        let i = inst(2, vec![(0, 3); 3]);
        let s = solve_unit(&i).unwrap();
        s.verify(&i).unwrap();
        assert_eq!(s.active_time(), 2);
    }

    #[test]
    fn staggered_windows_share_rightmost() {
        // [0,2), [1,3): slot 1 serves both.
        let i = inst(2, vec![(0, 2), (1, 3)]);
        let s = solve_unit(&i).unwrap();
        assert_eq!(s.active_time(), 1);
        assert_eq!(s.slots, vec![1]);
    }

    #[test]
    fn crossing_windows_supported() {
        // Non-laminar is fine for the unit solver.
        let i = inst(1, vec![(0, 4), (2, 6), (5, 8)]);
        let s = solve_unit(&i).unwrap();
        s.verify(&i).unwrap();
        assert_eq!(s.active_time() as i64, brute_opt(&i).unwrap() as i64);
    }

    #[test]
    fn infeasible_detected() {
        let i = inst(1, vec![(0, 1), (0, 1)]);
        assert_eq!(solve_unit(&i), Err(UnitOptError::Infeasible));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(96))]
        #[test]
        fn prop_matches_brute_force(
            g in 1i64..4,
            raw in proptest::collection::vec((0i64..6, 1i64..5), 1..7),
        ) {
            let jobs: Vec<(i64, i64)> = raw
                .into_iter()
                .map(|(r, len)| (r, (r + len).min(8)))
                .filter(|(r, d)| d > r)
                .collect();
            prop_assume!(!jobs.is_empty());
            let i = inst(g, jobs);
            match (solve_unit(&i), brute_opt(&i)) {
                (Ok(s), Some(k)) => {
                    s.verify(&i).unwrap();
                    prop_assert_eq!(s.active_time(), k, "greedy suboptimal");
                }
                (Err(UnitOptError::Infeasible), None) => {}
                (a, b) => prop_assert!(false, "feasibility disagreement: {:?} vs {:?}", a, b),
            }
        }
    }
}
