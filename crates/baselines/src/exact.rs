//! Exact optimal active time.
//!
//! Two engines:
//!
//! * [`brute_force_opt`] — enumerate slot subsets by increasing size.
//!   Works for any (even non-laminar) instance; horizon-limited.
//! * [`nested_opt`] — iterative-deepening search over *per-node open
//!   counts* on the laminar window forest. Slots inside a node's own
//!   region are interchangeable, so the search space collapses from
//!   `2^T` to `Π (L(i)+1)`, pruned by optimistic max-flow feasibility and
//!   the interval-volume lower bound. This is the ground-truth engine for
//!   the ratio experiments (E1) and the NP-completeness pipeline (E6) —
//!   the problem is NP-complete (paper §6), so ground truth is
//!   necessarily exponential in the worst case.

use crate::bounds::combined_lb;
use atsched_core::feasibility::{
    counts_feasible, counts_to_slots, extract_assignment, slots_feasible,
};
use atsched_core::instance::Instance;
use atsched_core::schedule::Schedule;
use atsched_core::tree::Forest;

/// Exact optimum by subset enumeration; `None` when infeasible.
///
/// # Panics
/// Panics when the candidate-slot count exceeds `max_candidates` (the
/// search is `O(2^T)`).
pub fn brute_force_opt(inst: &Instance, max_candidates: usize) -> Option<Schedule> {
    let cand = inst.candidate_slots();
    assert!(
        cand.len() <= max_candidates,
        "brute force over {} slots refused (cap {max_candidates})",
        cand.len()
    );
    if !slots_feasible(inst, &cand) {
        return None;
    }
    for k in 0..=cand.len() {
        if let Some(slots) = first_feasible_subset(inst, &cand, k) {
            let assignment = extract_assignment(inst, &slots).expect("checked feasible");
            let mut s = Schedule::new(slots, assignment);
            s.compact();
            return Some(s);
        }
    }
    unreachable!("full candidate set is feasible");
}

fn first_feasible_subset(inst: &Instance, cand: &[i64], k: usize) -> Option<Vec<i64>> {
    fn rec(inst: &Instance, cand: &[i64], k: usize, start: usize, pick: &mut Vec<i64>) -> bool {
        if pick.len() == k {
            return slots_feasible(inst, pick);
        }
        // Not enough slots left to reach k.
        if cand.len() - start < k - pick.len() {
            return false;
        }
        for i in start..cand.len() {
            pick.push(cand[i]);
            if rec(inst, cand, k, i + 1, pick) {
                return true;
            }
            pick.pop();
        }
        false
    }
    let mut pick = Vec::with_capacity(k);
    if rec(inst, cand, k, 0, &mut pick) {
        Some(pick)
    } else {
        None
    }
}

/// Exact optimum for laminar instances via per-node open counts.
///
/// `lower_bound_hint` (e.g. an LP value rounded up) accelerates the
/// search by choosing where the iterative deepening *starts* — the
/// answer is exact even if the hint is wrong in either direction: after
/// the first feasible `k` is found, the search walks downward until
/// `k − 1` is infeasible (so an over-large hint costs time, never
/// correctness). Returns `None` when infeasible.
pub fn nested_opt(inst: &Instance, lower_bound_hint: i64) -> Option<Schedule> {
    if inst.jobs.is_empty() {
        return Some(Schedule::new(Vec::new(), Vec::new()));
    }
    let forest = Forest::build(inst).ok()?;
    let full: Vec<i64> = forest.nodes.iter().map(|n| n.len()).collect();
    if !counts_feasible(&forest, inst, &full) {
        return None;
    }
    // Search node order: deepest first, so rigid leaves bind early.
    let mut order: Vec<usize> = (0..forest.num_nodes()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(forest.nodes[i].depth));

    let hard_lb = combined_lb(inst).max(0);
    let start = lower_bound_hint.max(hard_lb);
    let ub: i64 = full.iter().sum();

    let feasible_at = |k: i64| -> Option<Vec<i64>> {
        let mut z = vec![0i64; forest.num_nodes()];
        search(inst, &forest, &order, 0, k, &mut z).then_some(z)
    };

    // Upward phase: find some feasible k.
    let mut k = start.min(ub);
    let mut best = loop {
        if let Some(z) = feasible_at(k) {
            break z;
        }
        k += 1;
        assert!(k <= ub, "k = Σ L(i) must be feasible");
    };
    // Downward phase: the hint may have overshot the optimum.
    while k > hard_lb {
        match feasible_at(k - 1) {
            Some(z) => {
                best = z;
                k -= 1;
            }
            None => break,
        }
    }

    let slots = counts_to_slots(&forest, &best);
    let assignment = extract_assignment(inst, &slots).expect("search verified");
    let mut s = Schedule::new(slots, assignment);
    s.compact();
    Some(s)
}

/// Parallel variant of [`nested_opt`]: fans the first branching level of
/// each iterative-deepening round out to scoped worker threads (work
/// distributed through an atomic cursor, early exit through a shared
/// stop flag). Returns exactly the same optimum value as the sequential
/// engine — the tests assert it — though possibly a different optimal
/// schedule.
pub fn nested_opt_parallel(inst: &Instance, lower_bound_hint: i64) -> Option<Schedule> {
    use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};
    use std::sync::Mutex;

    if inst.jobs.is_empty() {
        return Some(Schedule::new(Vec::new(), Vec::new()));
    }
    let forest = Forest::build(inst).ok()?;
    let full: Vec<i64> = forest.nodes.iter().map(|n| n.len()).collect();
    if !counts_feasible(&forest, inst, &full) {
        return None;
    }
    let mut order: Vec<usize> = (0..forest.num_nodes()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(forest.nodes[i].depth));

    let hard_lb = combined_lb(inst).max(0);
    let ub: i64 = full.iter().sum();
    let workers = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
    let first = order[0];

    let feasible_at = |k: i64| -> Option<Vec<i64>> {
        let max_first = forest.nodes[first].len().min(k);
        let stop = AtomicBool::new(false);
        let cursor = AtomicI64::new(max_first); // counts down: larger first
        let winner: Mutex<Option<Vec<i64>>> = Mutex::new(None);
        std::thread::scope(|scope| {
            for _ in 0..workers.min((max_first + 1) as usize) {
                scope.spawn(|| loop {
                    if stop.load(Ordering::Relaxed) {
                        return;
                    }
                    let v = cursor.fetch_sub(1, Ordering::Relaxed);
                    if v < 0 {
                        return;
                    }
                    let mut z = vec![0i64; forest.num_nodes()];
                    z[first] = v;
                    if search(inst, &forest, &order, 1, k - v, &mut z) {
                        stop.store(true, Ordering::Relaxed);
                        *winner.lock().unwrap() = Some(z);
                        return;
                    }
                });
            }
        });
        winner.into_inner().unwrap()
    };

    // Upward then downward, exactly as in the sequential engine: correct
    // for any hint.
    let mut k = lower_bound_hint.max(hard_lb).min(ub);
    let mut best = loop {
        if let Some(z) = feasible_at(k) {
            break z;
        }
        k += 1;
        assert!(k <= ub, "k = Σ L(i) must be feasible");
    };
    while k > hard_lb {
        match feasible_at(k - 1) {
            Some(z) => {
                best = z;
                k -= 1;
            }
            None => break,
        }
    }
    let slots = counts_to_slots(&forest, &best);
    let assignment = extract_assignment(inst, &slots).expect("search verified");
    let mut s = Schedule::new(slots, assignment);
    s.compact();
    Some(s)
}

/// DFS: fix `z[order[idx..]]`, budget = slots still assignable.
fn search(
    inst: &Instance,
    forest: &Forest,
    order: &[usize],
    idx: usize,
    budget: i64,
    z: &mut Vec<i64>,
) -> bool {
    // Optimistic check: give every undecided node its full length, capped
    // by the remaining budget being spent in the best possible way — here
    // simply full (a relaxation): if even that fails, prune.
    if idx == order.len() {
        return budget >= 0 && counts_feasible(forest, inst, z);
    }
    {
        let mut opt = z.clone();
        let mut spare = budget;
        for &i in &order[idx..] {
            let add = forest.nodes[i].len().min(spare.max(0));
            opt[i] = forest.nodes[i].len();
            spare -= add;
        }
        // Relaxed (ignores the budget cap across nodes for feasibility,
        // which is sound for pruning: more open slots never hurt).
        if !counts_feasible(forest, inst, &opt) {
            return false;
        }
    }
    let node = order[idx];
    let max_here = forest.nodes[node].len().min(budget);
    // Try larger counts first: feasibility is monotone, so the first
    // feasible completion at this budget is found faster.
    for v in (0..=max_here).rev() {
        z[node] = v;
        if search(inst, forest, order, idx + 1, budget - v, z) {
            return true;
        }
    }
    z[node] = 0;
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Test-case table: (g, [(release, deadline, processing)]).
    type Cases = Vec<(i64, Vec<(i64, i64, i64)>)>;
    use atsched_core::instance::Job;
    use proptest::prelude::*;

    fn inst(g: i64, jobs: Vec<(i64, i64, i64)>) -> Instance {
        Instance::new(g, jobs.into_iter().map(|(r, d, p)| Job::new(r, d, p)).collect()).unwrap()
    }

    #[test]
    fn brute_force_simple() {
        let i = inst(2, vec![(0, 4, 2), (1, 3, 1)]);
        let s = brute_force_opt(&i, 20).unwrap();
        s.verify(&i).unwrap();
        assert_eq!(s.active_time(), 2);
    }

    #[test]
    fn brute_force_infeasible() {
        let i = inst(1, vec![(0, 2, 1); 3]);
        assert!(brute_force_opt(&i, 20).is_none());
    }

    #[test]
    fn nested_matches_brute_force_handpicked() {
        let shapes: Cases = vec![
            (2, vec![(0, 8, 2), (1, 4, 1), (5, 7, 1)]),
            (3, vec![(0, 2, 1); 4]),
            (2, vec![(0, 10, 2), (1, 6, 2), (2, 5, 1), (7, 9, 1)]),
            (1, vec![(0, 3, 1), (4, 7, 2)]),
            (2, vec![(0, 12, 4), (2, 6, 2), (7, 11, 2)]),
        ];
        for (g, jobs) in shapes {
            let i = inst(g, jobs.clone());
            let b = brute_force_opt(&i, 22).unwrap();
            let n = nested_opt(&i, 0).unwrap();
            n.verify(&i).unwrap();
            assert_eq!(n.active_time(), b.active_time(), "shape {jobs:?}");
        }
    }

    #[test]
    fn nested_infeasible() {
        let i = inst(1, vec![(0, 2, 2), (0, 2, 2)]);
        assert!(nested_opt(&i, 0).is_none());
    }

    #[test]
    fn lower_bound_hint_is_safe() {
        // A *valid* hint must not change the answer.
        let i = inst(2, vec![(0, 6, 2), (1, 3, 2), (3, 5, 2)]);
        let base = nested_opt(&i, 0).unwrap().active_time();
        let hinted = nested_opt(&i, base as i64).unwrap().active_time();
        assert_eq!(base, hinted);
    }

    #[test]
    fn overshooting_hint_is_corrected() {
        // Regression: a float-LP value like 1.0000000000000002 can ceil
        // to OPT+1; the search must walk back down and still return the
        // true optimum (found live by the E12 gap search).
        let i = inst(4, vec![(0, 14, 1), (9, 10, 1), (9, 10, 1)]);
        assert_eq!(nested_opt(&i, 0).unwrap().active_time(), 1);
        for bad_hint in [2i64, 3, 5, 100] {
            assert_eq!(nested_opt(&i, bad_hint).unwrap().active_time(), 1, "hint {bad_hint}");
            assert_eq!(
                nested_opt_parallel(&i, bad_hint).unwrap().active_time(),
                1,
                "parallel hint {bad_hint}"
            );
        }
    }

    #[test]
    fn parallel_matches_sequential() {
        let shapes: Cases = vec![
            (2, vec![(0, 8, 2), (1, 4, 1), (5, 7, 1)]),
            (3, vec![(0, 2, 1); 4]),
            (2, vec![(0, 10, 2), (1, 6, 2), (2, 5, 1), (7, 9, 1)]),
            (2, vec![(0, 12, 4), (2, 6, 2), (7, 11, 2)]),
        ];
        for (g, jobs) in shapes {
            let i = inst(g, jobs.clone());
            let seq = nested_opt(&i, 0).map(|s| s.active_time());
            let par = nested_opt_parallel(&i, 0).map(|s| {
                s.verify(&i).unwrap();
                s.active_time()
            });
            assert_eq!(seq, par, "shape {jobs:?}");
        }
        // Infeasible case agrees too.
        let bad = inst(1, vec![(0, 2, 2), (0, 2, 2)]);
        assert!(nested_opt_parallel(&bad, 0).is_none());
    }

    #[test]
    fn gap_instance_optimum() {
        // Lemma 5.1 family at g = 2: one long job p=2 over [0,4), plus 2
        // groups of 2 unit jobs at [0,2) and [2,4). OPT = g + ⌈g/2⌉ = 3.
        let mut jobs = vec![(0i64, 4i64, 2i64)];
        for grp in 0..2i64 {
            for _ in 0..2 {
                jobs.push((2 * grp, 2 * grp + 2, 1));
            }
        }
        let i = inst(2, jobs);
        let s = nested_opt(&i, 0).unwrap();
        assert_eq!(s.active_time(), 3);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        #[test]
        fn prop_nested_matches_brute_force(
            g in 1i64..4,
            raw in proptest::collection::vec((0i64..3u8 as i64, 0i64..3, 1i64..3), 1..5),
        ) {
            // Laminar by construction: dyadic-ish windows inside [0, 8).
            let mut jobs: Vec<(i64, i64, i64)> = vec![(0, 8, 1)];
            for (which, off, p) in raw {
                let (r, d) = match which {
                    0 => (0, 4),
                    1 => (4, 8),
                    _ => {
                        let base = off.min(1) * 4; // [0,4) or [4,8)
                        (base + 1, base + 3)
                    }
                };
                jobs.push((r, d, p.min(d - r)));
            }
            let i = inst(g, jobs);
            prop_assume!(i.check_laminar().is_ok());
            let b = brute_force_opt(&i, 16);
            let n = nested_opt(&i, 0);
            match (b, n) {
                (Some(bs), Some(ns)) => {
                    ns.verify(&i).unwrap();
                    prop_assert_eq!(bs.active_time(), ns.active_time());
                }
                (None, None) => {}
                (b, n) => prop_assert!(false, "feasibility disagreement: {:?} vs {:?}",
                    b.map(|s| s.active_time()), n.map(|s| s.active_time())),
            }
        }
    }
}
