//! Reactor integration tests over real loopback sockets: partial-frame
//! reassembly, write-buffer backpressure, and deadline timers firing
//! under deliberately silent or stalled peers.

use atsched_net::{ConnId, Ctx, FrameError, Reactor, ReactorConfig, Remote, Service, TimerId};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::mpsc;
use std::thread;
use std::time::{Duration, Instant};

/// Echo server used by most tests. Counts what it saw and can arm a
/// per-connection deadline on accept.
struct Echo {
    frames: usize,
    frame_errors: Vec<FrameError>,
    closes: usize,
    /// If set: close any connection that stays silent this long.
    silence_deadline: Option<Duration>,
    deadline_closes: usize,
    timers: Vec<(ConnId, TimerId)>,
    events: mpsc::Sender<&'static str>,
}

enum Cmd {
    Stop,
}

impl Service for Echo {
    type Msg = Cmd;

    fn on_accept(&mut self, ctx: &mut Ctx<'_>, stream: TcpStream, _peer: SocketAddr) {
        if let Ok(conn) = ctx.adopt(stream) {
            if let Some(after) = self.silence_deadline {
                let t = ctx.schedule(after, conn.as_u64());
                self.timers.push((conn, t));
            }
        }
    }

    fn on_frame(&mut self, ctx: &mut Ctx<'_>, conn: ConnId, line: String) {
        self.frames += 1;
        // First frame proves liveness: cancel the silence deadline.
        if let Some(pos) = self.timers.iter().position(|&(c, _)| c == conn) {
            let (_, t) = self.timers.swap_remove(pos);
            ctx.cancel_timer(t);
        }
        let mut reply = line.into_bytes();
        reply.push(b'\n');
        ctx.send(conn, reply);
    }

    fn on_frame_error(&mut self, ctx: &mut Ctx<'_>, conn: ConnId, err: FrameError) {
        self.frame_errors.push(err);
        ctx.send(conn, b"error\n".to_vec());
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, timer: TimerId, data: u64) {
        if let Some(pos) = self.timers.iter().position(|&(_, t)| t == timer) {
            self.timers.swap_remove(pos);
            self.deadline_closes += 1;
            ctx.close(ConnId::from_u64(data));
            let _ = self.events.send("deadline");
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, msg: Cmd) {
        match msg {
            Cmd::Stop => ctx.stop(),
        }
    }

    fn on_close(&mut self, _ctx: &mut Ctx<'_>, _conn: ConnId) {
        self.closes += 1;
        let _ = self.events.send("close");
    }
}

struct Server {
    addr: SocketAddr,
    remote: Remote<Cmd>,
    events: mpsc::Receiver<&'static str>,
    handle: thread::JoinHandle<Echo>,
}

fn start(cfg: ReactorConfig, silence_deadline: Option<Duration>) -> Server {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let (events_tx, events) = mpsc::channel();
    let echo = Echo {
        frames: 0,
        frame_errors: Vec::new(),
        closes: 0,
        silence_deadline,
        deadline_closes: 0,
        timers: Vec::new(),
        events: events_tx,
    };
    let (mut reactor, remote) = Reactor::new(cfg, echo).unwrap();
    reactor.listen(listener).unwrap();
    let handle = thread::spawn(move || reactor.run().unwrap());
    Server { addr, remote, events, handle }
}

impl Server {
    fn stop(self) -> Echo {
        assert!(self.remote.send(Cmd::Stop));
        self.handle.join().unwrap()
    }
}

fn read_line(stream: &mut TcpStream) -> String {
    let mut out = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        match stream.read(&mut byte) {
            Ok(0) => break,
            Ok(_) if byte[0] == b'\n' => break,
            Ok(_) => out.push(byte[0]),
            Err(e) => panic!("read failed: {e}"),
        }
    }
    String::from_utf8(out).unwrap()
}

#[test]
fn partial_frames_reassemble_across_many_small_writes() {
    let server = start(ReactorConfig::default(), None);
    let mut client = TcpStream::connect(server.addr).unwrap();
    client.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    client.set_nodelay(true).unwrap();

    // One 900-byte frame dribbled in 2-byte writes with pauses: the
    // reader must reassemble it into exactly one frame.
    let payload = "x".repeat(900);
    let line = format!("{payload}\n");
    for (i, chunk) in line.as_bytes().chunks(2).enumerate() {
        client.write_all(chunk).unwrap();
        if i % 64 == 0 {
            thread::sleep(Duration::from_millis(1));
        }
    }
    assert_eq!(read_line(&mut client), payload);

    // Several frames batched into a single write still split correctly.
    client.write_all(b"a\nbb\nccc\n").unwrap();
    assert_eq!(read_line(&mut client), "a");
    assert_eq!(read_line(&mut client), "bb");
    assert_eq!(read_line(&mut client), "ccc");

    drop(client);
    let echo = server.stop();
    assert_eq!(echo.frames, 4);
    assert!(echo.frame_errors.is_empty());
}

#[test]
fn oversized_and_non_utf8_frames_recover_with_typed_errors() {
    let cfg = ReactorConfig { max_line_bytes: 64, ..ReactorConfig::default() };
    let server = start(cfg, None);
    let mut client = TcpStream::connect(server.addr).unwrap();
    client.set_read_timeout(Some(Duration::from_secs(10))).unwrap();

    let giant = "g".repeat(500);
    client.write_all(format!("{giant}\n").as_bytes()).unwrap();
    assert_eq!(read_line(&mut client), "error");

    client.write_all(b"\xff\xfe\n").unwrap();
    assert_eq!(read_line(&mut client), "error");

    // The connection survived both and still echoes.
    client.write_all(b"still here\n").unwrap();
    assert_eq!(read_line(&mut client), "still here");

    drop(client);
    let echo = server.stop();
    assert_eq!(echo.frame_errors, vec![FrameError::Oversized, FrameError::NotUtf8]);
    assert_eq!(echo.frames, 1);
}

#[test]
fn write_backpressure_queues_partial_writes_without_corruption() {
    // Tiny watermark so the test exercises the stalled path; generous
    // stall timeout so a slow reader is not disconnected.
    let cfg = ReactorConfig {
        write_high_watermark: 16 * 1024,
        write_stall_timeout: Some(Duration::from_secs(30)),
        ..ReactorConfig::default()
    };
    let server = start(cfg, None);

    let mut client = TcpStream::connect(server.addr).unwrap();
    client.set_read_timeout(Some(Duration::from_secs(30))).unwrap();

    // Ask for ~4 MB of echo (far beyond socket buffers) while not
    // reading, then drain slowly: every byte must come back in order.
    let big = "B".repeat(1 << 20);
    for _ in 0..4 {
        client.write_all(format!("{big}\n").as_bytes()).unwrap();
    }
    thread::sleep(Duration::from_millis(100)); // let the queue build up

    for _ in 0..4 {
        let got = read_line(&mut client);
        assert_eq!(got.len(), big.len());
        assert!(got.bytes().all(|b| b == b'B'), "corrupted echo");
    }

    drop(client);
    let echo = server.stop();
    assert_eq!(echo.frames, 4);
}

#[test]
fn deadline_timer_fires_under_a_silent_client() {
    let server = start(ReactorConfig::default(), Some(Duration::from_millis(80)));

    // A deliberately silent client: connects, sends nothing.
    let mut silent = TcpStream::connect(server.addr).unwrap();
    silent.set_read_timeout(Some(Duration::from_secs(10))).unwrap();

    // A chatty client on the same reactor stays untouched.
    let mut chatty = TcpStream::connect(server.addr).unwrap();
    chatty.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    chatty.write_all(b"hello\n").unwrap();
    assert_eq!(read_line(&mut chatty), "hello");

    // The reactor must disconnect the silent peer on its own clock.
    let t0 = Instant::now();
    let mut buf = [0u8; 1];
    let n = silent.read(&mut buf).unwrap();
    assert_eq!(n, 0, "expected EOF from the deadline close");
    assert!(t0.elapsed() < Duration::from_secs(5), "deadline far too slow");

    // Chatty connection still alive after the other's deadline.
    chatty.write_all(b"again\n").unwrap();
    assert_eq!(read_line(&mut chatty), "again");

    drop(chatty);
    let echo = server.stop();
    assert_eq!(echo.deadline_closes, 1);
    assert_eq!(echo.frames, 2);
}

#[test]
fn stalled_peer_is_disconnected_by_the_write_stall_timer() {
    let cfg = ReactorConfig {
        write_high_watermark: 4 * 1024,
        write_stall_timeout: Some(Duration::from_millis(150)),
        ..ReactorConfig::default()
    };
    let server = start(cfg, None);

    let mut client = TcpStream::connect(server.addr).unwrap();
    // Request megabytes of echo in frame-sized lines and then never
    // read: kernel buffers fill, the echo queue wedges above the
    // watermark, and the stall timer must evict us. Writes may start
    // failing once the reactor drops the connection — that is the point.
    let line = format!("{}\n", "S".repeat(256 * 1024));
    for _ in 0..32 {
        if client.write_all(line.as_bytes()).is_err() {
            break;
        }
    }

    let t0 = Instant::now();
    loop {
        match server.events.recv_timeout(Duration::from_secs(10)) {
            Ok("close") => break,
            Ok(_) => continue,
            Err(e) => panic!("no stall close within 10 s: {e}"),
        }
    }
    assert!(t0.elapsed() < Duration::from_secs(8));

    let echo = server.stop();
    assert_eq!(echo.closes, 1);
}
