//! The readiness reactor: one thread, one epoll instance, N connections.
//!
//! A [`Reactor`] owns a [`Service`] — the application logic — and drives
//! it with callbacks from a single event loop: frames decoded from
//! edge-triggered reads, timer expirations from the wheel, and messages
//! injected by other threads through a [`Remote`] (an mpsc sender paired
//! with an eventfd waker). The service mutates connections through
//! [`Ctx`], never by touching sockets directly, which keeps all
//! buffering, backpressure and teardown in one place:
//!
//! - **Reads** drain until `WouldBlock` (edge-triggered contract) and
//!   stream through a bounded [`FrameReader`]; framing errors are typed
//!   callbacks, not connection teardown.
//! - **Writes** go through a [`WriteQueue`]; past a high watermark the
//!   reactor stops *reading* from that connection (backpressure), and a
//!   peer that stalls a pending write past `write_stall_timeout` is
//!   disconnected by an internal timer.
//! - **Closes** are deferred: callbacks run reentrancy-free, and a
//!   generation tag in [`ConnId`] makes stale handles inert.

use crate::frame::{FrameError, FrameReader, WriteQueue};
use crate::poll::{Event, Interest, Poller, Waker};
use crate::sys;
use crate::timer::{TimerId, TimerWheel};
use std::io::{self, Read};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::mpsc;
use std::time::{Duration, Instant};

const WAKER_DATA: u64 = u64::MAX;
const LISTENER_DATA: u64 = u64::MAX - 1;
/// Bit 63 of timer data marks reactor-internal (write-stall) timers.
/// Service timer data must keep it clear; [`Ctx::schedule`] asserts so.
const INTERNAL_TIMER: u64 = 1 << 63;

/// Generation-tagged connection handle. Slot indices are reused, so the
/// generation makes a handle to a closed connection permanently inert.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ConnId {
    index: u32,
    gen: u32,
}

impl ConnId {
    /// Pack into a `u64` (always < 2^63 in practice: the index would
    /// need to exceed 2^31 live slots to set the top bit), usable as
    /// epoll data or timer payload.
    pub fn as_u64(self) -> u64 {
        (self.index as u64) << 32 | self.gen as u64
    }

    pub fn from_u64(raw: u64) -> ConnId {
        ConnId { index: (raw >> 32) as u32, gen: raw as u32 }
    }
}

/// Tuning knobs for a reactor instance.
#[derive(Clone, Debug)]
pub struct ReactorConfig {
    /// Longest accepted request line; longer lines become
    /// [`FrameError::Oversized`] and the connection resynchronises.
    pub max_line_bytes: usize,
    /// Bytes per `read(2)` call.
    pub read_chunk: usize,
    /// Queued-write level above which reading from that connection is
    /// paused until the queue drains (per-connection backpressure).
    pub write_high_watermark: usize,
    /// Disconnect a peer that leaves queued writes unmoved this long.
    pub write_stall_timeout: Option<Duration>,
    /// Timer wheel resolution.
    pub timer_granularity: Duration,
    pub timer_slots: usize,
}

impl Default for ReactorConfig {
    fn default() -> ReactorConfig {
        ReactorConfig {
            max_line_bytes: 1 << 20,
            read_chunk: 64 * 1024,
            write_high_watermark: 256 * 1024,
            write_stall_timeout: Some(Duration::from_secs(30)),
            timer_granularity: Duration::from_millis(4),
            timer_slots: 512,
        }
    }
}

/// Application logic driven by a [`Reactor`]. All callbacks run on the
/// reactor thread; `Msg` is the cross-thread mailbox type.
pub trait Service: Sized {
    type Msg: Send + 'static;

    /// Runs once before the first poll.
    fn on_start(&mut self, _ctx: &mut Ctx<'_>) {}

    /// A listener produced a connection. The default adopts it into
    /// this reactor; override to route streams elsewhere.
    fn on_accept(&mut self, ctx: &mut Ctx<'_>, stream: TcpStream, _peer: SocketAddr) {
        let _ = ctx.adopt(stream);
    }

    /// A complete frame (without its newline) arrived.
    fn on_frame(&mut self, ctx: &mut Ctx<'_>, conn: ConnId, line: String);

    /// A typed framing failure; the connection stays usable.
    fn on_frame_error(&mut self, _ctx: &mut Ctx<'_>, _conn: ConnId, _err: FrameError) {}

    /// A timer scheduled via [`Ctx::schedule`] fired.
    fn on_timer(&mut self, _ctx: &mut Ctx<'_>, _timer: TimerId, _data: u64) {}

    /// A message arrived from a [`Remote`].
    fn on_message(&mut self, _ctx: &mut Ctx<'_>, _msg: Self::Msg) {}

    /// The write queue for `conn` just fully drained.
    fn on_flush(&mut self, _ctx: &mut Ctx<'_>, _conn: ConnId) {}

    /// `conn` is gone (peer EOF, error, or [`Ctx::close`]); its handle
    /// is already inert.
    fn on_close(&mut self, _ctx: &mut Ctx<'_>, _conn: ConnId) {}
}

/// Cross-thread handle: enqueue a message and wake the reactor.
pub struct Remote<M> {
    tx: mpsc::Sender<M>,
    waker: Waker,
}

impl<M> Clone for Remote<M> {
    fn clone(&self) -> Self {
        Remote { tx: self.tx.clone(), waker: self.waker.clone() }
    }
}

impl<M> Remote<M> {
    /// Returns `false` once the reactor has exited.
    pub fn send(&self, msg: M) -> bool {
        if self.tx.send(msg).is_err() {
            return false;
        }
        self.waker.wake();
        true
    }
}

struct Conn {
    stream: TcpStream,
    reader: FrameReader,
    writer: WriteQueue,
    /// Service asked to stop reading (awaiting a downstream reply).
    paused: bool,
    /// Reading is suspended because the write queue is over the
    /// high watermark.
    write_stalled: bool,
    /// Readiness (or buffered bytes) observed while reading was
    /// suspended; triggers a pump when reading resumes.
    read_pending: bool,
    /// Peer sent EOF; close once the write queue drains.
    eof: bool,
    /// Teardown requested; the slot is freed by the deferred pass.
    closing: bool,
    close_after_flush: bool,
    stall_timer: Option<TimerId>,
}

struct Slot {
    gen: u32,
    conn: Option<Conn>,
}

fn conn_mut(slots: &mut [Slot], id: ConnId) -> Option<&mut Conn> {
    let slot = slots.get_mut(id.index as usize)?;
    if slot.gen != id.gen {
        return None;
    }
    slot.conn.as_mut()
}

/// Reactor internals shared with the service through [`Ctx`].
struct Core {
    cfg: ReactorConfig,
    poll: Poller,
    waker: Waker,
    timers: TimerWheel,
    slots: Vec<Slot>,
    free: Vec<u32>,
    conn_count: usize,
    listener: Option<TcpListener>,
    /// Deferred work queues — callbacks never recurse into each other;
    /// anything a callback triggers is parked here and run afterwards.
    pending_pump: Vec<ConnId>,
    pending_flush: Vec<ConnId>,
    pending_close: Vec<ConnId>,
    scratch: Vec<u8>,
    stopped: bool,
}

/// The service's window into the reactor. Every operation on a stale
/// [`ConnId`] is a safe no-op.
pub struct Ctx<'a> {
    core: &'a mut Core,
}

impl Ctx<'_> {
    /// Take ownership of a connected stream: non-blocking, registered
    /// edge-triggered, framing state allocated.
    pub fn adopt(&mut self, stream: TcpStream) -> io::Result<ConnId> {
        self.core.adopt(stream)
    }

    /// Queue `frame` for writing (the caller includes any terminator)
    /// and flush as far as the kernel allows right now. Returns `false`
    /// if the connection is unknown or closing.
    pub fn send(&mut self, conn: ConnId, frame: Vec<u8>) -> bool {
        let core = &mut *self.core;
        match conn_mut(&mut core.slots, conn) {
            Some(c) if !c.closing => c.writer.push(frame),
            _ => return false,
        }
        core.pump_write(conn);
        true
    }

    /// Tear the connection down after pending callbacks finish. Queued
    /// writes are dropped; see [`Ctx::close_after_flush`] to drain first.
    pub fn close(&mut self, conn: ConnId) {
        self.core.request_close(conn);
    }

    /// Close once the write queue drains (immediately if already empty).
    pub fn close_after_flush(&mut self, conn: ConnId) {
        let core = &mut *self.core;
        let drain_now = match conn_mut(&mut core.slots, conn) {
            Some(c) if !c.closing => {
                if c.writer.is_empty() {
                    true
                } else {
                    c.close_after_flush = true;
                    false
                }
            }
            _ => false,
        };
        if drain_now {
            core.request_close(conn);
        }
    }

    /// Stop delivering frames from `conn`; bytes already in flight stay
    /// buffered (bounded by `max_line_bytes` + one read chunk).
    pub fn pause_reading(&mut self, conn: ConnId) {
        if let Some(c) = conn_mut(&mut self.core.slots, conn) {
            c.paused = true;
        }
    }

    /// Resume frame delivery; buffered frames are pumped before the
    /// socket is read again.
    pub fn resume_reading(&mut self, conn: ConnId) {
        let core = &mut *self.core;
        if let Some(c) = conn_mut(&mut core.slots, conn) {
            if c.paused {
                c.paused = false;
                core.pending_pump.push(conn);
            }
        }
    }

    pub fn is_open(&self, conn: ConnId) -> bool {
        let slot = match self.core.slots.get(conn.index as usize) {
            Some(s) if s.gen == conn.gen => s,
            _ => return false,
        };
        slot.conn.as_ref().is_some_and(|c| !c.closing)
    }

    /// Live connections owned by this reactor.
    pub fn conn_count(&self) -> usize {
        self.core.conn_count
    }

    /// Bytes queued for write on `conn` (0 if unknown).
    pub fn write_queue_len(&self, conn: ConnId) -> usize {
        let slot = match self.core.slots.get(conn.index as usize) {
            Some(s) if s.gen == conn.gen => s,
            _ => return 0,
        };
        slot.conn.as_ref().map_or(0, |c| c.writer.len())
    }

    /// Arm a timer; `data` is handed back to [`Service::on_timer`].
    /// Bit 63 of `data` is reserved for the reactor.
    pub fn schedule(&mut self, after: Duration, data: u64) -> TimerId {
        debug_assert_eq!(data & INTERNAL_TIMER, 0, "timer data bit 63 is reserved");
        self.core.timers.schedule(Instant::now(), after, data & !INTERNAL_TIMER)
    }

    pub fn cancel_timer(&mut self, timer: TimerId) -> bool {
        self.core.timers.cancel(timer)
    }

    /// Ask the event loop to exit after the current dispatch pass. Open
    /// connections are dropped (peers see EOF/RST).
    pub fn stop(&mut self) {
        self.core.stopped = true;
    }
}

impl Core {
    fn adopt(&mut self, stream: TcpStream) -> io::Result<ConnId> {
        stream.set_nonblocking(true)?;
        let _ = stream.set_nodelay(true);
        let index = match self.free.pop() {
            Some(i) => i,
            None => {
                self.slots.push(Slot { gen: 0, conn: None });
                (self.slots.len() - 1) as u32
            }
        };
        let id = ConnId { index, gen: self.slots[index as usize].gen };
        if let Err(e) = self.poll.add(
            std::os::fd::AsRawFd::as_raw_fd(&stream),
            id.as_u64(),
            Interest::READ_WRITE_EDGE,
        ) {
            self.free.push(index);
            return Err(e);
        }
        self.slots[index as usize].conn = Some(Conn {
            stream,
            reader: FrameReader::new(self.cfg.max_line_bytes),
            writer: WriteQueue::new(),
            paused: false,
            write_stalled: false,
            read_pending: false,
            eof: false,
            closing: false,
            close_after_flush: false,
            stall_timer: None,
        });
        self.conn_count += 1;
        // Bytes may have raced registration: pump once after adoption
        // even if no edge is reported.
        self.pending_pump.push(id);
        Ok(id)
    }

    fn request_close(&mut self, id: ConnId) {
        if let Some(c) = conn_mut(&mut self.slots, id) {
            if !c.closing {
                c.closing = true;
                self.pending_close.push(id);
            }
        }
    }

    /// Flush the write queue as far as the kernel allows; manages the
    /// stall timer, backpressure flag, flush notifications and deferred
    /// close-on-drain. Never invokes service callbacks directly.
    fn pump_write(&mut self, id: ConnId) {
        let Some(c) = conn_mut(&mut self.slots, id) else { return };
        if c.closing {
            return;
        }
        if c.writer.is_empty() {
            return;
        }
        match c.writer.write_to(&mut c.stream) {
            Ok((_, true)) => {
                if let Some(t) = c.stall_timer.take() {
                    self.timers.cancel(t);
                }
                self.pending_flush.push(id);
                if c.close_after_flush || c.eof {
                    c.closing = true;
                    self.pending_close.push(id);
                } else if c.write_stalled {
                    c.write_stalled = false;
                    if c.read_pending {
                        self.pending_pump.push(id);
                    }
                }
            }
            Ok((wrote, false)) => {
                if c.writer.len() > self.cfg.write_high_watermark {
                    c.write_stalled = true;
                }
                if let Some(stall) = self.cfg.write_stall_timeout {
                    // (Re)arm on progress so only a fully wedged peer
                    // — not a slow reader — is disconnected.
                    if wrote > 0 || c.stall_timer.is_none() {
                        if let Some(t) = c.stall_timer.take() {
                            self.timers.cancel(t);
                        }
                        let t = self.timers.schedule(
                            Instant::now(),
                            stall,
                            INTERNAL_TIMER | id.as_u64(),
                        );
                        c.stall_timer = Some(t);
                    }
                }
            }
            Err(_) => {
                c.closing = true;
                self.pending_close.push(id);
            }
        }
    }
}

/// Owns a [`Core`] and a [`Service`]; `run` is the event loop.
pub struct Reactor<S: Service> {
    core: Core,
    service: S,
    rx: mpsc::Receiver<S::Msg>,
}

impl<S: Service> Reactor<S> {
    pub fn new(cfg: ReactorConfig, service: S) -> io::Result<(Reactor<S>, Remote<S::Msg>)> {
        let poll = Poller::new()?;
        let waker = Waker::new()?;
        waker.register(&poll, WAKER_DATA)?;
        let (tx, rx) = mpsc::channel();
        let scratch = vec![0u8; cfg.read_chunk.max(512)];
        let timers = TimerWheel::new(cfg.timer_granularity, cfg.timer_slots, Instant::now());
        let core = Core {
            cfg,
            poll,
            waker: waker.clone(),
            timers,
            slots: Vec::new(),
            free: Vec::new(),
            conn_count: 0,
            listener: None,
            pending_pump: Vec::new(),
            pending_flush: Vec::new(),
            pending_close: Vec::new(),
            scratch,
            stopped: false,
        };
        Ok((Reactor { core, service, rx }, Remote { tx, waker }))
    }

    /// Accept connections on `listener` (delivered to
    /// [`Service::on_accept`]). At most one listener per reactor.
    pub fn listen(&mut self, listener: TcpListener) -> io::Result<()> {
        listener.set_nonblocking(true)?;
        // std binds with a fixed backlog of 128; connect bursts larger
        // than that overflow the SYN queue and retransmit after ~1 s.
        let _ = sys::set_listen_backlog(std::os::fd::AsRawFd::as_raw_fd(&listener), 1024);
        self.core.poll.add(
            std::os::fd::AsRawFd::as_raw_fd(&listener),
            LISTENER_DATA,
            Interest { readable: true, writable: false, edge: true },
        )?;
        self.core.listener = Some(listener);
        Ok(())
    }

    /// Run the event loop until [`Ctx::stop`]; returns the service for
    /// final-state inspection.
    pub fn run(self) -> io::Result<S> {
        let Reactor { mut core, mut service, rx } = self;
        service.on_start(&mut Ctx { core: &mut core });
        process_deferred(&mut core, &mut service);

        let mut events: Vec<Event> = Vec::new();
        let mut fired: Vec<(TimerId, u64)> = Vec::new();
        while !core.stopped {
            let timeout = core.timers.next_timeout(Instant::now());
            events.clear();
            core.poll.wait(&mut events, timeout)?;
            for &ev in &events {
                match ev.data {
                    WAKER_DATA => {
                        core.waker.drain();
                        while let Ok(msg) = rx.try_recv() {
                            service.on_message(&mut Ctx { core: &mut core }, msg);
                            process_deferred(&mut core, &mut service);
                            if core.stopped {
                                break;
                            }
                        }
                    }
                    LISTENER_DATA => accept_ready(&mut core, &mut service),
                    data => {
                        let id = ConnId::from_u64(data);
                        if ev.readable || ev.hangup || ev.error {
                            pump_read(&mut core, &mut service, id);
                        }
                        if ev.writable {
                            core.pump_write(id);
                        }
                    }
                }
                process_deferred(&mut core, &mut service);
                if core.stopped {
                    break;
                }
            }
            if core.stopped {
                break;
            }
            fired.clear();
            core.timers.poll(Instant::now(), &mut fired);
            for &(timer, data) in &fired {
                if data & INTERNAL_TIMER != 0 {
                    stall_expired(&mut core, ConnId::from_u64(data & !INTERNAL_TIMER), timer);
                } else {
                    service.on_timer(&mut Ctx { core: &mut core }, timer, data);
                }
                process_deferred(&mut core, &mut service);
                if core.stopped {
                    break;
                }
            }
        }
        drop(core);
        Ok(service)
    }
}

/// A write-stall timer fired: if the connection still has queued bytes
/// under that timer, the peer is wedged — disconnect it.
fn stall_expired(core: &mut Core, id: ConnId, timer: TimerId) {
    let wedged = match conn_mut(&mut core.slots, id) {
        Some(c) if c.stall_timer == Some(timer) && !c.writer.is_empty() => {
            c.stall_timer = None;
            true
        }
        _ => false,
    };
    if wedged {
        core.request_close(id);
    }
}

fn accept_ready<S: Service>(core: &mut Core, service: &mut S) {
    loop {
        let accepted = match &core.listener {
            Some(l) => l.accept(),
            None => return,
        };
        match accepted {
            Ok((stream, peer)) => {
                service.on_accept(&mut Ctx { core: &mut *core }, stream, peer);
                process_deferred(core, service);
                if core.stopped {
                    return;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            // Transient per-connection accept failures (ECONNABORTED
            // etc.): skip the broken one, keep accepting.
            Err(_) => continue,
        }
    }
}

/// Drain readable bytes and deliver frames until `WouldBlock`, pause,
/// or teardown. The only function that invokes `on_frame`.
fn pump_read<S: Service>(core: &mut Core, service: &mut S, id: ConnId) {
    loop {
        // Deliver frames already buffered.
        loop {
            let frame = {
                let Some(c) = conn_mut(&mut core.slots, id) else { return };
                if c.closing {
                    return;
                }
                if c.paused || c.write_stalled {
                    c.read_pending = true;
                    return;
                }
                c.reader.next_frame()
            };
            match frame {
                Some(Ok(line)) => service.on_frame(&mut Ctx { core: &mut *core }, id, line),
                Some(Err(err)) => service.on_frame_error(&mut Ctx { core: &mut *core }, id, err),
                None => break,
            }
        }
        // Refill from the socket.
        let read = {
            let Some(c) = conn_mut(&mut core.slots, id) else { return };
            if c.closing || c.eof {
                return;
            }
            c.stream.read(&mut core.scratch)
        };
        match read {
            Ok(0) => {
                // EOF: deliver the unterminated tail, then close once
                // any queued response has flushed.
                let tail = {
                    let Some(c) = conn_mut(&mut core.slots, id) else { return };
                    c.eof = true;
                    c.reader.finish()
                };
                match tail {
                    Some(Ok(line)) => service.on_frame(&mut Ctx { core: &mut *core }, id, line),
                    Some(Err(e)) => service.on_frame_error(&mut Ctx { core: &mut *core }, id, e),
                    None => {}
                }
                let drained = conn_mut(&mut core.slots, id)
                    .is_some_and(|c| !c.closing && c.writer.is_empty());
                if drained {
                    core.request_close(id);
                }
                return;
            }
            Ok(n) => {
                let Some(c) = conn_mut(&mut core.slots, id) else { return };
                c.reader.push(&core.scratch[..n]);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                if let Some(c) = conn_mut(&mut core.slots, id) {
                    c.read_pending = false;
                }
                return;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => {
                core.request_close(id);
                return;
            }
        }
    }
}

/// Run work parked by callbacks until all queues are empty. Pumps may
/// park flushes, flushes may park closes, closes may cascade — loop to
/// a fixed point.
fn process_deferred<S: Service>(core: &mut Core, service: &mut S) {
    loop {
        if core.stopped {
            return;
        }
        if let Some(id) = core.pending_pump.pop() {
            pump_read(core, service, id);
            continue;
        }
        if let Some(id) = core.pending_flush.pop() {
            let open = conn_mut(&mut core.slots, id).is_some();
            if open {
                service.on_flush(&mut Ctx { core: &mut *core }, id);
            }
            continue;
        }
        if let Some(id) = core.pending_close.pop() {
            finish_close(core, service, id);
            continue;
        }
        return;
    }
}

fn finish_close<S: Service>(core: &mut Core, service: &mut S, id: ConnId) {
    let Some(slot) = core.slots.get_mut(id.index as usize) else { return };
    if slot.gen != id.gen {
        return;
    }
    let Some(conn) = slot.conn.take() else { return };
    slot.gen = slot.gen.wrapping_add(1);
    core.free.push(id.index);
    core.conn_count -= 1;
    let _ = core.poll.remove(std::os::fd::AsRawFd::as_raw_fd(&conn.stream));
    if let Some(t) = conn.stall_timer {
        core.timers.cancel(t);
    }
    drop(conn); // closes the fd
    service.on_close(&mut Ctx { core: &mut *core }, id);
}
