//! Raw Linux bindings for the reactor: `epoll`, `eventfd` and
//! `RLIMIT_NOFILE`, declared directly against the C runtime that std
//! already links. Keeping the whole `unsafe` surface in this one module
//! lets the rest of the crate stay safe Rust with zero external
//! dependencies — no async runtime and no `libc` crate, per the
//! workspace policy of vendored-only dependencies.

use std::io;
use std::os::fd::{AsRawFd, FromRawFd, OwnedFd, RawFd};
use std::os::raw::{c_int, c_uint, c_void};
use std::time::Duration;

pub const EPOLLIN: u32 = 0x001;
pub const EPOLLOUT: u32 = 0x004;
pub const EPOLLERR: u32 = 0x008;
pub const EPOLLHUP: u32 = 0x010;
pub const EPOLLRDHUP: u32 = 0x2000;
pub const EPOLLET: u32 = 1 << 31;

const EPOLL_CTL_ADD: c_int = 1;
const EPOLL_CTL_DEL: c_int = 2;
const EPOLL_CTL_MOD: c_int = 3;
const EPOLL_CLOEXEC: c_int = 0o2000000;

const EFD_CLOEXEC: c_int = 0o2000000;
const EFD_NONBLOCK: c_int = 0o4000;

const RLIMIT_NOFILE: c_int = 7;

/// The kernel's `struct epoll_event`. On x86-64 the kernel ABI packs the
/// struct (no padding between `events` and `data`); other architectures
/// use natural alignment.
#[derive(Clone, Copy)]
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
pub struct EpollEvent {
    pub events: u32,
    pub data: u64,
}

#[repr(C)]
struct Rlimit {
    rlim_cur: u64,
    rlim_max: u64,
}

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
    fn eventfd(initval: c_uint, flags: c_int) -> c_int;
    fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
    fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
    fn getrlimit(resource: c_int, rlim: *mut Rlimit) -> c_int;
    fn setrlimit(resource: c_int, rlim: *const Rlimit) -> c_int;
    fn listen(fd: c_int, backlog: c_int) -> c_int;
}

fn cvt(ret: c_int) -> io::Result<c_int> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// Create a close-on-exec epoll instance.
pub fn epoll_create() -> io::Result<OwnedFd> {
    let fd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
    Ok(unsafe { OwnedFd::from_raw_fd(fd) })
}

pub fn epoll_add(ep: &OwnedFd, fd: RawFd, interest: u32, data: u64) -> io::Result<()> {
    let mut ev = EpollEvent { events: interest, data };
    cvt(unsafe { epoll_ctl(ep.as_raw_fd(), EPOLL_CTL_ADD, fd, &mut ev) })?;
    Ok(())
}

pub fn epoll_modify(ep: &OwnedFd, fd: RawFd, interest: u32, data: u64) -> io::Result<()> {
    let mut ev = EpollEvent { events: interest, data };
    cvt(unsafe { epoll_ctl(ep.as_raw_fd(), EPOLL_CTL_MOD, fd, &mut ev) })?;
    Ok(())
}

pub fn epoll_remove(ep: &OwnedFd, fd: RawFd) -> io::Result<()> {
    // A non-null event pointer keeps pre-2.6.9 kernels happy; current
    // kernels ignore it for DEL.
    let mut ev = EpollEvent { events: 0, data: 0 };
    cvt(unsafe { epoll_ctl(ep.as_raw_fd(), EPOLL_CTL_DEL, fd, &mut ev) })?;
    Ok(())
}

/// Wait for readiness events. `EINTR` is surfaced as an empty batch so
/// the caller re-evaluates its timers instead of over-sleeping.
pub fn epoll_wait_events(
    ep: &OwnedFd,
    buf: &mut [EpollEvent],
    timeout: Option<Duration>,
) -> io::Result<usize> {
    let ms = match timeout {
        // Round up so a 1.2 ms deadline is not polled at 1 ms forever.
        Some(t) => t.as_nanos().div_ceil(1_000_000).min(c_int::MAX as u128) as c_int,
        None => -1,
    };
    let n = unsafe { epoll_wait(ep.as_raw_fd(), buf.as_mut_ptr(), buf.len() as c_int, ms) };
    if n >= 0 {
        return Ok(n as usize);
    }
    let err = io::Error::last_os_error();
    if err.kind() == io::ErrorKind::Interrupted {
        Ok(0)
    } else {
        Err(err)
    }
}

/// Create a non-blocking close-on-exec eventfd (the reactor's wake pipe).
pub fn eventfd_create() -> io::Result<OwnedFd> {
    let fd = cvt(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) })?;
    Ok(unsafe { OwnedFd::from_raw_fd(fd) })
}

/// Bump the eventfd counter; wakes any `epoll_wait` watching it. Errors
/// (a full counter is already a wake) are intentionally ignored.
pub fn eventfd_signal(fd: &OwnedFd) {
    let one: u64 = 1;
    unsafe {
        let _ = write(fd.as_raw_fd(), (&raw const one).cast::<c_void>(), 8);
    }
}

/// Drain the eventfd counter so the next signal edges again.
pub fn eventfd_drain(fd: &OwnedFd) {
    let mut buf: u64 = 0;
    unsafe {
        let _ = read(fd.as_raw_fd(), (&raw mut buf).cast::<c_void>(), 8);
    }
}

/// Re-arm `listen(2)` on an already-listening socket to grow its accept
/// backlog past std's fixed 128. A connect burst larger than the backlog
/// overflows the SYN queue and the dropped SYNs retransmit after ~1 s —
/// a latency cliff a bigger backlog simply removes.
pub fn set_listen_backlog(fd: RawFd, backlog: i32) -> io::Result<()> {
    cvt(unsafe { listen(fd, backlog) })?;
    Ok(())
}

/// Raise the soft `RLIMIT_NOFILE` to the hard limit (best effort) and
/// return the soft limit now in effect. Lets a load generator open tens
/// of thousands of sockets without the default 1024-fd soft cap.
pub fn raise_nofile_limit() -> io::Result<u64> {
    let mut lim = Rlimit { rlim_cur: 0, rlim_max: 0 };
    cvt(unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) })?;
    if lim.rlim_cur < lim.rlim_max {
        let want = Rlimit { rlim_cur: lim.rlim_max, rlim_max: lim.rlim_max };
        if unsafe { setrlimit(RLIMIT_NOFILE, &want) } == 0 {
            lim.rlim_cur = lim.rlim_max;
        }
    }
    Ok(lim.rlim_cur)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eventfd_signals_epoll() {
        let ep = epoll_create().unwrap();
        let ev = eventfd_create().unwrap();
        epoll_add(&ep, ev.as_raw_fd(), EPOLLIN, 7).unwrap();

        let mut buf = [EpollEvent { events: 0, data: 0 }; 4];
        let n = epoll_wait_events(&ep, &mut buf, Some(Duration::from_millis(0))).unwrap();
        assert_eq!(n, 0, "no signal yet");

        eventfd_signal(&ev);
        let n = epoll_wait_events(&ep, &mut buf, Some(Duration::from_secs(5))).unwrap();
        assert_eq!(n, 1);
        let data = buf[0].data;
        assert_eq!(data, 7);

        eventfd_drain(&ev);
        let n = epoll_wait_events(&ep, &mut buf, Some(Duration::from_millis(0))).unwrap();
        assert_eq!(n, 0, "drained eventfd is quiet again");
    }

    #[test]
    fn nofile_limit_is_queryable() {
        let cur = raise_nofile_limit().unwrap();
        assert!(cur >= 64, "implausibly low fd limit: {cur}");
    }
}
