//! Per-connection framing state machines for newline-delimited JSON.
//!
//! [`FrameReader`] reassembles lines from arbitrarily fragmented reads
//! with a bounded buffer: a line that exceeds the limit is reported as a
//! typed [`FrameError::Oversized`] exactly once and the connection then
//! *resynchronises* at the next newline instead of dying — matching the
//! recovery semantics the serve protocol has always promised.
//!
//! [`WriteQueue`] holds not-yet-written response bytes across partial
//! writes so an edge-triggered reactor can resume exactly where the
//! kernel buffer filled up. It never drops or reorders frames; flow
//! control (pausing reads past a high watermark) is the reactor's job,
//! keyed off [`WriteQueue::len`].

use std::collections::VecDeque;
use std::fmt;
use std::io::{self, Write};

/// Typed framing failures. Both are recoverable: the reader keeps
/// working on the same connection after reporting one.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrameError {
    /// The line exceeded the configured byte limit. The reader discards
    /// input until the next newline and then resumes framing.
    Oversized,
    /// The line was not valid UTF-8.
    NotUtf8,
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Oversized => write!(f, "request line exceeds the frame size limit"),
            FrameError::NotUtf8 => write!(f, "request line is not valid UTF-8"),
        }
    }
}

/// Incremental newline-delimited frame reassembly with a bounded buffer.
pub struct FrameReader {
    buf: Vec<u8>,
    /// Bytes before `start` are consumed (compacted lazily).
    start: usize,
    /// Absolute index where the newline scan resumes — everything in
    /// `start..scan` is already known newline-free.
    scan: usize,
    /// Inside an oversized line: drop bytes until the next newline.
    skipping: bool,
    max_line: usize,
}

impl FrameReader {
    pub fn new(max_line: usize) -> FrameReader {
        FrameReader { buf: Vec::new(), start: 0, scan: 0, skipping: false, max_line }
    }

    /// Bytes buffered but not yet returned as frames.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Feed freshly read bytes into the reassembly buffer.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Extract the next complete frame, if any. Call in a loop until it
    /// returns `None`, then read more bytes. An oversized line yields
    /// `Some(Err(Oversized))` exactly once, as soon as the limit is
    /// exceeded, even before its terminator has arrived.
    pub fn next_frame(&mut self) -> Option<Result<String, FrameError>> {
        if self.skipping {
            match self.buf[self.start..].iter().position(|&b| b == b'\n') {
                Some(off) => {
                    self.start += off + 1;
                    self.scan = self.start;
                    self.skipping = false;
                }
                None => {
                    // Still inside the oversized line: drop everything.
                    self.buf.clear();
                    self.start = 0;
                    self.scan = 0;
                    return None;
                }
            }
        }
        match self.buf[self.scan..].iter().position(|&b| b == b'\n') {
            Some(off) => {
                let end = self.scan + off;
                let line = if end - self.start > self.max_line {
                    Err(FrameError::Oversized)
                } else {
                    decode_line(&self.buf[self.start..end])
                };
                self.start = end + 1;
                self.scan = self.start;
                self.compact();
                Some(line)
            }
            None => {
                self.scan = self.buf.len();
                if self.buffered() > self.max_line {
                    // Report once, then resynchronise at the next '\n'.
                    self.skipping = true;
                    self.buf.clear();
                    self.start = 0;
                    self.scan = 0;
                    Some(Err(FrameError::Oversized))
                } else {
                    None
                }
            }
        }
    }

    /// EOF: the unterminated tail, if any, is delivered as a final frame
    /// (a client that writes a request and shuts down its write side
    /// without a trailing newline still gets an answer).
    pub fn finish(&mut self) -> Option<Result<String, FrameError>> {
        if self.skipping || self.buffered() == 0 {
            return None;
        }
        let line = decode_line(&self.buf[self.start..]);
        self.buf.clear();
        self.start = 0;
        self.scan = 0;
        Some(line)
    }

    fn compact(&mut self) {
        if self.start >= 4096 && self.start * 2 >= self.buf.len() {
            self.buf.drain(..self.start);
            self.scan -= self.start;
            self.start = 0;
        }
    }
}

fn decode_line(raw: &[u8]) -> Result<String, FrameError> {
    let raw = raw.strip_suffix(b"\r").unwrap_or(raw);
    std::str::from_utf8(raw).map(str::to_owned).map_err(|_| FrameError::NotUtf8)
}

/// Outbound frame queue with partial-write resumption.
pub struct WriteQueue {
    chunks: VecDeque<Vec<u8>>,
    /// Offset of the first unwritten byte within `chunks[0]`.
    head: usize,
    bytes: usize,
}

impl WriteQueue {
    pub fn new() -> WriteQueue {
        WriteQueue { chunks: VecDeque::new(), head: 0, bytes: 0 }
    }

    /// Unwritten bytes still queued.
    pub fn len(&self) -> usize {
        self.bytes
    }

    pub fn is_empty(&self) -> bool {
        self.bytes == 0
    }

    pub fn push(&mut self, frame: Vec<u8>) {
        self.bytes += frame.len();
        self.chunks.push_back(frame);
    }

    /// Write queued bytes until drained or the sink would block. Returns
    /// `(bytes_written, drained)`. `WouldBlock` is progress-so-far, not
    /// an error; a zero-length write and real I/O errors surface as
    /// `Err` so the caller tears the connection down.
    pub fn write_to<W: Write>(&mut self, sink: &mut W) -> io::Result<(usize, bool)> {
        let mut wrote = 0;
        while let Some(chunk) = self.chunks.front() {
            match sink.write(&chunk[self.head..]) {
                Ok(0) => {
                    return Err(io::Error::new(io::ErrorKind::WriteZero, "peer stopped accepting"))
                }
                Ok(n) => {
                    wrote += n;
                    self.bytes -= n;
                    self.head += n;
                    if self.head == chunk.len() {
                        self.chunks.pop_front();
                        self.head = 0;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok((wrote, false)),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        Ok((wrote, true))
    }
}

impl Default for WriteQueue {
    fn default() -> Self {
        WriteQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(r: &mut FrameReader) -> Vec<Result<String, FrameError>> {
        let mut out = Vec::new();
        while let Some(f) = r.next_frame() {
            out.push(f);
        }
        out
    }

    #[test]
    fn reassembles_across_many_small_pushes() {
        let mut r = FrameReader::new(1024);
        let line = r#"{"verb":"solve","id":17}"#;
        for chunk in line.as_bytes().chunks(3) {
            r.push(chunk);
            assert!(r.next_frame().is_none(), "no frame before the terminator");
        }
        r.push(b"\n");
        assert_eq!(drain(&mut r), vec![Ok(line.to_owned())]);
        assert_eq!(r.buffered(), 0);
    }

    #[test]
    fn splits_batched_frames_and_keeps_the_tail() {
        let mut r = FrameReader::new(1024);
        r.push(b"one\ntwo\nthr");
        assert_eq!(drain(&mut r), vec![Ok("one".into()), Ok("two".into())]);
        r.push(b"ee\n");
        assert_eq!(drain(&mut r), vec![Ok("three".into())]);
    }

    #[test]
    fn crlf_is_tolerated() {
        let mut r = FrameReader::new(1024);
        r.push(b"hello\r\nworld\r\n");
        assert_eq!(drain(&mut r), vec![Ok("hello".into()), Ok("world".into())]);
    }

    #[test]
    fn oversized_line_reports_once_then_resynchronises() {
        let mut r = FrameReader::new(8);
        r.push(b"0123456789");
        assert_eq!(drain(&mut r), vec![Err(FrameError::Oversized)]);
        // More of the same giant line: silently discarded.
        r.push(b"aaaaaaaaaaaaaaaaaaaa");
        assert_eq!(drain(&mut r), vec![]);
        // Terminator arrives mid-push; framing resumes on the next line.
        r.push(b"bbb\nok\n");
        assert_eq!(drain(&mut r), vec![Ok("ok".into())]);
    }

    #[test]
    fn oversized_exactly_at_limit_is_fine() {
        let mut r = FrameReader::new(4);
        r.push(b"abcd\n");
        assert_eq!(drain(&mut r), vec![Ok("abcd".into())]);
        r.push(b"abcde\n");
        assert_eq!(drain(&mut r), vec![Err(FrameError::Oversized)]);
    }

    #[test]
    fn invalid_utf8_is_typed_and_recoverable() {
        let mut r = FrameReader::new(64);
        r.push(b"\xff\xfe\n next\n");
        assert_eq!(drain(&mut r), vec![Err(FrameError::NotUtf8), Ok(" next".into())]);
    }

    #[test]
    fn finish_delivers_the_unterminated_tail() {
        let mut r = FrameReader::new(64);
        r.push(b"done\npartial");
        assert_eq!(drain(&mut r), vec![Ok("done".into())]);
        assert_eq!(r.finish(), Some(Ok("partial".into())));
        assert_eq!(r.finish(), None);
    }

    #[test]
    fn finish_ignores_a_skipped_oversized_tail() {
        let mut r = FrameReader::new(4);
        r.push(b"way too long");
        assert_eq!(drain(&mut r), vec![Err(FrameError::Oversized)]);
        assert_eq!(r.finish(), None, "the oversized tail was already reported");
    }

    /// A sink that accepts at most `cap` bytes per call and then blocks.
    struct Throttled {
        accepted: Vec<u8>,
        cap: usize,
        blocked_calls: usize,
    }

    impl Write for Throttled {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            if self.cap == 0 {
                self.blocked_calls += 1;
                return Err(io::Error::new(io::ErrorKind::WouldBlock, "full"));
            }
            let n = buf.len().min(self.cap);
            self.accepted.extend_from_slice(&buf[..n]);
            Ok(n)
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn write_queue_resumes_partial_writes_in_order() {
        let mut q = WriteQueue::new();
        q.push(b"abcdefgh".to_vec());
        q.push(b"ij".to_vec());
        assert_eq!(q.len(), 10);

        let mut sink = Throttled { accepted: Vec::new(), cap: 3, blocked_calls: 0 };
        // 3-byte slices: several partial writes, never drops a byte.
        let (wrote, drained) = q.write_to(&mut sink).unwrap();
        assert!(drained);
        assert_eq!(wrote, 10);
        assert_eq!(sink.accepted, b"abcdefghij");
        assert!(q.is_empty());
    }

    #[test]
    fn write_queue_parks_on_wouldblock_and_resumes() {
        let mut q = WriteQueue::new();
        q.push(b"0123456789".to_vec());
        let mut sink = Throttled { accepted: Vec::new(), cap: 4, blocked_calls: 0 };
        let (w1, drained) = q.write_to(&mut sink).unwrap();
        assert_eq!((w1, drained), (10, true));

        q.push(b"abcdef".to_vec());
        let mut blocked = Throttled { accepted: Vec::new(), cap: 0, blocked_calls: 0 };
        let (w2, drained) = q.write_to(&mut blocked).unwrap();
        assert_eq!((w2, drained), (0, false));
        assert_eq!(blocked.blocked_calls, 1);
        assert_eq!(q.len(), 6, "blocked bytes stay queued");

        let mut sink = Throttled { accepted: Vec::new(), cap: 100, blocked_calls: 0 };
        let (w3, drained) = q.write_to(&mut sink).unwrap();
        assert_eq!((w3, drained), (6, true));
        assert_eq!(sink.accepted, b"abcdef");
    }
}
