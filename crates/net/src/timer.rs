//! A hashed timer wheel for request deadlines and session TTLs.
//!
//! Deadlines in the serve tier are coarse (milliseconds to minutes) and
//! cancelled far more often than they fire — a completed request always
//! cancels its deadline. The wheel makes both operations O(1): timers
//! hash into `slots.len()` buckets by absolute tick, each entry carries
//! its full tick so colliding far-future timers simply stay parked when
//! the cursor passes their bucket early, and cancellation is a lazy
//! tombstone checked at fire time.

use std::collections::HashSet;
use std::time::{Duration, Instant};

/// Handle for cancelling a scheduled timer.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TimerId(u64);

struct Entry {
    id: u64,
    tick: u64,
    data: u64,
}

pub struct TimerWheel {
    slots: Vec<Vec<Entry>>,
    /// Next tick the cursor will collect.
    cursor: u64,
    /// Ids scheduled and not yet fired or cancelled.
    active: HashSet<u64>,
    /// Ids cancelled while still parked in a slot.
    cancelled: HashSet<u64>,
    next_id: u64,
    start: Instant,
    granularity: Duration,
    /// Cached lower bound on the earliest active tick; `None` = stale.
    min_tick: Option<u64>,
}

impl TimerWheel {
    /// `granularity` is the firing resolution (deadlines round *up* to
    /// the next tick so timers never fire early); `slots` trades memory
    /// for fewer far-future collisions.
    pub fn new(granularity: Duration, slots: usize, start: Instant) -> TimerWheel {
        assert!(!granularity.is_zero(), "timer granularity must be positive");
        let slots = slots.max(1);
        TimerWheel {
            slots: (0..slots).map(|_| Vec::new()).collect(),
            cursor: 0,
            active: HashSet::new(),
            cancelled: HashSet::new(),
            next_id: 0,
            start,
            granularity,
            min_tick: Some(u64::MAX),
        }
    }

    pub fn len(&self) -> usize {
        self.active.len()
    }

    pub fn is_empty(&self) -> bool {
        self.active.is_empty()
    }

    fn tick_ceil(&self, at: Instant) -> u64 {
        let elapsed = at.saturating_duration_since(self.start).as_nanos();
        elapsed.div_ceil(self.granularity.as_nanos()).min(u64::MAX as u128) as u64
    }

    fn tick_floor(&self, at: Instant) -> u64 {
        let elapsed = at.saturating_duration_since(self.start).as_nanos();
        (elapsed / self.granularity.as_nanos()).min(u64::MAX as u128) as u64
    }

    /// Schedule a timer `after` from `now`, carrying opaque `data`.
    pub fn schedule(&mut self, now: Instant, after: Duration, data: u64) -> TimerId {
        // Never earlier than the cursor: a zero-delay timer fires on the
        // next poll, not never.
        let tick = self.tick_ceil(now + after).max(self.cursor);
        let id = self.next_id;
        self.next_id += 1;
        self.active.insert(id);
        let slot = (tick % self.slots.len() as u64) as usize;
        self.slots[slot].push(Entry { id, tick, data });
        if let Some(min) = self.min_tick {
            self.min_tick = Some(min.min(tick));
        }
        TimerId(id)
    }

    /// Cancel a timer. Returns `false` if it already fired or was
    /// already cancelled. The slot entry is tombstoned lazily; the
    /// cached wakeup may therefore be spuriously early, which is
    /// harmless — the poll simply finds nothing to fire.
    pub fn cancel(&mut self, id: TimerId) -> bool {
        if self.active.remove(&id.0) {
            self.cancelled.insert(id.0);
            true
        } else {
            false
        }
    }

    /// Collect every timer due at `now` into `out` as `(id, data)`,
    /// in tick order per slot.
    pub fn poll(&mut self, now: Instant, out: &mut Vec<(TimerId, u64)>) {
        let target = self.tick_floor(now);
        if target < self.cursor {
            return;
        }
        let n = self.slots.len() as u64;
        let span = (target - self.cursor + 1).min(n);
        for i in 0..span {
            let slot = ((self.cursor + i) % n) as usize;
            let entries = &mut self.slots[slot];
            let mut keep = 0;
            for j in 0..entries.len() {
                let e = &entries[j];
                if self.cancelled.remove(&e.id) {
                    continue; // drop tombstone
                }
                if e.tick <= target {
                    self.active.remove(&e.id);
                    out.push((TimerId(e.id), e.data));
                } else {
                    entries.swap(keep, j);
                    keep += 1;
                }
            }
            entries.truncate(keep);
        }
        self.cursor = target + 1;
        // Once the cursor passes the cached minimum (fired *or* stale
        // from a lazy cancel), invalidate it so the next wakeup is
        // recomputed from live entries instead of spinning at zero.
        if self.min_tick.is_some_and(|min| min < self.cursor) {
            self.min_tick = None;
        }
    }

    /// How long until the earliest active timer is due (zero if overdue),
    /// or `None` when no timers are scheduled.
    pub fn next_timeout(&mut self, now: Instant) -> Option<Duration> {
        if self.active.is_empty() {
            self.min_tick = Some(u64::MAX);
            return None;
        }
        let min = match self.min_tick {
            Some(min) if min != u64::MAX => min,
            _ => {
                let mut min = u64::MAX;
                for slot in &self.slots {
                    for e in slot {
                        if e.tick < min && self.active.contains(&e.id) {
                            min = e.tick;
                        }
                    }
                }
                self.min_tick = Some(min);
                min
            }
        };
        let gran_ns = self.granularity.as_nanos().min(u64::MAX as u128) as u64;
        let due = self.start + Duration::from_nanos(gran_ns.saturating_mul(min));
        Some(due.saturating_duration_since(now))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(n: u64) -> Duration {
        Duration::from_millis(n)
    }

    #[test]
    fn fires_in_deadline_order_not_before() {
        let t0 = Instant::now();
        let mut w = TimerWheel::new(ms(4), 8, t0);
        let _a = w.schedule(t0, ms(40), 1);
        let _b = w.schedule(t0, ms(12), 2);

        let mut out = Vec::new();
        w.poll(t0 + ms(8), &mut out);
        assert!(out.is_empty(), "nothing due yet");

        w.poll(t0 + ms(16), &mut out);
        assert_eq!(out.iter().map(|&(_, d)| d).collect::<Vec<_>>(), vec![2]);

        out.clear();
        w.poll(t0 + ms(44), &mut out);
        assert_eq!(out.iter().map(|&(_, d)| d).collect::<Vec<_>>(), vec![1]);
        assert!(w.is_empty());
    }

    #[test]
    fn far_future_timers_survive_wheel_wraparound() {
        let t0 = Instant::now();
        // 8 slots x 4 ms = 32 ms per revolution; a 200 ms timer shares a
        // slot with near timers and must stay parked for 6+ revolutions.
        let mut w = TimerWheel::new(ms(4), 8, t0);
        w.schedule(t0, ms(200), 99);
        let mut out = Vec::new();
        for step in 1..=48 {
            w.poll(t0 + ms(4 * step), &mut out);
        }
        assert!(out.is_empty(), "fired {out:?} before its 200 ms deadline");
        w.poll(t0 + ms(204), &mut out);
        assert_eq!(out, vec![(out[0].0, 99)]);
    }

    #[test]
    fn cancel_prevents_firing_and_is_idempotent() {
        let t0 = Instant::now();
        let mut w = TimerWheel::new(ms(1), 16, t0);
        let a = w.schedule(t0, ms(5), 1);
        let b = w.schedule(t0, ms(5), 2);
        assert!(w.cancel(a));
        assert!(!w.cancel(a), "second cancel is a no-op");
        assert_eq!(w.len(), 1);

        let mut out = Vec::new();
        w.poll(t0 + ms(10), &mut out);
        assert_eq!(out.iter().map(|&(_, d)| d).collect::<Vec<_>>(), vec![2]);
        assert!(!w.cancel(b), "fired timers cannot be cancelled");
    }

    #[test]
    fn next_timeout_tracks_the_earliest_survivor() {
        let t0 = Instant::now();
        let mut w = TimerWheel::new(ms(2), 32, t0);
        assert_eq!(w.next_timeout(t0), None);
        let early = w.schedule(t0, ms(6), 1);
        w.schedule(t0, ms(60), 2);
        assert!(w.next_timeout(t0).unwrap() <= ms(6));

        // Cancelling the early timer leaves a stale (earlier) cached
        // wakeup — allowed, as long as it never *over*-sleeps.
        w.cancel(early);
        assert!(w.next_timeout(t0).unwrap() <= ms(60));

        let mut out = Vec::new();
        w.poll(t0 + ms(8), &mut out);
        assert!(out.is_empty());
        // After a poll pass the cache is refreshed from live entries.
        let wait = w.next_timeout(t0 + ms(8)).unwrap();
        assert!(wait <= ms(52), "stale wakeup persisted: {wait:?}");
    }

    #[test]
    fn zero_delay_fires_on_the_next_poll() {
        let t0 = Instant::now();
        let mut w = TimerWheel::new(ms(4), 8, t0);
        w.schedule(t0, ms(0), 5);
        let mut out = Vec::new();
        w.poll(t0, &mut out);
        assert_eq!(out.iter().map(|&(_, d)| d).collect::<Vec<_>>(), vec![5]);
    }
}
