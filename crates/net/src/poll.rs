//! Safe wrappers over the epoll instance: `Poller` owns the epoll fd and
//! a fixed event buffer, `Waker` is a cloneable cross-thread wake handle
//! backed by an eventfd, and `Event` is the decoded readiness record
//! handed to the reactor loop.

use crate::sys;
use std::io;
use std::os::fd::{AsRawFd, OwnedFd, RawFd};
use std::sync::Arc;
use std::time::Duration;

/// Interest flags for [`Poller::add`] / [`Poller::modify`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interest {
    pub readable: bool,
    pub writable: bool,
    /// Edge-triggered: the kernel reports each readiness *transition*
    /// once; the owner must drain until `WouldBlock`.
    pub edge: bool,
}

impl Interest {
    pub const READ: Interest = Interest { readable: true, writable: false, edge: false };
    pub const READ_WRITE_EDGE: Interest = Interest { readable: true, writable: true, edge: true };

    fn bits(self) -> u32 {
        let mut bits = sys::EPOLLRDHUP;
        if self.readable {
            bits |= sys::EPOLLIN;
        }
        if self.writable {
            bits |= sys::EPOLLOUT;
        }
        if self.edge {
            bits |= sys::EPOLLET;
        }
        bits
    }
}

/// One decoded readiness event.
#[derive(Clone, Copy, Debug)]
pub struct Event {
    /// The `data` word registered with the fd (a connection token).
    pub data: u64,
    pub readable: bool,
    pub writable: bool,
    /// `EPOLLERR` — the owner should read to surface the error.
    pub error: bool,
    /// `EPOLLHUP` / `EPOLLRDHUP` — peer closed; reads will drain to EOF.
    pub hangup: bool,
}

/// Owns the epoll instance and the kernel-facing event buffer.
pub struct Poller {
    ep: OwnedFd,
    buf: Vec<sys::EpollEvent>,
}

impl Poller {
    pub fn new() -> io::Result<Poller> {
        let ep = sys::epoll_create()?;
        let buf = vec![sys::EpollEvent { events: 0, data: 0 }; 1024];
        Ok(Poller { ep, buf })
    }

    pub fn add(&self, fd: RawFd, data: u64, interest: Interest) -> io::Result<()> {
        sys::epoll_add(&self.ep, fd, interest.bits(), data)
    }

    pub fn modify(&self, fd: RawFd, data: u64, interest: Interest) -> io::Result<()> {
        sys::epoll_modify(&self.ep, fd, interest.bits(), data)
    }

    pub fn remove(&self, fd: RawFd) -> io::Result<()> {
        sys::epoll_remove(&self.ep, fd)
    }

    /// Block for up to `timeout` (forever when `None`), appending decoded
    /// events to `out`. Returns the number of events delivered; spurious
    /// empty batches (timeouts, `EINTR`) are normal.
    pub fn wait(&mut self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize> {
        let n = sys::epoll_wait_events(&self.ep, &mut self.buf, timeout)?;
        out.reserve(n);
        for ev in &self.buf[..n] {
            let bits = ev.events;
            out.push(Event {
                data: ev.data,
                readable: bits & sys::EPOLLIN != 0,
                writable: bits & sys::EPOLLOUT != 0,
                error: bits & sys::EPOLLERR != 0,
                hangup: bits & (sys::EPOLLHUP | sys::EPOLLRDHUP) != 0,
            });
        }
        Ok(n)
    }
}

/// Cross-thread wake handle: bumping the eventfd makes the reactor's
/// `epoll_wait` return so it can drain its message queue. Cloneable and
/// cheap; safe to signal after the reactor has exited.
#[derive(Clone)]
pub struct Waker {
    fd: Arc<OwnedFd>,
}

impl Waker {
    pub fn new() -> io::Result<Waker> {
        Ok(Waker { fd: Arc::new(sys::eventfd_create()?) })
    }

    /// Register this waker with a poller under `data`. Level-triggered on
    /// purpose: the reactor drains the counter on every wake, and a
    /// level registration cannot lose a signal raced with the drain.
    pub fn register(&self, poller: &Poller, data: u64) -> io::Result<()> {
        poller.add(self.fd.as_raw_fd(), data, Interest::READ)
    }

    pub fn wake(&self) {
        sys::eventfd_signal(&self.fd);
    }

    pub fn drain(&self) {
        sys::eventfd_drain(&self.fd);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};

    #[test]
    fn waker_round_trip() {
        let mut poller = Poller::new().unwrap();
        let waker = Waker::new().unwrap();
        waker.register(&poller, u64::MAX).unwrap();

        let mut out = Vec::new();
        poller.wait(&mut out, Some(Duration::from_millis(0))).unwrap();
        assert!(out.is_empty());

        let remote = waker.clone();
        std::thread::spawn(move || remote.wake());
        poller.wait(&mut out, Some(Duration::from_secs(5))).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].data, u64::MAX);
        assert!(out[0].readable);
        waker.drain();
    }

    #[test]
    fn edge_readiness_reports_initial_state() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        client.write_all(b"ping\n").unwrap();
        client.flush().unwrap();
        // Give loopback delivery a beat so the data is queued *before*
        // registration: EPOLL_CTL_ADD on an already-ready fd must still
        // report an initial edge.
        std::thread::sleep(Duration::from_millis(20));

        let mut poller = Poller::new().unwrap();
        poller.add(server.as_raw_fd(), 42, Interest::READ_WRITE_EDGE).unwrap();
        let mut out = Vec::new();
        poller.wait(&mut out, Some(Duration::from_secs(5))).unwrap();
        assert!(out.iter().any(|e| e.data == 42 && e.readable), "initial readable edge");
    }
}
