//! # atsched-net — a zero-dependency readiness reactor
//!
//! The event-loop substrate under the serve tier: a single-threaded
//! epoll reactor with edge-triggered readiness dispatch, per-connection
//! state machines for incremental newline-delimited framing, a hashed
//! timer wheel for deadlines and TTLs, and an eventfd-backed mailbox so
//! worker threads can inject replies without touching sockets.
//!
//! Per the workspace policy this crate has **no dependencies at all**:
//! the epoll/eventfd/rlimit calls are declared straight against the C
//! runtime that std already links ([`sys`]), so there is no async
//! runtime, no `libc` crate, and no reactor framework — just readiness,
//! buffers and timers.
//!
//! ## Layering
//!
//! - [`sys`] — the raw (Linux-only) syscall surface, all `unsafe` here;
//! - [`poll`] — [`Poller`], [`Waker`], decoded [`Event`]s;
//! - [`frame`] — [`FrameReader`] / [`WriteQueue`] connection state
//!   machines with bounded buffers and typed error recovery;
//! - [`timer`] — the [`TimerWheel`];
//! - [`reactor`] — the [`Reactor`] event loop tying it together around
//!   a user [`Service`].
//!
//! ## A minimal echo service
//!
//! ```no_run
//! use atsched_net::{Ctx, Reactor, ReactorConfig, ConnId, Service};
//!
//! struct Echo;
//! impl Service for Echo {
//!     type Msg = ();
//!     fn on_frame(&mut self, ctx: &mut Ctx<'_>, conn: ConnId, line: String) {
//!         ctx.send(conn, format!("{line}\n").into_bytes());
//!     }
//! }
//!
//! let (mut reactor, _remote) = Reactor::new(ReactorConfig::default(), Echo).unwrap();
//! reactor.listen(std::net::TcpListener::bind("127.0.0.1:0").unwrap()).unwrap();
//! reactor.run().unwrap();
//! ```

pub mod frame;
pub mod poll;
pub mod reactor;
pub mod sys;
pub mod timer;

pub use frame::{FrameError, FrameReader, WriteQueue};
pub use poll::{Event, Interest, Poller, Waker};
pub use reactor::{ConnId, Ctx, Reactor, ReactorConfig, Remote, Service};
pub use sys::raise_nofile_limit;
pub use timer::{TimerId, TimerWheel};
