//! JSON (de)serialization of instances and experiment records.

use atsched_core::instance::{Instance, InstanceError};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

/// Errors from instance / record (de)serialization.
#[non_exhaustive]
#[derive(Debug)]
pub enum IoError {
    /// Malformed JSON.
    Json(serde_json::Error),
    /// Text-format parse failure, with its 1-based line number.
    Parse {
        /// 1-based line of the offending input.
        line: usize,
        /// What was wrong with it.
        message: String,
    },
    /// The decoded data does not form a valid instance.
    Instance(InstanceError),
    /// Filesystem failure.
    Fs(io::Error),
}

impl fmt::Display for IoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IoError::Json(e) => write!(f, "invalid JSON: {e}"),
            IoError::Parse { line, message } => write!(f, "line {line}: {message}"),
            IoError::Instance(e) => write!(f, "invalid instance: {e}"),
            IoError::Fs(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for IoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IoError::Json(e) => Some(e),
            IoError::Instance(e) => Some(e),
            IoError::Fs(e) => Some(e),
            IoError::Parse { .. } => None,
        }
    }
}

impl From<serde_json::Error> for IoError {
    fn from(e: serde_json::Error) -> Self {
        IoError::Json(e)
    }
}

impl From<InstanceError> for IoError {
    fn from(e: InstanceError) -> Self {
        IoError::Instance(e)
    }
}

impl From<io::Error> for IoError {
    fn from(e: io::Error) -> Self {
        IoError::Fs(e)
    }
}

/// One row of an experiment output, ready for `serde_json` persistence.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct ExperimentRecord {
    /// Experiment id (e.g. "E1").
    pub experiment: String,
    /// Parameter assignment, as `name=value` strings.
    pub params: Vec<String>,
    /// Measured quantities, as `(metric, value)` pairs.
    pub metrics: Vec<(String, f64)>,
}

/// Serialize an instance to pretty JSON.
pub fn instance_to_json(inst: &Instance) -> String {
    serde_json::to_string_pretty(inst).expect("instances always serialize")
}

/// Parse an instance from JSON and re-validate it.
pub fn instance_from_json(s: &str) -> Result<Instance, IoError> {
    let raw: Instance = serde_json::from_str(s)?;
    // Re-run validation (serde bypasses Instance::new).
    Ok(Instance::new(raw.g, raw.jobs)?)
}

/// Write an instance to a file.
pub fn save_instance(inst: &Instance, path: &Path) -> Result<(), IoError> {
    Ok(fs::write(path, instance_to_json(inst))?)
}

/// Read an instance from a file.
pub fn load_instance(path: &Path) -> Result<Instance, IoError> {
    let s = fs::read_to_string(path)?;
    instance_from_json(&s)
}

/// Append experiment records as JSON lines.
pub fn append_records(records: &[ExperimentRecord], path: &Path) -> Result<(), IoError> {
    use std::io::Write;
    let mut f = fs::OpenOptions::new().create(true).append(true).open(path)?;
    for r in records {
        writeln!(f, "{}", serde_json::to_string(r).expect("records serialize"))?;
    }
    Ok(())
}

/// Render an instance in the plain-text exchange format:
///
/// ```text
/// # optional comments
/// g 3
/// job 0 12 4     # release deadline processing
/// job 2 6 2
/// ```
pub fn instance_to_text(inst: &Instance) -> String {
    let mut out = String::new();
    out.push_str(&format!("g {}\n", inst.g));
    for j in &inst.jobs {
        out.push_str(&format!("job {} {} {}\n", j.release, j.deadline, j.processing));
    }
    out
}

/// Parse the plain-text exchange format (see [`instance_to_text`]).
/// Blank lines and `#` comments are ignored; the `g` line may appear
/// anywhere (last one wins) and defaults to 1.
pub fn instance_from_text(s: &str) -> Result<Instance, IoError> {
    use atsched_core::instance::Job;
    let parse_err = |line: usize, message: String| IoError::Parse { line: line + 1, message };
    let mut g = 1i64;
    let mut jobs: Vec<Job> = Vec::new();
    for (lineno, raw) in s.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut it = line.split_whitespace();
        match it.next() {
            Some("g") => {
                g = it
                    .next()
                    .ok_or_else(|| parse_err(lineno, "g needs a value".into()))?
                    .parse()
                    .map_err(|_| parse_err(lineno, "invalid g".into()))?;
            }
            Some("job") => {
                let mut num = || -> Result<i64, IoError> {
                    it.next()
                        .ok_or_else(|| parse_err(lineno, "job needs r d p".into()))?
                        .parse()
                        .map_err(|_| parse_err(lineno, "invalid number".into()))
                };
                let (r, d, p) = (num()?, num()?, num()?);
                jobs.push(Job::new(r, d, p));
            }
            Some(other) => return Err(parse_err(lineno, format!("unknown directive '{other}'"))),
            None => unreachable!("empty lines filtered"),
        }
        if it.next().is_some() {
            return Err(parse_err(lineno, "trailing tokens".into()));
        }
    }
    Ok(Instance::new(g, jobs)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use atsched_core::instance::Job;

    #[test]
    fn instance_roundtrip() {
        let inst = Instance::new(3, vec![Job::new(0, 8, 2), Job::new(1, 4, 1), Job::new(5, 7, 2)])
            .unwrap();
        let s = instance_to_json(&inst);
        let back = instance_from_json(&s).unwrap();
        assert_eq!(inst, back);
    }

    #[test]
    fn invalid_json_rejected() {
        assert!(instance_from_json("{").is_err());
        // Structurally valid JSON but invalid instance (p = 0).
        let bad = r#"{"g":1,"jobs":[{"release":0,"deadline":2,"processing":0}]}"#;
        assert!(instance_from_json(bad).is_err());
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("atsched_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("inst.json");
        let inst = Instance::new(2, vec![Job::new(0, 4, 2)]).unwrap();
        save_instance(&inst, &path).unwrap();
        assert_eq!(load_instance(&path).unwrap(), inst);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn text_format_roundtrip() {
        let inst = Instance::new(3, vec![Job::new(0, 8, 2), Job::new(-3, 4, 1), Job::new(5, 7, 2)])
            .unwrap();
        let text = instance_to_text(&inst);
        let back = instance_from_text(&text).unwrap();
        assert_eq!(inst, back);
    }

    #[test]
    fn text_format_comments_and_whitespace() {
        let src = "\n# a comment\n  g 4  # capacity\n\njob 0 5 2\njob 1 3 1 # tight\n";
        let inst = instance_from_text(src).unwrap();
        assert_eq!(inst.g, 4);
        assert_eq!(inst.num_jobs(), 2);
    }

    #[test]
    fn text_format_errors() {
        assert!(instance_from_text("job 1").is_err()); // missing fields
        assert!(instance_from_text("frob 1 2 3").is_err()); // unknown directive
        assert!(instance_from_text("g x").is_err()); // bad number
        assert!(instance_from_text("job 0 2 1 9").is_err()); // trailing token
        assert!(instance_from_text("job 0 2 5").is_err()); // invalid instance (p > window)
        assert_eq!(instance_from_text("").unwrap().num_jobs(), 0); // empty ok
    }

    #[test]
    fn errors_are_typed() {
        assert!(matches!(instance_from_json("{"), Err(IoError::Json(_))));
        let bad = r#"{"g":1,"jobs":[{"release":0,"deadline":2,"processing":0}]}"#;
        assert!(matches!(instance_from_json(bad), Err(IoError::Instance(_))));
        match instance_from_text("g 2\nfrob 1") {
            Err(e @ IoError::Parse { line: 2, .. }) => {
                assert!(e.to_string().contains("line 2"), "{e}")
            }
            other => panic!("expected Parse error on line 2, got {other:?}"),
        }
        let missing = std::env::temp_dir().join("atsched_io_test_does_not_exist.json");
        assert!(matches!(load_instance(&missing), Err(IoError::Fs(_))));
    }

    #[test]
    fn records_jsonl() {
        let dir = std::env::temp_dir().join("atsched_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("records.jsonl");
        std::fs::remove_file(&path).ok();
        let recs = vec![ExperimentRecord {
            experiment: "E1".into(),
            params: vec!["g=2".into()],
            metrics: vec![("ratio".into(), 1.25)],
        }];
        append_records(&recs, &path).unwrap();
        append_records(&recs, &path).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert_eq!(body.lines().count(), 2);
        std::fs::remove_file(&path).ok();
    }
}
