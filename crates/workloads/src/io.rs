//! JSON (de)serialization of instances and experiment records.

use atsched_core::instance::Instance;
use serde::{Deserialize, Serialize};
use std::fs;
use std::io;
use std::path::Path;

/// One row of an experiment output, ready for `serde_json` persistence.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct ExperimentRecord {
    /// Experiment id (e.g. "E1").
    pub experiment: String,
    /// Parameter assignment, as `name=value` strings.
    pub params: Vec<String>,
    /// Measured quantities, as `(metric, value)` pairs.
    pub metrics: Vec<(String, f64)>,
}

/// Serialize an instance to pretty JSON.
pub fn instance_to_json(inst: &Instance) -> String {
    serde_json::to_string_pretty(inst).expect("instances always serialize")
}

/// Parse an instance from JSON and re-validate it.
pub fn instance_from_json(s: &str) -> Result<Instance, String> {
    let raw: Instance = serde_json::from_str(s).map_err(|e| e.to_string())?;
    // Re-run validation (serde bypasses Instance::new).
    Instance::new(raw.g, raw.jobs).map_err(|e| e.to_string())
}

/// Write an instance to a file.
pub fn save_instance(inst: &Instance, path: &Path) -> io::Result<()> {
    fs::write(path, instance_to_json(inst))
}

/// Read an instance from a file.
pub fn load_instance(path: &Path) -> io::Result<Instance> {
    let s = fs::read_to_string(path)?;
    instance_from_json(&s).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

/// Append experiment records as JSON lines.
pub fn append_records(records: &[ExperimentRecord], path: &Path) -> io::Result<()> {
    use std::io::Write;
    let mut f = fs::OpenOptions::new().create(true).append(true).open(path)?;
    for r in records {
        writeln!(f, "{}", serde_json::to_string(r).expect("records serialize"))?;
    }
    Ok(())
}

/// Render an instance in the plain-text exchange format:
///
/// ```text
/// # optional comments
/// g 3
/// job 0 12 4     # release deadline processing
/// job 2 6 2
/// ```
pub fn instance_to_text(inst: &Instance) -> String {
    let mut out = String::new();
    out.push_str(&format!("g {}\n", inst.g));
    for j in &inst.jobs {
        out.push_str(&format!("job {} {} {}\n", j.release, j.deadline, j.processing));
    }
    out
}

/// Parse the plain-text exchange format (see [`instance_to_text`]).
/// Blank lines and `#` comments are ignored; the `g` line may appear
/// anywhere (last one wins) and defaults to 1.
pub fn instance_from_text(s: &str) -> Result<Instance, String> {
    use atsched_core::instance::Job;
    let mut g = 1i64;
    let mut jobs: Vec<Job> = Vec::new();
    for (lineno, raw) in s.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut it = line.split_whitespace();
        match it.next() {
            Some("g") => {
                g = it
                    .next()
                    .ok_or_else(|| format!("line {}: g needs a value", lineno + 1))?
                    .parse()
                    .map_err(|_| format!("line {}: invalid g", lineno + 1))?;
            }
            Some("job") => {
                let mut num = || -> Result<i64, String> {
                    it.next()
                        .ok_or_else(|| format!("line {}: job needs r d p", lineno + 1))?
                        .parse()
                        .map_err(|_| format!("line {}: invalid number", lineno + 1))
                };
                let (r, d, p) = (num()?, num()?, num()?);
                jobs.push(Job::new(r, d, p));
            }
            Some(other) => return Err(format!("line {}: unknown directive '{other}'", lineno + 1)),
            None => unreachable!("empty lines filtered"),
        }
        if it.next().is_some() {
            return Err(format!("line {}: trailing tokens", lineno + 1));
        }
    }
    Instance::new(g, jobs).map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use atsched_core::instance::Job;

    #[test]
    fn instance_roundtrip() {
        let inst = Instance::new(
            3,
            vec![Job::new(0, 8, 2), Job::new(1, 4, 1), Job::new(5, 7, 2)],
        )
        .unwrap();
        let s = instance_to_json(&inst);
        let back = instance_from_json(&s).unwrap();
        assert_eq!(inst, back);
    }

    #[test]
    fn invalid_json_rejected() {
        assert!(instance_from_json("{").is_err());
        // Structurally valid JSON but invalid instance (p = 0).
        let bad = r#"{"g":1,"jobs":[{"release":0,"deadline":2,"processing":0}]}"#;
        assert!(instance_from_json(bad).is_err());
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("atsched_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("inst.json");
        let inst = Instance::new(2, vec![Job::new(0, 4, 2)]).unwrap();
        save_instance(&inst, &path).unwrap();
        assert_eq!(load_instance(&path).unwrap(), inst);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn text_format_roundtrip() {
        let inst = Instance::new(
            3,
            vec![Job::new(0, 8, 2), Job::new(-3, 4, 1), Job::new(5, 7, 2)],
        )
        .unwrap();
        let text = instance_to_text(&inst);
        let back = instance_from_text(&text).unwrap();
        assert_eq!(inst, back);
    }

    #[test]
    fn text_format_comments_and_whitespace() {
        let src = "\n# a comment\n  g 4  # capacity\n\njob 0 5 2\njob 1 3 1 # tight\n";
        let inst = instance_from_text(src).unwrap();
        assert_eq!(inst.g, 4);
        assert_eq!(inst.num_jobs(), 2);
    }

    #[test]
    fn text_format_errors() {
        assert!(instance_from_text("job 1").is_err()); // missing fields
        assert!(instance_from_text("frob 1 2 3").is_err()); // unknown directive
        assert!(instance_from_text("g x").is_err()); // bad number
        assert!(instance_from_text("job 0 2 1 9").is_err()); // trailing token
        assert!(instance_from_text("job 0 2 5").is_err()); // invalid instance (p > window)
        assert_eq!(instance_from_text("").unwrap().num_jobs(), 0); // empty ok
    }

    #[test]
    fn records_jsonl() {
        let dir = std::env::temp_dir().join("atsched_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("records.jsonl");
        std::fs::remove_file(&path).ok();
        let recs = vec![ExperimentRecord {
            experiment: "E1".into(),
            params: vec!["g=2".into()],
            metrics: vec![("ratio".into(), 1.25)],
        }];
        append_records(&recs, &path).unwrap();
        append_records(&recs, &path).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert_eq!(body.lines().count(), 2);
        std::fs::remove_file(&path).ok();
    }
}
