//! Hand-crafted instance families targeting specific structure in the
//! algorithm and its analysis.
//!
//! Random instances rarely produce fractional LP mass inside the
//! critical interval `x(Des(i)) ∈ (1, 4/3)` that defines the paper's
//! type-C nodes (§4.2): the ceiling constraints round away most small
//! cases. These families are engineered to reach that regime, so the
//! certify machinery (node typing, Algorithm 2 triples, Lemmas 4.7–4.13)
//! and the rounding's interesting branch get real exercise.

use atsched_core::instance::{Instance, Job};

/// A node with ancestor-volume overflow: `branches` children, each a
/// rigid unit leaf plus a sibling unit job, and `extra` root-level unit
/// jobs on top of exactly-leaf-filling volume.
///
/// With `0 < extra < g/3`, the LP opens each child subtree to
/// `1 + ε` fractionally (`Σε = extra/g`), so some children of the root
/// become type-C nodes while `OPT_root ≥ 4` keeps the ceiling constraints
/// from integerizing them.
///
/// Construction (capacity arithmetic): each child window `[3i, 3i+2)`
/// carries a singleton-window job at `[3i, 3i+1)` (rigid leaf) and a
/// unit job on the child window; the leaf slot then has `g − 2` spare
/// capacity. The root window `[0, 3·branches)` carries
/// `branches·(g−2) + extra` unit jobs: exactly `extra` units overflow
/// the forced slots.
pub fn overflow_family(g: i64, branches: usize, extra: i64) -> Instance {
    assert!(g >= 3, "need g ≥ 3 so leaf slots have spare capacity");
    assert!(branches >= 1);
    assert!(extra >= 0);
    let horizon = 3 * branches as i64;
    let mut jobs = Vec::new();
    for i in 0..branches as i64 {
        jobs.push(Job::new(3 * i, 3 * i + 1, 1)); // rigid leaf
        jobs.push(Job::new(3 * i, 3 * i + 2, 1)); // child-window job
    }
    let root_jobs = branches as i64 * (g - 2) + extra;
    for _ in 0..root_jobs {
        jobs.push(Job::new(0, horizon, 1));
    }
    Instance::new(g, jobs).expect("valid by construction")
}

/// A deep chain of nested windows, each one slot narrower on both ends,
/// each carrying one unit job. Stresses deep trees and the canonical
/// transformation.
pub fn deep_chain(depth: usize, g: i64) -> Instance {
    assert!(depth >= 1);
    let width = 2 * depth as i64 + 1;
    let jobs: Vec<Job> = (0..depth as i64).map(|lvl| Job::new(lvl, width - lvl, 1)).collect();
    Instance::new(g, jobs).expect("valid by construction")
}

/// A wide star: one root window containing `k` disjoint child windows,
/// each with `per_child` unit jobs; the root carries one long job of
/// length `root_p`. Stresses binarization (the root has `k` children).
pub fn wide_star(k: usize, per_child: usize, root_p: i64, g: i64) -> Instance {
    assert!(k >= 1);
    let horizon = 3 * k as i64;
    let mut jobs = vec![Job::new(0, horizon, root_p.clamp(1, horizon))];
    for i in 0..k as i64 {
        for _ in 0..per_child {
            jobs.push(Job::new(3 * i, 3 * i + 2, 1));
        }
    }
    Instance::new(g, jobs).expect("valid by construction")
}

/// A complete dyadic hierarchy of depth `levels`, with `jobs_per_node`
/// unit jobs on every window. Highly symmetric: good for worst-case-ish
/// LP sizes at a given horizon.
pub fn dyadic_full(levels: u32, jobs_per_node: usize, g: i64) -> Instance {
    let horizon = 1i64 << levels;
    let mut jobs = Vec::new();
    for level in 0..=levels {
        let width = horizon >> level;
        for idx in 0..(1i64 << level) {
            for _ in 0..jobs_per_node {
                jobs.push(Job::new(idx * width, (idx + 1) * width, 1));
            }
        }
    }
    Instance::new(g, jobs).expect("valid by construction")
}

/// `blocks` disjoint copies of a one-window unit-job pile: every job in
/// block `i` shares the window `[b, b+width)`. The laminar forest is a
/// row of leaf roots, so the strengthened LP's optimum is pinned per
/// root at `max(⌈jobs/g⌉, OPT-lower-bound)` — the combinatorial tree
/// path solves these without ever declining to the simplex.
pub fn unit_blocks(blocks: usize, jobs_per_block: usize, width: i64, g: i64) -> Instance {
    assert!(blocks >= 1 && jobs_per_block >= 1 && width >= 1 && g >= 1);
    assert!(
        jobs_per_block as i64 <= g * width,
        "block volume must fit its window (jobs ≤ g·width)"
    );
    let stride = width + 1; // one-slot gap keeps the roots disjoint
    let mut jobs = Vec::with_capacity(blocks * jobs_per_block);
    for i in 0..blocks as i64 {
        let b = i * stride;
        for _ in 0..jobs_per_block {
            jobs.push(Job::new(b, b + width, 1));
        }
    }
    Instance::new(g, jobs).expect("valid by construction")
}

/// `blocks` disjoint two-level trees: a rigid singleton-window leaf
/// (its slot is forced open, so the child's demand equals its capacity)
/// under a width-4 root window carrying `top_jobs` unit jobs. The
/// saturated leaf leaves the root as the only free variable, so the
/// tree path's pinning step is unique by construction — the shallow-nest
/// counterpart to [`unit_blocks`] for LP-free-path coverage and benches.
pub fn shallow_nest(blocks: usize, top_jobs: usize, g: i64) -> Instance {
    assert!(blocks >= 1 && top_jobs >= 1 && g >= 1);
    assert!((top_jobs as i64) < 4 * g, "block volume must fit its window");
    let stride = 5;
    let mut jobs = Vec::with_capacity(blocks * (top_jobs + 1));
    for i in 0..blocks as i64 {
        let b = i * stride;
        jobs.push(Job::new(b, b + 1, 1)); // rigid leaf
        for _ in 0..top_jobs {
            jobs.push(Job::new(b, b + 4, 1));
        }
    }
    Instance::new(g, jobs).expect("valid by construction")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overflow_family_shape() {
        let inst = overflow_family(10, 3, 1);
        assert!(inst.check_laminar().is_ok());
        assert!(inst.is_feasible_all_open());
        // 2 jobs per branch + 3·8+1 root jobs.
        assert_eq!(inst.num_jobs(), 6 + 25);
    }

    #[test]
    fn deep_chain_is_laminar_chain() {
        let inst = deep_chain(5, 2);
        assert!(inst.check_laminar().is_ok());
        assert_eq!(inst.num_jobs(), 5);
        // Strictly nested windows: sorted by width, all distinct.
        let mut widths: Vec<i64> = inst.jobs.iter().map(|j| j.window_len()).collect();
        widths.sort_unstable();
        widths.dedup();
        assert_eq!(widths.len(), 5);
    }

    #[test]
    fn wide_star_many_children() {
        let inst = wide_star(5, 2, 4, 3);
        assert!(inst.check_laminar().is_ok());
        assert!(inst.is_feasible_all_open());
        assert_eq!(inst.num_jobs(), 1 + 10);
    }

    #[test]
    fn unit_blocks_is_a_row_of_leaf_roots() {
        let inst = unit_blocks(4, 5, 2, 3);
        assert!(inst.check_laminar().is_ok());
        assert!(inst.is_feasible_all_open());
        assert_eq!(inst.num_jobs(), 20);
        // All windows in a block identical, blocks disjoint.
        let mut windows: Vec<(i64, i64)> =
            inst.jobs.iter().map(|j| (j.release, j.deadline)).collect();
        windows.sort_unstable();
        windows.dedup();
        assert_eq!(windows.len(), 4);
        for w in windows.windows(2) {
            assert!(w[0].1 <= w[1].0, "blocks must not overlap");
        }
    }

    #[test]
    fn shallow_nest_has_one_rigid_leaf_per_block() {
        let inst = shallow_nest(3, 4, 2);
        assert!(inst.check_laminar().is_ok());
        assert!(inst.is_feasible_all_open());
        assert_eq!(inst.num_jobs(), 15);
        let rigid = inst.jobs.iter().filter(|j| j.window_len() == j.processing).count();
        assert_eq!(rigid, 3);
    }

    #[test]
    fn dyadic_full_counts() {
        let inst = dyadic_full(3, 1, 4);
        assert!(inst.check_laminar().is_ok());
        // 1 + 2 + 4 + 8 windows.
        assert_eq!(inst.num_jobs(), 15);
    }
}
