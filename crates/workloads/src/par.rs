//! A small parallel sweep runner.
//!
//! Experiment grids are embarrassingly parallel: every cell is an
//! independent (instance, algorithm) evaluation. This runner fans cells
//! out to scoped worker threads over a crossbeam channel and collects
//! results in input order. It follows the guide idioms: scoped threads
//! (no `'static` bounds, no leaked join handles), channel-based work
//! distribution (no shared mutable state), and a worker count derived
//! from available parallelism.

use crossbeam::channel;
use std::num::NonZeroUsize;
use std::thread;

/// Map `f` over `items` in parallel, preserving input order.
///
/// `f` must be `Sync` (it is shared by reference across workers); items
/// are moved to workers. Panics in workers propagate.
pub fn par_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(4)
        .min(n);
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }

    let (tx, rx) = channel::unbounded::<(usize, T)>();
    let (out_tx, out_rx) = channel::unbounded::<(usize, R)>();
    for (i, item) in items.into_iter().enumerate() {
        tx.send((i, item)).expect("queue open");
    }
    drop(tx);

    thread::scope(|scope| {
        for _ in 0..workers {
            let rx = rx.clone();
            let out_tx = out_tx.clone();
            let f = &f;
            scope.spawn(move || {
                while let Ok((i, item)) = rx.recv() {
                    out_tx.send((i, f(item))).expect("collector open");
                }
            });
        }
        drop(out_tx);
    });

    let mut results: Vec<Option<R>> = (0..n).map(|_| None).collect();
    while let Ok((i, r)) = out_rx.recv() {
        results[i] = Some(r);
    }
    results.into_iter().map(|r| r.expect("every index produced")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn preserves_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = par_map(items, |x| x * x);
        assert_eq!(out, (0..100).map(|x| x * x).collect::<Vec<u64>>());
    }

    #[test]
    fn empty_input() {
        let out: Vec<u32> = par_map(Vec::<u32>::new(), |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn all_items_processed_once() {
        let count = AtomicUsize::new(0);
        let out = par_map((0..500).collect::<Vec<_>>(), |x| {
            count.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(out.len(), 500);
        assert_eq!(count.load(Ordering::Relaxed), 500);
    }

    #[test]
    fn uses_real_work() {
        // Smoke test with nontrivial per-item cost (fibonacci).
        fn fib(n: u64) -> u64 {
            if n < 2 {
                n
            } else {
                fib(n - 1) + fib(n - 2)
            }
        }
        let out = par_map(vec![20u64; 16], fib);
        assert!(out.iter().all(|&v| v == 6765));
    }
}
