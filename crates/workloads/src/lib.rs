//! # atsched-workloads
//!
//! Workload generation and experiment plumbing:
//!
//! * [`generators`] — random laminar instances with controllable tree
//!   shape, job counts, and processing-time distributions; unit-job
//!   instances.
//! * [`families`] — hand-crafted families targeting specific algorithm
//!   structure (type-C nodes, deep chains, wide stars, dyadic trees).
//! * [`io`] — serde-based JSON (de)serialization of instances and
//!   experiment records.
//!
//! Parallel sweeps live in the `atsched-engine` crate (`par_map` and the
//! batch-solve engine), which the experiment binaries build on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod families;
pub mod generators;
pub mod io;
