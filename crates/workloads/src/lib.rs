//! # atsched-workloads
//!
//! Workload generation and experiment plumbing:
//!
//! * [`generators`] — random laminar instances with controllable tree
//!   shape, job counts, and processing-time distributions; unit-job
//!   instances.
//! * [`families`] — hand-crafted families targeting specific algorithm
//!   structure (type-C nodes, deep chains, wide stars, dyadic trees).
//! * [`io`] — serde-based JSON (de)serialization of instances and
//!   experiment records.
//! * [`par`] — a small parallel sweep runner (scoped threads feeding off
//!   a crossbeam channel) used by the experiment binaries to evaluate
//!   parameter grids on all cores.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod families;
pub mod generators;
pub mod io;
pub mod par;
