//! Random laminar instance generators.

use atsched_core::instance::{Instance, Job};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// Why a generator configuration is invalid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GeneratorError {
    /// `child_percent` is a probability in percent and must be ≤ 100;
    /// larger values used to silently saturate (`gen_range(0..100) >=
    /// child_percent` is then always false), producing always-nested
    /// instances with no diagnostic.
    ChildPercentOutOfRange(u32),
    /// `jobs_per_node` has an empty range (`min > max`).
    EmptyJobRange(usize, usize),
    /// `horizon < 1`: the root window would be empty.
    BadHorizon(i64),
    /// A multi-root config asked for zero roots.
    NoRoots,
}

impl fmt::Display for GeneratorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeneratorError::ChildPercentOutOfRange(p) => {
                write!(f, "child_percent = {p} is not a percentage (must be ≤ 100)")
            }
            GeneratorError::EmptyJobRange(lo, hi) => {
                write!(f, "jobs_per_node = ({lo}, {hi}) is an empty range")
            }
            GeneratorError::BadHorizon(h) => write!(f, "horizon = {h} < 1"),
            GeneratorError::NoRoots => write!(f, "multi-root config asked for zero roots"),
        }
    }
}

impl std::error::Error for GeneratorError {}

/// Parameters for the recursive laminar generator.
#[derive(Debug, Clone)]
pub struct LaminarConfig {
    /// Machine parallelism.
    pub g: i64,
    /// Horizon length (the root window is `[0, horizon)`).
    pub horizon: i64,
    /// Maximum tree depth below the root.
    pub max_depth: usize,
    /// Maximum children attempted per node.
    pub max_children: usize,
    /// Jobs attached to each generated window: `jobs_per_node.0 ..=
    /// jobs_per_node.1`, sampled uniformly.
    pub jobs_per_node: (usize, usize),
    /// Maximum processing time (clamped to the window length).
    pub max_processing: i64,
    /// Probability (0–100) that a candidate child window is created.
    pub child_percent: u32,
}

impl Default for LaminarConfig {
    fn default() -> Self {
        LaminarConfig {
            g: 3,
            horizon: 24,
            max_depth: 3,
            max_children: 3,
            jobs_per_node: (1, 2),
            max_processing: 4,
            child_percent: 70,
        }
    }
}

impl LaminarConfig {
    /// Validate the configuration, returning it unchanged when sane.
    ///
    /// Catches the parameters the generator cannot diagnose at run time:
    /// an out-of-range `child_percent` saturates silently in the
    /// `gen_range(0..100) >= child_percent` branch test, an empty
    /// `jobs_per_node` range panics deep inside `rand`, and a
    /// non-positive horizon loops forever. Call this at construction —
    /// the CLI and bench front ends do.
    pub fn validated(self) -> Result<Self, GeneratorError> {
        if self.child_percent > 100 {
            return Err(GeneratorError::ChildPercentOutOfRange(self.child_percent));
        }
        if self.jobs_per_node.0 > self.jobs_per_node.1 {
            return Err(GeneratorError::EmptyJobRange(self.jobs_per_node.0, self.jobs_per_node.1));
        }
        if self.horizon < 1 {
            return Err(GeneratorError::BadHorizon(self.horizon));
        }
        Ok(self)
    }
}

/// Parameters for the many-root generator: `roots` independent laminar
/// trees laid out left to right with `gap` empty slots between them.
///
/// This is the shard layer's natural corpus — each tree is one `base`
/// instance, so the whole instance decomposes into `roots` shards.
#[derive(Debug, Clone)]
pub struct MultiRootConfig {
    /// Shape of each individual tree.
    pub base: LaminarConfig,
    /// Number of independent trees (forest roots).
    pub roots: usize,
    /// Empty slots between consecutive trees (≥ 0; trees are disjoint
    /// even at 0 because windows are half-open).
    pub gap: i64,
}

impl Default for MultiRootConfig {
    fn default() -> Self {
        MultiRootConfig { base: LaminarConfig::default(), roots: 4, gap: 1 }
    }
}

impl MultiRootConfig {
    /// Validate the configuration, returning it unchanged when sane.
    pub fn validated(self) -> Result<Self, GeneratorError> {
        if self.roots == 0 {
            return Err(GeneratorError::NoRoots);
        }
        let base = self.base.validated()?;
        Ok(MultiRootConfig { base, ..self })
    }
}

/// Generate a random feasible instance with `cfg.roots` independent
/// laminar trees (forest roots) spaced `cfg.gap` slots apart.
///
/// Each tree is drawn by [`random_laminar`] with its own derived seed
/// and shifted to its place on the time axis; the composition is
/// validated and stays feasible because the trees are disjoint.
pub fn random_multi_root(cfg: &MultiRootConfig, seed: u64) -> Instance {
    let stride = cfg.base.horizon + cfg.gap.max(0);
    let parts: Vec<Instance> = (0..cfg.roots as u64)
        .map(|k| random_laminar(&cfg.base, seed.wrapping_add(k)).shifted(k as i64 * stride))
        .collect();
    let refs: Vec<&Instance> = parts.iter().collect();
    let inst = Instance::merged(&refs).expect("disjoint shifted parts share g and stay valid");
    debug_assert!(inst.check_laminar().is_ok());
    inst
}

/// Generate a random *feasible, laminar* instance.
///
/// The generator creates a laminar family of windows recursively and
/// attaches jobs to each window; feasibility is guaranteed by retrying
/// with thinner jobs whenever the all-open schedule fails (bounded
/// retries, then drop jobs). The result always validates and always has
/// at least one job.
pub fn random_laminar(cfg: &LaminarConfig, seed: u64) -> Instance {
    let mut rng = StdRng::seed_from_u64(seed);
    loop {
        let mut windows: Vec<(i64, i64)> = Vec::new();
        gen_windows(&mut rng, cfg, 0, cfg.horizon, 0, &mut windows);
        if windows.is_empty() {
            windows.push((0, cfg.horizon));
        }
        let mut jobs: Vec<Job> = Vec::new();
        for &(lo, hi) in &windows {
            let n_jobs = rng.gen_range(cfg.jobs_per_node.0..=cfg.jobs_per_node.1);
            for _ in 0..n_jobs {
                let pmax = cfg.max_processing.min(hi - lo).max(1);
                let p = rng.gen_range(1..=pmax);
                jobs.push(Job::new(lo, hi, p));
            }
        }
        if jobs.is_empty() {
            continue;
        }
        let inst = Instance::new(cfg.g, jobs).expect("generator emits valid jobs");
        debug_assert!(inst.check_laminar().is_ok());
        if inst.is_feasible_all_open() {
            return inst;
        }
        // Thin out: halve processing times and retry with the same rng.
        // (Rare for sane configs; guarantees termination because unit
        // jobs in distinct windows are eventually feasible or jobs drop.)
        let thin: Vec<Job> = inst
            .jobs
            .iter()
            .map(|j| Job::new(j.release, j.deadline, (j.processing / 2).max(1)))
            .collect();
        let thinned = Instance::new(cfg.g, thin).unwrap();
        if thinned.is_feasible_all_open() {
            return thinned;
        }
        // Otherwise loop and resample a fresh shape.
    }
}

fn gen_windows(
    rng: &mut StdRng,
    cfg: &LaminarConfig,
    lo: i64,
    hi: i64,
    depth: usize,
    out: &mut Vec<(i64, i64)>,
) {
    if hi - lo < 1 {
        return;
    }
    out.push((lo, hi));
    if depth >= cfg.max_depth || hi - lo < 3 {
        return;
    }
    // Carve disjoint child windows left to right.
    let mut cursor = lo;
    for _ in 0..cfg.max_children {
        if cursor >= hi - 1 {
            break;
        }
        if rng.gen_range(0..100u32) >= cfg.child_percent {
            // Skip some space instead.
            cursor += rng.gen_range(1..=((hi - cursor) / 2).max(1));
            continue;
        }
        let remaining = hi - cursor;
        let len = rng.gen_range(1..=(remaining - 1).max(1));
        let start = cursor + rng.gen_range(0..=(remaining - len).min(2));
        let end = (start + len).min(hi);
        if end - start >= 1 && (start, end) != (lo, hi) {
            gen_windows(rng, cfg, start, end, depth + 1, out);
            cursor = end;
        } else {
            break;
        }
    }
}

/// Random *unit-job* instance (windows may overlap arbitrarily — for the
/// unit-optimal baseline, which does not need laminarity).
pub fn random_unit(g: i64, horizon: i64, n_jobs: usize, seed: u64) -> Instance {
    let mut rng = StdRng::seed_from_u64(seed);
    let jobs: Vec<Job> = (0..n_jobs)
        .map(|_| {
            let r = rng.gen_range(0..horizon - 1);
            let d = rng.gen_range(r + 1..=horizon);
            Job::new(r, d, 1)
        })
        .collect();
    Instance::new(g, jobs).expect("valid by construction")
}

/// Random unit-job instance with *laminar* windows (dyadic intervals).
pub fn random_unit_laminar(g: i64, levels: u32, n_jobs: usize, seed: u64) -> Instance {
    let mut rng = StdRng::seed_from_u64(seed);
    let jobs: Vec<Job> = (0..n_jobs)
        .map(|_| {
            let level = rng.gen_range(0..=levels);
            let width = 1i64 << (levels - level);
            let idx = rng.gen_range(0..(1i64 << level));
            Job::new(idx * width, (idx + 1) * width, 1)
        })
        .collect();
    let inst = Instance::new(g, jobs).expect("valid by construction");
    debug_assert!(inst.check_laminar().is_ok());
    inst
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn laminar_generator_output_is_valid() {
        for seed in 0..30u64 {
            let inst = random_laminar(&LaminarConfig::default(), seed);
            assert!(inst.check_laminar().is_ok(), "seed {seed}");
            assert!(inst.is_feasible_all_open(), "seed {seed}");
            assert!(!inst.jobs.is_empty());
        }
    }

    #[test]
    fn laminar_generator_is_deterministic() {
        let a = random_laminar(&LaminarConfig::default(), 7);
        let b = random_laminar(&LaminarConfig::default(), 7);
        assert_eq!(a, b);
        let c = random_laminar(&LaminarConfig::default(), 8);
        assert_ne!(a, c);
    }

    #[test]
    fn config_shapes_respected() {
        let cfg = LaminarConfig { horizon: 50, max_processing: 2, ..Default::default() };
        for seed in 0..10u64 {
            let inst = random_laminar(&cfg, seed);
            assert!(inst.jobs.iter().all(|j| j.processing <= 2));
            assert!(inst.jobs.iter().all(|j| j.release >= 0 && j.deadline <= 50));
        }
    }

    #[test]
    fn validated_rejects_bad_configs() {
        let over = LaminarConfig { child_percent: 150, ..Default::default() };
        assert_eq!(over.validated().unwrap_err(), GeneratorError::ChildPercentOutOfRange(150));

        let empty = LaminarConfig { jobs_per_node: (3, 1), ..Default::default() };
        assert_eq!(empty.validated().unwrap_err(), GeneratorError::EmptyJobRange(3, 1));

        let flat = LaminarConfig { horizon: 0, ..Default::default() };
        assert_eq!(flat.validated().unwrap_err(), GeneratorError::BadHorizon(0));

        assert!(LaminarConfig::default().validated().is_ok());

        let rootless = MultiRootConfig { roots: 0, ..Default::default() };
        assert_eq!(rootless.validated().unwrap_err(), GeneratorError::NoRoots);
        let bad_base = MultiRootConfig {
            base: LaminarConfig { child_percent: 101, ..Default::default() },
            ..Default::default()
        };
        assert_eq!(bad_base.validated().unwrap_err(), GeneratorError::ChildPercentOutOfRange(101));
        assert!(MultiRootConfig::default().validated().is_ok());
    }

    #[test]
    fn multi_root_generator_output_is_valid_and_deterministic() {
        let cfg = MultiRootConfig { roots: 6, ..Default::default() };
        for seed in 0..5u64 {
            let inst = random_multi_root(&cfg, seed);
            assert!(inst.check_laminar().is_ok(), "seed {seed}");
            assert!(inst.is_feasible_all_open(), "seed {seed}");
            let dec = atsched_core::decompose::decompose(&inst).unwrap();
            assert_eq!(dec.len(), 6, "seed {seed}: one shard per generated tree");
        }
        let a = random_multi_root(&cfg, 9);
        let b = random_multi_root(&cfg, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn unit_generators() {
        let u = random_unit(2, 16, 20, 3);
        assert_eq!(u.num_jobs(), 20);
        assert!(u.jobs.iter().all(|j| j.processing == 1));
        let ul = random_unit_laminar(2, 3, 15, 3);
        assert!(ul.check_laminar().is_ok());
        assert!(ul.jobs.iter().all(|j| j.processing == 1));
    }
}
