//! E10 (ablation): which ingredients buy the 9/5?
//!
//! Columns compare, per instance family:
//! * the full algorithm (ceiling constraints + Algorithm 1),
//! * the LP *without* the ceiling constraints (7)/(8) — its value drops
//!   toward the natural relaxation, so the certified ratio `ALG/LP`
//!   degrades even when the schedule stays decent,
//! * different resolutions of Algorithm 1's "choose arbitrarily",
//! * the optional polish pass (greedy slot closing after rounding).

use atsched_bench::table::Table;
use atsched_core::instance::Instance;
use atsched_core::rounding::RoundingChoice;
use atsched_core::solver::{solve_nested, SolverOptions};
use atsched_gaps::instances::{gap2_instance, lemma51_instance};
use atsched_workloads::families::{overflow_family, wide_star};
use atsched_workloads::generators::{random_laminar, LaminarConfig};

fn run(inst: &Instance, label: &str, t: &mut Table) {
    let full = solve_nested(inst, &SolverOptions::exact()).unwrap();
    let no_ceiling = solve_nested(inst, &SolverOptions::exact().without_ceiling()).unwrap();
    let first_id = solve_nested(
        inst,
        &SolverOptions { round_choice: RoundingChoice::FirstId, ..SolverOptions::exact() },
    )
    .unwrap();
    let polished = solve_nested(inst, &SolverOptions::exact().polished()).unwrap();
    t.row(vec![
        label.into(),
        format!("{:.2}", full.stats.lp_objective),
        format!("{:.2}", no_ceiling.stats.lp_objective),
        full.stats.active_slots.to_string(),
        no_ceiling.stats.active_slots.to_string(),
        first_id.stats.active_slots.to_string(),
        polished.stats.active_slots.to_string(),
        format!("{:.3}", full.stats.opened_over_lp),
        format!("{:.3}", no_ceiling.stats.opened_over_lp),
    ]);
}

fn main() {
    println!("E10: ablation — ceiling constraints, tie-breaking, polish\n");
    let mut t = Table::new(&[
        "instance",
        "LP",
        "LP-noCeil",
        "ALG",
        "ALG-noCeil",
        "ALG-firstId",
        "ALG-polish",
        "ALG/LP",
        "ALG/LP-noCeil",
    ]);
    for g in [2i64, 3, 4] {
        run(&lemma51_instance(g), &format!("lemma51(g={g})"), &mut t);
    }
    for g in [2i64, 4, 8] {
        run(&gap2_instance(g), &format!("gap2(g={g})"), &mut t);
    }
    for (g, b, e) in [(10i64, 3usize, 1i64), (12, 4, 2)] {
        run(&overflow_family(g, b, e), &format!("overflow({g},{b},{e})"), &mut t);
    }
    run(&wide_star(5, 2, 4, 3), "wide_star(5,2,4,3)", &mut t);
    for seed in 0..4u64 {
        let cfg = LaminarConfig { g: 3, horizon: 16, ..Default::default() };
        run(&random_laminar(&cfg, seed), &format!("random(seed={seed})"), &mut t);
    }
    println!("{}", t.render());
    println!("Expected shape: LP-noCeil ≤ LP (weaker bound), so ALG/LP-noCeil");
    println!("exceeds ALG/LP and can cross 1.8 — the ceiling constraints are");
    println!("what certifies the 9/5. Tie-breaking barely matters; polish");
    println!("only ever helps.");
}
