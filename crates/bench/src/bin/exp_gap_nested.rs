//! E2 (Lemma 5.1 / Figure 3): integrality gap of the per-slot LPs on the
//! nested Lemma 5.1 family.
//!
//! Usage: `exp_gap_nested [max_g]` (default 8).
//! Expected shape: OPT/cwLP increases with g toward 3/2; naturalLP = g+1;
//! cwLP ≤ g+2 (the paper's explicit fractional solution).

use atsched_bench::experiments::e2_gap_nested;

fn main() {
    let max_g: i64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(8);
    println!("E2: integrality gaps on the Lemma 5.1 nested family\n");
    let gs: Vec<i64> = (2..=max_g).collect();
    let table = e2_gap_nested(&gs, 4);
    println!("{}", table.render());
    println!("OPT column uses the paper's closed form g + ⌈g/2⌉ (verified");
    println!("against the exact solver for g ≤ 4).");
}
