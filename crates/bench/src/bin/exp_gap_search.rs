//! E12: empirical integrality-gap search for the strengthened tree LP.
//!
//! The paper brackets the nested gap in [3/2, 5/3]. This harness sweeps
//! random laminar instances for large `OPT / treeLP` ratios and compares
//! the best random witnesses against the crafted Lemma 5.1 family.

use atsched_bench::table::Table;
use atsched_core::solver::{solve_nested, SolverOptions};
use atsched_gaps::instances::{lemma51_instance, lemma51_integral_opt};
use atsched_gaps::search::{search_tree_lp_gap, SearchConfig};

fn main() {
    let seeds: u64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(150);
    println!("E12: searching for tree-LP integrality-gap witnesses\n");

    let cfg = SearchConfig { seeds, gs: vec![2, 3, 4], horizon: 14, exact_top: 6 };
    let witnesses = search_tree_lp_gap(&cfg);

    let mut t = Table::new(&["source", "jobs", "g", "LP", "OPT", "OPT/LP"]);
    for w in &witnesses {
        t.row(vec![
            "random".into(),
            w.instance.num_jobs().to_string(),
            w.instance.g.to_string(),
            format!("{:.4}", w.lp),
            w.opt.to_string(),
            format!("{:.4}", w.ratio),
        ]);
    }
    for g in [2i64, 3, 4, 5] {
        let inst = lemma51_instance(g);
        let lp = solve_nested(&inst, &SolverOptions::exact()).unwrap().stats.lp_objective;
        let opt = lemma51_integral_opt(g);
        t.row(vec![
            format!("lemma51(g={g})"),
            inst.num_jobs().to_string(),
            g.to_string(),
            format!("{lp:.4}"),
            opt.to_string(),
            format!("{:.4}", opt as f64 / lp),
        ]);
    }
    println!("{}", t.render());
    println!("Paper brackets the nested tree-LP gap in [3/2, 5/3]; crafted");
    println!("families dominate random search, whose witnesses indicate how");
    println!("rare near-extremal instances are.");
}
