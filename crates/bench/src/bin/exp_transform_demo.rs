//! E4 (Figure 1(b)/(c)): demonstrate the Lemma 3.1 LP transformation on a
//! three-level nested instance — print per-node fractional open mass
//! before and after the push-down, then the final rounded schedule.

use atsched_core::canonical::canonicalize;
use atsched_core::instance::{Instance, Job};
use atsched_core::lp_model::build;
use atsched_core::opt23;
use atsched_core::rounding::round;
use atsched_core::solver::{solve_nested, SolverOptions};
use atsched_core::transform::push_down;
use atsched_core::tree::Forest;
use atsched_num::Ratio;

fn main() {
    // A Figure-1-style tree: a root window with two children, one of
    // which has a child of its own; fractional mass initially sits high.
    let inst = Instance::new(
        2,
        vec![
            Job::new(0, 14, 3), // root window
            Job::new(1, 6, 2),  // left child
            Job::new(2, 5, 1),  // grandchild
            Job::new(8, 13, 2), // right child
            Job::new(8, 13, 1),
        ],
    )
    .unwrap();

    let forest = Forest::build(&inst).unwrap();
    let canon = canonicalize(&forest, &inst);
    let bounds = opt23::compute(&canon, &inst);
    let lp = build::<Ratio>(&canon, &inst, &bounds);
    let sol = lp.solve().unwrap();

    println!("E4: Lemma 3.1 transformation (paper Figure 1b → 1c)\n");
    println!("node  interval      L   x before");
    for i in 0..canon.num_nodes() {
        let n = &canon.nodes[i];
        println!(
            "{:>4}  [{:>2},{:>2}){}  {:>2}   {}",
            i,
            n.interval.0,
            n.interval.1,
            if n.is_virtual { "*" } else { " " },
            n.len(),
            sol.x[i]
        );
    }

    let out = push_down(&canon, sol);
    println!("\nafter {} push-down moves:\n", out.moves);
    println!("node  interval      L   x after   in I?");
    for i in 0..canon.num_nodes() {
        let n = &canon.nodes[i];
        println!(
            "{:>4}  [{:>2},{:>2}){}  {:>2}   {:<8} {}",
            i,
            n.interval.0,
            n.interval.1,
            if n.is_virtual { "*" } else { " " },
            n.len(),
            out.solution.x[i].to_string(),
            if out.top_positive.contains(&i) { "I" } else { "" }
        );
    }

    let rounded = round(&canon, &out.solution, &out.top_positive);
    println!("\nrounded x̃ per node: {:?}", rounded.z);
    println!("total open = {} (LP = {})", rounded.total_open(), out.solution.objective);

    let result = solve_nested(&inst, &SolverOptions::exact()).unwrap();
    println!("\nfinal schedule ({} active slots):", result.stats.active_slots);
    println!("{}", result.schedule.render_timeline(&inst));
    println!("(* = virtual node from binarization; I = antichain of Claim 1)");
}
