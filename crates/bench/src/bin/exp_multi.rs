//! E14 (related work, CGK'14): the multiple-interval generalization.
//!
//! NP-hard for g ≥ 3 even with unit jobs; the Wolsey submodular-cover
//! greedy is an `H_g`-approximation. Measure the greedy against exact
//! brute force on random small instances and report the worst observed
//! ratio per g vs. the `H_g` guarantee.

use atsched_bench::table::Table;
use atsched_multi::{brute_force_opt, greedy_cover, harmonic, MultiInstance, MultiJob};

fn random_instance(g: i64, seed: u64) -> MultiInstance {
    let mut state = seed.wrapping_add(0x9E3779B97F4A7C15);
    let mut next = move || {
        state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    };
    let n = 2 + (next() % 4) as usize;
    let jobs: Vec<MultiJob> = (0..n)
        .map(|_| {
            let k = 1 + (next() % 3) as usize;
            let mut ivs = Vec::new();
            let mut lo = (next() % 3) as i64;
            for _ in 0..k {
                let len = 1 + (next() % 3) as i64;
                ivs.push((lo, lo + len));
                lo += len + 1 + (next() % 2) as i64;
            }
            let total: i64 = ivs.iter().map(|(a, b)| b - a).sum();
            let p = 1 + (next() % total.min(3) as u64) as i64;
            MultiJob::new(ivs, p).unwrap()
        })
        .collect();
    MultiInstance::new(g, jobs).unwrap()
}

fn main() {
    let trials: u64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(120);
    println!("E14: multiple-interval jobs — submodular-cover greedy vs OPT\n");
    let mut t = Table::new(&["g", "instances", "mean ratio", "max ratio", "H_g bound"]);
    for g in [1i64, 2, 3] {
        let mut ratios: Vec<f64> = Vec::new();
        for seed in 0..trials {
            let inst = random_instance(g, seed);
            if inst.candidate_slots().len() > 14 {
                continue;
            }
            let (Some(gr), Some(opt)) = (greedy_cover(&inst), brute_force_opt(&inst, 14)) else {
                continue;
            };
            inst.verify(&gr.slots, &gr.assignment).unwrap();
            ratios.push(gr.active_time() as f64 / opt.active_time().max(1) as f64);
        }
        let mean = ratios.iter().sum::<f64>() / ratios.len().max(1) as f64;
        let max = ratios.iter().copied().fold(0.0, f64::max);
        t.row(vec![
            g.to_string(),
            ratios.len().to_string(),
            format!("{mean:.4}"),
            format!("{max:.4}"),
            format!("{:.4}", harmonic(g)),
        ]);
    }
    println!("{}", t.render());
    println!("Expected shape: max ratio ≤ H_g everywhere (CGK'14 via Wolsey);");
    println!("typical ratios close to 1 at these sizes.");
}
