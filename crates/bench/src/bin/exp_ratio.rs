//! E1 (Theorem 4.15): approximation ratio of the 9/5 algorithm on random
//! laminar instances, against the exact optimum and the LP lower bound.
//!
//! Usage: `exp_ratio [seeds_per_g] [horizon]` (defaults 50, 16).
//! Expected shape: every ratio ≤ 1.8; typical ratios well below.

use atsched_bench::experiments::e1_ratio_sweep;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let seeds: u64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(50);
    let horizon: i64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(16);
    println!("E1: ALG vs OPT vs LP on random laminar instances");
    println!("(paper claim: ALG ≤ 1.8·OPT; LP ≤ OPT so ALG/LP ≤ 1.8 too)\n");
    let table = e1_ratio_sweep(&[2, 3, 5, 8], seeds, horizon, true);
    println!("{}", table.render());
}
