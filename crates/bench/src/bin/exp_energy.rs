//! E13 (extension of the paper's motivation): how well does the
//! active-time objective track true energy once startup transitions cost?
//!
//! For each algorithm's schedule, apply the optimal gap-bridging policy
//! under increasing startup costs and compare total energy. Active-time
//! ignores *contiguity*; this experiment measures how much that omission
//! costs in practice.

use atsched_baselines::greedy::{minimal_feasible, ScanOrder};
use atsched_bench::table::Table;
use atsched_core::energy::{simulate, PowerModel};
use atsched_core::solver::{solve_nested, SolverOptions};
use atsched_workloads::generators::{random_laminar, LaminarConfig};

fn main() {
    let seeds: u64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(15);
    println!("E13: energy under transition costs (idle power 0.4/slot)\n");
    let mut t = Table::new(&[
        "startup",
        "OURS energy",
        "OURS blocks",
        "GRDY-R energy",
        "GRDY-R blocks",
        "always-on",
    ]);
    for startup in [0.0f64, 1.0, 3.0, 8.0] {
        let model = PowerModel { active_power: 1.0, idle_power: 0.4, startup_cost: startup };
        let mut ours_e = 0.0;
        let mut ours_b = 0usize;
        let mut grdy_e = 0.0;
        let mut grdy_b = 0usize;
        let mut always = 0.0;
        for seed in 0..seeds {
            let cfg = LaminarConfig { g: 3, horizon: 32, ..Default::default() };
            let inst = random_laminar(&cfg, seed);
            let ours = solve_nested(&inst, &SolverOptions::exact().polished()).unwrap();
            let grdy = minimal_feasible(&inst, ScanOrder::RightToLeft).unwrap();
            let ro = simulate(&ours.schedule, &model);
            let rg = simulate(&grdy.schedule, &model);
            ours_e += ro.total_energy;
            ours_b += ro.on_blocks;
            grdy_e += rg.total_energy;
            grdy_b += rg.on_blocks;
            // Always-on across the candidate horizon: one block.
            let slots = inst.candidate_slots().len() as f64;
            always += slots * model.active_power + model.startup_cost;
        }
        t.row(vec![
            format!("{startup:.0}"),
            format!("{ours_e:.1}"),
            ours_b.to_string(),
            format!("{grdy_e:.1}"),
            grdy_b.to_string(),
            format!("{always:.1}"),
        ]);
    }
    println!("{}", t.render());
    println!("Expected shape: at startup 0 the ranking equals active-time;");
    println!("as startup grows, block counts start to matter — a dimension");
    println!("the active-time objective does not see (future-work angle).");
}
