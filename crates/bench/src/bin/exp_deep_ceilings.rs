//! E11 (extension): generalized ceiling constraints `OPT_i ≥ k` beyond
//! the paper's `k ∈ {2,3}`.
//!
//! On the width-K generalization of the gap-2 family — `(K−1)·g + 1` unit
//! jobs in a width-K window — the paper's LP saturates at
//! `max(3, (K−1) + 1/g)` while the true optimum is `K`; each extra
//! ceiling level closes the remaining gap, reaching `LP = OPT` at depth
//! `K`. The approximation *guarantee* stays 9/5 either way (the rounding
//! analysis only needs levels 2 and 3); what improves is the certified
//! per-instance bound `ALG/LP`.

use atsched_bench::table::Table;
use atsched_core::solver::{solve_nested, SolverOptions};
use atsched_gaps::instances::gapk_instance;
use atsched_workloads::families::wide_star;
use atsched_workloads::generators::{random_laminar, LaminarConfig};

fn main() {
    println!("E11: deeper ceiling constraints (paper extension)\n");

    println!("-- gapK family (g = 3): LP value by ceiling depth --");
    let mut t = Table::new(&[
        "K",
        "OPT",
        "depth3 LP",
        "depth4 LP",
        "depth5 LP",
        "depth6 LP",
        "ALG@3",
        "ALG@K",
    ]);
    for k in [3i64, 4, 5, 6] {
        let inst = gapk_instance(3, k);
        let mut row = vec![k.to_string(), k.to_string()];
        for depth in [3i64, 4, 5, 6] {
            let r = solve_nested(&inst, &SolverOptions::exact().with_ceiling_depth(depth))
                .expect("feasible");
            row.push(format!("{:.3}", r.stats.lp_objective));
        }
        let alg3 = solve_nested(&inst, &SolverOptions::exact()).unwrap().stats.active_slots;
        let algk = solve_nested(&inst, &SolverOptions::exact().with_ceiling_depth(k))
            .unwrap()
            .stats
            .active_slots;
        row.push(alg3.to_string());
        row.push(algk.to_string());
        t.row(row);
    }
    println!("{}", t.render());

    println!("-- random + crafted instances: depth 3 vs 6 --");
    let mut t = Table::new(&["instance", "LP@3", "LP@6", "ALG@3", "ALG@6"]);
    let mut run = |label: String, inst: &atsched_core::instance::Instance| {
        let a = solve_nested(inst, &SolverOptions::exact()).unwrap();
        let b = solve_nested(inst, &SolverOptions::exact().with_ceiling_depth(6)).unwrap();
        t.row(vec![
            label,
            format!("{:.3}", a.stats.lp_objective),
            format!("{:.3}", b.stats.lp_objective),
            a.stats.active_slots.to_string(),
            b.stats.active_slots.to_string(),
        ]);
    };
    run("wide_star(5,2,4,3)".into(), &wide_star(5, 2, 4, 3));
    for seed in 0..5u64 {
        let cfg = LaminarConfig { g: 2, horizon: 14, ..Default::default() };
        run(format!("random#{seed}"), &random_laminar(&cfg, seed));
    }
    println!("{}", t.render());
    println!("Expected shape: LP@depth grows toward OPT on gapK (equal at");
    println!("depth = K); on typical instances depth > 3 rarely binds.");
}
