//! E5: head-to-head with the prior-work baselines — the 9/5 algorithm vs
//! minimal-feasible greedy (3-approx, arbitrary order) and the
//! directional scans (Kumar–Khuller-style), plus LP lower bound and exact
//! OPT on random and adversarial instances.

use atsched_bench::experiments::{e5_compare, e5_header};
use atsched_bench::table::Table;
use atsched_gaps::instances::{gap2_instance, lemma51_instance};
use atsched_workloads::generators::{random_laminar, LaminarConfig};

fn main() {
    let seeds: u64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(10);

    println!("E5: 9/5 algorithm vs baselines\n");

    println!("-- adversarial families --");
    let mut t = Table::new(&e5_header());
    for g in [2i64, 3, 4] {
        t.row(e5_compare(&lemma51_instance(g), g <= 3));
    }
    for g in [2i64, 4, 8] {
        t.row(e5_compare(&gap2_instance(g), true));
    }
    println!("{}", t.render());

    println!("-- random laminar instances --");
    let mut t = Table::new(&e5_header());
    for seed in 0..seeds {
        let cfg = LaminarConfig { g: 3, horizon: 16, ..Default::default() };
        let inst = random_laminar(&cfg, seed);
        t.row(e5_compare(&inst, true));
    }
    println!("{}", t.render());
    println!("Expected shape: OURS ≤ greedy variants on the adversarial");
    println!("families; all columns within their proven factors of OPT.");
}
