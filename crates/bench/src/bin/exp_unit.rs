//! E8 (CGK'14 claim): unit processing times are polynomial-time solvable.
//! Compare the capacitated-stabbing unit solver against the exact
//! branch-and-bound and the 9/5 algorithm on random unit instances.

use atsched_baselines::exact::nested_opt;
use atsched_baselines::unit_opt::solve_unit;
use atsched_bench::table::Table;
use atsched_core::solver::{solve_nested, SolverOptions};
use atsched_workloads::generators::random_unit_laminar;

fn main() {
    let trials: u64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(20);
    println!("E8: unit-job instances — unit solver vs exact vs 9/5 algorithm\n");
    let mut t = Table::new(&["seed", "jobs", "UNIT", "OPT", "OURS", "unit==opt"]);
    let mut matches = 0usize;
    let mut total = 0usize;
    for seed in 0..trials {
        let inst = random_unit_laminar(2, 3, 10, seed);
        let Ok(unit) = solve_unit(&inst) else {
            continue; // infeasible draw
        };
        let opt = nested_opt(&inst, 0).expect("unit said feasible").active_time();
        let ours = solve_nested(&inst, &SolverOptions::exact()).unwrap();
        let ok = unit.active_time() == opt;
        matches += ok as usize;
        total += 1;
        t.row(vec![
            seed.to_string(),
            inst.num_jobs().to_string(),
            unit.active_time().to_string(),
            opt.to_string(),
            ours.stats.active_slots.to_string(),
            ok.to_string(),
        ]);
    }
    println!("{}", t.render());
    println!("unit == OPT on {matches}/{total} instances (expected 100%)");
    assert_eq!(matches, total);
}
