//! `atsched-bench` — the default perf-baseline binary (`cargo run -p
//! atsched-bench`).
//!
//! Runs a fixed seeded laminar corpus through the batch engine twice —
//! once with observation recording on, once with it disabled — and
//! emits a `BENCH_<tag>.json` baseline: per-stage p50/p95 latencies
//! from the `span.*` histograms, algorithm counters (LP pivots, flow
//! augmentations), end-to-end solve percentiles, and the measured
//! instrumentation overhead. An `lp_hybrid` section re-runs the corpus
//! once per precision mode and records the lp-stage p50 under
//! `precision=hybrid` vs `precision=exact`, the speedup between them,
//! and the hybrid verify/fallback counters (the fallback rate is the
//! honesty figure: how often the f64-first path had to re-solve
//! exactly). An `lp_tree` section prices the LP-free combinatorial
//! path: lp-stage p50 on the pinned-optima unit-blocks/shallow-nest
//! families under `lp-path=auto` vs the forced simplex, plus how much
//! of the main corpus the tree DP absorbed and the per-reason fallback
//! counters. CI uploads the file as an artifact so future PRs can diff
//! the perf trajectory.
//!
//! ```text
//! cargo run --release -p atsched-bench -- \
//!     [--tag NAME] [--count N] [--g N] [--horizon N] [--seed N] [--roots N] \
//!     [--runs N] [--out FILE] [--compare PREV.json] [--in REPORT.json] \
//!     [--serve] [--serve-only] [--serve-conns N] [--serve-reqs N] \
//!     [--serve-router N] [--serve-workers N] [--serve-addr HOST:PORT] \
//!     [--serve-scrape] [--serve-scale-addr HOST:PORT] [--serve-scale-conns N]
//! ```
//!
//! `--tag` names the baseline and derives the default output file
//! (`BENCH_<tag>.json`). `--roots N` switches the corpus to many-root
//! instances (`N` independent laminar trees each) and adds two
//! sections to the report: a single-instance `shard=force` vs
//! `shard=off` wall-clock comparison, and a steady-state session
//! `amend` workload (one job re-windowed inside its root hull per
//! amend) measured against cold full re-solves.
//!
//! `--serve` adds a `serve` section: the reactor load generator
//! ([`atsched_serve::run_load`]) drives `--serve-conns` concurrent
//! connections against an in-process server (or an external one named
//! by `--serve-addr`) and records connect/request latency
//! distributions. `--serve-only` skips the solve corpus and emits just
//! the serve section — CI's load-smoke job uses this. `--serve-scrape`
//! (in-process only) also opens the HTTP scrape listener and polls
//! `GET /metrics` throughout the load run, failing the bench if any
//! exposition fails to parse, the request counter moves backwards, or
//! the last scrape disagrees with the drain snapshot. A separate
//! `--serve-scale-addr` section targets an already-running server for
//! fleet sizes (10k+ connections) that want the client and server in
//! different processes, splitting the per-process fd budget.
//!
//! `--compare PREV.json` gates the run against a previous baseline:
//! the lp-stage p50 must not regress more than 10%, an amend section
//! must keep its ratio at or below 0.5x, an obs section must keep the
//! telemetry plane's solve-p50 overhead at or below +3%, and a serve
//! section must record zero errors and zero request timeouts and keep
//! its request p99 under `1.75x previous + 10 ms` at the same
//! connection count. Reports are stamped with a `schema_version`; a
//! baseline *lacking a section the current report carries* is a hard
//! schema error, never a silently skipped gate. `--in REPORT.json`
//! skips the benchmark and loads an already-written report instead —
//! CI uses this to run the compare as its own step without re-benching.

use atsched_core::delta::JobDelta;
use atsched_core::instance::Instance;
use atsched_core::solver::{solve_nested, LpPath, PrecisionMode, ShardMode, SolverOptions};
use atsched_engine::{solve_nested_sharded, Engine, EngineConfig, Outcome};
use atsched_obs as obs;
use atsched_serve::{run_load, Client, LoadConfig, Server, ServerConfig};
use atsched_workloads::families::{shallow_nest, unit_blocks};
use atsched_workloads::generators::{
    random_laminar, random_multi_root, LaminarConfig, MultiRootConfig,
};
use serde::ser::{Serialize, Serializer};
use serde::value::Value;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Report layout version stamped into every baseline. Bump when the
/// section set or gated fields change shape.
const SCHEMA_VERSION: u64 = 5;

/// Wrapper giving a hand-built [`Value`] tree a `Serialize` impl (the
/// vendored serde stub has none for `Value` itself).
struct Json(Value);

impl Serialize for Json {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(self.0.clone())
    }
}

impl<'de> serde::de::Deserialize<'de> for Json {
    fn deserialize<D: serde::de::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        deserializer.deserialize_value().map(Json)
    }
}

fn flag<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> Result<T, String> {
    match args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| format!("invalid value for {name}: {v}")),
    }
}

fn opt_flag(args: &[String], name: &str) -> Option<String> {
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).cloned()
}

fn has_flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

/// Load a previously written baseline report.
fn load_report(path: &str) -> Result<Value, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    serde_json::from_str::<Json>(&text).map(|j| j.0).map_err(|e| format!("parsing {path}: {e}"))
}

/// Look up a key in a `Value::Map`.
fn field(v: &Value, key: &str) -> Option<Value> {
    match v {
        Value::Map(m) => m.iter().find(|(k, _)| k == key).map(|(_, v)| v.clone()),
        _ => None,
    }
}

fn as_f64(v: Value) -> Option<f64> {
    match v {
        Value::Float(f) => Some(f),
        Value::Int(i) => Some(i as f64),
        Value::UInt(u) => Some(u as f64),
        _ => None,
    }
}

/// Pull `stages.<stage>.p50_ms` out of a report tree.
fn stage_p50(report: &Value, stage: &str) -> Option<f64> {
    as_f64(field(&field(&field(report, "stages")?, stage)?, "p50_ms")?)
}

/// Maximum tolerated lp-stage p50 growth before `--compare` fails.
const REGRESSION_LIMIT_PCT: f64 = 10.0;

/// Maximum tolerated steady-state amend p50 as a fraction of the full
/// re-solve p50 before `--compare` fails (only when the report carries
/// an amend section, i.e. on a many-root corpus).
const AMEND_RATIO_LIMIT: f64 = 0.5;

/// Serve request-p99 gate: the current p99 may not exceed
/// `previous * FACTOR + SLACK`. Generous because short smoke runs on
/// shared CI boxes put few samples in the tail buckets.
const SERVE_P99_FACTOR: f64 = 1.75;
const SERVE_P99_SLACK_MS: f64 = 10.0;

/// Telemetry-plane overhead gate: solve p50 with the full observability
/// plane installed (collector + windowed instruments + request trace)
/// may cost at most this much over the plain solve p50.
const OBS_OVERHEAD_LIMIT_PCT: f64 = 3.0;

/// The tree path must at least match the simplex on the pinned-optima
/// families it was built for — a slower "fast path" means the DP or
/// the flow certification regressed.
const TREE_FAMILY_SPEEDUP_MIN: f64 = 1.0;

/// Sections whose presence in the current report obliges the baseline
/// to carry them too. A baseline missing one of these measured a
/// different workload; silently skipping its gate would wave a
/// regression through, so `--compare` refuses with a schema error.
/// (`obs` is *not* listed: its gate is an absolute limit on the current
/// report, needing no baseline counterpart, so v2 baselines stay
/// comparable.)
const GATED_SECTIONS: &[&str] = &["stages", "shard", "amend", "serve", "serve_scale"];

/// The `schema_version` a report was written with; reports predating
/// the stamp are v1.
fn schema_version_of(report: &Value) -> u64 {
    field(report, "schema_version").and_then(as_f64).map_or(1, |v| v as u64)
}

/// Cross-version and cross-shape sanity for `--compare`.
fn check_schema(cur: &Value, prev: &Value, prev_path: &str) -> Result<(), String> {
    let prev_version = schema_version_of(prev);
    if prev_version > SCHEMA_VERSION {
        return Err(format!(
            "{prev_path} was written by a newer bench (schema v{prev_version}; this binary \
             understands up to v{SCHEMA_VERSION}) — rebuild before comparing"
        ));
    }
    for name in GATED_SECTIONS {
        if field(cur, name).is_some() && field(prev, name).is_none() {
            return Err(format!(
                "{prev_path} (schema v{prev_version}) lacks the `{name}` section this run \
                 recorded — regenerate the baseline with a matching bench invocation; \
                 refusing to silently skip its gate"
            ));
        }
    }
    Ok(())
}

/// Gate the amend-vs-full-re-solve ratio recorded in a report. Reports
/// without an amend section (single-root corpora) pass trivially.
fn check_amend_gate(report: &Value, label: &str) -> Result<(), String> {
    let Some(amend) = field(report, "amend") else { return Ok(()) };
    let ratio =
        as_f64(field(&amend, "ratio").ok_or(format!("{label}: amend section has no ratio"))?)
            .ok_or(format!("{label}: amend ratio is not a number"))?;
    eprintln!(
        "bench-compare: steady-state amend p50 is {:.2}x the full re-solve p50 \
         (limit {AMEND_RATIO_LIMIT:.2}x)",
        ratio
    );
    if ratio > AMEND_RATIO_LIMIT {
        return Err(format!(
            "steady-state amend p50 is {ratio:.2}x the full re-solve p50 \
             (limit {AMEND_RATIO_LIMIT:.2}x): session reuse is not paying off"
        ));
    }
    Ok(())
}

/// Gate the telemetry-plane overhead recorded in a report. Reports
/// without an `obs` section (pre-v3, or `--serve-only`) pass trivially.
fn check_obs_gate(report: &Value, label: &str) -> Result<(), String> {
    let Some(obs) = field(report, "obs") else { return Ok(()) };
    let pct = as_f64(
        field(&obs, "overhead_pct").ok_or(format!("{label}: obs section has no overhead_pct"))?,
    )
    .ok_or(format!("{label}: obs overhead_pct is not a number"))?;
    eprintln!(
        "bench-compare: telemetry plane costs {pct:+.2}% on solve p50 \
         (limit +{OBS_OVERHEAD_LIMIT_PCT:.0}%)"
    );
    if pct > OBS_OVERHEAD_LIMIT_PCT {
        return Err(format!(
            "telemetry-plane overhead is {pct:+.2}% on solve p50 \
             (limit +{OBS_OVERHEAD_LIMIT_PCT:.0}%): the plane is no longer cheap enough \
             to stay on by default"
        ));
    }
    Ok(())
}

/// Gate the LP-free tree path recorded in a report. Reports without an
/// `lp_tree` section (pre-v5, or `--serve-only`) pass trivially. Like
/// the obs gate this is an absolute limit on the current report — no
/// baseline counterpart needed, so v4 baselines stay comparable.
fn check_lp_tree_gate(report: &Value, label: &str) -> Result<(), String> {
    let Some(tree) = field(report, "lp_tree") else { return Ok(()) };
    let num = |key: &str| -> Result<f64, String> {
        as_f64(field(&tree, key).ok_or(format!("{label}: lp_tree section has no {key}"))?)
            .ok_or(format!("{label}: lp_tree {key} is not a number"))
    };
    let speedup = num("speedup")?;
    let family_fallbacks = num("family_fallbacks")?;
    eprintln!(
        "bench-compare: lp-free tree path is {speedup:.2}x the simplex on its families \
         (limit {TREE_FAMILY_SPEEDUP_MIN:.2}x, {family_fallbacks} family fallbacks)"
    );
    if family_fallbacks > 0.0 {
        return Err(format!(
            "the tree path declined {family_fallbacks} pinned-family solves — the \
             unit-blocks/shallow-nest corpus must be 100% tree-handled"
        ));
    }
    if speedup < TREE_FAMILY_SPEEDUP_MIN {
        return Err(format!(
            "lp-free tree path is only {speedup:.2}x the simplex on its families \
             (limit {TREE_FAMILY_SPEEDUP_MIN:.2}x): the fast path is not fast"
        ));
    }
    Ok(())
}

/// Numeric field at `path` inside a serve section, with a schema error
/// naming what is missing rather than a panic or a default.
fn serve_num(section: &Value, label: &str, path: &[&str]) -> Result<f64, String> {
    let mut v = section.clone();
    for key in path {
        v = field(&v, key)
            .ok_or_else(|| format!("{label}: serve section has no `{}`", path.join(".")))?;
    }
    as_f64(v).ok_or_else(|| format!("{label}: serve `{}` is not a number", path.join(".")))
}

/// Gate the serve request p99 against the previous baseline. Only runs
/// when the current report has a `serve` section; [`check_schema`] has
/// already guaranteed the baseline has one too.
fn check_serve_gate(
    cur: &Value,
    cur_label: &str,
    prev: &Value,
    prev_path: &str,
) -> Result<(), String> {
    let Some(cur_s) = field(cur, "serve") else { return Ok(()) };
    let prev_s = field(prev, "serve").ok_or_else(|| format!("{prev_path} has no serve section"))?;

    let errors = serve_num(&cur_s, cur_label, &["errors"])?;
    if errors > 0.0 {
        return Err(format!("{cur_label}: the serve load run recorded {errors} errors"));
    }
    // `timeouts` is split out of `errors` from schema v3 on; gate it the
    // same way (absent on older reports = zero).
    let timeouts = field(&cur_s, "timeouts").and_then(as_f64).unwrap_or(0.0);
    if timeouts > 0.0 {
        return Err(format!(
            "{cur_label}: the serve load run recorded {timeouts} request timeouts"
        ));
    }
    let cur_conns = serve_num(&cur_s, cur_label, &["conns"])?;
    let prev_conns = serve_num(&prev_s, prev_path, &["conns"])?;
    if cur_conns != prev_conns {
        return Err(format!(
            "serve sections are not comparable: {cur_conns} connections ({cur_label}) vs \
             {prev_conns} ({prev_path}) — rerun with --serve-conns {prev_conns}"
        ));
    }
    let cur_p99 = serve_num(&cur_s, cur_label, &["req_ms", "p99_ms"])?;
    let prev_p99 = serve_num(&prev_s, prev_path, &["req_ms", "p99_ms"])?;
    let limit = prev_p99 * SERVE_P99_FACTOR + SERVE_P99_SLACK_MS;
    eprintln!(
        "bench-compare: serve req p99 {prev_p99:.2} ms ({prev_path}) -> {cur_p99:.2} ms \
         ({cur_label}) at {cur_conns} conns, limit {limit:.2} ms"
    );
    if cur_p99 > limit {
        return Err(format!(
            "serve req p99 regressed: {cur_p99:.2} ms exceeds {limit:.2} ms \
             ({SERVE_P99_FACTOR}x previous {prev_p99:.2} ms + {SERVE_P99_SLACK_MS} ms slack)"
        ));
    }
    Ok(())
}

/// Run every gate the current report's sections call for against a
/// previous baseline.
fn compare_reports(cur: &Value, cur_label: &str, prev_path: &str) -> Result<(), String> {
    let prev = load_report(prev_path)?;
    check_schema(cur, &prev, prev_path)?;

    if field(cur, "stages").is_some() {
        let cur_lp =
            stage_p50(cur, "lp").ok_or_else(|| format!("{cur_label} has no lp-stage p50"))?;
        let prev_lp =
            stage_p50(&prev, "lp").ok_or_else(|| format!("{prev_path} has no lp-stage p50"))?;
        if prev_lp <= 0.0 {
            return Err(format!("{prev_path} has a non-positive lp-stage p50 ({prev_lp})"));
        }
        let change_pct = (cur_lp - prev_lp) / prev_lp * 100.0;
        eprintln!(
            "bench-compare: lp p50 {prev_lp:.3} ms ({prev_path}) -> {cur_lp:.3} ms \
             ({cur_label}), {change_pct:+.1}%"
        );
        if change_pct > REGRESSION_LIMIT_PCT {
            return Err(format!(
                "lp-stage p50 regressed {change_pct:+.1}% (limit +{REGRESSION_LIMIT_PCT:.0}%): \
                 {prev_lp:.3} ms -> {cur_lp:.3} ms"
            ));
        }
    }
    check_amend_gate(cur, cur_label)?;
    check_obs_gate(cur, cur_label)?;
    check_lp_tree_gate(cur, cur_label)?;
    check_serve_gate(cur, cur_label, &prev, prev_path)
}

fn main() -> std::process::ExitCode {
    match run() {
        Ok(()) => std::process::ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::ExitCode::FAILURE
        }
    }
}

fn hist_map(h: &obs::HistogramSnapshot) -> Value {
    Value::Map(vec![
        ("count".into(), Value::UInt(h.count)),
        ("p50_ms".into(), Value::Float(h.p50)),
        ("p95_ms".into(), Value::Float(h.p95)),
        ("p99_ms".into(), Value::Float(h.p99)),
        ("max_ms".into(), Value::Float(h.max)),
    ])
}

/// One load-generator pass against `addr`; the section value it
/// returns is what the serve p99 gate reads. Any error (connect
/// failure, response timeout, id mismatch) fails the run — an
/// unhealthy pass must not become a baseline.
fn drive_load(
    addr: SocketAddr,
    conns: usize,
    reqs: usize,
    router: usize,
    in_process: bool,
    label: &str,
) -> Result<Value, String> {
    let registry = Arc::new(obs::Registry::new());
    let mut cfg = LoadConfig::new(addr);
    cfg.conns = conns;
    cfg.requests_per_conn = reqs;
    cfg.connect_batch = 256;
    let report = run_load(cfg, &registry).map_err(|e| format!("{label} load run: {e}"))?;
    eprintln!(
        "{label}: {}/{} conns (peak {}), {} reqs in {:.0} ms ({:.0} rps), \
         req p50 {:.2} / p99 {:.2} ms, {} errors, {} timeouts",
        report.opened,
        conns,
        report.peak_open,
        report.completed_requests,
        report.wall_ms,
        report.rps,
        report.req_ms.p50,
        report.req_ms.p99,
        report.errors,
        report.timeouts
    );
    if report.errors > 0 {
        return Err(format!("{label}: load run recorded {} errors", report.errors));
    }
    if report.timeouts > 0 {
        return Err(format!("{label}: load run recorded {} request timeouts", report.timeouts));
    }
    Ok(Value::Map(vec![
        ("conns".into(), Value::UInt(conns as u64)),
        ("requests_per_conn".into(), Value::UInt(reqs as u64)),
        ("router_workers".into(), Value::UInt(router as u64)),
        ("in_process".into(), Value::Bool(in_process)),
        ("opened".into(), Value::UInt(report.opened as u64)),
        ("peak_open".into(), Value::UInt(report.peak_open as u64)),
        ("completed_requests".into(), Value::UInt(report.completed_requests)),
        ("errors".into(), Value::UInt(report.errors)),
        ("timeouts".into(), Value::UInt(report.timeouts)),
        ("wall_ms".into(), Value::Float(report.wall_ms)),
        ("rps".into(), Value::Float(report.rps)),
        ("open_ms".into(), hist_map(&report.open_ms)),
        ("req_ms".into(), hist_map(&report.req_ms)),
    ]))
}

/// Fetch and sanity-check one `/metrics` scrape: every non-comment
/// line must be `name value` with a numeric value. Returns the parsed
/// counter samples.
fn scrape_once(addr: SocketAddr) -> Result<Vec<(String, f64)>, String> {
    use std::io::{Read, Write};
    let mut stream = std::net::TcpStream::connect(addr).map_err(|e| format!("scrape: {e}"))?;
    stream.set_read_timeout(Some(Duration::from_secs(5))).map_err(|e| e.to_string())?;
    stream
        .write_all(b"GET /metrics HTTP/1.0\r\nHost: bench\r\n\r\n")
        .map_err(|e| format!("scrape write: {e}"))?;
    let mut response = String::new();
    stream.read_to_string(&mut response).map_err(|e| format!("scrape read: {e}"))?;
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b)
        .ok_or_else(|| format!("scrape response has no body: {response:?}"))?;
    let mut samples = Vec::new();
    for line in body.lines().filter(|l| !l.starts_with('#') && !l.is_empty()) {
        let (name, value) =
            line.split_once(' ').ok_or_else(|| format!("unparseable exposition line: {line:?}"))?;
        let value: f64 =
            value.trim().parse().map_err(|_| format!("non-numeric sample: {line:?}"))?;
        samples.push((name.to_string(), value));
    }
    if samples.is_empty() {
        return Err("scrape returned an empty exposition".into());
    }
    Ok(samples)
}

/// Value of one sample in a scrape, by exposition name.
fn sample(samples: &[(String, f64)], name: &str) -> Option<f64> {
    samples.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
}

/// The `--serve` section: spin an in-process server (unless
/// `--serve-addr` points at an external one) and measure a full
/// connection fleet through the reactor load generator.
///
/// With `--serve-scrape` (in-process only), the server also gets an
/// HTTP scrape listener and a background scraper hits `/metrics`
/// throughout the load run: every exposition must parse, the request
/// counter must be monotone across scrapes, and the last scrape must
/// reconcile with the final drain snapshot — proving the scrape surface
/// answers (consistently) *while* the solver pools are saturated.
fn serve_section(args: &[String]) -> Result<Value, String> {
    use std::sync::atomic::{AtomicBool, Ordering};

    let conns: usize = flag(args, "--serve-conns", 256usize)?.max(1);
    let reqs: usize = flag(args, "--serve-reqs", 4usize)?.max(1);
    let router: usize = flag(args, "--serve-router", 1usize)?;
    let workers: usize = flag(args, "--serve-workers", 2usize)?;
    let scrape = has_flag(args, "--serve-scrape");
    let external = opt_flag(args, "--serve-addr");
    if scrape && external.is_some() {
        return Err("--serve-scrape needs the in-process server (drop --serve-addr)".into());
    }
    let (addr, scrape_addr, handle) = match &external {
        Some(a) => {
            let addr = a.parse().map_err(|_| format!("invalid --serve-addr: {a}"))?;
            (addr, None, None)
        }
        None => {
            let mut cfg =
                ServerConfig::default().addr("127.0.0.1:0").workers(workers).router_workers(router);
            if scrape {
                cfg = cfg.metrics_addr("127.0.0.1:0");
            }
            let server = Server::bind(cfg).map_err(|e| format!("serve bind: {e}"))?;
            let scrape_addr = server.metrics_addr();
            let handle = server.spawn();
            (handle.addr(), scrape_addr, Some(handle))
        }
    };

    // Background scraper: polls /metrics for the whole load run.
    let scraper = scrape_addr.map(|scrape_addr| {
        let stop = Arc::new(AtomicBool::new(false));
        let running = Arc::clone(&stop);
        let join = std::thread::spawn(move || -> Result<(u64, f64), String> {
            let mut scrapes = 0u64;
            let mut last_received = -1.0f64;
            loop {
                let samples = scrape_once(scrape_addr)?;
                let received = sample(&samples, "atsched_serve_received")
                    .ok_or("scrape lacks atsched_serve_received")?;
                if received < last_received {
                    return Err(format!(
                        "scraped atsched_serve_received went backwards: \
                         {last_received} -> {received}"
                    ));
                }
                last_received = received;
                scrapes += 1;
                if running.load(Ordering::SeqCst) {
                    return Ok((scrapes, last_received));
                }
                std::thread::sleep(Duration::from_millis(20));
            }
        });
        (stop, join)
    });

    let mut section = drive_load(addr, conns, reqs, router, external.is_none(), "serve")?;

    // Stop the scraper (its loop always does one final post-load
    // scrape, so the last sample covers the whole run) and fold its
    // verdict into the section.
    let scraped = match scraper {
        Some((stop, join)) => {
            stop.store(true, Ordering::SeqCst);
            let (scrapes, last_received) =
                join.join().map_err(|_| "scraper thread panicked".to_string())??;
            let completed = serve_num(&section, "serve", &["completed_requests"])?;
            if last_received < completed {
                return Err(format!(
                    "final scrape saw atsched_serve_received = {last_received}, \
                     below the {completed} requests the load generator completed"
                ));
            }
            eprintln!(
                "serve-scrape: {scrapes} mid-load scrapes parsed, \
                 last saw received = {last_received}"
            );
            Some((scrapes, last_received))
        }
        None => None,
    };

    if let Some(handle) = handle {
        let mut client =
            Client::connect(addr).map_err(|e| format!("connecting for shutdown: {e}"))?;
        let snapshot =
            client.shutdown().map_err(|e| format!("draining the serve-bench server: {e}"))?;
        handle.join().map_err(|e| format!("serve-bench server: {e}"))?;
        if let Some((scrapes, last_received)) = scraped {
            // Reconcile against the authoritative drain snapshot: the
            // server can only have seen *more* frames since the last
            // scrape (the shutdown request itself, at minimum).
            if (snapshot.received as f64) < last_received {
                return Err(format!(
                    "drain snapshot reports {} received, below the {last_received} \
                     the last scrape observed",
                    snapshot.received
                ));
            }
            if let Value::Map(entries) = &mut section {
                entries.push(("scrapes".into(), Value::UInt(scrapes)));
                entries.push(("scrape_last_received".into(), Value::Float(last_received)));
                entries.push(("drain_received".into(), Value::UInt(snapshot.received)));
            }
        }
    }
    Ok(section)
}

/// The `--serve-scale-addr` section: a large fleet against an
/// *external* server, so client and server each get their own
/// process-wide fd budget. The server is left running — the operator
/// owns its lifecycle.
fn scale_section(args: &[String]) -> Result<Option<Value>, String> {
    let Some(addr) = opt_flag(args, "--serve-scale-addr") else { return Ok(None) };
    let addr: SocketAddr =
        addr.parse().map_err(|_| format!("invalid --serve-scale-addr: {addr}"))?;
    let conns: usize = flag(args, "--serve-scale-conns", 10_000usize)?.max(1);
    let reqs: usize = flag(args, "--serve-scale-reqs", 2usize)?.max(1);
    drive_load(addr, conns, reqs, 0, false, "serve_scale").map(Some)
}

/// The solve-corpus benchmark: the report entries every non
/// `--serve-only` run carries.
fn run_corpus(args: &[String]) -> Result<Vec<(String, Value)>, String> {
    let count: usize = flag(args, "--count", 32usize)?;
    let g: i64 = flag(args, "--g", 4i64)?;
    let horizon: i64 = flag(args, "--horizon", 48i64)?;
    let seed: u64 = flag(args, "--seed", 1u64)?;
    let roots: usize = flag(args, "--roots", 1usize)?.max(1);
    let runs: usize = flag(args, "--runs", 3usize)?.max(1);

    let cfg = LaminarConfig { g, horizon, ..Default::default() }
        .validated()
        .map_err(|e| e.to_string())?;
    let instances: Vec<_> = (0..count)
        .map(|i| {
            let s = seed.wrapping_add(i as u64);
            if roots > 1 {
                let mr = MultiRootConfig { base: cfg.clone(), roots, gap: 1 };
                random_multi_root(&mr, s)
            } else {
                random_laminar(&cfg, s)
            }
        })
        .collect();
    let opts = SolverOptions::exact();

    // The solve cache would turn every run after the first into a
    // lookup benchmark; disable it so each run does the same work.
    let engine_cfg = || EngineConfig::default().cache(false);

    // Warm-up (page in code, stabilize allocator) — not measured.
    Engine::new(engine_cfg().observe(false)).solve_batch(&instances, &opts);

    // Observed runs share one registry so histograms accumulate over
    // `runs x count` solves; wall-clock is the best of the runs.
    let registry = Arc::new(obs::Registry::new());
    let mut observed_best = Duration::MAX;
    for _ in 0..runs {
        let engine = Engine::with_registry(engine_cfg().observe(true), Arc::clone(&registry));
        let start = Instant::now();
        engine.solve_batch(&instances, &opts);
        observed_best = observed_best.min(start.elapsed());
    }

    let mut disabled_best = Duration::MAX;
    for _ in 0..runs {
        let engine = Engine::new(engine_cfg().observe(false));
        let start = Instant::now();
        engine.solve_batch(&instances, &opts);
        disabled_best = disabled_best.min(start.elapsed());
    }

    let observed_ms = observed_best.as_secs_f64() * 1e3;
    let disabled_ms = disabled_best.as_secs_f64() * 1e3;
    let overhead_pct =
        if disabled_ms > 0.0 { (observed_ms - disabled_ms) / disabled_ms * 100.0 } else { 0.0 };

    // Many-root corpus: single-instance wall-clock with root
    // decomposition forced vs off. Best-of-runs per instance and mode,
    // p50 across instances — the shard layer's headline number.
    let shard_section = (roots > 1).then(|| {
        let mut off_opts = opts.clone();
        off_opts.shard = ShardMode::Off;
        let mut force_opts = opts.clone();
        force_opts.shard = ShardMode::Force;
        let mut off_best = vec![f64::MAX; instances.len()];
        let mut force_best = vec![f64::MAX; instances.len()];
        for _ in 0..runs {
            for (i, inst) in instances.iter().enumerate() {
                let start = Instant::now();
                solve_nested(inst, &off_opts).expect("bench corpus is feasible");
                off_best[i] = off_best[i].min(start.elapsed().as_secs_f64() * 1e3);
                let start = Instant::now();
                solve_nested_sharded(inst, &force_opts).expect("bench corpus is feasible");
                force_best[i] = force_best[i].min(start.elapsed().as_secs_f64() * 1e3);
            }
        }
        let p50 = |xs: &mut Vec<f64>| -> f64 {
            xs.sort_by(|a, b| a.total_cmp(b));
            xs[xs.len() / 2]
        };
        let off_p50 = p50(&mut off_best);
        let force_p50 = p50(&mut force_best);
        let speedup = if force_p50 > 0.0 { off_p50 / force_p50 } else { 1.0 };
        eprintln!(
            "shard: single-instance p50 off {off_p50:.1} ms vs force {force_p50:.1} ms \
             ({speedup:.2}x, {} cores)",
            std::thread::available_parallelism().map_or(1, |n| n.get())
        );
        Value::Map(vec![
            ("roots".into(), Value::UInt(roots as u64)),
            ("off_p50_ms".into(), Value::Float(off_p50)),
            ("force_p50_ms".into(), Value::Float(force_p50)),
            ("speedup".into(), Value::Float(speedup)),
            (
                "cores".into(),
                Value::UInt(std::thread::available_parallelism().map_or(1, |n| n.get()) as u64),
            ),
        ])
    });

    // Steady-state amend workload (sessions): each amend re-windows a
    // single job inside its own root hull — alternately widening it to
    // the hull and restoring it — so exactly one shard goes dirty per
    // amend while the other `roots - 1` splice from the session's part
    // cache. The reference is a cold cache-off `solve_one` of the same
    // amended instance. Sessions keep the cache *on* (reuse is the
    // point); both sides pay the same engine/isolation overhead.
    let amend_section = (roots > 1).then(|| {
        let stride = horizon + 1; // MultiRootConfig { gap: 1 } above
        let amends_per_instance = 8usize;
        let session_engine = Engine::new(EngineConfig::default());
        let cold = Engine::new(engine_cfg());
        let mut amend_ms = Vec::new();
        let mut full_ms = Vec::new();
        for inst in &instances {
            let session = session_engine.open_session(inst.clone(), &opts);
            let n = inst.num_jobs();
            for t in 0..amends_per_instance {
                let j = (t / 2) % n;
                let job = inst.jobs[j];
                let (release, deadline) = if t % 2 == 0 {
                    let k = job.release.div_euclid(stride);
                    (k * stride, k * stride + horizon)
                } else {
                    (job.release, job.deadline)
                };
                let delta = JobDelta::new().modify_window(j, release, deadline);
                let start = Instant::now();
                let outcome = session.amend(&delta).expect("bench delta references live jobs");
                amend_ms.push(start.elapsed().as_secs_f64() * 1e3);
                assert!(
                    matches!(outcome, Outcome::Solved(_)),
                    "widening a window keeps the corpus feasible"
                );
                let amended = session.instance();
                let start = Instant::now();
                cold.solve_one(&amended, &opts);
                full_ms.push(start.elapsed().as_secs_f64() * 1e3);
            }
        }
        let p50 = |xs: &mut Vec<f64>| -> f64 {
            xs.sort_by(|a, b| a.total_cmp(b));
            xs[xs.len() / 2]
        };
        let amend_p50 = p50(&mut amend_ms);
        let full_p50 = p50(&mut full_ms);
        let ratio = if full_p50 > 0.0 { amend_p50 / full_p50 } else { 1.0 };
        eprintln!(
            "amend: steady-state p50 {amend_p50:.2} ms vs full re-solve p50 {full_p50:.2} ms \
             ({ratio:.2}x, {} amends)",
            amend_ms.len()
        );
        Value::Map(vec![
            ("amends".into(), Value::UInt(amend_ms.len() as u64)),
            ("amend_p50_ms".into(), Value::Float(amend_p50)),
            ("full_p50_ms".into(), Value::Float(full_p50)),
            ("ratio".into(), Value::Float(ratio)),
        ])
    });

    // Telemetry-plane cost: the same `solve_nested` call plain vs under
    // the full live plane — an installed collector carrying a request
    // trace (so every stage span doubles as a breadcrumb), plus the
    // windowed counter bump the serve tier charges each request. Best
    // of `runs` per instance, p50 across instances; `--compare` gates
    // `overhead_pct` at [`OBS_OVERHEAD_LIMIT_PCT`].
    let obs_section = {
        let plane = Arc::new(obs::Registry::new());
        let plane_requests = plane.windowed_counter("bench.obs.requests");
        let plane_latency = plane.windowed_histogram("bench.obs.latency_ms");
        let mut plain_best = vec![f64::MAX; instances.len()];
        let mut traced_best = vec![f64::MAX; instances.len()];
        for _ in 0..runs {
            for (i, inst) in instances.iter().enumerate() {
                let start = Instant::now();
                solve_nested(inst, &opts).expect("bench corpus is feasible");
                plain_best[i] = plain_best[i].min(start.elapsed().as_secs_f64() * 1e3);

                let trace = Arc::new(obs::RequestTrace::new(i as u64 + 1, "bench"));
                let collector = obs::Collector::new(Arc::clone(&plane)).with_request(trace);
                let start = Instant::now();
                obs::with_collector(collector, || {
                    solve_nested(inst, &opts).expect("bench corpus is feasible");
                });
                plane_requests.inc();
                let ms = start.elapsed().as_secs_f64() * 1e3;
                plane_latency.record(ms);
                traced_best[i] = traced_best[i].min(ms);
            }
        }
        let p50 = |xs: &mut Vec<f64>| -> f64 {
            xs.sort_by(|a, b| a.total_cmp(b));
            xs[xs.len() / 2]
        };
        let plain_p50 = p50(&mut plain_best);
        let traced_p50 = p50(&mut traced_best);
        let overhead_pct =
            if plain_p50 > 0.0 { (traced_p50 - plain_p50) / plain_p50 * 100.0 } else { 0.0 };
        eprintln!(
            "obs: solve p50 plain {plain_p50:.3} ms vs telemetry plane {traced_p50:.3} ms \
             ({overhead_pct:+.2}%, limit +{OBS_OVERHEAD_LIMIT_PCT:.0}%)"
        );
        Value::Map(vec![
            ("plain_p50_ms".into(), Value::Float(plain_p50)),
            ("traced_p50_ms".into(), Value::Float(traced_p50)),
            ("overhead_pct".into(), Value::Float(overhead_pct)),
        ])
    };

    // Hybrid-precision LP: lp-stage p50 with the f64-first exactly
    // verified pipeline vs the pure big-rational simplex, plus how often
    // the certificate declined and the exact fallback ran. Results are
    // bit-identical by construction; this section prices the fast path.
    let lp_hybrid_section = {
        let run_mode = |precision: PrecisionMode| -> obs::RegistrySnapshot {
            let reg = Arc::new(obs::Registry::new());
            let mode_opts = SolverOptions { precision, ..opts.clone() };
            for _ in 0..runs {
                for inst in &instances {
                    let collector = obs::Collector::new(Arc::clone(&reg));
                    obs::with_collector(collector, || {
                        solve_nested(inst, &mode_opts).expect("bench corpus is feasible");
                    });
                }
            }
            reg.snapshot()
        };
        let hybrid = run_mode(PrecisionMode::Hybrid);
        let exact = run_mode(PrecisionMode::Exact);
        let hybrid_p50 = hybrid.histogram("span.lp.ms").map_or(0.0, |h| h.p50);
        let exact_p50 = exact.histogram("span.lp.ms").map_or(0.0, |h| h.p50);
        let verified = hybrid.counter("lp.hybrid_verified").unwrap_or(0);
        let fallbacks = hybrid.counter("lp.hybrid_fallbacks").unwrap_or(0);
        let attempts = verified + fallbacks;
        let fallback_rate = if attempts > 0 { fallbacks as f64 / attempts as f64 } else { 0.0 };
        let speedup = if hybrid_p50 > 0.0 { exact_p50 / hybrid_p50 } else { 1.0 };
        eprintln!(
            "lp_hybrid: lp p50 hybrid {hybrid_p50:.3} ms vs exact {exact_p50:.3} ms \
             ({speedup:.2}x; {fallbacks}/{attempts} fallbacks, rate {fallback_rate:.3})"
        );
        Value::Map(vec![
            ("hybrid_p50_ms".into(), Value::Float(hybrid_p50)),
            ("exact_p50_ms".into(), Value::Float(exact_p50)),
            ("speedup".into(), Value::Float(speedup)),
            ("verified".into(), Value::UInt(verified)),
            ("fallbacks".into(), Value::UInt(fallbacks)),
            ("fallback_rate".into(), Value::Float(fallback_rate)),
        ])
    };

    let snapshot = registry.snapshot();

    // LP-free combinatorial tree path: lp-stage p50 on the pinned-optima
    // families (unit-blocks + shallow-nest) with `lp-path=auto` vs the
    // forced simplex, plus how much of the *main* corpus the tree path
    // absorbed and why the remainder fell back. Results are
    // bit-identical by construction (`atsched batch --check` proves it
    // corpus-wide); this section prices the fast path.
    let lp_tree_section = {
        let run_path = |path: LpPath, insts: &[Instance]| -> obs::RegistrySnapshot {
            let reg = Arc::new(obs::Registry::new());
            let mode_opts = SolverOptions { lp_path: path, ..opts.clone() };
            for _ in 0..runs {
                for inst in insts {
                    let collector = obs::Collector::new(Arc::clone(&reg));
                    obs::with_collector(collector, || {
                        solve_nested(inst, &mode_opts).expect("family corpus is feasible");
                    });
                }
            }
            reg.snapshot()
        };
        let mut families: Vec<Instance> = Vec::new();
        for i in 0..5usize {
            families.push(unit_blocks(3 + i, 4 + i, 3, 3));
            families.push(shallow_nest(2 + i, 4, 2));
        }
        let tree = run_path(LpPath::Auto, &families);
        let simplex = run_path(LpPath::Simplex, &families);
        let tree_p50 = tree.histogram("span.lp.ms").map_or(0.0, |h| h.p50);
        let simplex_p50 = simplex.histogram("span.lp.ms").map_or(0.0, |h| h.p50);
        let family_solved = tree.counter("lp.tree_solved").unwrap_or(0);
        let family_fallbacks: u64 = ["nonunique", "flow", "scale", "overflow"]
            .iter()
            .map(|k| tree.counter(&format!("lp.tree_fallback.{k}")).unwrap_or(0))
            .sum();
        let speedup = if tree_p50 > 0.0 { simplex_p50 / tree_p50 } else { 1.0 };
        // Main-corpus absorption, from the instrumented engine run
        // above (`opts` defaults to `lp-path=auto`).
        let fb = |k: &str| snapshot.counter(&format!("lp.tree_fallback.{k}")).unwrap_or(0);
        let corpus_solved = snapshot.counter("lp.tree_solved").unwrap_or(0);
        let (fb_nonunique, fb_flow, fb_scale, fb_overflow) =
            (fb("nonunique"), fb("flow"), fb("scale"), fb("overflow"));
        let corpus_fallbacks = fb_nonunique + fb_flow + fb_scale + fb_overflow;
        let attempts = corpus_solved + corpus_fallbacks;
        let coverage = if attempts > 0 { corpus_solved as f64 / attempts as f64 } else { 0.0 };
        eprintln!(
            "lp_tree: family lp p50 tree {tree_p50:.3} ms vs simplex {simplex_p50:.3} ms \
             ({speedup:.2}x; families {family_solved} solved / {family_fallbacks} fallbacks; \
             corpus coverage {coverage:.3}, fallbacks nonunique={fb_nonunique} flow={fb_flow} \
             scale={fb_scale} overflow={fb_overflow})"
        );
        Value::Map(vec![
            ("tree_p50_ms".into(), Value::Float(tree_p50)),
            ("simplex_p50_ms".into(), Value::Float(simplex_p50)),
            ("speedup".into(), Value::Float(speedup)),
            ("family_count".into(), Value::UInt(families.len() as u64)),
            ("family_solved".into(), Value::UInt(family_solved)),
            ("family_fallbacks".into(), Value::UInt(family_fallbacks)),
            ("corpus_tree_solved".into(), Value::UInt(corpus_solved)),
            ("corpus_fallbacks".into(), Value::UInt(corpus_fallbacks)),
            ("corpus_coverage".into(), Value::Float(coverage)),
            ("fallback_nonunique".into(), Value::UInt(fb_nonunique)),
            ("fallback_flow".into(), Value::UInt(fb_flow)),
            ("fallback_scale".into(), Value::UInt(fb_scale)),
            ("fallback_overflow".into(), Value::UInt(fb_overflow)),
        ])
    };

    // Per-stage summary: `span.<stage>.ms` histograms (skip the
    // `.self_ms` companions — the full trace keeps those).
    let mut stages = Vec::new();
    for (name, h) in &snapshot.histograms {
        let stage = match name.strip_prefix("span.").and_then(|n| n.strip_suffix(".ms")) {
            Some(s) if !s.ends_with(".self") => s,
            _ => continue,
        };
        stages.push((
            stage.to_string(),
            Value::Map(vec![
                ("count".into(), Value::UInt(h.count)),
                ("p50_ms".into(), Value::Float(h.p50)),
                ("p95_ms".into(), Value::Float(h.p95)),
                ("max_ms".into(), Value::Float(h.max)),
            ]),
        ));
    }

    let counters: Vec<(String, Value)> =
        snapshot.counters.iter().map(|(n, v)| (n.clone(), Value::UInt(*v))).collect();

    eprintln!(
        "corpus: {count} instances x {runs} runs; observed {observed_ms:.1} ms vs \
         disabled {disabled_ms:.1} ms, {overhead_pct:+.2}%"
    );

    let solve = snapshot.histogram("engine.solve_ms");
    let mut entries = vec![
        (
            "corpus".into(),
            Value::Map(vec![
                ("count".into(), Value::UInt(count as u64)),
                ("g".into(), Value::Int(g)),
                ("horizon".into(), Value::Int(horizon)),
                ("seed".into(), Value::UInt(seed)),
                ("roots".into(), Value::UInt(roots as u64)),
            ]),
        ),
        ("runs".into(), Value::UInt(runs as u64)),
        (
            "wall_clock".into(),
            Value::Map(vec![
                ("observed_ms".into(), Value::Float(observed_ms)),
                ("disabled_ms".into(), Value::Float(disabled_ms)),
                ("overhead_pct".into(), Value::Float(overhead_pct)),
            ]),
        ),
        (
            "solve_ms".into(),
            Value::Map(vec![
                ("count".into(), Value::UInt(solve.map_or(0, |s| s.count))),
                ("p50".into(), Value::Float(solve.map_or(0.0, |s| s.p50))),
                ("p95".into(), Value::Float(solve.map_or(0.0, |s| s.p95))),
                ("max".into(), Value::Float(solve.map_or(0.0, |s| s.max))),
            ]),
        ),
        ("stages".into(), Value::Map(stages)),
        ("counters".into(), Value::Map(counters)),
    ];
    if let Some(shard) = shard_section {
        entries.push(("shard".into(), shard));
    }
    if let Some(amend) = amend_section {
        entries.push(("amend".into(), amend));
    }
    entries.push(("obs".into(), obs_section));
    entries.push(("lp_hybrid".into(), lp_hybrid_section));
    entries.push(("lp_tree".into(), lp_tree_section));
    Ok(entries)
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let compare = opt_flag(&args, "--compare");

    // Compare-only mode: load an existing report instead of benching.
    if let Some(input) = opt_flag(&args, "--in") {
        let prev_path = compare.ok_or("--in requires --compare PREV.json")?;
        let report = load_report(&input)?;
        return compare_reports(&report, &input, &prev_path);
    }

    let serve_only = has_flag(&args, "--serve-only");
    let serve = serve_only || has_flag(&args, "--serve");
    let tag: String = flag(&args, "--tag", "pr10".to_string())?;
    let out: String = flag(&args, "--out", format!("BENCH_{tag}.json"))?;

    let mut entries: Vec<(String, Value)> = vec![
        ("bench".into(), Value::Str(format!("atsched-bench baseline ({tag})"))),
        ("schema_version".into(), Value::UInt(SCHEMA_VERSION)),
    ];
    if !serve_only {
        entries.extend(run_corpus(&args)?);
    }
    if serve {
        entries.push(("serve".into(), serve_section(&args)?));
    }
    if let Some(scale) = scale_section(&args)? {
        entries.push(("serve_scale".into(), scale));
    }
    let report = Value::Map(entries);

    let json = serde_json::to_string_pretty(&Json(report.clone())).map_err(|e| e.to_string())?;
    std::fs::write(&out, &json).map_err(|e| format!("writing {out}: {e}"))?;
    println!("{json}");
    eprintln!("baseline written to {out}");

    if let Some(prev_path) = compare {
        compare_reports(&report, &out, &prev_path)?;
    }
    Ok(())
}
