//! `atsched-bench` — the default perf-baseline binary (`cargo run -p
//! atsched-bench`).
//!
//! Runs a fixed seeded laminar corpus through the batch engine twice —
//! once with observation recording on, once with it disabled — and
//! emits a `BENCH_<tag>.json` baseline: per-stage p50/p95 latencies
//! from the `span.*` histograms, algorithm counters (LP pivots, flow
//! augmentations), end-to-end solve percentiles, and the measured
//! instrumentation overhead. CI uploads the file as an artifact so
//! future PRs can diff the perf trajectory.
//!
//! ```text
//! cargo run --release -p atsched-bench -- \
//!     [--tag NAME] [--count N] [--g N] [--horizon N] [--seed N] \
//!     [--runs N] [--out FILE] [--compare PREV.json] [--in REPORT.json]
//! ```
//!
//! `--tag` names the baseline and derives the default output file
//! (`BENCH_<tag>.json`). `--compare PREV.json` checks the lp-stage p50
//! against a previous baseline and exits non-zero when it regressed by
//! more than 10%. `--in REPORT.json` skips the benchmark and loads an
//! already-written report instead — CI uses this to run the compare as
//! its own step without re-benching.

use atsched_core::solver::SolverOptions;
use atsched_engine::{Engine, EngineConfig};
use atsched_obs as obs;
use atsched_workloads::generators::{random_laminar, LaminarConfig};
use serde::ser::{Serialize, Serializer};
use serde::value::Value;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Wrapper giving a hand-built [`Value`] tree a `Serialize` impl (the
/// vendored serde stub has none for `Value` itself).
struct Json(Value);

impl Serialize for Json {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(self.0.clone())
    }
}

impl<'de> serde::de::Deserialize<'de> for Json {
    fn deserialize<D: serde::de::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        deserializer.deserialize_value().map(Json)
    }
}

fn flag<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> Result<T, String> {
    match args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| format!("invalid value for {name}: {v}")),
    }
}

fn opt_flag(args: &[String], name: &str) -> Option<String> {
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).cloned()
}

/// Load a previously written baseline report.
fn load_report(path: &str) -> Result<Value, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    serde_json::from_str::<Json>(&text).map(|j| j.0).map_err(|e| format!("parsing {path}: {e}"))
}

/// Pull `stages.<stage>.p50_ms` out of a report tree.
fn stage_p50(report: &Value, stage: &str) -> Option<f64> {
    let field = |v: &Value, key: &str| -> Option<Value> {
        match v {
            Value::Map(m) => m.iter().find(|(k, _)| k == key).map(|(_, v)| v.clone()),
            _ => None,
        }
    };
    let p50 = field(&field(&field(report, "stages")?, stage)?, "p50_ms")?;
    match p50 {
        Value::Float(f) => Some(f),
        Value::Int(i) => Some(i as f64),
        Value::UInt(u) => Some(u as f64),
        _ => None,
    }
}

/// Maximum tolerated lp-stage p50 growth before `--compare` fails.
const REGRESSION_LIMIT_PCT: f64 = 10.0;

/// Compare the lp-stage p50 against a previous baseline; `Err` when it
/// regressed past [`REGRESSION_LIMIT_PCT`].
fn compare_lp_p50(cur_lp: f64, cur_label: &str, prev_path: &str) -> Result<(), String> {
    let prev = load_report(prev_path)?;
    let prev_lp =
        stage_p50(&prev, "lp").ok_or_else(|| format!("{prev_path} has no lp-stage p50"))?;
    if prev_lp <= 0.0 {
        return Err(format!("{prev_path} has a non-positive lp-stage p50 ({prev_lp})"));
    }
    let change_pct = (cur_lp - prev_lp) / prev_lp * 100.0;
    eprintln!(
        "bench-compare: lp p50 {prev_lp:.3} ms ({prev_path}) -> {cur_lp:.3} ms ({cur_label}), \
         {change_pct:+.1}%"
    );
    if change_pct > REGRESSION_LIMIT_PCT {
        return Err(format!(
            "lp-stage p50 regressed {change_pct:+.1}% (limit +{REGRESSION_LIMIT_PCT:.0}%): \
             {prev_lp:.3} ms -> {cur_lp:.3} ms"
        ));
    }
    Ok(())
}

fn main() -> std::process::ExitCode {
    match run() {
        Ok(()) => std::process::ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let compare = opt_flag(&args, "--compare");

    // Compare-only mode: load an existing report instead of benching.
    if let Some(input) = opt_flag(&args, "--in") {
        let prev_path = compare.ok_or("--in requires --compare PREV.json")?;
        let report = load_report(&input)?;
        let cur_lp =
            stage_p50(&report, "lp").ok_or_else(|| format!("{input} has no lp-stage p50"))?;
        return compare_lp_p50(cur_lp, &input, &prev_path);
    }

    let tag: String = flag(&args, "--tag", "pr4".to_string())?;
    let count: usize = flag(&args, "--count", 32usize)?;
    let g: i64 = flag(&args, "--g", 4i64)?;
    let horizon: i64 = flag(&args, "--horizon", 48i64)?;
    let seed: u64 = flag(&args, "--seed", 1u64)?;
    let runs: usize = flag(&args, "--runs", 3usize)?.max(1);
    let out: String = flag(&args, "--out", format!("BENCH_{tag}.json"))?;

    let cfg = LaminarConfig { g, horizon, ..Default::default() };
    let instances: Vec<_> =
        (0..count).map(|i| random_laminar(&cfg, seed.wrapping_add(i as u64))).collect();
    let opts = SolverOptions::exact();

    // The solve cache would turn every run after the first into a
    // lookup benchmark; disable it so each run does the same work.
    let engine_cfg = || EngineConfig::default().cache(false);

    // Warm-up (page in code, stabilize allocator) — not measured.
    Engine::new(engine_cfg().observe(false)).solve_batch(&instances, &opts);

    // Observed runs share one registry so histograms accumulate over
    // `runs x count` solves; wall-clock is the best of the runs.
    let registry = Arc::new(obs::Registry::new());
    let mut observed_best = Duration::MAX;
    for _ in 0..runs {
        let engine = Engine::with_registry(engine_cfg().observe(true), Arc::clone(&registry));
        let start = Instant::now();
        engine.solve_batch(&instances, &opts);
        observed_best = observed_best.min(start.elapsed());
    }

    let mut disabled_best = Duration::MAX;
    for _ in 0..runs {
        let engine = Engine::new(engine_cfg().observe(false));
        let start = Instant::now();
        engine.solve_batch(&instances, &opts);
        disabled_best = disabled_best.min(start.elapsed());
    }

    let observed_ms = observed_best.as_secs_f64() * 1e3;
    let disabled_ms = disabled_best.as_secs_f64() * 1e3;
    let overhead_pct =
        if disabled_ms > 0.0 { (observed_ms - disabled_ms) / disabled_ms * 100.0 } else { 0.0 };

    let snapshot = registry.snapshot();

    // Per-stage summary: `span.<stage>.ms` histograms (skip the
    // `.self_ms` companions — the full trace keeps those).
    let mut stages = Vec::new();
    for (name, h) in &snapshot.histograms {
        let stage = match name.strip_prefix("span.").and_then(|n| n.strip_suffix(".ms")) {
            Some(s) if !s.ends_with(".self") => s,
            _ => continue,
        };
        stages.push((
            stage.to_string(),
            Value::Map(vec![
                ("count".into(), Value::UInt(h.count)),
                ("p50_ms".into(), Value::Float(h.p50)),
                ("p95_ms".into(), Value::Float(h.p95)),
                ("max_ms".into(), Value::Float(h.max)),
            ]),
        ));
    }

    let counters: Vec<(String, Value)> =
        snapshot.counters.iter().map(|(n, v)| (n.clone(), Value::UInt(*v))).collect();

    let solve = snapshot.histogram("engine.solve_ms");
    let report = Value::Map(vec![
        ("bench".into(), Value::Str(format!("atsched-bench baseline ({tag})"))),
        (
            "corpus".into(),
            Value::Map(vec![
                ("count".into(), Value::UInt(count as u64)),
                ("g".into(), Value::Int(g)),
                ("horizon".into(), Value::Int(horizon)),
                ("seed".into(), Value::UInt(seed)),
            ]),
        ),
        ("runs".into(), Value::UInt(runs as u64)),
        (
            "wall_clock".into(),
            Value::Map(vec![
                ("observed_ms".into(), Value::Float(observed_ms)),
                ("disabled_ms".into(), Value::Float(disabled_ms)),
                ("overhead_pct".into(), Value::Float(overhead_pct)),
            ]),
        ),
        (
            "solve_ms".into(),
            Value::Map(vec![
                ("count".into(), Value::UInt(solve.map_or(0, |s| s.count))),
                ("p50".into(), Value::Float(solve.map_or(0.0, |s| s.p50))),
                ("p95".into(), Value::Float(solve.map_or(0.0, |s| s.p95))),
                ("max".into(), Value::Float(solve.map_or(0.0, |s| s.max))),
            ]),
        ),
        ("stages".into(), Value::Map(stages)),
        ("counters".into(), Value::Map(counters)),
    ]);

    let json = serde_json::to_string_pretty(&Json(report)).map_err(|e| e.to_string())?;
    std::fs::write(&out, &json).map_err(|e| format!("writing {out}: {e}"))?;
    println!("{json}");
    eprintln!(
        "baseline written to {out} ({count} instances x {runs} runs; \
         observed {observed_ms:.1} ms vs disabled {disabled_ms:.1} ms, {overhead_pct:+.2}%)"
    );

    if let Some(prev_path) = compare {
        let cur_lp = snapshot
            .histogram("span.lp.ms")
            .map(|h| h.p50)
            .ok_or("this run recorded no lp-stage histogram")?;
        compare_lp_p50(cur_lp, &out, &prev_path)?;
    }
    Ok(())
}
