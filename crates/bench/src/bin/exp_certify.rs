//! E9 (Figure 2 / Lemmas 4.7–4.13): run the paper's *analysis* machinery
//! on random instances — classify the antichain `I` into types B/C₁/C₂,
//! build the triples of Algorithm 2, and check the counting and
//! structural lemmas.

use atsched_bench::table::Table;
use atsched_core::canonical::canonicalize;
use atsched_core::certify::{
    build_triples_from_typing, check_lemma_4_11, check_lemma_4_9, check_triples_cover, classify,
    NodeType,
};
use atsched_core::lp_model::build;
use atsched_core::opt23;
use atsched_core::rounding::round;
use atsched_core::transform::push_down;
use atsched_core::tree::Forest;
use atsched_num::Ratio;
use atsched_workloads::generators::{random_laminar, LaminarConfig};

fn main() {
    let trials: u64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(40);
    println!("E9: analysis certification on random laminar instances\n");
    let mut t = Table::new(&["instance", "|I|", "B", "C1", "C2", "L4.9", "cover", "L4.11"]);
    let mut failures = 0usize;
    // Random draws + engineered type-C families (random LPs rarely land
    // in the critical (1, 4/3) window; the overflow family always does).
    let mut instances: Vec<(String, atsched_core::instance::Instance)> = Vec::new();
    for seed in 0..trials {
        let cfg = LaminarConfig { g: 3, horizon: 20, ..Default::default() };
        instances.push((format!("random#{seed}"), random_laminar(&cfg, seed)));
    }
    for (g, b, e) in [(10i64, 3usize, 1i64), (10, 4, 1), (12, 4, 2), (9, 5, 1)] {
        instances.push((
            format!("overflow({g},{b},{e})"),
            atsched_workloads::families::overflow_family(g, b, e),
        ));
    }
    for (label, inst) in instances {
        let forest = Forest::build(&inst).unwrap();
        let canon = canonicalize(&forest, &inst);
        let bounds = opt23::compute(&canon, &inst);
        let lp = build::<Ratio>(&canon, &inst, &bounds);
        let sol = lp.solve().expect("generator guarantees feasibility");
        let out = push_down(&canon, sol);
        let rounded = round(&canon, &out.solution, &out.top_positive);
        let typing = classify(&canon, &out.solution, &out.top_positive, &rounded);
        let l49 = check_lemma_4_9(&canon, &typing);
        let triples = build_triples_from_typing(&canon, &typing);
        let cover = check_triples_cover(&typing, &triples);
        let (ok411, total411) = check_lemma_4_11(&canon, &triples.triples);
        failures += l49.is_err() as usize + cover.is_err() as usize;
        t.row(vec![
            label,
            typing.types.len().to_string(),
            typing.of(NodeType::B).len().to_string(),
            typing.of(NodeType::C1).len().to_string(),
            typing.of(NodeType::C2).len().to_string(),
            if l49.is_ok() { "ok".into() } else { format!("{l49:?}") },
            if cover.is_ok() { "ok".into() } else { format!("{cover:?}") },
            format!("{ok411}/{total411}"),
        ]);
    }
    println!("{}", t.render());
    println!("lemma failures: {failures} (expected 0)");
    assert_eq!(failures, 0);
}
