//! E3 (§1 claim): the natural LP's integrality gap approaches 2 on a
//! *nested* family (g+1 unit jobs in a width-2 window), while the
//! strengthened tree LP of Figure 1(a) values the family exactly.
//!
//! Usage: `exp_gap_natural [max_g]` (default 12).

use atsched_bench::experiments::e3_gap_natural;

fn main() {
    let max_g: i64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(12);
    println!("E3: natural-LP gap-2 family (g+1 unit jobs in [0,2))\n");
    let gs: Vec<i64> = (1..=max_g).collect();
    let table = e3_gap_natural(&gs);
    println!("{}", table.render());
    println!("OPT/natural → 2 as g → ∞; ourLP ≡ OPT = 2 (ceiling constraint).");
}
