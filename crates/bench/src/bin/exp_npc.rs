//! E6 (§6): the NP-completeness chain, executed — Set Cover → Prefix Sum
//! Cover → nested active-time scheduling, with all three decision answers
//! cross-checked by exact solvers.

use atsched_baselines::exact::nested_opt;
use atsched_bench::table::Table;
use atsched_npc::reductions::{psc_to_active_time, set_cover_to_psc};
use atsched_npc::set_cover::random_set_cover;

fn main() {
    let trials: u64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(12);
    println!("E6: Set Cover → Prefix Sum Cover → nested active time\n");
    let mut t = Table::new(&["seed", "k", "SetCover", "PSC", "ActiveTime", "agree"]);
    let mut all_agree = true;
    for seed in 0..trials {
        let sc = random_set_cover(3, 3, seed);
        for k in 1..=2usize {
            let sc_yes = sc.solvable_with(k);
            let psc = set_cover_to_psc(&sc, k);
            let psc_yes = psc.solvable();
            let red = psc_to_active_time(&psc);
            let at_opt = nested_opt(&red.instance, 0).map(|s| s.active_time() as i64);
            let at_yes = at_opt.is_some_and(|o| o <= red.base_slots + red.k as i64);
            let agree = sc_yes == psc_yes && psc_yes == at_yes;
            all_agree &= agree;
            t.row(vec![
                seed.to_string(),
                k.to_string(),
                sc_yes.to_string(),
                psc_yes.to_string(),
                at_yes.to_string(),
                if agree { "✓".into() } else { "MISMATCH".into() },
            ]);
        }
    }
    println!("{}", t.render());
    println!("chain agreement: {}", if all_agree { "100%" } else { "FAILED — reduction bug" });
    assert!(all_agree);
}
