//! E7: runtime scaling of the pipeline stages for both backends, measured
//! through the batch engine's per-stage instrumentation.
//!
//! For each horizon a small corpus of random laminar instances is pushed
//! through [`atsched_engine::Engine::solve_batch`] once per backend; the
//! batch report's stage percentiles (canonicalize / LP / transform /
//! round / extract / verify) come from [`atsched_core::StageTimings`]
//! recorded inside `solve_nested` itself, so there is no wrapper-timing
//! skew.
//!
//! Usage: `exp_scaling [instances_per_cell]` (default 8).

use atsched_bench::table::Table;
use atsched_core::solver::{LpBackend, SolverOptions};
use atsched_engine::{Engine, EngineConfig, Outcome};
use atsched_workloads::generators::{random_laminar, LaminarConfig};

fn main() {
    let per_cell: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(8);
    println!("E7: pipeline runtime vs instance size (batch engine, {per_cell} instances/cell)\n");
    let mut t = Table::new(&[
        "horizon",
        "jobs",
        "backend",
        "solve p50 ms",
        "solve max ms",
        "lp p50 ms",
        "round p50 ms",
        "active",
    ]);
    let engine = Engine::new(EngineConfig::default().cache(false));
    for horizon in [16i64, 32, 64, 128] {
        let cfg = LaminarConfig {
            g: 3,
            horizon,
            max_depth: 4,
            max_children: 4,
            jobs_per_node: (1, 3),
            max_processing: 4,
            child_percent: 70,
        };
        let corpus: Vec<_> =
            (0..per_cell).map(|seed| random_laminar(&cfg, 42 + seed as u64)).collect();
        let jobs = corpus.iter().map(|i| i.num_jobs()).sum::<usize>() / corpus.len();

        let mut lp_values: Vec<Vec<f64>> = Vec::new();
        for (name, backend) in [
            ("exact", LpBackend::Exact),
            ("f64", LpBackend::Float),
            ("snap", LpBackend::FloatThenSnap),
        ] {
            let opts = SolverOptions { backend, ..SolverOptions::exact() };
            let batch = engine.solve_batch(&corpus, &opts);
            assert_eq!(batch.report.solved, corpus.len(), "generator guarantees feasibility");
            let solved: Vec<_> = batch.outcomes.iter().filter_map(Outcome::as_solved).collect();
            lp_values.push(solved.iter().map(|s| s.result.stats.lp_objective).collect());
            let active = solved.iter().map(|s| s.result.stats.active_slots).sum::<usize>();
            t.row(vec![
                horizon.to_string(),
                jobs.to_string(),
                name.to_string(),
                format!("{:.1}", batch.report.latency_ms.p50),
                format!("{:.1}", batch.report.latency_ms.max),
                format!("{:.2}", batch.report.stages_ms.lp.p50),
                format!("{:.2}", batch.report.stages_ms.round.p50),
                active.to_string(),
            ]);
        }
        // All three backends must agree on every LP value.
        for (a, b) in lp_values[0].iter().zip(&lp_values[1]) {
            assert!((a - b).abs() / a.max(1.0) < 1e-6, "exact vs f64 LP mismatch: {a} vs {b}");
        }
        for (a, b) in lp_values[1].iter().zip(&lp_values[2]) {
            assert!((a - b).abs() < 1e-6, "f64 vs snap LP mismatch: {a} vs {b}");
        }
    }
    println!("{}", t.render());
    println!("Expected shape: f64 backend scales far better; all backends agree on LP values.");
}
