//! E7: runtime scaling of the pipeline stages (forest build, LP solve,
//! transform+round, schedule extraction) for both backends.

use atsched_bench::table::Table;
use atsched_core::solver::{solve_nested, LpBackend, SolverOptions};
use atsched_workloads::generators::{random_laminar, LaminarConfig};
use std::time::Instant;

fn main() {
    println!("E7: pipeline runtime vs instance size\n");
    let mut t = Table::new(&["horizon", "jobs", "nodes", "exact ms", "f64 ms", "snap ms", "active"]);
    for horizon in [16i64, 32, 64, 128] {
        let cfg = LaminarConfig {
            g: 3,
            horizon,
            max_depth: 4,
            max_children: 4,
            jobs_per_node: (1, 3),
            max_processing: 4,
            child_percent: 70,
        };
        let inst = random_laminar(&cfg, 42);
        let start = Instant::now();
        let exact = solve_nested(&inst, &SolverOptions::exact()).unwrap();
        let exact_ms = start.elapsed().as_secs_f64() * 1e3;
        let start = Instant::now();
        let opts = SolverOptions { backend: LpBackend::Float, ..SolverOptions::exact() };
        let fl = solve_nested(&inst, &opts).unwrap();
        let float_ms = start.elapsed().as_secs_f64() * 1e3;
        let start = Instant::now();
        let snap_opts =
            SolverOptions { backend: LpBackend::FloatThenSnap, ..SolverOptions::exact() };
        let sn = solve_nested(&inst, &snap_opts).unwrap();
        let snap_ms = start.elapsed().as_secs_f64() * 1e3;
        assert!((sn.stats.lp_objective - fl.stats.lp_objective).abs() < 1e-6);
        assert!(
            (exact.stats.lp_objective - fl.stats.lp_objective).abs()
                / exact.stats.lp_objective.max(1.0)
                < 1e-6
        );
        t.row(vec![
            horizon.to_string(),
            inst.num_jobs().to_string(),
            exact.stats.nodes_canonical.to_string(),
            format!("{exact_ms:.1}"),
            format!("{float_ms:.1}"),
            format!("{snap_ms:.1}"),
            exact.stats.active_slots.to_string(),
        ]);
    }
    println!("{}", t.render());
    println!("Expected shape: f64 backend scales far better; both agree on LP value.");
}
