//! Shared experiment logic behind the `exp_*` binaries (see
//! EXPERIMENTS.md for the experiment index E1–E9 and the paper artifacts
//! each regenerates).

use crate::table::Table;
use atsched_baselines::exact::nested_opt;
use atsched_baselines::greedy::{minimal_feasible, ScanOrder};
use atsched_core::instance::Instance;
use atsched_core::solver::{solve_nested, SolverOptions};
use atsched_engine::par_map;
use atsched_gaps::instances::{gap2_instance, lemma51_instance, lemma51_integral_opt};
use atsched_gaps::{cw_lp, natural_lp};
use atsched_num::Ratio;
use atsched_workloads::generators::{random_laminar, LaminarConfig};

/// Measurements from one E1 cell (one instance).
#[derive(Debug, Clone)]
pub struct RatioSample {
    /// Number of jobs.
    pub jobs: usize,
    /// Solver active slots.
    pub alg: i64,
    /// Exact optimum (None when skipped for size).
    pub opt: Option<i64>,
    /// LP optimum.
    pub lp: f64,
}

/// E1: approximation-ratio sweep on random laminar instances.
pub fn e1_ratio_sweep(gs: &[i64], seeds_per_g: u64, horizon: i64, with_exact: bool) -> Table {
    let mut table = Table::new(&[
        "g",
        "seeds",
        "avg_jobs",
        "mean ALG/OPT",
        "max ALG/OPT",
        "mean ALG/LP",
        "max ALG/LP",
    ]);
    for &g in gs {
        let cells: Vec<RatioSample> = par_map((0..seeds_per_g).collect::<Vec<u64>>(), |seed| {
            let cfg = LaminarConfig {
                g,
                horizon,
                max_depth: 3,
                max_children: 3,
                jobs_per_node: (1, 2),
                max_processing: 3,
                child_percent: 65,
            };
            let inst = random_laminar(&cfg, seed);
            let sol = solve_nested(&inst, &SolverOptions::exact())
                .expect("generator guarantees feasibility");
            let opt = if with_exact {
                nested_opt(&inst, sol.stats.lp_objective.ceil() as i64)
                    .map(|s| s.active_time() as i64)
            } else {
                None
            };
            RatioSample {
                jobs: inst.num_jobs(),
                alg: sol.stats.active_slots as i64,
                opt,
                lp: sol.stats.lp_objective,
            }
        });
        let n = cells.len() as f64;
        let avg_jobs = cells.iter().map(|c| c.jobs as f64).sum::<f64>() / n;
        let ratios_opt: Vec<f64> =
            cells.iter().filter_map(|c| c.opt.map(|o| c.alg as f64 / o.max(1) as f64)).collect();
        let ratios_lp: Vec<f64> = cells.iter().map(|c| c.alg as f64 / c.lp.max(1e-9)).collect();
        let mean = |v: &[f64]| {
            if v.is_empty() {
                f64::NAN
            } else {
                v.iter().sum::<f64>() / v.len() as f64
            }
        };
        let max = |v: &[f64]| v.iter().copied().fold(f64::NAN, f64::max);
        table.row(vec![
            g.to_string(),
            cells.len().to_string(),
            format!("{avg_jobs:.1}"),
            format!("{:.4}", mean(&ratios_opt)),
            format!("{:.4}", max(&ratios_opt)),
            format!("{:.4}", mean(&ratios_lp)),
            format!("{:.4}", max(&ratios_lp)),
        ]);
    }
    table
}

/// E2: integrality-gap table on the Lemma 5.1 family.
pub fn e2_gap_nested(gs: &[i64], exact_opt_up_to: i64) -> Table {
    let mut table =
        Table::new(&["g", "naturalLP", "cwLP", "ourLP", "OPT", "OPT/cwLP", "paper 3g/(2(g+2))"]);
    for &g in gs {
        let inst = lemma51_instance(g);
        let nat = natural_lp::value::<Ratio>(&inst).expect("feasible").to_f64();
        let cw = cw_lp::value::<Ratio>(&inst).expect("feasible").to_f64();
        let ours =
            solve_nested(&inst, &SolverOptions::exact()).expect("feasible").stats.lp_objective;
        let opt = if g <= exact_opt_up_to {
            let s = nested_opt(&inst, 0).expect("feasible");
            assert_eq!(s.active_time() as i64, lemma51_integral_opt(g), "paper formula check");
            s.active_time() as i64
        } else {
            lemma51_integral_opt(g)
        };
        table.row(vec![
            g.to_string(),
            format!("{nat:.3}"),
            format!("{cw:.3}"),
            format!("{ours:.3}"),
            opt.to_string(),
            format!("{:.4}", opt as f64 / cw),
            format!("{:.4}", 3.0 * g as f64 / (2.0 * (g as f64 + 2.0))),
        ]);
    }
    table
}

/// E3: natural-LP gap-2 family vs the strengthened LP.
pub fn e3_gap_natural(gs: &[i64]) -> Table {
    let mut table =
        Table::new(&["g", "naturalLP", "ourLP", "OPT", "OPT/natural", "limit 2g/(g+1)"]);
    for &g in gs {
        let inst = gap2_instance(g);
        let nat = natural_lp::value::<Ratio>(&inst).expect("feasible");
        let ours = solve_nested(&inst, &SolverOptions::exact()).expect("feasible");
        let opt = nested_opt(&inst, 0).expect("feasible").active_time() as i64;
        table.row(vec![
            g.to_string(),
            nat.to_string(),
            format!("{:.3}", ours.stats.lp_objective),
            opt.to_string(),
            format!("{:.4}", opt as f64 / nat.to_f64()),
            format!("{:.4}", 2.0 * g as f64 / (g as f64 + 1.0)),
        ]);
    }
    table
}

/// E5: baseline comparison on one instance. Returns the row cells.
pub fn e5_compare(inst: &Instance, with_exact: bool) -> Vec<String> {
    let ours = solve_nested(inst, &SolverOptions::exact()).expect("feasible");
    let gl = minimal_feasible(inst, ScanOrder::LeftToRight).expect("feasible");
    let gr = minimal_feasible(inst, ScanOrder::RightToLeft).expect("feasible");
    let ga = minimal_feasible(inst, ScanOrder::Shuffled(12345)).expect("feasible");
    let opt = if with_exact {
        nested_opt(inst, ours.stats.lp_objective.ceil() as i64)
            .map(|s| s.active_time().to_string())
            .unwrap_or_else(|| "-".into())
    } else {
        "-".into()
    };
    vec![
        inst.num_jobs().to_string(),
        inst.g.to_string(),
        format!("{:.2}", ours.stats.lp_objective),
        ours.stats.active_slots.to_string(),
        gl.schedule.active_time().to_string(),
        gr.schedule.active_time().to_string(),
        ga.schedule.active_time().to_string(),
        opt,
    ]
}

/// E5 header matching [`e5_compare`].
pub fn e5_header() -> Vec<&'static str> {
    vec!["jobs", "g", "LP", "OURS", "GRDY-L", "GRDY-R", "GRDY-A", "OPT"]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e1_small_smoke() {
        let t = e1_ratio_sweep(&[2], 4, 12, true);
        let s = t.render();
        assert!(s.contains("ALG/OPT"));
        // Ratio column values ≤ 1.8: parse the row.
        let row = s.lines().nth(2).unwrap();
        let max_ratio: f64 = row.split_whitespace().nth(4).unwrap().parse().unwrap();
        assert!(max_ratio <= 1.8 + 1e-9, "E1 bound violated: {max_ratio}");
    }

    #[test]
    fn e2_small_smoke() {
        let t = e2_gap_nested(&[2, 3], 3);
        let s = t.render();
        assert!(s.lines().count() == 4);
    }

    #[test]
    fn e3_ratios_increase_toward_two() {
        let t = e3_gap_natural(&[2, 4]);
        let s = t.render();
        let parse =
            |line: &str| -> f64 { line.split_whitespace().nth(4).unwrap().parse().unwrap() };
        let r2 = parse(s.lines().nth(2).unwrap());
        let r4 = parse(s.lines().nth(3).unwrap());
        assert!(r4 > r2, "gap must grow with g: {r2} vs {r4}");
        assert!(r4 < 2.0);
    }
}
