//! # atsched-bench
//!
//! Experiment harness shared by the `exp_*` binaries and the criterion
//! benches. See `EXPERIMENTS.md` at the workspace root for the experiment
//! index (E1–E14) and how each maps back to the paper's figures and claims.

#![forbid(unsafe_code)]

pub mod experiments;
pub mod table;
