//! Substrate bench: Dinic max-flow on scheduling feasibility networks.

use atsched_core::feasibility::slots_feasible;
use atsched_workloads::generators::{random_laminar, LaminarConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_feasibility_flow(c: &mut Criterion) {
    let mut group = c.benchmark_group("flow/feasibility");
    for horizon in [32i64, 64, 128, 256] {
        let cfg = LaminarConfig {
            g: 4,
            horizon,
            max_depth: 4,
            max_children: 4,
            jobs_per_node: (1, 3),
            max_processing: 4,
            child_percent: 75,
        };
        let inst = random_laminar(&cfg, 7);
        let slots = inst.candidate_slots();
        group.bench_with_input(BenchmarkId::from_parameter(horizon), &horizon, |b, _| {
            b.iter(|| slots_feasible(&inst, &slots))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_feasibility_flow);
criterion_main!(benches);
