//! Gap-study benches (E2/E3 backing data): the per-slot LPs on the
//! adversarial families, exact vs float arithmetic.

use atsched_gaps::instances::{gap2_instance, lemma51_instance};
use atsched_gaps::{cw_lp, natural_lp};
use atsched_num::Ratio;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_gap_lps(c: &mut Criterion) {
    let mut group = c.benchmark_group("gaps/lemma51");
    group.sample_size(10);
    for g in [2i64, 4, 6] {
        let inst = lemma51_instance(g);
        group.bench_with_input(BenchmarkId::new("natural_exact", g), &g, |b, _| {
            b.iter(|| natural_lp::value::<Ratio>(&inst))
        });
        group.bench_with_input(BenchmarkId::new("cw_exact", g), &g, |b, _| {
            b.iter(|| cw_lp::value::<Ratio>(&inst))
        });
        group.bench_with_input(BenchmarkId::new("cw_f64", g), &g, |b, _| {
            b.iter(|| cw_lp::value::<f64>(&inst))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("gaps/gap2");
    for g in [4i64, 16, 64] {
        let inst = gap2_instance(g);
        group.bench_with_input(BenchmarkId::new("natural_exact", g), &g, |b, _| {
            b.iter(|| natural_lp::value::<Ratio>(&inst))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_gap_lps);
criterion_main!(benches);
