//! Baseline algorithm benches (E5/E8 backing data): greedy scans, the
//! unit-job solver, and the exact branch-and-bound on small instances.

use atsched_baselines::exact::nested_opt;
use atsched_baselines::greedy::{minimal_feasible, ScanOrder};
use atsched_baselines::incremental::minimal_feasible_fast;
use atsched_baselines::unit_opt::solve_unit;
use atsched_workloads::generators::{random_laminar, random_unit_laminar, LaminarConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_greedy(c: &mut Criterion) {
    let mut group = c.benchmark_group("baselines/greedy");
    group.sample_size(10);
    for horizon in [32i64, 64, 128] {
        let cfg = LaminarConfig {
            g: 4,
            horizon,
            max_depth: 4,
            max_children: 4,
            jobs_per_node: (1, 3),
            max_processing: 4,
            child_percent: 75,
        };
        let inst = random_laminar(&cfg, 13);
        group.bench_with_input(BenchmarkId::new("ltr", horizon), &horizon, |b, _| {
            b.iter(|| minimal_feasible(&inst, ScanOrder::LeftToRight).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("rtl", horizon), &horizon, |b, _| {
            b.iter(|| minimal_feasible(&inst, ScanOrder::RightToLeft).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("rtl_incremental", horizon), &horizon, |b, _| {
            b.iter(|| minimal_feasible_fast(&inst, ScanOrder::RightToLeft).unwrap())
        });
    }
    group.finish();
}

fn bench_unit_opt(c: &mut Criterion) {
    let mut group = c.benchmark_group("baselines/unit_opt");
    for n in [32usize, 128, 512] {
        let inst = random_unit_laminar(4, 6, n, 17);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| solve_unit(&inst).ok())
        });
    }
    group.finish();
}

fn bench_exact(c: &mut Criterion) {
    let mut group = c.benchmark_group("baselines/exact");
    group.sample_size(10);
    let cfg = LaminarConfig {
        g: 3,
        horizon: 12,
        max_depth: 2,
        max_children: 3,
        jobs_per_node: (1, 2),
        max_processing: 3,
        child_percent: 60,
    };
    let inst = random_laminar(&cfg, 19);
    group.bench_function("nested_opt_h12", |b| b.iter(|| nested_opt(&inst, 0)));
    group.finish();
}

criterion_group!(benches, bench_greedy, bench_unit_opt, bench_exact);
criterion_main!(benches);
