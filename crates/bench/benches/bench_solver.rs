//! End-to-end solver bench (E7): the full 9/5 pipeline per backend, plus
//! the individual non-LP stages.

use atsched_core::canonical::canonicalize;
use atsched_core::lp_model::build;
use atsched_core::opt23;
use atsched_core::rounding::round;
use atsched_core::solver::{solve_nested, LpBackend, SolverOptions};
use atsched_core::transform::push_down;
use atsched_core::tree::Forest;
use atsched_num::Ratio;
use atsched_workloads::generators::{random_laminar, LaminarConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn cfg(horizon: i64) -> LaminarConfig {
    LaminarConfig {
        g: 3,
        horizon,
        max_depth: 3,
        max_children: 3,
        jobs_per_node: (1, 2),
        max_processing: 3,
        child_percent: 70,
    }
}

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("solver/pipeline");
    group.sample_size(10);
    for horizon in [16i64, 32, 64] {
        let inst = random_laminar(&cfg(horizon), 5);
        group.bench_with_input(BenchmarkId::new("exact", horizon), &horizon, |b, _| {
            b.iter(|| solve_nested(&inst, &SolverOptions::exact()).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("f64", horizon), &horizon, |b, _| {
            let opts = SolverOptions { backend: LpBackend::Float, ..SolverOptions::exact() };
            b.iter(|| solve_nested(&inst, &opts).unwrap())
        });
    }
    group.finish();
}

fn bench_stages(c: &mut Criterion) {
    let mut group = c.benchmark_group("solver/stages");
    let inst = random_laminar(&cfg(48), 5);
    let forest = Forest::build(&inst).unwrap();
    group.bench_function("forest_build", |b| b.iter(|| Forest::build(&inst).unwrap()));
    group.bench_function("canonicalize", |b| b.iter(|| canonicalize(&forest, &inst)));
    let canon = canonicalize(&forest, &inst);
    group.bench_function("opt23", |b| b.iter(|| opt23::compute(&canon, &inst)));
    let bounds = opt23::compute(&canon, &inst);
    let sol = build::<Ratio>(&canon, &inst, &bounds).solve().unwrap();
    group.bench_function("transform", |b| b.iter(|| push_down(&canon, sol.clone())));
    let out = push_down(&canon, sol);
    group
        .bench_function("rounding", |b| b.iter(|| round(&canon, &out.solution, &out.top_positive)));
    group.finish();
}

criterion_group!(benches, bench_pipeline, bench_stages);
criterion_main!(benches);
