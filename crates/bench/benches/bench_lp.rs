//! LP-solver bench: the strengthened nested LP, exact rationals vs f64
//! (E7's dominant stage).

use atsched_core::canonical::canonicalize;
use atsched_core::lp_model::build;
use atsched_core::opt23;
use atsched_core::tree::Forest;
use atsched_num::Ratio;
use atsched_workloads::generators::{random_laminar, LaminarConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_nested_lp(c: &mut Criterion) {
    let mut group = c.benchmark_group("lp/nested");
    group.sample_size(10);
    for horizon in [16i64, 32, 64] {
        let cfg = LaminarConfig {
            g: 3,
            horizon,
            max_depth: 3,
            max_children: 3,
            jobs_per_node: (1, 2),
            max_processing: 3,
            child_percent: 70,
        };
        let inst = random_laminar(&cfg, 11);
        let forest = Forest::build(&inst).unwrap();
        let canon = canonicalize(&forest, &inst);
        let bounds = opt23::compute(&canon, &inst);
        group.bench_with_input(BenchmarkId::new("exact", horizon), &horizon, |b, _| {
            b.iter(|| build::<Ratio>(&canon, &inst, &bounds).solve().unwrap())
        });
        group.bench_with_input(BenchmarkId::new("f64", horizon), &horizon, |b, _| {
            b.iter(|| build::<f64>(&canon, &inst, &bounds).solve().unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_nested_lp);
criterion_main!(benches);
