//! Substrate bench: big-integer and rational arithmetic at the operand
//! sizes the exact simplex produces.

use atsched_num::{Int, Ratio};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn mk_int(limbs: usize, seed: u64) -> Int {
    // Deterministic pseudo-random decimal of roughly `limbs` u64 limbs.
    let mut s = String::new();
    let mut state = seed;
    for _ in 0..(limbs * 19) {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        s.push((b'0' + (state % 10) as u8) as char);
    }
    let s = s.trim_start_matches('0');
    if s.is_empty() {
        Int::one()
    } else {
        s.parse().unwrap()
    }
}

fn bench_int_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("int");
    for limbs in [2usize, 8, 32, 64] {
        let a = mk_int(limbs, 1);
        let b = mk_int(limbs, 2);
        group.bench_with_input(BenchmarkId::new("mul", limbs), &limbs, |bch, _| {
            bch.iter(|| &a * &b)
        });
        let big = &a * &b;
        group.bench_with_input(BenchmarkId::new("div_rem", limbs), &limbs, |bch, _| {
            bch.iter(|| big.div_rem(&b))
        });
        group.bench_with_input(BenchmarkId::new("gcd", limbs), &limbs, |bch, _| {
            bch.iter(|| atsched_num::gcd(&a, &b))
        });
    }
    group.finish();
}

fn bench_ratio_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("ratio");
    let a = Ratio::new(mk_int(4, 3), mk_int(4, 4));
    let b = Ratio::new(mk_int(4, 5), mk_int(4, 6));
    group.bench_function("add", |bch| bch.iter(|| &a + &b));
    group.bench_function("mul", |bch| bch.iter(|| &a * &b));
    group.bench_function("cmp", |bch| bch.iter(|| a > b));
    group.finish();
}

criterion_group!(benches, bench_int_ops, bench_ratio_ops);
criterion_main!(benches);
