//! Telemetry-plane service tests: request-id propagation across router
//! shards, the slow-request log with per-stage span timings, the
//! `metrics` verb, and the plain-HTTP scrape listener.

use atsched_core::instance::{Instance, Job};
use atsched_serve::{Client, DeltaSpec, Request, Server, ServerConfig, StatsReply};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Four independent laminar roots (same shape the session tests use).
fn multi_root() -> Instance {
    let mut jobs = Vec::new();
    for r in 0..4i64 {
        let base = 10 * r;
        jobs.push(Job::new(base, base + 8, 2));
        jobs.push(Job::new(base + 1, base + 5, 1));
        jobs.push(Job::new(base + 2, base + 4, 1));
    }
    Instance::new(2, jobs).unwrap()
}

#[test]
fn routed_requests_carry_ids_and_trace_their_owning_shard() {
    // slow_ms = 0 logs every request, so the assertions below see the
    // full trace of each one; two router shards make shard affinity a
    // real claim rather than a tautology.
    let server = Server::bind(
        ServerConfig::default().addr("127.0.0.1:0").workers(2).router_workers(2).slow_ms(0),
    )
    .expect("bind");
    let handle = server.spawn();
    let mut client = Client::connect(handle.addr()).unwrap();

    let inst = multi_root();
    let opened = client.request(Request::open(&inst)).expect("open");
    assert!(opened.error.is_none(), "{opened:?}");
    let session = opened.session.expect("session id");
    let open_rid = opened.request.expect("open response echoes its server-assigned request id");

    // Two amends: both must run on (and trace) the shard that owns the
    // session, and each gets its own fresh request id.
    let mut amend_rids = Vec::new();
    for job in [100i64, 200] {
        let delta = DeltaSpec::new().add(Job::new(job, job + 4, 1));
        let resp = client.request(Request::amend(session, &delta)).expect("amend");
        assert!(resp.error.is_none(), "{resp:?}");
        amend_rids.push(resp.request.expect("amend response echoes a request id"));
    }
    assert_ne!(amend_rids[0], amend_rids[1]);
    assert!(!amend_rids.contains(&open_rid));

    let stats = client.stats().expect("stats");

    // Per-shard sections cover every shard; exactly one holds the open
    // session, and the shard request counters account for all three
    // routed requests.
    assert_eq!(stats.shards.len(), 2);
    assert_eq!(stats.shards.iter().map(|s| s.sessions_open).sum::<u64>(), 1);
    assert_eq!(stats.shards.iter().map(|s| s.requests).sum::<u64>(), 3);
    let session_shard =
        stats.shards.iter().find(|s| s.sessions_open == 1).expect("owning shard").shard;

    // The slow log (threshold 0) has every request, with the amends
    // naming the session's owning shard and their per-stage timings.
    let open_entry = stats.slow.iter().find(|e| e.request == open_rid).expect("open in slow log");
    assert_eq!(open_entry.verb, "open");
    assert_eq!(open_entry.shard, Some(session_shard));
    for &rid in &amend_rids {
        let entry = stats.slow.iter().find(|e| e.request == rid).expect("amend in slow log");
        assert_eq!(entry.verb, "amend");
        assert_eq!(entry.shard, Some(session_shard), "amend must trace the session's shard");
        assert!(!entry.stages.is_empty(), "amend trace has span breadcrumbs: {entry:?}");
        assert!(entry.stages.iter().all(|s| s.ms >= 0.0 && !s.stage.is_empty()));
        assert!(entry.total_ms >= 0.0);
        assert!(entry.error.is_none());
    }

    // Windowed request-plane sections are in the registry snapshot.
    assert!(stats.registry.window("serve.received").is_some());
    assert!(stats.registry.window_histogram("serve.latency_ms").is_some());

    client.shutdown().expect("drain");
    handle.join().unwrap();
}

#[test]
fn metrics_verb_returns_parseable_exposition() {
    let server =
        Server::bind(ServerConfig::default().addr("127.0.0.1:0").workers(1).router_workers(2))
            .expect("bind");
    let handle = server.spawn();
    let mut client = Client::connect(handle.addr()).unwrap();

    let inst = Instance::new(2, vec![Job::new(0, 4, 2)]).unwrap();
    client.solve_instance(&inst).expect("solve");

    let text = client.metrics().expect("metrics");
    assert!(text.contains("atsched_serve_received"), "{text}");
    assert!(text.contains("atsched_serve_completed_rate_10s"), "{text}");
    assert!(text.contains("atsched_serve_shard_0_requests_rate_10s"), "{text}");
    assert!(text.contains("atsched_serve_latency_ms_w10s_p99"), "{text}");
    for line in text.lines().filter(|l| !l.starts_with('#') && !l.is_empty()) {
        let mut parts = line.split_whitespace();
        assert!(parts.next().unwrap().starts_with("atsched_"), "{line}");
        parts.next().unwrap().parse::<f64>().expect(line);
    }

    client.shutdown().expect("drain");
    handle.join().unwrap();
}

fn http_get(addr: std::net::SocketAddr, path: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect scrape listener");
    stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    write!(stream, "GET {path} HTTP/1.0\r\nHost: localhost\r\n\r\n").unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read scrape response");
    response
}

#[test]
fn http_scrape_listener_serves_exposition_and_json() {
    let server = Server::bind(
        ServerConfig::default()
            .addr("127.0.0.1:0")
            .workers(1)
            .metrics_addr("127.0.0.1:0")
            .slow_ms(0),
    )
    .expect("bind");
    let scrape_addr = server.metrics_addr().expect("scrape listener bound");
    let handle = server.spawn();
    assert_eq!(handle.metrics_addr(), Some(scrape_addr));
    let mut client = Client::connect(handle.addr()).unwrap();

    let inst = Instance::new(2, vec![Job::new(0, 4, 2)]).unwrap();
    client.solve_instance(&inst).expect("solve");

    // `GET /metrics` is the text exposition.
    let response = http_get(scrape_addr, "/metrics");
    assert!(response.starts_with("HTTP/1.0 200 OK"), "{response}");
    assert!(response.contains("text/plain"), "{response}");
    let body = response.split("\r\n\r\n").nth(1).expect("body");
    assert!(body.contains("atsched_serve_completed 1"), "{body}");

    // Any other path is the JSON stats snapshot, wire-compatible with
    // the `stats` verb's payload.
    let response = http_get(scrape_addr, "/stats");
    assert!(response.contains("application/json"), "{response}");
    let body = response.split("\r\n\r\n").nth(1).expect("body");
    let snap: StatsReply = serde_json::from_str(body).expect("scrape JSON parses as StatsReply");
    assert_eq!(snap.completed, 1);
    assert_eq!(snap.slow.len(), 1, "slow_ms = 0 logs the solve");

    client.shutdown().expect("drain");
    handle.join().unwrap();
}
