//! Load and scale-out integration tests: a single reactor worker
//! holding 1k+ concurrent connections, the sharded router preserving
//! protocol semantics with merged stats, and the bounded session
//! table shedding and sweeping (satellite coverage for `max_sessions`
//! and `serve.sessions_evicted`).

use atsched_core::instance::{Instance, Job};
use atsched_obs::Registry;
use atsched_serve::{
    kind, run_load, Client, ClientError, DeltaSpec, LoadConfig, Payload, Server, ServerConfig,
    ServerHandle,
};
use std::sync::Arc;

fn spawn_server(cfg: ServerConfig) -> ServerHandle {
    Server::bind(cfg.addr("127.0.0.1:0")).expect("bind").spawn()
}

fn small_instance() -> Instance {
    Instance::new(2, vec![Job::new(0, 4, 2), Job::new(1, 3, 1)]).unwrap()
}

/// The acceptance bar for the reactor rewrite: one reactor worker
/// (the default `router_workers = 1`) multiplexes ≥ 1k concurrent
/// connections, every request answered, zero errors.
#[test]
fn single_reactor_sustains_1k_concurrent_connections() {
    let conns = 1_100;
    let handle = spawn_server(ServerConfig::default().workers(2));

    let registry = Arc::new(Registry::new());
    let mut cfg = LoadConfig::new(handle.addr());
    cfg.conns = conns;
    cfg.requests_per_conn = 2;
    cfg.connect_batch = 128;
    cfg.payload = Payload::Health;
    let report = run_load(cfg, &registry).expect("load run");

    assert_eq!(report.errors, 0, "no failed connections or requests: {report:?}");
    assert_eq!(report.opened, conns);
    assert!(
        report.peak_open >= 1_024,
        "expected >= 1024 simultaneously open connections, saw {}",
        report.peak_open
    );
    assert_eq!(report.completed_requests, (conns * 2) as u64);
    assert!(report.req_ms.count >= (conns * 2) as u64);

    // The server survived the fleet and still answers.
    let mut client = Client::connect(handle.addr()).unwrap();
    let stats = client.stats().expect("stats after load");
    assert!(stats.received >= (conns * 2) as u64, "server counted the frames: {stats:?}");
    let final_stats = client.shutdown().expect("drain");
    assert_eq!(final_stats.inflight, 0);
    handle.join().unwrap();
}

/// Router mode: two reactor shards, each with its own engine and
/// admission queue, behave exactly like one server — solves, the full
/// session flow, and a merged stats plane that reconciles.
#[test]
fn router_shards_preserve_protocol_semantics_and_merge_stats() {
    let handle = spawn_server(ServerConfig::default().workers(2).router_workers(2));

    // Several clients so connection round-robin lands on both shards.
    let mut clients: Vec<Client> =
        (0..4).map(|_| Client::connect(handle.addr()).unwrap()).collect();

    // Distinct instances route to (potentially) different shards; every
    // answer must still be exact.
    let mut solved = 0u64;
    for (i, client) in clients.iter_mut().enumerate() {
        for r in 0..3i64 {
            let base = 10 * (i as i64 + 1) * (r + 1);
            let inst = Instance::new(
                2,
                vec![Job::new(base, base + 6, 2), Job::new(base + 1, base + 4, 1)],
            )
            .unwrap();
            let expect =
                nested_active_time::Solve::new(&inst).run().expect("feasible").active_time() as u64;
            let reply = client.solve(atsched_serve::Request::solve(&inst)).expect("solve");
            assert_eq!(reply.active_slots, expect);
            solved += 1;
        }
    }

    // The full session flow works across the sharded table: the wire
    // session id is server-global, the engine session lives on one shard.
    let inst = small_instance();
    let (session, opened) = clients[0].open(&inst).expect("open");
    let delta = DeltaSpec::new().remove(1);
    let amended = clients[0].amend(session, &delta).expect("amend");
    assert!(amended.active_slots <= opened.active_slots);

    let stats = clients[1].stats().expect("stats");
    assert_eq!(stats.router_workers, 2, "merged stats report the shard count");
    assert_eq!(stats.sessions_open, 1);
    assert!(stats.engine.solved >= solved, "engine totals merge across shards: {stats:?}");

    assert!(clients[0].close(session).is_ok());
    let stats = clients[2].stats().expect("stats");
    assert_eq!(stats.sessions_open, 0);

    let final_stats = clients[3].shutdown().expect("drain");
    assert_eq!(final_stats.inflight, 0);
    assert_eq!(final_stats.router_workers, 2);
    handle.join().unwrap();
}

/// Satellite (a): the session table is bounded. Opens beyond
/// `max_sessions` shed with the typed `overloaded` error, and shutdown
/// force-closes every live session, counting them as evicted.
#[test]
fn session_table_cap_sheds_opens_and_shutdown_evicts_live_sessions() {
    let handle = spawn_server(ServerConfig::default().workers(1).max_sessions(2));
    let mut client = Client::connect(handle.addr()).unwrap();

    let inst = small_instance();
    let (first, _) = client.open(&inst).expect("open 1");
    let (_second, _) = client.open(&inst).expect("open 2");

    match client.open(&inst).unwrap_err() {
        ClientError::Service { kind: k, message } => {
            assert_eq!(k, kind::OVERLOADED, "{message}");
            assert!(message.contains("session table full"), "{message}");
        }
        other => panic!("expected a service error, got {other}"),
    }

    // Freeing a slot makes room again.
    client.close(first).expect("close");
    let (_third, _) = client.open(&inst).expect("open after close");

    // Two sessions are still live; drain must not leak them.
    let final_stats = client.shutdown().expect("drain");
    assert_eq!(final_stats.sessions_open, 0, "drain closed the live sessions");
    assert_eq!(final_stats.registry.counter("serve.sessions_evicted"), Some(2));
    handle.join().unwrap();
}
