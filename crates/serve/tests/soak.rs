//! End-to-end service tests: protocol behavior over a real socket,
//! deterministic overload shedding, deadline enforcement, and a
//! concurrency soak that checks the server against sequential solves.

use atsched_core::instance::{Instance, Job};
use atsched_serve::{kind, Client, ClientError, Request, Server, ServerConfig, ServerHandle};
use nested_active_time::{Method, Solve};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::thread;

fn spawn_server(cfg: ServerConfig) -> ServerHandle {
    Server::bind(cfg.addr("127.0.0.1:0")).expect("bind").spawn()
}

/// Small laminar instances with precomputed sequential answers, plus
/// infeasible ones (`None`). The soak compares every server reply
/// against these.
fn corpus() -> Vec<(Instance, Option<u64>)> {
    let mut out = Vec::new();
    let feasible = [
        Instance::new(2, vec![Job::new(0, 4, 2), Job::new(1, 3, 1)]).unwrap(),
        Instance::new(1, vec![Job::new(0, 6, 2), Job::new(2, 5, 1), Job::new(2, 4, 1)]).unwrap(),
        Instance::new(3, vec![Job::new(0, 8, 3); 5]).unwrap(),
        Instance::new(2, vec![Job::new(0, 10, 2), Job::new(1, 9, 3), Job::new(3, 7, 2)]).unwrap(),
        Instance::new(1, vec![Job::new(0, 3, 1), Job::new(4, 7, 2), Job::new(4, 6, 1)]).unwrap(),
        Instance::new(4, vec![Job::new(0, 5, 2); 7]).unwrap(),
        Instance::new(2, vec![Job::new(0, 12, 4), Job::new(2, 10, 3), Job::new(4, 8, 2)]).unwrap(),
        Instance::new(1, vec![Job::new(0, 2, 1), Job::new(2, 4, 1), Job::new(4, 6, 1)]).unwrap(),
    ];
    for inst in feasible {
        let expected = Solve::new(&inst).run().expect("corpus is feasible").active_time() as u64;
        out.push((inst, Some(expected)));
    }
    // Three unit jobs, identical two-slot window, one machine: provably
    // infeasible but valid on the wire.
    out.push((Instance::new(1, vec![Job::new(0, 2, 1); 3]).unwrap(), None));
    out.push((Instance::new(2, vec![Job::new(0, 2, 2); 3]).unwrap(), None));
    out
}

/// A laminar instance big enough that its exact LP cannot finish within
/// a 1 ms deadline.
fn heavy_instance() -> Instance {
    Instance::new(2, vec![Job::new(0, 5000, 100); 40]).unwrap()
}

#[test]
fn solve_stats_shutdown_roundtrip() {
    let handle = spawn_server(ServerConfig::default().workers(2));
    let mut client = Client::connect(handle.addr()).unwrap();
    client.health().expect("healthy before shutdown");

    let inst = Instance::new(2, vec![Job::new(0, 4, 2), Job::new(1, 3, 1)]).unwrap();
    let expected = Solve::new(&inst).run().unwrap().active_time() as u64;

    let first = client.solve_instance(&inst).expect("solve ok");
    assert_eq!(first.active_slots, expected);
    assert_eq!(first.method, "nested");
    assert!(!first.cached, "first solve is a cache miss");
    assert!(first.schedule.is_none(), "schedule only on request");

    let second = client.solve(Request::solve(&inst).with_schedule()).expect("solve ok");
    assert_eq!(second.active_slots, expected);
    assert!(second.cached, "repeat solve hits the shared cache");
    let schedule = second.schedule.expect("schedule was requested");
    assert_eq!(schedule.active_time() as u64, expected);

    // The greedy path answers through the facade, not the engine cache.
    let greedy = client.solve(Request::solve(&inst).with_method("greedy")).expect("greedy ok");
    assert_eq!(greedy.method, "greedy");
    assert_eq!(
        greedy.active_slots,
        Solve::new(&inst).method(Method::Greedy).run().unwrap().active_time() as u64
    );

    // Batch over the wire matches the engine's accounting.
    let batch_insts = vec![inst.clone(), Instance::new(1, vec![Job::new(0, 2, 1); 3]).unwrap()];
    let batch = client.batch(&batch_insts).expect("batch ok");
    assert_eq!(batch.total, 2);
    assert_eq!(batch.solved, 1);
    assert_eq!(batch.infeasible, 1);
    assert_eq!(batch.items[0].active_slots, Some(expected));
    assert_eq!(batch.items[1].outcome, "infeasible");

    // Infeasible single solve is a typed service error.
    match client.solve_instance(&batch_insts[1]) {
        Err(ClientError::Service { kind: k, .. }) => assert_eq!(k, kind::INFEASIBLE),
        other => panic!("expected infeasible, got {other:?}"),
    }

    let stats = client.stats().expect("stats ok");
    assert!(stats.accepted >= 5, "solves and batch were admitted: {stats:?}");
    assert!(stats.cache_hits >= 1, "repeat solve hit: {stats:?}");
    assert_eq!(stats.inflight, 0);

    let snapshot = client.shutdown().expect("shutdown acks with the final snapshot");
    assert_eq!(snapshot.inflight, 0);
    assert_eq!(snapshot.completed, snapshot.accepted);
    let joined = handle.join().expect("server exits cleanly");
    assert_eq!(joined.completed, snapshot.completed);
}

#[test]
fn malformed_frames_poison_the_request_not_the_connection() {
    let handle = spawn_server(ServerConfig { max_line_bytes: 256, ..ServerConfig::default() });
    let stream = TcpStream::connect(handle.addr()).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    let mut reply = String::new();

    // Unparseable JSON → bad_request with a null id, connection lives.
    writer.write_all(b"this is not json\n").unwrap();
    reader.read_line(&mut reply).unwrap();
    assert!(reply.contains("bad_request"), "{reply}");
    assert!(reply.contains("\"id\":null"), "{reply}");

    // Unknown field → bad_request naming the field.
    reply.clear();
    writer.write_all(b"{\"verb\":\"health\",\"bogus\":1}\n").unwrap();
    reader.read_line(&mut reply).unwrap();
    assert!(reply.contains("bad_request") && reply.contains("bogus"), "{reply}");

    // Oversized line → bad_request, and the stream resyncs after it.
    reply.clear();
    let huge = format!("{{\"verb\":\"health\",\"pad\":\"{}\"}}\n", "x".repeat(500));
    writer.write_all(huge.as_bytes()).unwrap();
    reader.read_line(&mut reply).unwrap();
    assert!(reply.contains("bad_request"), "{reply}");

    // Unknown verb → bad_request with the id echoed.
    reply.clear();
    writer.write_all(b"{\"id\":42,\"verb\":\"explode\"}\n").unwrap();
    reader.read_line(&mut reply).unwrap();
    assert!(reply.contains("bad_request") && reply.contains("\"id\":42"), "{reply}");

    // The same connection still serves well-formed requests.
    reply.clear();
    writer.write_all(b"{\"id\":43,\"verb\":\"health\"}\n").unwrap();
    reader.read_line(&mut reply).unwrap();
    assert!(reply.contains("\"status\":\"ok\""), "{reply}");

    Client::connect(handle.addr()).unwrap().shutdown().unwrap();
    handle.join().unwrap();
}

#[test]
fn deadlines_answer_timed_out() {
    let handle = spawn_server(ServerConfig::default().workers(1));
    let mut client = Client::connect(handle.addr()).unwrap();
    match client.solve(Request::solve(&heavy_instance()).with_timeout_ms(1)) {
        Err(ClientError::Service { kind: k, message }) => {
            assert_eq!(k, kind::TIMED_OUT, "{message}");
        }
        other => panic!("expected timed_out, got {other:?}"),
    }
    // The worker that hit the deadline keeps serving.
    let inst = Instance::new(2, vec![Job::new(0, 4, 2)]).unwrap();
    client.solve_instance(&inst).expect("server still serves after a timeout");
    let snapshot = client.shutdown().unwrap();
    assert_eq!(snapshot.timed_out, 1);
    handle.join().unwrap();
}

#[test]
fn overload_sheds_with_typed_errors_instead_of_queuing() {
    // One worker, one queue slot, and a 300 ms artificial delay: with 8
    // simultaneous solves at most a couple can be executing/queued, so
    // shedding is deterministic.
    let handle = spawn_server(ServerConfig::default().workers(1).queue_depth(1).delay_ms(300));
    let addr = handle.addr();
    let inst = Instance::new(2, vec![Job::new(0, 4, 2), Job::new(1, 3, 1)]).unwrap();
    let mut threads = Vec::new();
    for _ in 0..8 {
        let inst = inst.clone();
        threads.push(thread::spawn(move || {
            let mut client = Client::connect(addr).unwrap();
            match client.solve_instance(&inst) {
                Ok(_) => "ok",
                Err(ClientError::Service { kind: k, .. }) if k == kind::OVERLOADED => "shed",
                Err(e) => panic!("unexpected failure: {e}"),
            }
        }));
    }
    let outcomes: Vec<&str> = threads.into_iter().map(|t| t.join().unwrap()).collect();
    let ok = outcomes.iter().filter(|o| **o == "ok").count();
    let shed = outcomes.iter().filter(|o| **o == "shed").count();
    assert_eq!(ok + shed, 8);
    assert!(ok >= 1, "at least the first request is served: {outcomes:?}");
    assert!(shed >= 1, "a saturated queue must shed: {outcomes:?}");

    let snapshot = Client::connect(addr).unwrap().shutdown().unwrap();
    assert_eq!(snapshot.rejected_overload, shed as u64);
    assert_eq!(snapshot.accepted, ok as u64);
    assert_eq!(snapshot.completed, snapshot.accepted, "every admitted request was answered");
    handle.join().unwrap();
}

#[test]
fn soak_eight_clients_match_sequential_solves_and_drain_cleanly() {
    let corpus = corpus();
    let handle = spawn_server(
        // Deep queue: this test checks equivalence, not shedding.
        ServerConfig::default().workers(4).queue_depth(1024),
    );
    let addr = handle.addr();

    let mut threads = Vec::new();
    for t in 0..8usize {
        let corpus = corpus.clone();
        threads.push(thread::spawn(move || {
            let mut client = Client::connect(addr).unwrap();
            let mut served = 0u64;
            for i in 0..100usize {
                // Interleave observability verbs through the same
                // connections the solves use.
                if i % 17 == 3 {
                    client.health().expect("healthy during the soak");
                    continue;
                }
                if i % 23 == 7 {
                    let stats = client.stats().expect("stats during the soak");
                    assert!(stats.queue_len <= stats.queue_capacity);
                    continue;
                }
                let (inst, expected) = &corpus[(t * 31 + i) % corpus.len()];
                match (client.solve_instance(inst), expected) {
                    (Ok(reply), Some(slots)) => {
                        assert_eq!(
                            reply.active_slots, *slots,
                            "thread {t} request {i}: server disagrees with sequential solve"
                        );
                        served += 1;
                    }
                    (Err(ClientError::Service { kind: k, .. }), None) => {
                        assert_eq!(k, kind::INFEASIBLE, "thread {t} request {i}");
                        served += 1;
                    }
                    (got, want) => panic!("thread {t} request {i}: got {got:?}, want {want:?}"),
                }
            }
            served
        }));
    }
    let served: u64 = threads.into_iter().map(|t| t.join().unwrap()).sum();
    assert!(served >= 700, "8 threads × ~90 solves each: {served}");

    let mut control = Client::connect(addr).unwrap();
    let stats = control.stats().unwrap();
    assert_eq!(stats.accepted, served, "nothing lost, nothing duplicated");
    assert!(stats.cache_hit_rate > 0.5, "a tiny corpus must mostly hit: {stats:?}");
    assert_eq!(stats.rejected_overload, 0, "the deep queue never shed");

    let snapshot = control.shutdown().expect("drain");
    assert_eq!(snapshot.completed, snapshot.accepted, "clean drain answers everything");
    assert_eq!(snapshot.inflight, 0);
    assert_eq!(snapshot.queue_len, 0);
    assert!(snapshot.engine.infeasible > 0 && snapshot.engine.solved > 0);

    // Post-drain registry reconciliation: the wire snapshot's registry
    // counters must agree with what the clients observed — no lost or
    // double-counted solves.
    let reg = &snapshot.registry;
    assert_eq!(reg.counter("serve.accepted"), Some(served), "{reg:?}");
    assert_eq!(reg.counter("serve.completed"), Some(served), "{reg:?}");
    assert_eq!(reg.gauge("serve.inflight"), Some(0), "{reg:?}");
    // Typed fields and the registry are two views of one source.
    assert_eq!(reg.counter("serve.received"), Some(snapshot.received));
    assert_eq!(reg.counter("serve.bad_requests"), Some(snapshot.bad_requests));
    assert_eq!(reg.counter("serve.rejected_overload"), Some(snapshot.rejected_overload));
    // Every completed request recorded exactly one latency sample.
    let latency = reg.histogram("serve.latency_ms").expect("latency histogram on the wire");
    assert_eq!(latency.count, served);
    assert_eq!(latency.p50, snapshot.latency_ms.p50);
    assert_eq!(latency.max, snapshot.latency_ms.max);
    // Engine outcome counters reconcile with the engine totals, and the
    // solver stack's own instrumentation crossed the wire too: the
    // corpus is LP-bound, so the simplex pivoted and Dinic augmented.
    assert_eq!(reg.counter("engine.outcome.solved"), Some(snapshot.engine.solved));
    assert_eq!(reg.counter("engine.outcome.infeasible"), Some(snapshot.engine.infeasible));
    assert!(reg.counter("lp.pivots").unwrap_or(0) > 0, "{reg:?}");
    assert!(reg.counter("lp.solves").unwrap_or(0) > 0, "{reg:?}");
    assert!(reg.counter("flow.augmenting_paths").unwrap_or(0) > 0, "{reg:?}");
    // Stage spans were recorded for every non-cached solver run.
    let solve_spans = reg.histogram("span.solve.ms").expect("solve span histogram");
    assert!(solve_spans.count > 0 && solve_spans.count <= served);
    // Cache gauges mirror the typed cache fields.
    assert_eq!(reg.gauge("engine.cache.hits"), Some(snapshot.cache_hits as i64));
    assert_eq!(reg.gauge("engine.cache.misses"), Some(snapshot.cache_misses as i64));
    // Latency split: runs that actually solved record `engine.solve_ms`,
    // cache hits record `engine.cache_hit_ms` — together they account
    // for exactly the solved outcomes (cached *infeasible* replays
    // record neither histogram), so cache hits no longer skew the
    // solve-latency percentiles.
    let solve_ms = reg.histogram("engine.solve_ms").expect("miss-only solve histogram");
    let hit_ms = reg.histogram("engine.cache_hit_ms").expect("cache-hit histogram");
    assert_eq!(solve_ms.count + hit_ms.count, snapshot.engine.solved, "{reg:?}");
    assert!(hit_ms.count > 0, "a >0.5 hit rate must include solved hits: {reg:?}");
    assert!(solve_ms.count < snapshot.engine.solved, "hits must not inflate solve_ms: {reg:?}");

    let joined = handle.join().expect("server thread exits");
    assert_eq!(joined.accepted, served);
}

#[test]
fn second_shutdown_and_post_drain_requests_are_refused() {
    let handle = spawn_server(ServerConfig::default().workers(1));
    let addr = handle.addr();
    // Park a second connection before the drain starts.
    let mut parked = Client::connect(addr).unwrap();
    parked.health().unwrap();

    Client::connect(addr).unwrap().shutdown().unwrap();
    handle.join().unwrap();

    // The parked connection gets EOF (or a refusal) rather than hanging.
    match parked.health() {
        Ok(()) => panic!("health must not succeed after the drain"),
        Err(ClientError::Service { kind: k, .. }) => assert_eq!(k, kind::SHUTTING_DOWN),
        Err(_) => {} // EOF / reset: the server is gone
    }
    assert!(Client::connect(addr).is_err(), "listener is closed after drain");
}
