//! Session-verb service tests: the v2 `open` / `amend` / `close` flow
//! over a real socket, protocol-version enforcement, v1-client
//! compatibility against a v2 server, and TTL eviction.

use atsched_core::instance::{Instance, Job};
use atsched_serve::{
    kind, verb, Client, ClientError, DeltaSpec, Request, Server, ServerConfig, ServerHandle,
    PROTOCOL_VERSION,
};
use nested_active_time::Solve;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

fn spawn_server(cfg: ServerConfig) -> ServerHandle {
    Server::bind(cfg.addr("127.0.0.1:0")).expect("bind").spawn()
}

/// Four independent laminar roots; the session layer shards these and
/// reuses untouched roots across amends.
fn multi_root() -> Instance {
    let mut jobs = Vec::new();
    for r in 0..4i64 {
        let base = 10 * r;
        jobs.push(Job::new(base, base + 8, 2));
        jobs.push(Job::new(base + 1, base + 5, 1));
        jobs.push(Job::new(base + 2, base + 4, 1));
    }
    Instance::new(2, jobs).unwrap()
}

fn cold_active_slots(inst: &Instance) -> u64 {
    Solve::new(inst).run().expect("feasible").active_time() as u64
}

#[test]
fn open_amend_close_flow_matches_cold_solves() {
    let handle = spawn_server(ServerConfig::default().workers(2));
    let mut client = Client::connect(handle.addr()).unwrap();

    let inst = multi_root();
    let (session, opened) = client.open(&inst).expect("open");
    assert_eq!(opened.active_slots, cold_active_slots(&inst));
    assert_eq!(opened.method, "nested");

    // Amend 1: tighten one job's window inside root 0.
    let delta = DeltaSpec::new().modify_window(2, 2, 4);
    let amended = client.amend(session, &delta).expect("amend 1");
    let mut current = atsched_core::delta::apply(&inst, &delta.to_delta()).unwrap();
    assert_eq!(amended.active_slots, cold_active_slots(&current));

    // Amend 2: drop a job from root 3 and add one to root 1.
    let delta = DeltaSpec::new().remove(11).add(Job::new(12, 14, 1));
    let amended = client.amend(session, &delta).expect("amend 2");
    current = atsched_core::delta::apply(&current, &delta.to_delta()).unwrap();
    assert_eq!(amended.active_slots, cold_active_slots(&current));

    // The session registry counters moved.
    let stats = client.stats().expect("stats");
    assert_eq!(stats.registry.counter("serve.sessions_opened"), Some(1));
    assert_eq!(stats.registry.counter("engine.amends"), Some(2));

    client.close(session).expect("close");
    // Closing again (and amending a closed session) is the typed error.
    match client.close(session).unwrap_err() {
        ClientError::Service { kind: k, .. } => assert_eq!(k, kind::UNKNOWN_SESSION),
        other => panic!("expected a service error, got {other}"),
    }
    match client.amend(session, &DeltaSpec::new().remove(0)).unwrap_err() {
        ClientError::Service { kind: k, .. } => assert_eq!(k, kind::UNKNOWN_SESSION),
        other => panic!("expected a service error, got {other}"),
    }

    client.shutdown().expect("drain");
    handle.join().unwrap();
}

#[test]
fn bad_and_infeasible_amends_keep_the_session_usable() {
    let handle = spawn_server(ServerConfig::default().workers(1));
    let mut client = Client::connect(handle.addr()).unwrap();

    let inst = Instance::new(1, vec![Job::new(0, 4, 2), Job::new(0, 4, 1)]).unwrap();
    let (session, _) = client.open(&inst).expect("open");

    // Referencing a job that does not exist is a bad request; the
    // session survives untouched.
    match client.amend(session, &DeltaSpec::new().remove(9)).unwrap_err() {
        ClientError::Service { kind: k, message } => {
            assert_eq!(k, kind::BAD_REQUEST, "{message}");
        }
        other => panic!("expected a service error, got {other}"),
    }

    // Overloading the single machine is infeasible — but the amendment
    // *applies*; the session stays open holding the infeasible instance.
    let overload = DeltaSpec::new().add(Job::new(0, 4, 4));
    match client.amend(session, &overload).unwrap_err() {
        ClientError::Service { kind: k, .. } => assert_eq!(k, kind::INFEASIBLE),
        other => panic!("expected a service error, got {other}"),
    }

    // Removing the overload (now job id 2) repairs it.
    let repaired = client.amend(session, &DeltaSpec::new().remove(2)).expect("repair");
    assert_eq!(repaired.active_slots, cold_active_slots(&inst));

    client.shutdown().expect("drain");
    handle.join().unwrap();
}

#[test]
fn idle_sessions_are_evicted_by_the_ttl() {
    let handle =
        spawn_server(ServerConfig::default().workers(1).session_ttl(Duration::from_millis(50)));
    let mut client = Client::connect(handle.addr()).unwrap();

    let inst = Instance::new(2, vec![Job::new(0, 4, 2), Job::new(1, 3, 1)]).unwrap();
    let (session, _) = client.open(&inst).expect("open");
    std::thread::sleep(Duration::from_millis(120));

    match client.amend(session, &DeltaSpec::new().remove(0)).unwrap_err() {
        ClientError::Service { kind: k, .. } => assert_eq!(k, kind::UNKNOWN_SESSION),
        other => panic!("expected a service error, got {other}"),
    }
    let stats = client.stats().expect("stats");
    assert_eq!(stats.registry.counter("serve.sessions_expired"), Some(1));

    client.shutdown().expect("drain");
    handle.join().unwrap();
}

#[test]
fn expiry_advances_without_any_client_traffic() {
    // The router's periodic sweep timer — not request handling, and
    // not the scrape listener (which is strictly read-only) — is what
    // expires idle sessions. Open one, go completely silent on the
    // protocol port, and watch `serve.sessions_expired` move through
    // the HTTP scrape alone.
    let server = atsched_serve::Server::bind(
        ServerConfig::default()
            .addr("127.0.0.1:0")
            .workers(1)
            .session_ttl(Duration::from_millis(50))
            .metrics_addr("127.0.0.1:0"),
    )
    .expect("bind");
    let scrape_addr = server.metrics_addr().expect("scrape listener bound");
    let handle = server.spawn();

    {
        let mut client = Client::connect(handle.addr()).unwrap();
        let inst = Instance::new(2, vec![Job::new(0, 4, 2), Job::new(1, 3, 1)]).unwrap();
        client.open(&inst).expect("open");
        // Client drops here: no amend, no stats, no close — nothing
        // that could piggyback a sweep.
    }

    // ttl 50 ms → sweep period 25 ms. Poll the scrape (read-only, so
    // polling itself cannot be the evictor) until the timer fires.
    let mut expired = 0u64;
    for _ in 0..200 {
        std::thread::sleep(Duration::from_millis(25));
        let body = http_get(scrape_addr, "/metrics");
        expired = body
            .lines()
            .find_map(|l| l.strip_prefix("atsched_serve_sessions_expired "))
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or(0);
        if expired >= 1 {
            break;
        }
    }
    assert!(expired >= 1, "periodic sweep never expired the idle session");

    let mut client = Client::connect(handle.addr()).unwrap();
    client.shutdown().expect("drain");
    handle.join().unwrap();
}

/// `GET path` against the scrape listener, HTTP/1.0, full response as
/// one string (head + body).
fn http_get(addr: std::net::SocketAddr, path: &str) -> String {
    use std::io::Read;
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    write!(stream, "GET {path} HTTP/1.0\r\nHost: localhost\r\n\r\n").unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read scrape response");
    response
}

/// Exchange one raw JSON line with the server, v1-client style: no
/// typed [`Request`], just bytes on the socket. The reply parses into
/// [`atsched_serve::Response`], whose deserializer tolerates fields it
/// does not know — exactly like a v1-era client's parser (that
/// tolerance is unit-tested in the protocol module).
fn raw_exchange(addr: std::net::SocketAddr, line: &str) -> atsched_serve::Response {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.write_all(line.as_bytes()).unwrap();
    stream.write_all(b"\n").unwrap();
    stream.flush().unwrap();
    let mut reader = BufReader::new(stream);
    let mut reply = String::new();
    reader.read_line(&mut reply).unwrap();
    serde_json::from_str(reply.trim_end()).unwrap()
}

#[test]
fn v1_frames_keep_working_against_a_v2_server() {
    let handle = spawn_server(ServerConfig::default().workers(1));
    let addr = handle.addr();

    // A PR 2-era client frame: no `version` field anywhere.
    let resp = raw_exchange(
        addr,
        r#"{"id":1,"verb":"solve","instance":{"g":2,"jobs":[{"release":0,"deadline":4,"processing":2}]}}"#,
    );
    assert!(resp.is_ok(), "{resp:?}");
    assert!(resp.solve.is_some());

    // v1 stats and health still answer.
    assert!(raw_exchange(addr, r#"{"id":2,"verb":"stats"}"#).is_ok());
    assert!(raw_exchange(addr, r#"{"id":3,"verb":"health"}"#).is_ok());

    // Declaring the current version explicitly is also fine.
    assert!(raw_exchange(addr, r#"{"id":4,"verb":"health","version":2}"#).is_ok());

    // A session verb without `version` is refused with the typed kind —
    // not a generic bad_request — so capability probing is reliable.
    let resp = raw_exchange(
        addr,
        r#"{"id":5,"verb":"open","instance":{"g":2,"jobs":[{"release":0,"deadline":4,"processing":2}]}}"#,
    );
    assert_eq!(resp.error_kind(), Some(kind::UNSUPPORTED_VERSION), "{resp:?}");

    // A client from the future is refused the same way.
    let resp = raw_exchange(addr, r#"{"id":6,"verb":"solve","version":99}"#);
    assert_eq!(resp.error_kind(), Some(kind::UNSUPPORTED_VERSION), "{resp:?}");

    let mut client = Client::connect(addr).unwrap();
    client.shutdown().expect("drain");
    handle.join().unwrap();
}

/// A raw newline-delimited connection that stays open across many
/// exchanges — unlike [`raw_exchange`], which dials per frame. Used to
/// prove per-frame fault containment and v1/v2 interleaving on one
/// socket.
struct RawConn {
    reader: BufReader<TcpStream>,
}

impl RawConn {
    fn connect(addr: std::net::SocketAddr) -> RawConn {
        let stream = TcpStream::connect(addr).unwrap();
        RawConn { reader: BufReader::new(stream) }
    }

    fn exchange(&mut self, line: &str) -> atsched_serve::Response {
        let stream = self.reader.get_mut();
        stream.write_all(line.as_bytes()).unwrap();
        stream.write_all(b"\n").unwrap();
        stream.flush().unwrap();
        let mut reply = String::new();
        self.reader.read_line(&mut reply).unwrap();
        assert!(!reply.is_empty(), "server closed the connection");
        serde_json::from_str(reply.trim_end()).unwrap()
    }
}

#[test]
fn malformed_delta_in_an_amend_frame_is_typed_and_keeps_the_connection() {
    let handle = spawn_server(ServerConfig::default().workers(1));
    let mut conn = RawConn::connect(handle.addr());

    let opened = conn.exchange(
        r#"{"id":1,"verb":"open","version":2,"instance":{"g":2,"jobs":[{"release":0,"deadline":4,"processing":2},{"release":1,"deadline":3,"processing":1}]}}"#,
    );
    assert!(opened.is_ok(), "{opened:?}");
    let session = opened.session.expect("session id");

    // The frame is valid JSON and a well-formed amend envelope, but the
    // `delta` inside is not a DeltaSpec. The reply is a typed
    // bad_request — not a dropped connection, not a panic.
    let resp = conn.exchange(&format!(
        r#"{{"id":2,"verb":"amend","version":2,"session":{session},"delta":{{"remove":"third"}}}}"#
    ));
    assert_eq!(resp.error_kind(), Some(kind::BAD_REQUEST), "{resp:?}");

    // So is a delta of the wrong JSON type entirely.
    let resp = conn.exchange(&format!(
        r#"{{"id":3,"verb":"amend","version":2,"session":{session},"delta":[1,2,3]}}"#
    ));
    assert_eq!(resp.error_kind(), Some(kind::BAD_REQUEST), "{resp:?}");

    // The connection is still alive and the session untouched: a
    // well-formed amend on the same socket succeeds.
    let resp = conn.exchange(&format!(
        r#"{{"id":4,"verb":"amend","version":2,"session":{session},"delta":{{"add":[],"remove":[1],"modify":[]}}}}"#
    ));
    assert!(resp.is_ok(), "{resp:?}");
    assert_eq!(resp.id, Some(4));

    let mut client = Client::connect(handle.addr()).unwrap();
    client.shutdown().expect("drain");
    handle.join().unwrap();
}

#[test]
fn v1_and_v2_frames_interleave_on_one_connection() {
    let handle = spawn_server(ServerConfig::default().workers(1));
    let mut conn = RawConn::connect(handle.addr());

    let inst = r#"{"g":2,"jobs":[{"release":0,"deadline":4,"processing":2}]}"#;

    // v1 solve (no version field at all).
    let resp = conn.exchange(&format!(r#"{{"id":1,"verb":"solve","instance":{inst}}}"#));
    assert!(resp.is_ok(), "{resp:?}");
    assert!(resp.solve.is_some());

    // v2 open on the same socket.
    let resp = conn.exchange(&format!(r#"{{"id":2,"verb":"open","version":2,"instance":{inst}}}"#));
    assert!(resp.is_ok(), "{resp:?}");
    let session = resp.session.expect("session id");

    // Back to v1: stats still answers, and sees the open session.
    let resp = conn.exchange(r#"{"id":3,"verb":"stats"}"#);
    assert!(resp.is_ok(), "{resp:?}");

    // v2 amend against the session opened two frames ago.
    let resp = conn.exchange(&format!(
        r#"{{"id":4,"verb":"amend","version":2,"session":{session},"delta":{{"add":[{{"release":1,"deadline":3,"processing":1}}],"remove":[],"modify":[]}}}}"#
    ));
    assert!(resp.is_ok(), "{resp:?}");

    // v1 solve again — version statefulness must not leak between frames.
    let resp = conn.exchange(&format!(r#"{{"id":5,"verb":"solve","instance":{inst}}}"#));
    assert!(resp.is_ok(), "{resp:?}");

    // v2 close ends the session; a second close is the typed error.
    let resp =
        conn.exchange(&format!(r#"{{"id":6,"verb":"close","version":2,"session":{session}}}"#));
    assert!(resp.is_ok(), "{resp:?}");
    let resp =
        conn.exchange(&format!(r#"{{"id":7,"verb":"close","version":2,"session":{session}}}"#));
    assert_eq!(resp.error_kind(), Some(kind::UNKNOWN_SESSION), "{resp:?}");

    let mut client = Client::connect(handle.addr()).unwrap();
    client.shutdown().expect("drain");
    handle.join().unwrap();
}

#[test]
fn v2_session_replies_parse_for_version_blind_readers() {
    let handle = spawn_server(ServerConfig::default().workers(1));
    let mut client = Client::connect(handle.addr()).unwrap();

    let inst = Instance::new(2, vec![Job::new(0, 4, 2)]).unwrap();
    let resp = client.request(Request::open(&inst)).expect("open exchange");
    assert!(resp.is_ok());
    assert_eq!(resp.version, Some(PROTOCOL_VERSION));
    assert_eq!(resp.verb.as_deref(), Some(verb::OPEN));
    let session = resp.session.expect("session id");

    // Round-trip the reply through the wire format with the session
    // fields present: a reader that only knows the v1 fields still
    // gets a well-formed ok response.
    let line = serde_json::to_string(&resp).unwrap();
    let back: atsched_serve::Response = serde_json::from_str(&line).unwrap();
    assert!(back.is_ok());
    assert!(back.solve.is_some());

    client.close(session).expect("close");
    client.shutdown().expect("drain");
    handle.join().unwrap();
}
