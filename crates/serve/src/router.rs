//! Router sharding: the reactor-side service loop and consistent-hash
//! placement of instances across worker shards.
//!
//! Each router worker owns one [`atsched_net::Reactor`] (an event loop
//! with its own connections), one admission queue and one [`Engine`].
//! Accepted connections are distributed round-robin across reactors;
//! *requests* are then routed by content: an instance consistent-hashes
//! — keyed on its dominant [`atsched_core::decompose`] shard so
//! re-solves and amended variants of the same decomposition land on the
//! engine whose cache already knows them — onto a shard's queue, solver
//! threads answer through the owning reactor's mailbox, and `stats`
//! merges every shard into one plane.
//!
//! The per-connection protocol stays strictly sequential: dispatching a
//! request pauses reading on that connection until the reply (or its
//! deadline preemption) resumes it, so replies can never cross-wire.

use crate::protocol::{kind, verb, Request, Response};
use crate::server::{
    deadline_response, encode_frame, handle_close, snapshot_all, sweep_sessions, timeout_of,
    validate, DrainEvent, Job, Shared, Work,
};
use atsched_core::instance::Instance;
use atsched_net::{ConnId, Ctx, FrameError, Service, TimerId};
use atsched_obs::RequestTrace;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Extra grace the reactor-side deadline failsafe allows the worker
/// (whose `with_budget` normally answers first) before preempting.
pub(crate) const DEADLINE_SLACK: Duration = Duration::from_secs(1);

/// Timer payload for the periodic session sweep (cannot collide with a
/// connection id until 2^30 simultaneous slots exist).
const SWEEP_TIMER_DATA: u64 = 1 << 62;

/// Messages other threads inject into a reactor's mailbox.
pub(crate) enum Msg {
    /// A freshly accepted connection handed over by reactor 0.
    Conn(TcpStream),
    /// A solver thread's answer for an in-flight request.
    Reply { conn: ConnId, seq: u64, resp: Box<Response> },
    /// The final drain snapshot: write it, acknowledge the flush to the
    /// coordinator, then close the requester's connection.
    Final { conn: ConnId, resp: Box<Response> },
    /// Exit the event loop.
    Stop,
}

// ---------------------------------------------------------------------
// Consistent-hash placement
// ---------------------------------------------------------------------

/// A consistent-hash ring over shard indices with virtual nodes, so
/// adding a shard at a future N+1 remaps only ~1/N of the key space.
pub struct HashRing {
    /// Sorted `(point, shard)` pairs.
    points: Vec<(u64, usize)>,
}

impl HashRing {
    const VNODES: usize = 64;

    pub fn new(shards: usize) -> HashRing {
        let shards = shards.max(1);
        let mut points = Vec::with_capacity(shards * Self::VNODES);
        for shard in 0..shards {
            for vnode in 0..Self::VNODES {
                let mut h = DefaultHasher::new();
                (shard as u64, vnode as u64, 0x6e61745f72696e67u64).hash(&mut h);
                points.push((h.finish(), shard));
            }
        }
        points.sort_unstable();
        points.dedup_by_key(|p| p.0);
        HashRing { points }
    }

    /// Map a key to its shard: the first ring point clockwise from the
    /// key (wrapping).
    pub fn route(&self, key: u64) -> usize {
        let idx = self.points.partition_point(|&(point, _)| point < key);
        self.points[if idx == self.points.len() { 0 } else { idx }].1
    }
}

fn content_hash(inst: &Instance) -> u64 {
    let mut h = DefaultHasher::new();
    inst.g.hash(&mut h);
    inst.jobs.hash(&mut h);
    h.finish()
}

/// Routing key for an instance: the content hash of its *dominant*
/// decomposition shard (most jobs; ties to the earliest), normalized to
/// offset 0 — so instances sharing their heaviest laminar component
/// reuse one engine's cache. Non-laminar instances key on their whole
/// content.
pub fn route_key(inst: &Instance) -> u64 {
    match atsched_core::decompose::decompose(inst) {
        Ok(dec) => {
            let mut best: Option<&atsched_core::decompose::Shard> = None;
            for shard in &dec.shards {
                if best.is_none_or(|b| shard.jobs.len() > b.jobs.len()) {
                    best = Some(shard);
                }
            }
            match best {
                Some(shard) => content_hash(&shard.instance),
                None => content_hash(inst),
            }
        }
        Err(_) => content_hash(inst),
    }
}

/// Routing key for a batch: combined key of its members, so an
/// identical resubmission lands on the same warmed shard.
pub fn batch_key(instances: &[Instance]) -> u64 {
    let mut h = DefaultHasher::new();
    for inst in instances {
        route_key(inst).hash(&mut h);
    }
    h.finish()
}

// ---------------------------------------------------------------------
// The per-reactor service loop
// ---------------------------------------------------------------------

/// One in-flight (admitted, unanswered) request on a connection.
struct Pending {
    seq: u64,
    timer: Option<TimerId>,
    id: Option<u64>,
    verb: String,
    budget: Option<Duration>,
}

/// The serve-protocol service driven by one reactor.
pub(crate) struct ServeLoop {
    shared: Arc<Shared>,
    /// This reactor's index (reactor 0 owns the listener).
    index: usize,
    /// Round-robin cursor for distributing accepted connections.
    next_rr: usize,
    /// Monotonic per-reactor sequence for matching replies to requests.
    next_seq: u64,
    pending: HashMap<ConnId, Pending>,
    /// Connection whose next flush acknowledges the drain snapshot.
    ack: Option<ConnId>,
}

impl ServeLoop {
    pub(crate) fn new(shared: Arc<Shared>, index: usize) -> ServeLoop {
        ServeLoop { shared, index, next_rr: 0, next_seq: 0, pending: HashMap::new(), ack: None }
    }

    fn reply(&self, ctx: &mut Ctx<'_>, conn: ConnId, resp: &Response) -> bool {
        let line = encode_frame(resp, &self.shared.metrics);
        ctx.send(conn, line.into_bytes())
    }

    fn schedule_sweep(&self, ctx: &mut Ctx<'_>) {
        let ttl = self.shared.cfg.session_ttl;
        let period = (ttl / 2).clamp(Duration::from_millis(10), Duration::from_secs(30));
        ctx.schedule(period, SWEEP_TIMER_DATA);
    }

    /// Route one parsed, non-shutdown request.
    fn handle_request(&mut self, ctx: &mut Ctx<'_>, conn: ConnId, req: Request) {
        if let Some(reject) = crate::server::check_version(&req) {
            self.shared.metrics.bad_request();
            self.reply(ctx, conn, &reject);
            return;
        }
        match req.verb.as_str() {
            verb::HEALTH => {
                let resp = if self.shared.gate.is_draining() {
                    Response::error(
                        req.id,
                        Some(verb::HEALTH),
                        kind::SHUTTING_DOWN,
                        "service is draining".into(),
                    )
                } else {
                    Response::ok(req.id, verb::HEALTH)
                };
                self.reply(ctx, conn, &resp);
            }
            verb::STATS => {
                // Eager sweep: `stats` reports a session table with no
                // TTL-expired stragglers in it.
                sweep_sessions(&self.shared);
                let resp = Response::ok_stats(req.id, verb::STATS, snapshot_all(&self.shared));
                self.reply(ctx, conn, &resp);
            }
            verb::METRICS => {
                // The text scrape over the protocol port: same snapshot
                // as `stats`, rendered as Prometheus exposition. Inline
                // like `stats` — no solver pool is touched.
                sweep_sessions(&self.shared);
                let snap = snapshot_all(&self.shared);
                let resp =
                    Response::ok_metrics(req.id, crate::scrape::render_prometheus(&snap.registry));
                self.reply(ctx, conn, &resp);
            }
            verb::CLOSE => {
                let resp = handle_close(&self.shared, &req);
                self.reply(ctx, conn, &resp);
            }
            verb::SOLVE | verb::BATCH | verb::OPEN | verb::AMEND => self.admit(ctx, conn, req),
            other => {
                self.shared.metrics.bad_request();
                let resp = Response::error(
                    req.id,
                    Some(other),
                    kind::BAD_REQUEST,
                    format!("unknown verb '{other}'"),
                );
                self.reply(ctx, conn, &resp);
            }
        }
    }

    /// Validate, pick a shard, and dispatch to its admission queue; the
    /// connection pauses until the reply (or deadline) resumes it.
    fn admit(&mut self, ctx: &mut Ctx<'_>, conn: ConnId, req: Request) {
        let shared = Arc::clone(&self.shared);
        let id = req.id;
        let verb_name = req.verb.clone();
        if shared.gate.is_draining() {
            shared.metrics.shed_shutdown();
            let resp = Response::error(
                id,
                Some(verb_name.as_str()),
                kind::SHUTTING_DOWN,
                "service is draining".into(),
            );
            self.reply(ctx, conn, &resp);
            return;
        }
        let work = match validate(&req, shared.cfg.default_timeout) {
            Ok(work) => work,
            Err(message) => {
                shared.metrics.bad_request();
                let resp =
                    Response::error(id, Some(verb_name.as_str()), kind::BAD_REQUEST, message);
                self.reply(ctx, conn, &resp);
                return;
            }
        };

        // Satellite: bound the session table. `open` is refused with a
        // typed `overloaded` before touching a queue once the live
        // table (plus in-flight opens) hits the cap.
        let reserved_open = matches!(work, Work::Open { .. });
        if reserved_open {
            sweep_sessions(&shared);
            let live = shared.sessions.lock().expect("sessions lock").len()
                + shared.open_reservations.load(Ordering::SeqCst);
            if live >= shared.cfg.max_sessions {
                shared.metrics.shed_overload();
                let resp = Response::error(
                    id,
                    Some(verb_name.as_str()),
                    kind::OVERLOADED,
                    format!("session table full ({} sessions)", shared.cfg.max_sessions),
                );
                self.reply(ctx, conn, &resp);
                return;
            }
            shared.open_reservations.fetch_add(1, Ordering::SeqCst);
        }

        let shard = match &work {
            Work::Solve { inst, .. } | Work::Open { inst, .. } => {
                shared.ring.route(route_key(inst))
            }
            Work::Batch { instances, .. } => shared.ring.route(batch_key(instances)),
            // Amends run on the shard that opened the session (cache
            // affinity); an unknown session routes by its id and the
            // worker answers the typed error.
            Work::Amend { session, .. } => {
                let table = shared.sessions.lock().expect("sessions lock");
                match table.get(session) {
                    Some(entry) => entry.shard,
                    None => *session as usize % shared.shards.len(),
                }
            }
        };

        let budget = timeout_of(&work);
        let seq = self.next_seq;
        self.next_seq += 1;
        // Birth of the request trace: server-assigned id, verb, and the
        // owning shard travel with the job; solver spans append their
        // stage breadcrumbs to it on the worker.
        let rid = shared.next_request_id.fetch_add(1, Ordering::SeqCst) + 1;
        let trace = Arc::new(RequestTrace::new(rid, verb_name.as_str()));
        trace.set_shard(shard as u64);
        shared.shard_requests[shard].inc();
        let job = Job {
            id,
            work,
            conn,
            seq,
            reply_to: shared.remote(self.index),
            admitted: Instant::now(),
            trace,
        };
        match shared.shards[shard].queue.try_push(job) {
            Ok(()) => {
                shared.metrics.admitted();
                // Failsafe deadline: the worker's `with_budget` answers
                // first in the normal case; this timer only preempts if
                // the worker is wedged or the queue is deeply backed up.
                let timer = budget.map(|b| ctx.schedule(b + DEADLINE_SLACK, conn.as_u64()));
                self.pending.insert(conn, Pending { seq, timer, id, verb: verb_name, budget });
                ctx.pause_reading(conn);
            }
            Err(crate::admission::Admit::Full(_)) => {
                if reserved_open {
                    shared.open_reservations.fetch_sub(1, Ordering::SeqCst);
                }
                shared.metrics.shed_overload();
                let resp = Response::error(
                    id,
                    Some(verb_name.as_str()),
                    kind::OVERLOADED,
                    format!(
                        "admission queue full ({} slots)",
                        shared.shards[shard].queue.capacity()
                    ),
                );
                self.reply(ctx, conn, &resp);
            }
            Err(crate::admission::Admit::Closed(_)) => {
                if reserved_open {
                    shared.open_reservations.fetch_sub(1, Ordering::SeqCst);
                }
                shared.metrics.shed_shutdown();
                let resp = Response::error(
                    id,
                    Some(verb_name.as_str()),
                    kind::SHUTTING_DOWN,
                    "service is draining".into(),
                );
                self.reply(ctx, conn, &resp);
            }
        }
    }

    /// First `shutdown` wins: close every queue and hand the drain to
    /// the coordinator; the response is the final snapshot, delivered
    /// as [`Msg::Final`] once the workers have drained.
    fn handle_shutdown(&mut self, ctx: &mut Ctx<'_>, conn: ConnId, req: Request) {
        let shared = Arc::clone(&self.shared);
        if !shared.gate.begin() {
            shared.metrics.shed_shutdown();
            let resp = Response::error(
                req.id,
                Some(verb::SHUTDOWN),
                kind::SHUTTING_DOWN,
                "service is already draining".into(),
            );
            self.reply(ctx, conn, &resp);
            return;
        }
        for shard in shared.shards.iter() {
            shard.queue.close();
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.pending.insert(
            conn,
            Pending { seq, timer: None, id: req.id, verb: verb::SHUTDOWN.into(), budget: None },
        );
        ctx.pause_reading(conn);
        let _ = shared.drain_tx.send(DrainEvent::Request { reactor: self.index, conn, id: req.id });
    }
}

impl Service for ServeLoop {
    type Msg = Msg;

    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        if self.index == 0 {
            self.schedule_sweep(ctx);
        }
    }

    fn on_accept(&mut self, ctx: &mut Ctx<'_>, stream: TcpStream, _peer: SocketAddr) {
        let remotes = self.shared.remotes();
        let n = remotes.len();
        if n > 1 {
            let target = self.next_rr % n;
            self.next_rr += 1;
            if target != self.index {
                let _ = remotes[target].send(Msg::Conn(stream));
                return;
            }
        }
        let _ = ctx.adopt(stream);
    }

    fn on_frame(&mut self, ctx: &mut Ctx<'_>, conn: ConnId, line: String) {
        if line.trim().is_empty() {
            return; // tolerate blank keep-alive lines
        }
        self.shared.metrics.frame_received();
        let req = match serde_json::from_str::<Request>(&line) {
            Ok(req) => req,
            Err(e) => {
                self.shared.metrics.bad_request();
                let resp = Response::error(None, None, kind::BAD_REQUEST, e.to_string());
                self.reply(ctx, conn, &resp);
                return;
            }
        };
        if req.verb == verb::SHUTDOWN {
            self.handle_shutdown(ctx, conn, req);
        } else {
            self.handle_request(ctx, conn, req);
        }
    }

    fn on_frame_error(&mut self, ctx: &mut Ctx<'_>, conn: ConnId, err: FrameError) {
        self.shared.metrics.frame_received();
        self.shared.metrics.bad_request();
        let resp = Response::error(None, None, kind::BAD_REQUEST, err.to_string());
        self.reply(ctx, conn, &resp);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, timer: TimerId, data: u64) {
        if data == SWEEP_TIMER_DATA {
            sweep_sessions(&self.shared);
            self.schedule_sweep(ctx);
            return;
        }
        // Deadline failsafe fired: answer `timed_out` ourselves and
        // drop the worker's eventual reply (stale seq).
        let conn = ConnId::from_u64(data);
        let stale = matches!(self.pending.get(&conn), Some(p) if p.timer == Some(timer));
        if stale {
            let p = self.pending.remove(&conn).expect("pending checked above");
            self.shared.metrics.deadline_preempt();
            let resp = deadline_response(p.id, &p.verb, p.budget);
            self.reply(ctx, conn, &resp);
            ctx.resume_reading(conn);
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, msg: Msg) {
        match msg {
            Msg::Conn(stream) => {
                let _ = ctx.adopt(stream);
            }
            Msg::Reply { conn, seq, resp } => {
                let current = self.pending.get(&conn).is_some_and(|p| p.seq == seq);
                if !current {
                    return; // preempted by the deadline, or the conn died
                }
                let p = self.pending.remove(&conn).expect("pending checked above");
                if let Some(t) = p.timer {
                    ctx.cancel_timer(t);
                }
                self.reply(ctx, conn, &resp);
                ctx.resume_reading(conn);
            }
            Msg::Final { conn, resp } => {
                self.pending.remove(&conn);
                if self.reply(ctx, conn, &resp) {
                    // Acknowledge to the coordinator once the snapshot
                    // actually reaches the socket, then close.
                    self.ack = Some(conn);
                    ctx.close_after_flush(conn);
                } else {
                    let _ = self.shared.drain_written_tx.send(());
                }
            }
            Msg::Stop => ctx.stop(),
        }
    }

    fn on_flush(&mut self, _ctx: &mut Ctx<'_>, conn: ConnId) {
        if self.ack == Some(conn) {
            self.ack = None;
            let _ = self.shared.drain_written_tx.send(());
        }
    }

    fn on_close(&mut self, ctx: &mut Ctx<'_>, conn: ConnId) {
        if let Some(p) = self.pending.remove(&conn) {
            if let Some(t) = p.timer {
                ctx.cancel_timer(t);
            }
        }
        if self.ack == Some(conn) {
            // The drain requester died before the flush: unblock the
            // coordinator anyway.
            self.ack = None;
            let _ = self.shared.drain_written_tx.send(());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atsched_core::instance::Job as CoreJob;

    fn inst(g: i64, jobs: &[(i64, i64, i64)]) -> Instance {
        Instance::new(g, jobs.iter().map(|&(r, d, p)| CoreJob::new(r, d, p)).collect()).unwrap()
    }

    #[test]
    fn ring_is_deterministic_and_covers_all_shards() {
        let ring = HashRing::new(4);
        let mut hit = [false; 4];
        for key in 0..4096u64 {
            let shard = ring.route(key.wrapping_mul(0x9e3779b97f4a7c15));
            assert!(shard < 4);
            hit[shard] = true;
            assert_eq!(shard, ring.route(key.wrapping_mul(0x9e3779b97f4a7c15)));
        }
        assert!(hit.iter().all(|&h| h), "some shard never selected: {hit:?}");
    }

    #[test]
    fn ring_growth_remaps_only_a_fraction() {
        let small = HashRing::new(4);
        let big = HashRing::new(5);
        let keys: Vec<u64> = (0..4096u64).map(|k| k.wrapping_mul(0x2545f4914f6cdd1d)).collect();
        let moved = keys
            .iter()
            .filter(|&&k| {
                let s = small.route(k);
                let b = big.route(k);
                s != b && b != 4 // moved somewhere other than the new shard
            })
            .count();
        // Consistent hashing: keys either stay or move to the new
        // shard; cross-moves are rare (vnode boundary effects).
        assert!(moved < keys.len() / 10, "{moved} of {} keys cross-moved", keys.len());
    }

    #[test]
    fn identical_instances_share_a_route_key() {
        let a = inst(2, &[(0, 4, 2), (1, 3, 1)]);
        let b = inst(2, &[(0, 4, 2), (1, 3, 1)]);
        assert_eq!(route_key(&a), route_key(&b));
        assert_ne!(route_key(&a), route_key(&inst(2, &[(0, 4, 2)])));
    }

    #[test]
    fn route_key_follows_the_dominant_decompose_shard() {
        // Two disjoint laminar components; the 3-job one dominates.
        let dominant = inst(2, &[(0, 8, 2), (1, 6, 1), (2, 5, 1)]);
        let with_extra = inst(2, &[(0, 8, 2), (1, 6, 1), (2, 5, 1), (100, 104, 1)]);
        // Same dominant component (offset-normalized) => same key, even
        // though the full instances differ.
        assert_eq!(route_key(&dominant), route_key(&with_extra));
    }
}
