//! A reactor-driven load generator for the serve tier.
//!
//! Drives thousands of concurrent connections from a single thread by
//! running the *client* side on the same [`atsched_net::Reactor`] the
//! server uses: connections ramp up in batches, each connection plays
//! a strictly sequential request/response script, and every connection
//! is held open until the whole fleet finishes — so peak concurrency
//! really is the configured connection count, not a rolling window.
//!
//! Latencies are recorded through [`atsched_obs`] histograms
//! (`loadgen.open_ms` = connect → first response, `loadgen.req_ms` =
//! per-request round trip), which is what `atsched-bench --serve`
//! snapshots into `results/BENCH_*.json` for the CI p99 gate.

use crate::protocol::{verb, Request, Response};
use atsched_core::instance::Instance;
use atsched_net::{
    raise_nofile_limit, ConnId, Ctx, FrameError, Reactor, ReactorConfig, Service, TimerId,
};
use atsched_obs::{Histogram, HistogramSnapshot, Registry};
use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Timer payload for the connection-ramp tick (distinct from any
/// `ConnId`, which would need 2^30 live slots to reach bit 62).
const RAMP_TIMER: u64 = 1 << 62;

/// What each request on a connection carries.
#[derive(Clone)]
pub enum Payload {
    /// `health` probes: measures pure protocol/reactor overhead.
    Health,
    /// `solve` of one fixed instance: exercises admission, routing and
    /// the engine cache under connection concurrency.
    Solve(Box<Instance>),
}

/// Load-run parameters.
#[derive(Clone)]
pub struct LoadConfig {
    /// Target server.
    pub addr: SocketAddr,
    /// Concurrent connections to establish (all held open to the end).
    pub conns: usize,
    /// Sequential requests per connection.
    pub requests_per_conn: usize,
    /// Connections opened per ramp tick (bounds the connect burst the
    /// listener backlog has to absorb).
    pub connect_batch: usize,
    /// Request body.
    pub payload: Payload,
    /// Per-request response deadline; an overrun counts as an error
    /// and drops that connection.
    pub request_timeout: Duration,
}

impl LoadConfig {
    /// Defaults sized for a smoke run against `addr`.
    pub fn new(addr: SocketAddr) -> LoadConfig {
        LoadConfig {
            addr,
            conns: 256,
            requests_per_conn: 4,
            connect_batch: 128,
            payload: Payload::Health,
            request_timeout: Duration::from_secs(30),
        }
    }
}

/// What a load run observed.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Connections the run was asked to open.
    pub target_conns: usize,
    /// Connections that actually connected.
    pub opened: usize,
    /// Most connections simultaneously open on the generator.
    pub peak_open: usize,
    /// Requests that received a matching response.
    pub completed_requests: u64,
    /// Connect failures, id mismatches, early EOFs (timeouts are
    /// counted separately under [`timeouts`](LoadReport::timeouts)).
    pub errors: u64,
    /// Requests whose response missed the per-request deadline.
    pub timeouts: u64,
    /// Wall clock of the whole run, milliseconds.
    pub wall_ms: f64,
    /// Completed requests per second over the run.
    pub rps: f64,
    /// Connect → first response latency distribution.
    pub open_ms: HistogramSnapshot,
    /// Per-request round-trip distribution.
    pub req_ms: HistogramSnapshot,
}

struct ConnState {
    connected_at: Instant,
    sent_at: Instant,
    expect_id: u64,
    responses: usize,
    timer: Option<TimerId>,
}

struct LoadGen {
    cfg: LoadConfig,
    open_ms: Arc<Histogram>,
    req_ms: Arc<Histogram>,
    conns: HashMap<ConnId, ConnState>,
    /// Connections attempted so far (success or not), ≤ cfg.conns.
    launched: usize,
    /// Connections that completed their life cycle (script finished,
    /// connect failed, or died early). The run ends at cfg.conns.
    finished: usize,
    opened: usize,
    peak_open: usize,
    completed_requests: u64,
    errors: u64,
    timeouts: u64,
    next_id: u64,
    started: Instant,
    wall: Option<Duration>,
}

impl LoadGen {
    fn request_frame(&mut self) -> (u64, Vec<u8>) {
        self.next_id += 1;
        let id = self.next_id;
        let req = match &self.cfg.payload {
            Payload::Health => Request { id: Some(id), ..Request::new(verb::HEALTH) },
            Payload::Solve(inst) => Request { id: Some(id), ..Request::solve(inst) },
        };
        let mut line = serde_json::to_string(&req).expect("requests always serialize");
        line.push('\n');
        (id, line.into_bytes())
    }

    fn send_next(&mut self, ctx: &mut Ctx<'_>, conn: ConnId) {
        let (id, frame) = self.request_frame();
        let timer = ctx.schedule(self.cfg.request_timeout, conn.as_u64());
        if let Some(state) = self.conns.get_mut(&conn) {
            state.expect_id = id;
            state.sent_at = Instant::now();
            if let Some(old) = state.timer.replace(timer) {
                ctx.cancel_timer(old);
            }
        }
        if !ctx.send(conn, frame) {
            // The connection died under us; on_close does the books.
            ctx.close(conn);
        }
    }

    fn ramp(&mut self, ctx: &mut Ctx<'_>) {
        let batch = self.cfg.connect_batch.max(1);
        let mut dialed = 0;
        while self.launched < self.cfg.conns && dialed < batch {
            self.launched += 1;
            dialed += 1;
            let adopted = TcpStream::connect(self.cfg.addr).and_then(|stream| ctx.adopt(stream));
            match adopted {
                Ok(conn) => {
                    self.opened += 1;
                    self.conns.insert(
                        conn,
                        ConnState {
                            connected_at: Instant::now(),
                            sent_at: Instant::now(),
                            expect_id: 0,
                            responses: 0,
                            timer: None,
                        },
                    );
                    self.send_next(ctx, conn);
                }
                Err(_) => {
                    self.errors += 1;
                    self.finished += 1;
                }
            }
        }
        self.peak_open = self.peak_open.max(ctx.conn_count());
        if self.launched < self.cfg.conns {
            ctx.schedule(Duration::from_millis(1), RAMP_TIMER);
        }
        self.check_done(ctx);
    }

    fn check_done(&mut self, ctx: &mut Ctx<'_>) {
        if self.launched == self.cfg.conns && self.finished == self.launched {
            self.peak_open = self.peak_open.max(ctx.conn_count());
            self.wall = Some(self.started.elapsed());
            ctx.stop();
        }
    }
}

impl Service for LoadGen {
    type Msg = ();

    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.started = Instant::now();
        self.ramp(ctx);
    }

    fn on_frame(&mut self, ctx: &mut Ctx<'_>, conn: ConnId, line: String) {
        let Some(state) = self.conns.get_mut(&conn) else {
            return; // a straggler frame after this conn finished its script
        };
        if let Some(timer) = state.timer.take() {
            ctx.cancel_timer(timer);
        }
        let id_ok = serde_json::from_str::<Response>(&line)
            .map(|resp| resp.id == Some(state.expect_id))
            .unwrap_or(false);
        if !id_ok {
            self.errors += 1;
            ctx.close(conn);
            return;
        }
        let rtt_ms = state.sent_at.elapsed().as_secs_f64() * 1e3;
        if state.responses == 0 {
            self.open_ms.record(state.connected_at.elapsed().as_secs_f64() * 1e3);
        }
        state.responses += 1;
        self.completed_requests += 1;
        self.req_ms.record(rtt_ms);
        if state.responses < self.cfg.requests_per_conn {
            self.send_next(ctx, conn);
        } else {
            // Script done: hold the socket open (so peak concurrency is
            // honest) but stop tracking it.
            self.conns.remove(&conn);
            self.finished += 1;
            self.peak_open = self.peak_open.max(ctx.conn_count());
            self.check_done(ctx);
        }
    }

    fn on_frame_error(&mut self, ctx: &mut Ctx<'_>, conn: ConnId, _err: FrameError) {
        self.errors += 1;
        ctx.close(conn);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, timer: TimerId, data: u64) {
        if data == RAMP_TIMER {
            self.ramp(ctx);
            return;
        }
        let conn = ConnId::from_u64(data);
        let timed_out = self
            .conns
            .get_mut(&conn)
            .is_some_and(|state| state.timer.take_if(|t| *t == timer).is_some());
        if timed_out {
            // Count under `timeouts` (not `errors`) and finish the
            // connection here, so the close below doesn't double-book
            // it as a generic mid-script death.
            self.timeouts += 1;
            self.conns.remove(&conn);
            self.finished += 1;
            ctx.close(conn);
            self.check_done(ctx);
        }
    }

    fn on_close(&mut self, ctx: &mut Ctx<'_>, conn: ConnId) {
        if let Some(state) = self.conns.remove(&conn) {
            if let Some(timer) = state.timer {
                ctx.cancel_timer(timer);
            }
            // Died mid-script (timeout close, server drop, EOF).
            self.errors += 1;
            self.finished += 1;
            self.check_done(ctx);
        }
    }
}

/// Run one load pass and report what it saw. Latency histograms are
/// also recorded into `registry` under `loadgen.*`.
pub fn run_load(cfg: LoadConfig, registry: &Arc<Registry>) -> io::Result<LoadReport> {
    // Thousands of sockets need headroom beyond the default 1024 soft
    // cap; best-effort raise to the hard limit.
    let _ = raise_nofile_limit();
    let service = LoadGen {
        cfg,
        open_ms: registry.histogram("loadgen.open_ms"),
        req_ms: registry.histogram("loadgen.req_ms"),
        conns: HashMap::new(),
        launched: 0,
        finished: 0,
        opened: 0,
        peak_open: 0,
        completed_requests: 0,
        errors: 0,
        timeouts: 0,
        next_id: 0,
        started: Instant::now(),
        wall: None,
    };
    let (reactor, _remote) = Reactor::new(ReactorConfig::default(), service)?;
    let done = reactor.run()?;
    let wall = done.wall.unwrap_or_else(|| done.started.elapsed());
    let wall_ms = wall.as_secs_f64() * 1e3;
    Ok(LoadReport {
        target_conns: done.cfg.conns,
        opened: done.opened,
        peak_open: done.peak_open,
        completed_requests: done.completed_requests,
        errors: done.errors,
        timeouts: done.timeouts,
        wall_ms,
        rps: if wall_ms > 0.0 { done.completed_requests as f64 / (wall_ms / 1e3) } else { 0.0 },
        open_ms: HistogramSnapshot::of(&done.open_ms),
        req_ms: HistogramSnapshot::of(&done.req_ms),
    })
}
