//! The wire protocol: newline-delimited JSON frames.
//!
//! One request per line, one response per line, strictly in order per
//! connection. A request is a JSON object with a `verb` and
//! verb-specific fields; a response echoes the request `id` and carries
//! either a payload (on `"status": "ok"`) or a typed error (on
//! `"status": "error"`). See `DESIGN.md` §8 for example frames.
//!
//! ## Encoding notes
//!
//! Optional request fields may simply be omitted — the hand-written
//! [`Deserialize`] impls treat a missing field and an explicit `null`
//! identically (the vendored serde derive requires every field to be
//! present, which is wrong for a hand-typed wire format). Unknown
//! request fields are rejected so typos fail loudly instead of being
//! silently ignored. Responses likewise omit absent payloads.

use atsched_core::instance::Instance;
use atsched_core::schedule::Schedule;
use atsched_engine::{EngineTotals, Percentiles};
use atsched_obs::RegistrySnapshot;
use serde::de::{from_value, Deserializer};
use serde::ser::{to_value, Serializer};
use serde::value::Value;
use serde::{Deserialize, Serialize};

/// Request verbs.
pub mod verb {
    /// Solve a single instance.
    pub const SOLVE: &str = "solve";
    /// Solve a list of instances through the batch engine.
    pub const BATCH: &str = "batch";
    /// Service counters, cache statistics, and latency percentiles.
    pub const STATS: &str = "stats";
    /// Liveness probe.
    pub const HEALTH: &str = "health";
    /// Graceful shutdown: stop accepting, drain, reply with final stats.
    pub const SHUTDOWN: &str = "shutdown";
}

/// Typed error kinds carried by `"status": "error"` responses.
pub mod kind {
    /// Malformed frame, unknown verb/field, or invalid instance.
    pub const BAD_REQUEST: &str = "bad_request";
    /// The admission queue was full; the request was shed, not queued.
    pub const OVERLOADED: &str = "overloaded";
    /// The service is draining and no longer accepts work.
    pub const SHUTTING_DOWN: &str = "shutting_down";
    /// The instance admits no feasible schedule.
    pub const INFEASIBLE: &str = "infeasible";
    /// The per-request wall-clock deadline ran out.
    pub const TIMED_OUT: &str = "timed_out";
    /// The solve errored or panicked (contained).
    pub const FAILED: &str = "failed";
    /// The server lost the worker handling the request.
    pub const INTERNAL: &str = "internal";
}

/// A request frame.
///
/// Only `verb` is mandatory; everything else is verb-specific and
/// optional on the wire (server-side defaults apply).
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Client-chosen correlation id, echoed verbatim in the response.
    pub id: Option<u64>,
    /// One of the [`verb`] constants.
    pub verb: String,
    /// The instance to solve (`solve`).
    pub instance: Option<Instance>,
    /// The instances to solve (`batch`).
    pub instances: Option<Vec<Instance>>,
    /// Solving path: `auto` | `nested` | `general` | `greedy` (default `auto`).
    pub method: Option<String>,
    /// LP backend: `exact` | `float` | `snap` (default `exact`).
    pub backend: Option<String>,
    /// Enable the slot-closing post-optimization (default false).
    pub polish: Option<bool>,
    /// Seed for the general path's shuffled candidate.
    pub seed: Option<u64>,
    /// Root-decomposition policy: `auto` | `off` | `force` (default `auto`).
    pub shard: Option<String>,
    /// Per-request wall-clock deadline in milliseconds (overrides the
    /// server default).
    pub timeout_ms: Option<u64>,
    /// Return the full schedule in the reply, not just its summary.
    pub include_schedule: Option<bool>,
}

impl Request {
    /// A bare request with the given verb and no payload.
    pub fn new(verb: &str) -> Request {
        Request {
            id: None,
            verb: verb.to_string(),
            instance: None,
            instances: None,
            method: None,
            backend: None,
            polish: None,
            seed: None,
            shard: None,
            timeout_ms: None,
            include_schedule: None,
        }
    }

    /// A `solve` request for one instance.
    pub fn solve(inst: &Instance) -> Request {
        Request { instance: Some(inst.clone()), ..Request::new(verb::SOLVE) }
    }

    /// A `batch` request for a list of instances.
    pub fn batch(instances: &[Instance]) -> Request {
        Request { instances: Some(instances.to_vec()), ..Request::new(verb::BATCH) }
    }

    /// A `stats` request.
    pub fn stats() -> Request {
        Request::new(verb::STATS)
    }

    /// A `health` request.
    pub fn health() -> Request {
        Request::new(verb::HEALTH)
    }

    /// A `shutdown` request.
    pub fn shutdown() -> Request {
        Request::new(verb::SHUTDOWN)
    }

    /// Set the correlation id.
    pub fn with_id(mut self, id: u64) -> Request {
        self.id = Some(id);
        self
    }

    /// Set the solving path (`auto` | `nested` | `general` | `greedy`).
    pub fn with_method(mut self, method: &str) -> Request {
        self.method = Some(method.to_string());
        self
    }

    /// Set the LP backend (`exact` | `float` | `snap`).
    pub fn with_backend(mut self, backend: &str) -> Request {
        self.backend = Some(backend.to_string());
        self
    }

    /// Enable or disable the polish post-optimization.
    pub fn with_polish(mut self, polish: bool) -> Request {
        self.polish = Some(polish);
        self
    }

    /// Set the shuffle seed for the general path.
    pub fn with_seed(mut self, seed: u64) -> Request {
        self.seed = Some(seed);
        self
    }

    /// Set the root-decomposition policy (`auto` | `off` | `force`).
    pub fn with_shard(mut self, shard: &str) -> Request {
        self.shard = Some(shard.to_string());
        self
    }

    /// Set the per-request deadline in milliseconds.
    pub fn with_timeout_ms(mut self, ms: u64) -> Request {
        self.timeout_ms = Some(ms);
        self
    }

    /// Ask for the full schedule in the reply.
    pub fn with_schedule(mut self) -> Request {
        self.include_schedule = Some(true);
        self
    }
}

/// Payload of a successful `solve`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SolveReply {
    /// Active slots of the verified schedule.
    pub active_slots: u64,
    /// Path that produced it: `nested` | `general` | `greedy`.
    pub method: String,
    /// Per-instance certified approximation ratio, when available.
    pub certified_ratio: Option<f64>,
    /// Whether the result came from the engine's solve cache.
    pub cached: bool,
    /// Solve execution time in milliseconds (excludes queue wait).
    pub elapsed_ms: f64,
    /// The schedule itself, when `include_schedule` was set.
    pub schedule: Option<Schedule>,
}

/// One instance's outcome inside a `batch` reply.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BatchItemReply {
    /// Position in the request's `instances` array.
    pub index: u64,
    /// `solved` | `infeasible` | `timed_out` | `failed`.
    pub outcome: String,
    /// Active slots, for solved items.
    pub active_slots: Option<u64>,
    /// Whether a solved item came from the cache.
    pub cached: Option<bool>,
    /// Failure detail, for failed items.
    pub message: Option<String>,
}

/// Payload of a successful `batch`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BatchReply {
    /// Per-instance outcomes, in input order.
    pub items: Vec<BatchItemReply>,
    /// Instances in the batch.
    pub total: u64,
    /// Verified schedules produced.
    pub solved: u64,
    /// Provably infeasible instances.
    pub infeasible: u64,
    /// Items cut off by the per-solve budget.
    pub timed_out: u64,
    /// Items that errored or panicked.
    pub failed: u64,
    /// End-to-end batch wall-clock, milliseconds.
    pub wall_clock_ms: f64,
    /// Cache hits during this batch.
    pub cache_hits: u64,
    /// Cache misses during this batch.
    pub cache_misses: u64,
}

/// Payload of a successful `stats` (and of the `shutdown` ack, as the
/// final post-drain snapshot).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StatsReply {
    /// Time since the server started, milliseconds.
    pub uptime_ms: f64,
    /// Frames read off connections (including malformed ones).
    pub received: u64,
    /// Frames rejected before admission (parse errors, unknown verbs,
    /// invalid instances, oversized lines).
    pub bad_requests: u64,
    /// Requests admitted into the solve queue.
    pub accepted: u64,
    /// Requests shed with a typed `overloaded` response.
    pub rejected_overload: u64,
    /// Requests refused because the service was draining.
    pub rejected_shutdown: u64,
    /// Admitted requests that received a response (any outcome).
    pub completed: u64,
    /// Completed requests whose outcome was `infeasible` or `failed`.
    pub solve_errors: u64,
    /// Completed requests that hit their wall-clock deadline.
    pub timed_out: u64,
    /// Admitted requests not yet answered.
    pub inflight: u64,
    /// Requests currently waiting in the admission queue.
    pub queue_len: u64,
    /// Admission queue capacity (the load-shedding threshold).
    pub queue_capacity: u64,
    /// Engine cache hits over the server's lifetime.
    pub cache_hits: u64,
    /// Engine cache misses over the server's lifetime.
    pub cache_misses: u64,
    /// `hits / (hits + misses)`, 0 with no lookups.
    pub cache_hit_rate: f64,
    /// Memoized solve outcomes currently held.
    pub cache_entries: u64,
    /// Lifetime engine outcome counters.
    pub engine: EngineTotals,
    /// End-to-end latency of completed requests (admission → response),
    /// lifetime histogram percentiles, milliseconds.
    pub latency_ms: Percentiles,
    /// Full metric-registry snapshot: every counter, gauge, and
    /// histogram the server and its solver stack recorded (`serve.*`,
    /// `engine.*`, `lp.*`, `flow.*`, `span.*`).
    pub registry: RegistrySnapshot,
}

/// A typed error payload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ErrorInfo {
    /// One of the [`kind`] constants.
    pub kind: String,
    /// Human-readable detail.
    pub message: String,
}

/// A response frame: `id` echo, `status`, and one payload at most.
#[derive(Debug, Clone)]
pub struct Response {
    /// The request's correlation id (absent when the request was too
    /// malformed to recover one).
    pub id: Option<u64>,
    /// `"ok"` or `"error"`.
    pub status: String,
    /// The request verb, echoed for log readability.
    pub verb: Option<String>,
    /// Error payload (`status == "error"`).
    pub error: Option<ErrorInfo>,
    /// `solve` payload.
    pub solve: Option<SolveReply>,
    /// `batch` payload.
    pub batch: Option<BatchReply>,
    /// `stats` / `shutdown` payload.
    pub stats: Option<StatsReply>,
}

impl Response {
    /// An `ok` response with no payload (health, bare acks).
    pub fn ok(id: Option<u64>, verb: &str) -> Response {
        Response {
            id,
            status: "ok".into(),
            verb: Some(verb.to_string()),
            error: None,
            solve: None,
            batch: None,
            stats: None,
        }
    }

    /// An `ok` response carrying a solve payload.
    pub fn ok_solve(id: Option<u64>, payload: SolveReply) -> Response {
        Response { solve: Some(payload), ..Response::ok(id, verb::SOLVE) }
    }

    /// An `ok` response carrying a batch payload.
    pub fn ok_batch(id: Option<u64>, payload: BatchReply) -> Response {
        Response { batch: Some(payload), ..Response::ok(id, verb::BATCH) }
    }

    /// An `ok` response carrying a stats payload under the given verb
    /// (`stats`, or `shutdown` for the final snapshot).
    pub fn ok_stats(id: Option<u64>, verb: &str, payload: StatsReply) -> Response {
        Response { stats: Some(payload), ..Response::ok(id, verb) }
    }

    /// An `error` response with the given typed kind.
    pub fn error(id: Option<u64>, verb: Option<&str>, kind: &str, message: String) -> Response {
        Response {
            id,
            status: "error".into(),
            verb: verb.map(str::to_string),
            error: Some(ErrorInfo { kind: kind.to_string(), message }),
            solve: None,
            batch: None,
            stats: None,
        }
    }

    /// True for `"status": "ok"`.
    pub fn is_ok(&self) -> bool {
        self.status == "ok"
    }

    /// The error kind, when this is an error response.
    pub fn error_kind(&self) -> Option<&str> {
        self.error.as_ref().map(|e| e.kind.as_str())
    }
}

// ---------------------------------------------------------------------
// Hand-written (de)serialization: omitted field == null, compact frames.
// ---------------------------------------------------------------------

fn take_field(entries: &mut Vec<(String, Value)>, name: &str) -> Option<Value> {
    entries.iter().position(|(k, _)| k == name).map(|i| entries.remove(i).1)
}

fn opt_field<T, E>(entries: &mut Vec<(String, Value)>, name: &str) -> Result<Option<T>, E>
where
    T: for<'a> Deserialize<'a>,
    E: serde::de::Error,
{
    match take_field(entries, name) {
        None | Some(Value::Null) => Ok(None),
        Some(v) => from_value(v).map(Some).map_err(|e| E::custom(format!("field `{name}`: {e}"))),
    }
}

fn push_field<T: Serialize, E: serde::ser::Error>(
    entries: &mut Vec<(String, Value)>,
    name: &str,
    value: &T,
) -> Result<(), E> {
    entries.push((name.to_string(), to_value(value).map_err(E::custom)?));
    Ok(())
}

fn push_opt<T: Serialize, E: serde::ser::Error>(
    entries: &mut Vec<(String, Value)>,
    name: &str,
    value: &Option<T>,
) -> Result<(), E> {
    if let Some(v) = value {
        push_field(entries, name, v)?;
    }
    Ok(())
}

impl Serialize for Request {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut m = Vec::new();
        push_opt(&mut m, "id", &self.id)?;
        push_field(&mut m, "verb", &self.verb)?;
        push_opt(&mut m, "instance", &self.instance)?;
        push_opt(&mut m, "instances", &self.instances)?;
        push_opt(&mut m, "method", &self.method)?;
        push_opt(&mut m, "backend", &self.backend)?;
        push_opt(&mut m, "polish", &self.polish)?;
        push_opt(&mut m, "seed", &self.seed)?;
        push_opt(&mut m, "shard", &self.shard)?;
        push_opt(&mut m, "timeout_ms", &self.timeout_ms)?;
        push_opt(&mut m, "include_schedule", &self.include_schedule)?;
        serializer.serialize_value(Value::Map(m))
    }
}

impl<'de> Deserialize<'de> for Request {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let mut entries = match deserializer.deserialize_value()? {
            Value::Map(m) => m,
            other => {
                return Err(serde::de::Error::custom(format!(
                    "expected a request object, got {}",
                    other.kind()
                )))
            }
        };
        let req = Request {
            id: opt_field(&mut entries, "id")?,
            verb: opt_field::<String, D::Error>(&mut entries, "verb")?
                .ok_or_else(|| serde::de::Error::custom("missing field `verb`"))?,
            instance: opt_field(&mut entries, "instance")?,
            instances: opt_field(&mut entries, "instances")?,
            method: opt_field(&mut entries, "method")?,
            backend: opt_field(&mut entries, "backend")?,
            polish: opt_field(&mut entries, "polish")?,
            seed: opt_field(&mut entries, "seed")?,
            shard: opt_field(&mut entries, "shard")?,
            timeout_ms: opt_field(&mut entries, "timeout_ms")?,
            include_schedule: opt_field(&mut entries, "include_schedule")?,
        };
        if let Some((key, _)) = entries.first() {
            return Err(serde::de::Error::custom(format!("unknown field `{key}`")));
        }
        Ok(req)
    }
}

impl Serialize for Response {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut m = Vec::new();
        // `id` is always present (null when unknown) so clients can
        // correlate even rejections of unparseable frames.
        push_field(&mut m, "id", &self.id)?;
        push_field(&mut m, "status", &self.status)?;
        push_opt(&mut m, "verb", &self.verb)?;
        push_opt(&mut m, "error", &self.error)?;
        push_opt(&mut m, "solve", &self.solve)?;
        push_opt(&mut m, "batch", &self.batch)?;
        push_opt(&mut m, "stats", &self.stats)?;
        serializer.serialize_value(Value::Map(m))
    }
}

impl<'de> Deserialize<'de> for Response {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let mut entries = match deserializer.deserialize_value()? {
            Value::Map(m) => m,
            other => {
                return Err(serde::de::Error::custom(format!(
                    "expected a response object, got {}",
                    other.kind()
                )))
            }
        };
        Ok(Response {
            id: opt_field(&mut entries, "id")?,
            status: opt_field::<String, D::Error>(&mut entries, "status")?
                .ok_or_else(|| serde::de::Error::custom("missing field `status`"))?,
            verb: opt_field(&mut entries, "verb")?,
            error: opt_field(&mut entries, "error")?,
            solve: opt_field(&mut entries, "solve")?,
            batch: opt_field(&mut entries, "batch")?,
            stats: opt_field(&mut entries, "stats")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atsched_core::instance::Job;

    fn inst() -> Instance {
        Instance::new(2, vec![Job::new(0, 4, 2), Job::new(1, 3, 1)]).unwrap()
    }

    #[test]
    fn request_round_trips_and_skips_absent_fields() {
        let req = Request::solve(&inst())
            .with_id(7)
            .with_method("nested")
            .with_shard("force")
            .with_timeout_ms(500);
        let line = serde_json::to_string(&req).unwrap();
        assert!(!line.contains('\n'), "frames are single lines: {line}");
        assert!(!line.contains("seed"), "absent fields are omitted: {line}");
        let back: Request = serde_json::from_str(&line).unwrap();
        assert_eq!(back, req);
    }

    #[test]
    fn sparse_hand_typed_request_parses() {
        let req: Request = serde_json::from_str(r#"{"verb":"stats"}"#).unwrap();
        assert_eq!(req.verb, verb::STATS);
        assert_eq!(req.id, None);
        assert_eq!(req.instance, None);

        let req: Request =
            serde_json::from_str(r#"{"id":3,"verb":"solve","instance":{"g":2,"jobs":[{"release":0,"deadline":4,"processing":2}]},"polish":true}"#)
                .unwrap();
        assert_eq!(req.id, Some(3));
        assert_eq!(req.polish, Some(true));
        assert_eq!(req.instance.unwrap().jobs.len(), 1);
    }

    #[test]
    fn unknown_fields_and_missing_verb_are_rejected() {
        assert!(serde_json::from_str::<Request>(r#"{"verb":"solve","bogus":1}"#).is_err());
        assert!(serde_json::from_str::<Request>(r#"{"id":1}"#).is_err());
        assert!(serde_json::from_str::<Request>(r#"[1,2]"#).is_err());
    }

    #[test]
    fn response_round_trips() {
        let resp = Response::ok_solve(
            Some(9),
            SolveReply {
                active_slots: 4,
                method: "nested".into(),
                certified_ratio: Some(1.25),
                cached: false,
                elapsed_ms: 1.5,
                schedule: None,
            },
        );
        let line = serde_json::to_string(&resp).unwrap();
        assert!(line.contains("\"id\":9"), "{line}");
        assert!(!line.contains("error"), "{line}");
        let back: Response = serde_json::from_str(&line).unwrap();
        assert!(back.is_ok());
        assert_eq!(back.id, Some(9));
        assert_eq!(back.solve.unwrap().active_slots, 4);

        let resp = Response::error(None, Some(verb::SOLVE), kind::OVERLOADED, "queue full".into());
        let line = serde_json::to_string(&resp).unwrap();
        assert!(line.starts_with("{\"id\":null"), "{line}");
        let back: Response = serde_json::from_str(&line).unwrap();
        assert_eq!(back.error_kind(), Some(kind::OVERLOADED));
    }
}
