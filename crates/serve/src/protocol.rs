//! The wire protocol: newline-delimited JSON frames.
//!
//! One request per line, one response per line, strictly in order per
//! connection. A request is a JSON object with a `verb` and
//! verb-specific fields; a response echoes the request `id` and carries
//! either a payload (on `"status": "ok"`) or a typed error (on
//! `"status": "error"`). See `DESIGN.md` §8 for example frames.
//!
//! ## Encoding notes
//!
//! Optional request fields may simply be omitted — the hand-written
//! [`Deserialize`] impls treat a missing field and an explicit `null`
//! identically (the vendored serde derive requires every field to be
//! present, which is wrong for a hand-typed wire format). Unknown
//! request fields are rejected so typos fail loudly instead of being
//! silently ignored. Responses likewise omit absent payloads.

use atsched_core::delta::JobDelta;
use atsched_core::instance::{Instance, Job};
use atsched_core::schedule::Schedule;
use atsched_engine::{EngineTotals, Percentiles};
use atsched_obs::RegistrySnapshot;
use serde::de::{from_value, Deserializer};
use serde::ser::{to_value, Serializer};
use serde::value::Value;
use serde::{Deserialize, Serialize};

/// The protocol version this build speaks.
///
/// Version history:
/// - **1** — `solve` / `batch` / `stats` / `health` / `shutdown`.
///   Requests carry no `version` field; its absence *means* v1.
/// - **2** — adds the session verbs `open` / `amend` / `close` and the
///   `version` / `session` / `delta` request fields. Responses gain
///   `version` and `session` echoes (v1 clients ignore unknown response
///   fields by construction, so these are always safe to send).
///
/// Servers answer requests declaring a *newer* version than they speak
/// with a typed [`kind::UNSUPPORTED_VERSION`] error; session verbs
/// require the client to declare `version ≥ 2` so that a v2 frame
/// mis-delivered to a v1 deployment fails loudly on the field name
/// rather than on a missing capability.
pub const PROTOCOL_VERSION: u32 = 2;

/// Request verbs.
pub mod verb {
    /// Solve a single instance.
    pub const SOLVE: &str = "solve";
    /// Solve a list of instances through the batch engine.
    pub const BATCH: &str = "batch";
    /// Service counters, cache statistics, and latency percentiles.
    pub const STATS: &str = "stats";
    /// Liveness probe.
    pub const HEALTH: &str = "health";
    /// Graceful shutdown: stop accepting, drain, reply with final stats.
    pub const SHUTDOWN: &str = "shutdown";
    /// Open an incremental-solving session on an instance (v2).
    pub const OPEN: &str = "open";
    /// Amend an open session's instance and re-solve incrementally (v2).
    pub const AMEND: &str = "amend";
    /// Close an open session (v2).
    pub const CLOSE: &str = "close";
    /// Prometheus-style text exposition of the metric registry,
    /// answered inline by the reactor (never touches solver pools).
    pub const METRICS: &str = "metrics";
}

/// Typed error kinds carried by `"status": "error"` responses.
pub mod kind {
    /// Malformed frame, unknown verb/field, or invalid instance.
    pub const BAD_REQUEST: &str = "bad_request";
    /// The admission queue was full; the request was shed, not queued.
    pub const OVERLOADED: &str = "overloaded";
    /// The service is draining and no longer accepts work.
    pub const SHUTTING_DOWN: &str = "shutting_down";
    /// The instance admits no feasible schedule.
    pub const INFEASIBLE: &str = "infeasible";
    /// The per-request wall-clock deadline ran out.
    pub const TIMED_OUT: &str = "timed_out";
    /// The solve errored or panicked (contained).
    pub const FAILED: &str = "failed";
    /// The server lost the worker handling the request.
    pub const INTERNAL: &str = "internal";
    /// The request declared a protocol version this server does not
    /// speak (or used a versioned verb without declaring one).
    pub const UNSUPPORTED_VERSION: &str = "unsupported_version";
    /// The `session` id is not (or no longer) open — never issued,
    /// closed, or evicted by the server's session TTL.
    pub const UNKNOWN_SESSION: &str = "unknown_session";
}

/// Wire form of a [`JobDelta`]: three op lists, all optional on the
/// wire (`{"add": [...], "remove": [...], "modify": [...]}`).
///
/// `remove` and `modify` reference **pre-amend** job ids — every op in
/// one delta names jobs of the same snapshot, so op order within a
/// delta never matters (duplicate references are rejected
/// server-side). Added jobs are appended after the survivors in list
/// order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DeltaSpec {
    /// Jobs to append.
    pub add: Vec<Job>,
    /// Pre-amend ids of jobs to remove.
    pub remove: Vec<u64>,
    /// Window changes, by pre-amend id.
    pub modify: Vec<WindowChange>,
}

/// One `modify` entry of a [`DeltaSpec`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WindowChange {
    /// Pre-amend id of the job to re-window.
    pub job: u64,
    /// New release time.
    pub release: i64,
    /// New deadline.
    pub deadline: i64,
}

impl DeltaSpec {
    /// An empty delta.
    pub fn new() -> DeltaSpec {
        DeltaSpec::default()
    }

    /// Append a job.
    #[allow(clippy::should_implement_trait)] // builder verb, not arithmetic
    pub fn add(mut self, job: Job) -> DeltaSpec {
        self.add.push(job);
        self
    }

    /// Remove the job with this pre-amend id.
    pub fn remove(mut self, job: u64) -> DeltaSpec {
        self.remove.push(job);
        self
    }

    /// Re-window the job with this pre-amend id.
    pub fn modify_window(mut self, job: u64, release: i64, deadline: i64) -> DeltaSpec {
        self.modify.push(WindowChange { job, release, deadline });
        self
    }

    /// True when no op is present.
    pub fn is_empty(&self) -> bool {
        self.add.is_empty() && self.remove.is_empty() && self.modify.is_empty()
    }

    /// Lower onto the engine's typed delta.
    pub fn to_delta(&self) -> JobDelta {
        let mut delta = JobDelta::new();
        for w in &self.modify {
            delta = delta.modify_window(w.job as usize, w.release, w.deadline);
        }
        for &j in &self.remove {
            delta = delta.remove(j as usize);
        }
        for job in &self.add {
            delta = delta.add(*job);
        }
        delta
    }
}

/// A request frame.
///
/// Only `verb` is mandatory; everything else is verb-specific and
/// optional on the wire (server-side defaults apply).
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Client-chosen correlation id, echoed verbatim in the response.
    pub id: Option<u64>,
    /// One of the [`verb`] constants.
    pub verb: String,
    /// The instance to solve (`solve`).
    pub instance: Option<Instance>,
    /// The instances to solve (`batch`).
    pub instances: Option<Vec<Instance>>,
    /// Solving path: `auto` | `nested` | `general` | `greedy` (default `auto`).
    pub method: Option<String>,
    /// LP backend: `exact` | `float` | `snap` (default `exact`).
    pub backend: Option<String>,
    /// Arithmetic discipline for the exact backend's LP stage:
    /// `hybrid` | `exact` | `f64-unchecked` (default `hybrid`).
    pub precision: Option<String>,
    /// LP solver path for the exact backend:
    /// `auto` | `tree` | `simplex` (default `auto`).
    pub lp_path: Option<String>,
    /// Enable the slot-closing post-optimization (default false).
    pub polish: Option<bool>,
    /// Seed for the general path's shuffled candidate.
    pub seed: Option<u64>,
    /// Root-decomposition policy: `auto` | `off` | `force` (default `auto`).
    pub shard: Option<String>,
    /// Per-request wall-clock deadline in milliseconds (overrides the
    /// server default).
    pub timeout_ms: Option<u64>,
    /// Return the full schedule in the reply, not just its summary.
    pub include_schedule: Option<bool>,
    /// Protocol version the client speaks; absent means 1. Required
    /// (≥ 2) for the session verbs.
    pub version: Option<u32>,
    /// Session id for `amend` / `close`.
    pub session: Option<u64>,
    /// Instance amendment for `amend`.
    pub delta: Option<DeltaSpec>,
}

impl Request {
    /// A bare request with the given verb and no payload.
    pub fn new(verb: &str) -> Request {
        Request {
            id: None,
            verb: verb.to_string(),
            instance: None,
            instances: None,
            method: None,
            backend: None,
            precision: None,
            lp_path: None,
            polish: None,
            seed: None,
            shard: None,
            timeout_ms: None,
            include_schedule: None,
            version: None,
            session: None,
            delta: None,
        }
    }

    /// A `solve` request for one instance.
    pub fn solve(inst: &Instance) -> Request {
        Request { instance: Some(inst.clone()), ..Request::new(verb::SOLVE) }
    }

    /// A `batch` request for a list of instances.
    pub fn batch(instances: &[Instance]) -> Request {
        Request { instances: Some(instances.to_vec()), ..Request::new(verb::BATCH) }
    }

    /// A `stats` request.
    pub fn stats() -> Request {
        Request::new(verb::STATS)
    }

    /// A `health` request.
    pub fn health() -> Request {
        Request::new(verb::HEALTH)
    }

    /// A `metrics` request (Prometheus-style text exposition).
    pub fn metrics() -> Request {
        Request::new(verb::METRICS)
    }

    /// A `shutdown` request.
    pub fn shutdown() -> Request {
        Request::new(verb::SHUTDOWN)
    }

    /// An `open` request: start an incremental session on an instance.
    /// Declares [`PROTOCOL_VERSION`].
    pub fn open(inst: &Instance) -> Request {
        Request {
            instance: Some(inst.clone()),
            version: Some(PROTOCOL_VERSION),
            ..Request::new(verb::OPEN)
        }
    }

    /// An `amend` request against an open session. Declares
    /// [`PROTOCOL_VERSION`].
    pub fn amend(session: u64, delta: &DeltaSpec) -> Request {
        Request {
            session: Some(session),
            delta: Some(delta.clone()),
            version: Some(PROTOCOL_VERSION),
            ..Request::new(verb::AMEND)
        }
    }

    /// A `close` request for an open session. Declares
    /// [`PROTOCOL_VERSION`].
    pub fn close(session: u64) -> Request {
        Request {
            session: Some(session),
            version: Some(PROTOCOL_VERSION),
            ..Request::new(verb::CLOSE)
        }
    }

    /// Set the correlation id.
    pub fn with_id(mut self, id: u64) -> Request {
        self.id = Some(id);
        self
    }

    /// Set the solving path (`auto` | `nested` | `general` | `greedy`).
    pub fn with_method(mut self, method: &str) -> Request {
        self.method = Some(method.to_string());
        self
    }

    /// Set the LP backend (`exact` | `float` | `snap`).
    pub fn with_backend(mut self, backend: &str) -> Request {
        self.backend = Some(backend.to_string());
        self
    }

    /// Set the exact backend's arithmetic discipline
    /// (`hybrid` | `exact` | `f64-unchecked`).
    pub fn with_precision(mut self, precision: &str) -> Request {
        self.precision = Some(precision.to_string());
        self
    }

    /// Set the exact backend's LP solver path
    /// (`auto` | `tree` | `simplex`).
    pub fn with_lp_path(mut self, lp_path: &str) -> Request {
        self.lp_path = Some(lp_path.to_string());
        self
    }

    /// Enable or disable the polish post-optimization.
    pub fn with_polish(mut self, polish: bool) -> Request {
        self.polish = Some(polish);
        self
    }

    /// Set the shuffle seed for the general path.
    pub fn with_seed(mut self, seed: u64) -> Request {
        self.seed = Some(seed);
        self
    }

    /// Set the root-decomposition policy (`auto` | `off` | `force`).
    pub fn with_shard(mut self, shard: &str) -> Request {
        self.shard = Some(shard.to_string());
        self
    }

    /// Set the per-request deadline in milliseconds.
    pub fn with_timeout_ms(mut self, ms: u64) -> Request {
        self.timeout_ms = Some(ms);
        self
    }

    /// Ask for the full schedule in the reply.
    pub fn with_schedule(mut self) -> Request {
        self.include_schedule = Some(true);
        self
    }

    /// Declare an explicit protocol version (tests and forward-compat
    /// probes; the session constructors set this automatically).
    pub fn with_version(mut self, version: u32) -> Request {
        self.version = Some(version);
        self
    }

    /// Set the session id.
    pub fn with_session(mut self, session: u64) -> Request {
        self.session = Some(session);
        self
    }
}

/// Payload of a successful `solve`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SolveReply {
    /// Active slots of the verified schedule.
    pub active_slots: u64,
    /// Path that produced it: `nested` | `general` | `greedy`.
    pub method: String,
    /// Per-instance certified approximation ratio, when available.
    pub certified_ratio: Option<f64>,
    /// Whether the result came from the engine's solve cache.
    pub cached: bool,
    /// Solve execution time in milliseconds (excludes queue wait).
    pub elapsed_ms: f64,
    /// The schedule itself, when `include_schedule` was set.
    pub schedule: Option<Schedule>,
}

/// One instance's outcome inside a `batch` reply.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BatchItemReply {
    /// Position in the request's `instances` array.
    pub index: u64,
    /// `solved` | `infeasible` | `timed_out` | `failed`.
    pub outcome: String,
    /// Active slots, for solved items.
    pub active_slots: Option<u64>,
    /// Whether a solved item came from the cache.
    pub cached: Option<bool>,
    /// Failure detail, for failed items.
    pub message: Option<String>,
}

/// Payload of a successful `batch`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BatchReply {
    /// Per-instance outcomes, in input order.
    pub items: Vec<BatchItemReply>,
    /// Instances in the batch.
    pub total: u64,
    /// Verified schedules produced.
    pub solved: u64,
    /// Provably infeasible instances.
    pub infeasible: u64,
    /// Items cut off by the per-solve budget.
    pub timed_out: u64,
    /// Items that errored or panicked.
    pub failed: u64,
    /// End-to-end batch wall-clock, milliseconds.
    pub wall_clock_ms: f64,
    /// Cache hits during this batch.
    pub cache_hits: u64,
    /// Cache misses during this batch.
    pub cache_misses: u64,
}

/// One router shard's slice of the stats plane.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardStats {
    /// Router shard index.
    pub shard: u64,
    /// Requests waiting in this shard's admission queue right now.
    pub queue_len: u64,
    /// This shard's admission-queue capacity.
    pub queue_capacity: u64,
    /// Wire-visible sessions owned by this shard's engine.
    pub sessions_open: u64,
    /// This shard engine's lifetime cache hits.
    pub cache_hits: u64,
    /// This shard engine's lifetime cache misses.
    pub cache_misses: u64,
    /// Requests routed to this shard, lifetime.
    pub requests: u64,
    /// Requests per second routed to this shard, last 10 seconds.
    pub rate_10s: f64,
    /// Requests per second routed to this shard, last minute.
    pub rate_1m: f64,
    /// Requests per second routed to this shard, last five minutes.
    pub rate_5m: f64,
}

/// One completed stage of a traced request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageTiming {
    /// Span name (`solve`, `lp`, `round`, ...).
    pub stage: String,
    /// Stage wall time, milliseconds.
    pub ms: f64,
}

/// One recent slow or errored request, from the server's bounded event
/// log: identity, owning shard, outcome, and per-stage timings.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SlowRequest {
    /// Server-assigned request id (echoed in the reply's `request`).
    pub request: u64,
    /// Request verb.
    pub verb: String,
    /// Owning router shard, when the request was routed.
    pub shard: Option<u64>,
    /// End-to-end latency (admission → response), milliseconds.
    pub total_ms: f64,
    /// Error kind for failed requests (`None` = success).
    pub error: Option<String>,
    /// Stage breadcrumbs in completion order.
    pub stages: Vec<StageTiming>,
}

/// Payload of a successful `stats` (and of the `shutdown` ack, as the
/// final post-drain snapshot).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct StatsReply {
    /// Time since the server started, milliseconds.
    pub uptime_ms: f64,
    /// Frames read off connections (including malformed ones).
    pub received: u64,
    /// Frames rejected before admission (parse errors, unknown verbs,
    /// invalid instances, oversized lines).
    pub bad_requests: u64,
    /// Requests admitted into the solve queue.
    pub accepted: u64,
    /// Requests shed with a typed `overloaded` response.
    pub rejected_overload: u64,
    /// Requests refused because the service was draining.
    pub rejected_shutdown: u64,
    /// Admitted requests that received a response (any outcome).
    pub completed: u64,
    /// Completed requests whose outcome was `infeasible` or `failed`.
    pub solve_errors: u64,
    /// Completed requests that hit their wall-clock deadline.
    pub timed_out: u64,
    /// Admitted requests not yet answered.
    pub inflight: u64,
    /// Requests currently waiting in the admission queue.
    pub queue_len: u64,
    /// Admission queue capacity (the load-shedding threshold).
    pub queue_capacity: u64,
    /// Engine cache hits over the server's lifetime.
    pub cache_hits: u64,
    /// Engine cache misses over the server's lifetime.
    pub cache_misses: u64,
    /// `hits / (hits + misses)`, 0 with no lookups.
    pub cache_hit_rate: f64,
    /// Memoized solve outcomes currently held.
    pub cache_entries: u64,
    /// Wire-visible sessions open right now (reported after an eager
    /// TTL sweep, so no expired stragglers are counted).
    pub sessions_open: u64,
    /// Router event-loop workers serving connections (1 unless the
    /// server runs in sharded router mode).
    pub router_workers: u64,
    /// Per-router-shard sections: queue depth, sessions, cache totals,
    /// and windowed request rates for each shard.
    pub shards: Vec<ShardStats>,
    /// Recent slow or errored requests (newest first) from the bounded
    /// server event log, with per-stage timings.
    pub slow: Vec<SlowRequest>,
    /// Lifetime engine outcome counters (summed across router shards).
    pub engine: EngineTotals,
    /// End-to-end latency of completed requests (admission → response),
    /// lifetime histogram percentiles, milliseconds.
    pub latency_ms: Percentiles,
    /// Full metric-registry snapshot: every counter, gauge, and
    /// histogram the server and its solver stack recorded (`serve.*`,
    /// `engine.*`, `lp.*`, `flow.*`, `span.*`).
    pub registry: RegistrySnapshot,
}

/// A typed error payload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ErrorInfo {
    /// One of the [`kind`] constants.
    pub kind: String,
    /// Human-readable detail.
    pub message: String,
}

/// A response frame: `id` echo, `status`, and one payload at most.
#[derive(Debug, Clone)]
pub struct Response {
    /// The request's correlation id (absent when the request was too
    /// malformed to recover one).
    pub id: Option<u64>,
    /// `"ok"` or `"error"`.
    pub status: String,
    /// The request verb, echoed for log readability.
    pub verb: Option<String>,
    /// Error payload (`status == "error"`).
    pub error: Option<ErrorInfo>,
    /// `solve` payload.
    pub solve: Option<SolveReply>,
    /// `batch` payload.
    pub batch: Option<BatchReply>,
    /// `stats` / `shutdown` payload.
    pub stats: Option<StatsReply>,
    /// `metrics` payload: Prometheus-style text exposition of the
    /// metric registry.
    pub metrics: Option<String>,
    /// Protocol version the server spoke for this exchange (v2+
    /// servers always set it; v1 clients ignore it).
    pub version: Option<u32>,
    /// Session id echo for `open` / `amend` / `close` exchanges.
    pub session: Option<u64>,
    /// Server-assigned request id for admitted work — the handle that
    /// correlates a reply with its entry in the slow-request log.
    pub request: Option<u64>,
}

impl Response {
    /// An `ok` response with no payload (health, bare acks).
    pub fn ok(id: Option<u64>, verb: &str) -> Response {
        Response {
            id,
            status: "ok".into(),
            verb: Some(verb.to_string()),
            error: None,
            solve: None,
            batch: None,
            stats: None,
            metrics: None,
            version: None,
            session: None,
            request: None,
        }
    }

    /// An `ok` response carrying a solve payload.
    pub fn ok_solve(id: Option<u64>, payload: SolveReply) -> Response {
        Response { solve: Some(payload), ..Response::ok(id, verb::SOLVE) }
    }

    /// An `ok` response carrying a batch payload.
    pub fn ok_batch(id: Option<u64>, payload: BatchReply) -> Response {
        Response { batch: Some(payload), ..Response::ok(id, verb::BATCH) }
    }

    /// An `ok` response carrying a stats payload under the given verb
    /// (`stats`, or `shutdown` for the final snapshot).
    pub fn ok_stats(id: Option<u64>, verb: &str, payload: StatsReply) -> Response {
        Response { stats: Some(payload), ..Response::ok(id, verb) }
    }

    /// An `ok` response carrying a Prometheus-style text exposition.
    pub fn ok_metrics(id: Option<u64>, exposition: String) -> Response {
        Response { metrics: Some(exposition), ..Response::ok(id, verb::METRICS) }
    }

    /// An `error` response with the given typed kind.
    pub fn error(id: Option<u64>, verb: Option<&str>, kind: &str, message: String) -> Response {
        Response {
            id,
            status: "error".into(),
            verb: verb.map(str::to_string),
            error: Some(ErrorInfo { kind: kind.to_string(), message }),
            solve: None,
            batch: None,
            stats: None,
            metrics: None,
            version: None,
            session: None,
            request: None,
        }
    }

    /// Attach a session id echo.
    pub fn with_session(mut self, session: u64) -> Response {
        self.session = Some(session);
        self
    }

    /// Stamp the server-assigned request id.
    pub fn with_request(mut self, request: u64) -> Response {
        self.request = Some(request);
        self
    }

    /// Stamp the protocol version the server speaks.
    pub fn with_version(mut self, version: u32) -> Response {
        self.version = Some(version);
        self
    }

    /// True for `"status": "ok"`.
    pub fn is_ok(&self) -> bool {
        self.status == "ok"
    }

    /// The error kind, when this is an error response.
    pub fn error_kind(&self) -> Option<&str> {
        self.error.as_ref().map(|e| e.kind.as_str())
    }
}

// ---------------------------------------------------------------------
// Hand-written (de)serialization: omitted field == null, compact frames.
// ---------------------------------------------------------------------

fn take_field(entries: &mut Vec<(String, Value)>, name: &str) -> Option<Value> {
    entries.iter().position(|(k, _)| k == name).map(|i| entries.remove(i).1)
}

fn opt_field<T, E>(entries: &mut Vec<(String, Value)>, name: &str) -> Result<Option<T>, E>
where
    T: for<'a> Deserialize<'a>,
    E: serde::de::Error,
{
    match take_field(entries, name) {
        None | Some(Value::Null) => Ok(None),
        Some(v) => from_value(v).map(Some).map_err(|e| E::custom(format!("field `{name}`: {e}"))),
    }
}

fn push_field<T: Serialize, E: serde::ser::Error>(
    entries: &mut Vec<(String, Value)>,
    name: &str,
    value: &T,
) -> Result<(), E> {
    entries.push((name.to_string(), to_value(value).map_err(E::custom)?));
    Ok(())
}

fn push_opt<T: Serialize, E: serde::ser::Error>(
    entries: &mut Vec<(String, Value)>,
    name: &str,
    value: &Option<T>,
) -> Result<(), E> {
    if let Some(v) = value {
        push_field(entries, name, v)?;
    }
    Ok(())
}

impl Serialize for Request {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut m = Vec::new();
        push_opt(&mut m, "id", &self.id)?;
        push_field(&mut m, "verb", &self.verb)?;
        push_opt(&mut m, "instance", &self.instance)?;
        push_opt(&mut m, "instances", &self.instances)?;
        push_opt(&mut m, "method", &self.method)?;
        push_opt(&mut m, "backend", &self.backend)?;
        push_opt(&mut m, "precision", &self.precision)?;
        push_opt(&mut m, "lp_path", &self.lp_path)?;
        push_opt(&mut m, "polish", &self.polish)?;
        push_opt(&mut m, "seed", &self.seed)?;
        push_opt(&mut m, "shard", &self.shard)?;
        push_opt(&mut m, "timeout_ms", &self.timeout_ms)?;
        push_opt(&mut m, "include_schedule", &self.include_schedule)?;
        push_opt(&mut m, "version", &self.version)?;
        push_opt(&mut m, "session", &self.session)?;
        push_opt(&mut m, "delta", &self.delta)?;
        serializer.serialize_value(Value::Map(m))
    }
}

impl<'de> Deserialize<'de> for Request {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let mut entries = match deserializer.deserialize_value()? {
            Value::Map(m) => m,
            other => {
                return Err(serde::de::Error::custom(format!(
                    "expected a request object, got {}",
                    other.kind()
                )))
            }
        };
        let req = Request {
            id: opt_field(&mut entries, "id")?,
            verb: opt_field::<String, D::Error>(&mut entries, "verb")?
                .ok_or_else(|| serde::de::Error::custom("missing field `verb`"))?,
            instance: opt_field(&mut entries, "instance")?,
            instances: opt_field(&mut entries, "instances")?,
            method: opt_field(&mut entries, "method")?,
            backend: opt_field(&mut entries, "backend")?,
            precision: opt_field(&mut entries, "precision")?,
            lp_path: opt_field(&mut entries, "lp_path")?,
            polish: opt_field(&mut entries, "polish")?,
            seed: opt_field(&mut entries, "seed")?,
            shard: opt_field(&mut entries, "shard")?,
            timeout_ms: opt_field(&mut entries, "timeout_ms")?,
            include_schedule: opt_field(&mut entries, "include_schedule")?,
            version: opt_field(&mut entries, "version")?,
            session: opt_field(&mut entries, "session")?,
            delta: opt_field(&mut entries, "delta")?,
        };
        if let Some((key, _)) = entries.first() {
            return Err(serde::de::Error::custom(format!("unknown field `{key}`")));
        }
        Ok(req)
    }
}

impl Serialize for Response {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut m = Vec::new();
        // `id` is always present (null when unknown) so clients can
        // correlate even rejections of unparseable frames.
        push_field(&mut m, "id", &self.id)?;
        push_field(&mut m, "status", &self.status)?;
        push_opt(&mut m, "verb", &self.verb)?;
        push_opt(&mut m, "error", &self.error)?;
        push_opt(&mut m, "solve", &self.solve)?;
        push_opt(&mut m, "batch", &self.batch)?;
        push_opt(&mut m, "stats", &self.stats)?;
        push_opt(&mut m, "metrics", &self.metrics)?;
        push_opt(&mut m, "version", &self.version)?;
        push_opt(&mut m, "session", &self.session)?;
        push_opt(&mut m, "request", &self.request)?;
        serializer.serialize_value(Value::Map(m))
    }
}

impl<'de> Deserialize<'de> for Response {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let mut entries = match deserializer.deserialize_value()? {
            Value::Map(m) => m,
            other => {
                return Err(serde::de::Error::custom(format!(
                    "expected a response object, got {}",
                    other.kind()
                )))
            }
        };
        Ok(Response {
            id: opt_field(&mut entries, "id")?,
            status: opt_field::<String, D::Error>(&mut entries, "status")?
                .ok_or_else(|| serde::de::Error::custom("missing field `status`"))?,
            verb: opt_field(&mut entries, "verb")?,
            error: opt_field(&mut entries, "error")?,
            solve: opt_field(&mut entries, "solve")?,
            batch: opt_field(&mut entries, "batch")?,
            stats: opt_field(&mut entries, "stats")?,
            metrics: opt_field(&mut entries, "metrics")?,
            version: opt_field(&mut entries, "version")?,
            session: opt_field(&mut entries, "session")?,
            request: opt_field(&mut entries, "request")?,
        })
    }
}

impl Serialize for DeltaSpec {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut m = Vec::new();
        if !self.add.is_empty() {
            push_field(&mut m, "add", &self.add)?;
        }
        if !self.remove.is_empty() {
            push_field(&mut m, "remove", &self.remove)?;
        }
        if !self.modify.is_empty() {
            push_field(&mut m, "modify", &self.modify)?;
        }
        serializer.serialize_value(Value::Map(m))
    }
}

impl<'de> Deserialize<'de> for DeltaSpec {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let mut entries = match deserializer.deserialize_value()? {
            Value::Map(m) => m,
            other => {
                return Err(serde::de::Error::custom(format!(
                    "expected a delta object, got {}",
                    other.kind()
                )))
            }
        };
        let spec = DeltaSpec {
            add: opt_field(&mut entries, "add")?.unwrap_or_default(),
            remove: opt_field(&mut entries, "remove")?.unwrap_or_default(),
            modify: opt_field(&mut entries, "modify")?.unwrap_or_default(),
        };
        // Same loudness contract as Request: a typo'd op list must not
        // silently no-op.
        if let Some((key, _)) = entries.first() {
            return Err(serde::de::Error::custom(format!("unknown delta field `{key}`")));
        }
        Ok(spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atsched_core::instance::Job;

    fn inst() -> Instance {
        Instance::new(2, vec![Job::new(0, 4, 2), Job::new(1, 3, 1)]).unwrap()
    }

    #[test]
    fn request_round_trips_and_skips_absent_fields() {
        let req = Request::solve(&inst())
            .with_id(7)
            .with_method("nested")
            .with_shard("force")
            .with_precision("exact")
            .with_lp_path("simplex")
            .with_timeout_ms(500);
        let line = serde_json::to_string(&req).unwrap();
        assert!(!line.contains('\n'), "frames are single lines: {line}");
        assert!(!line.contains("seed"), "absent fields are omitted: {line}");
        let back: Request = serde_json::from_str(&line).unwrap();
        assert_eq!(back, req);
    }

    #[test]
    fn sparse_hand_typed_request_parses() {
        let req: Request = serde_json::from_str(r#"{"verb":"stats"}"#).unwrap();
        assert_eq!(req.verb, verb::STATS);
        assert_eq!(req.id, None);
        assert_eq!(req.instance, None);

        let req: Request =
            serde_json::from_str(r#"{"id":3,"verb":"solve","instance":{"g":2,"jobs":[{"release":0,"deadline":4,"processing":2}]},"polish":true}"#)
                .unwrap();
        assert_eq!(req.id, Some(3));
        assert_eq!(req.polish, Some(true));
        assert_eq!(req.instance.unwrap().jobs.len(), 1);
    }

    #[test]
    fn unknown_fields_and_missing_verb_are_rejected() {
        assert!(serde_json::from_str::<Request>(r#"{"verb":"solve","bogus":1}"#).is_err());
        assert!(serde_json::from_str::<Request>(r#"{"id":1}"#).is_err());
        assert!(serde_json::from_str::<Request>(r#"[1,2]"#).is_err());
    }

    #[test]
    fn v2_session_requests_round_trip() {
        let req = Request::open(&inst()).with_id(1).with_shard("force");
        let line = serde_json::to_string(&req).unwrap();
        assert!(line.contains("\"version\":2"), "{line}");
        let back: Request = serde_json::from_str(&line).unwrap();
        assert_eq!(back, req);

        let delta = DeltaSpec::new().add(Job::new(1, 3, 1)).remove(0).modify_window(1, 0, 4);
        let req = Request::amend(42, &delta).with_id(2);
        let line = serde_json::to_string(&req).unwrap();
        assert!(line.contains("\"session\":42"), "{line}");
        let back: Request = serde_json::from_str(&line).unwrap();
        assert_eq!(back, req);
        let spec = back.delta.unwrap();
        assert_eq!(spec.add.len(), 1);
        assert_eq!(spec.remove, vec![0]);
        assert_eq!(spec.modify.len(), 1);

        let req = Request::close(42).with_id(3);
        let back: Request = serde_json::from_str(&serde_json::to_string(&req).unwrap()).unwrap();
        assert_eq!(back, req);
    }

    #[test]
    fn delta_spec_tolerates_missing_lists_and_rejects_typos() {
        let spec: DeltaSpec = serde_json::from_str(r#"{"remove":[3]}"#).unwrap();
        assert!(spec.add.is_empty());
        assert_eq!(spec.remove, vec![3]);
        assert!(spec.modify.is_empty());

        let empty: DeltaSpec = serde_json::from_str("{}").unwrap();
        assert!(empty.is_empty());
        // An empty delta serializes to the empty object.
        assert_eq!(serde_json::to_string(&DeltaSpec::new()).unwrap(), "{}");

        assert!(serde_json::from_str::<DeltaSpec>(r#"{"removes":[3]}"#).is_err());
    }

    #[test]
    fn version_less_frames_stay_v1_shaped() {
        // A v1 client's frame — no version — still parses, and
        // serializing a v1-style request emits no v2 fields.
        let req: Request = serde_json::from_str(r#"{"id":1,"verb":"stats"}"#).unwrap();
        assert_eq!(req.version, None);
        let line = serde_json::to_string(&Request::stats().with_id(1)).unwrap();
        assert!(!line.contains("version"), "{line}");
        assert!(!line.contains("session"), "{line}");

        // A v2 response with version/session echoes still parses as a
        // plain ok for a reader that ignores the extra fields.
        let resp = Response::ok(Some(5), verb::OPEN).with_version(PROTOCOL_VERSION).with_session(9);
        let line = serde_json::to_string(&resp).unwrap();
        let back: Response = serde_json::from_str(&line).unwrap();
        assert!(back.is_ok());
        assert_eq!(back.session, Some(9));
        assert_eq!(back.version, Some(PROTOCOL_VERSION));
    }

    #[test]
    fn metrics_and_request_id_round_trip() {
        let resp = Response::ok_metrics(Some(4), "atsched_serve_received 2\n".into());
        let line = serde_json::to_string(&resp).unwrap();
        let back: Response = serde_json::from_str(&line).unwrap();
        assert!(back.is_ok());
        assert_eq!(back.metrics.as_deref(), Some("atsched_serve_received 2\n"));

        let resp = Response::ok(Some(1), verb::SOLVE).with_request(99);
        let line = serde_json::to_string(&resp).unwrap();
        assert!(line.contains("\"request\":99"), "{line}");
        let back: Response = serde_json::from_str(&line).unwrap();
        assert_eq!(back.request, Some(99));

        // Pre-telemetry responses (no `metrics`/`request` keys) still
        // parse — the fields are optional on the wire.
        let back: Response = serde_json::from_str(r#"{"id":1,"status":"ok"}"#).unwrap();
        assert_eq!(back.request, None);
        assert_eq!(back.metrics, None);
    }

    #[test]
    fn slow_request_entries_round_trip_inside_stats() {
        let slow = SlowRequest {
            request: 12,
            verb: "amend".into(),
            shard: Some(1),
            total_ms: 88.5,
            error: None,
            stages: vec![StageTiming { stage: "lp".into(), ms: 80.0 }],
        };
        let line = serde_json::to_string(&slow).unwrap();
        let back: SlowRequest = serde_json::from_str(&line).unwrap();
        assert_eq!(back, slow);

        let shard = ShardStats {
            shard: 0,
            queue_len: 1,
            queue_capacity: 8,
            sessions_open: 2,
            cache_hits: 3,
            cache_misses: 4,
            requests: 7,
            rate_10s: 0.5,
            rate_1m: 0.25,
            rate_5m: 0.05,
        };
        let back: ShardStats =
            serde_json::from_str(&serde_json::to_string(&shard).unwrap()).unwrap();
        assert_eq!(back, shard);
    }

    #[test]
    fn delta_spec_lowers_onto_job_delta() {
        let base = inst();
        let spec = DeltaSpec::new().modify_window(0, 0, 5).add(Job::new(1, 3, 1));
        let next = atsched_core::delta::apply(&base, &spec.to_delta()).unwrap();
        assert_eq!(next.jobs.len(), 3);
        assert_eq!(next.jobs[0].deadline, 5);
    }

    #[test]
    fn response_round_trips() {
        let resp = Response::ok_solve(
            Some(9),
            SolveReply {
                active_slots: 4,
                method: "nested".into(),
                certified_ratio: Some(1.25),
                cached: false,
                elapsed_ms: 1.5,
                schedule: None,
            },
        );
        let line = serde_json::to_string(&resp).unwrap();
        assert!(line.contains("\"id\":9"), "{line}");
        assert!(!line.contains("error"), "{line}");
        let back: Response = serde_json::from_str(&line).unwrap();
        assert!(back.is_ok());
        assert_eq!(back.id, Some(9));
        assert_eq!(back.solve.unwrap().active_slots, 4);

        let resp = Response::error(None, Some(verb::SOLVE), kind::OVERLOADED, "queue full".into());
        let line = serde_json::to_string(&resp).unwrap();
        assert!(line.starts_with("{\"id\":null"), "{line}");
        let back: Response = serde_json::from_str(&line).unwrap();
        assert_eq!(back.error_kind(), Some(kind::OVERLOADED));
    }
}
